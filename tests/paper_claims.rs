//! The paper's headline claims, asserted end to end at integration level.
//! (Finer-grained versions live in the per-crate tests; these are the
//! cross-crate versions a reviewer would spot-check.)

use midband5g::prelude::*;

fn mean_dl(op: Operator, sessions: u64, duration_s: f64, seed: u64) -> f64 {
    (0..sessions)
        .map(|i| {
            SessionResult::run(SessionSpec::stationary(op, i as usize, duration_s, seed + i))
                .trace
                .mean_throughput_mbps(Direction::Dl)
        })
        .sum::<f64>()
        / sessions as f64
}

/// §4.1 headline: channel bandwidth is not destiny — O_Sp's 100 MHz
/// channel trails the Madrid 90 MHz channels.
#[test]
fn bandwidth_is_not_destiny() {
    let osp100 = mean_dl(Operator::OrangeSpain100, 6, 6.0, 100);
    let vsp = mean_dl(Operator::VodafoneSpain, 6, 6.0, 100);
    assert!(vsp > osp100, "V_Sp {vsp} vs O_Sp100 {osp100}");
}

/// §4.2 headline: UL sits far below DL on every TDD mid-band channel.
#[test]
fn uplink_starves_on_tdd() {
    for op in [Operator::VodafoneSpain, Operator::VodafoneItaly, Operator::TelekomGermany] {
        let s = SessionResult::run(SessionSpec::stationary(op, 0, 6.0, 7));
        let nr = midband5g::measure::iperf::nr_only(&s.trace);
        let dl = nr.mean_throughput_mbps(Direction::Dl);
        let ul = nr.mean_throughput_mbps(Direction::Ul);
        assert!(ul < 130.0, "{op}: UL {ul}");
        assert!(dl > 2.0 * ul, "{op}: DL {dl} vs UL {ul}");
    }
}

/// §4.3 headline: latency follows the TDD frame structure, not bandwidth.
#[test]
fn latency_follows_frame_structure() {
    use midband5g::measure::latency::measure_latency;
    let vge = measure_latency(Operator::VodafoneGermany, 4000, 9).unwrap(); // 80 MHz, DDDSU
    let vit = measure_latency(Operator::VodafoneItaly, 4000, 9).unwrap(); // 80 MHz, DDDDDDDSUU
    // Same bandwidth, very different latency.
    assert!(vit.bler_zero_ms > vge.bler_zero_ms * 1.3, "{} vs {}", vit.bler_zero_ms, vge.bler_zero_ms);
}

/// §3.1/Fig. 23 headline: CA boosts U.S. mid-band beyond any single
/// carrier.
#[test]
fn carrier_aggregation_pays() {
    let rows = midband5g::experiments::ca::figure23(2, 4.0, 13);
    assert!(rows.last().unwrap().mean_mbps > rows.first().unwrap().mean_mbps * 1.2);
}

/// §6.2 headline: 1 s chunks don't underperform 4 s chunks on stalls.
#[test]
fn short_chunks_help_or_tie() {
    let rows = midband5g::experiments::video_qoe::figure17(30.0, 2, 15);
    for op in ["O_Fr", "V_Ge"] {
        let four = rows.iter().find(|r| r.operator == op && r.chunk_s == 4.0).unwrap();
        let one = rows.iter().find(|r| r.operator == op && r.chunk_s == 1.0).unwrap();
        assert!(one.stall_pct <= four.stall_pct + 1.0, "{op}");
    }
}

/// §7 headline: mmWave is faster but more erratic while walking.
#[test]
fn mmwave_fast_but_erratic() {
    let rows = midband5g::experiments::mmwave::figure18(8.0, 17);
    let find = |tech: &str, sc: &str| {
        rows.iter().find(|r| r.technology == tech && r.scenario == sc).unwrap()
    };
    let mid = find("mid-band", "walking");
    let mmw = find("mmWave", "walking");
    assert!(mmw.mean_mbps > mid.mean_mbps);
    let norm = |r: &midband5g::experiments::mmwave::MobilityThroughput| {
        r.profile.first().map(|p| p.variability).unwrap_or(0.0) / r.mean_mbps
    };
    assert!(norm(mmw) > norm(mid));
}
