//! Determinism guarantees: every figure is regenerable bit-for-bit.

use midband5g::prelude::*;

#[test]
fn sessions_reproduce_exactly() {
    let spec = SessionSpec::stationary(Operator::OrangeFrance, 2, 3.0, 12345);
    let a = SessionResult::run(spec);
    let b = SessionResult::run(spec);
    assert_eq!(a.trace.len(), b.trace.len());
    for (x, y) in a.trace.iter().zip(b.trace.iter()) {
        assert_eq!(x.delivered_bits, y.delivered_bits);
        assert_eq!(x.mcs, y.mcs);
        assert_eq!(x.layers, y.layers);
        assert!((x.sinr_db - y.sinr_db).abs() < 1e-12);
    }
}

#[test]
fn different_seeds_differ() {
    let a = SessionResult::run(SessionSpec::stationary(Operator::OrangeFrance, 2, 2.0, 1));
    let b = SessionResult::run(SessionSpec::stationary(Operator::OrangeFrance, 2, 2.0, 2));
    assert_ne!(
        a.trace.mean_throughput_mbps(Direction::Dl),
        b.trace.mean_throughput_mbps(Direction::Dl)
    );
}

#[test]
fn operators_in_one_city_share_the_environment() {
    // V_Sp and O_Sp90 run identical layouts in Madrid; with the same seed
    // and spot their environment (shadowing) coincides even though their
    // behavioural configs differ.
    let a = SessionResult::run(SessionSpec::stationary(Operator::VodafoneSpain, 0, 1.0, 77));
    let b = SessionResult::run(SessionSpec::stationary(Operator::OrangeSpain90, 0, 1.0, 77));
    assert!((a.trace.get(0).unwrap().rsrp_dbm - b.trace.get(0).unwrap().rsrp_dbm).abs() < 1e-9);
    // Operators in different cities see different environments.
    let c = SessionResult::run(SessionSpec::stationary(Operator::VodafoneItaly, 0, 1.0, 77));
    assert!((a.trace.get(0).unwrap().rsrp_dbm - c.trace.get(0).unwrap().rsrp_dbm).abs() > 1e-9);
}

#[test]
fn figure_presets_reproduce() {
    let a = midband5g::experiments::dl_throughput::figure2(2, 3.0, 55);
    let b = midband5g::experiments::dl_throughput::figure2(2, 3.0, 55);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.operator, y.operator);
        assert!((x.dl_mbps_cqi12 - y.dl_mbps_cqi12).abs() < 1e-12);
        assert!((x.dl_mbps_all - y.dl_mbps_all).abs() < 1e-12);
    }
}
