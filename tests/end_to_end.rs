//! Cross-crate integration: the full pipeline from operator profile to
//! application QoE, exercised end to end.

use midband5g::experiments::bandwidth_trace;
use midband5g::prelude::*;
use midband5g::video::{PlayerConfig, PlayerSim};

/// Channel → KPI trace → capacity trace → DASH player → QoE: the complete
/// path every §6 figure depends on.
#[test]
fn channel_to_qoe_pipeline() {
    let session = SessionResult::run(SessionSpec {
        operator: Operator::VodafoneSpain,
        mobility: MobilityKind::Stationary { spot: 0 },
        dl: true,
        ul: false,
        duration_s: 40.0,
        seed: 1,
    });
    assert!(session.trace.mean_throughput_mbps(Direction::Dl) > 100.0);

    let bw = bandwidth_trace(&session.trace, 0.05);
    assert!((bw.duration_s() - 40.0).abs() < 0.5);

    let ladder = QualityLadder::paper_midband();
    let mut abr = AbrKind::Bola.build();
    let log = PlayerSim::new(ladder.clone(), PlayerConfig::default(), &bw).play(abr.as_mut());
    assert!(!log.chunks.is_empty());
    let qoe = QoeMetrics::from_log(&log, &ladder);
    assert!(qoe.normalized_bitrate > 0.05 && qoe.normalized_bitrate <= 1.0);
    assert!(qoe.stall_pct <= 100.0);
}

/// The variability pipeline: slot series → V(t) profile, on real simulator
/// output rather than synthetic series.
#[test]
fn channel_to_variability_pipeline() {
    let session = SessionResult::run(SessionSpec {
        operator: Operator::VodafoneItaly,
        mobility: MobilityKind::Stationary { spot: 1 },
        dl: true,
        ul: true,
        duration_s: 8.0,
        seed: 2,
    });
    let (tput, mcs, mimo) = midband5g::experiments::variability::slot_series(&session);
    assert_eq!(tput.len(), mcs.len());
    assert_eq!(mcs.len(), mimo.len());
    assert!(tput.len() >= 15_000, "slot-level series expected, got {}", tput.len());
    let profile = variability_profile(&tput, 0.5e-3, 4);
    assert!(profile.len() >= 8, "profile covers many dyadic scales");
    // Small scales churn more than large scales on a TDD channel.
    assert!(profile.first().unwrap().variability > profile.last().unwrap().variability);
}

/// NSA behaviour end to end: T-Mobile's UL rides LTE while its DL rides
/// the NR CA aggregate.
#[test]
fn nsa_split_end_to_end() {
    let session = SessionResult::run(SessionSpec {
        operator: Operator::TMobileUs,
        mobility: MobilityKind::Stationary { spot: 0 },
        dl: true,
        ul: true,
        duration_s: 4.0,
        seed: 3,
    });
    let nr = midband5g::measure::iperf::nr_only(&session.trace);
    let lte = midband5g::measure::iperf::lte_only(&session.trace);
    assert_eq!(nr.mean_throughput_mbps(Direction::Ul), 0.0, "UL routed off NR");
    assert!(lte.mean_throughput_mbps(Direction::Ul) > 10.0, "LTE carries UL");
    assert!(nr.mean_throughput_mbps(Direction::Dl) > 300.0, "CA DL");
    // Multiple NR carriers actually contributed.
    let carriers: std::collections::BTreeSet<u8> =
        nr.iter().map(|r| r.carrier).collect();
    assert!(carriers.len() >= 2, "CA uses multiple CCs: {carriers:?}");
}

/// The latency experiment consumes operator profiles directly.
#[test]
fn latency_pipeline() {
    let r = midband5g::measure::latency::measure_latency(Operator::VodafoneGermany, 2000, 4).unwrap();
    assert_eq!(r.pattern, "DDDSU");
    assert!(r.bler_zero_ms > 0.5 && r.bler_zero_ms < 5.0);
    assert!(r.bler_positive_ms > r.bler_zero_ms);
    assert!(r.bler_zero_stats.n == 2000);
}
