//! Property-based tests over the public API surface (proptest).
//!
//! These complement the per-crate property tests by crossing crate
//! boundaries: arbitrary-but-valid configurations must flow through the
//! whole stack without violating invariants.

use midband5g::analysis::timeseries::{bin_average, bin_sum};
use midband5g::analysis::variability::variability;
use midband5g::measure::campaign::Campaign;
use midband5g::operators::Operator;
use midband5g::nr_phy::bandwidth::{max_transmission_bandwidth, ChannelBandwidth};
use midband5g::nr_phy::cqi::{Cqi, CqiTable, CqiToMcsPolicy};
use midband5g::nr_phy::resource::RbAllocation;
use midband5g::nr_phy::tbs::transport_block_size;
use midband5g::nr_phy::Numerology;
use midband5g::video::{AbrKind, BandwidthTrace, PlayerConfig, PlayerSim, QualityLadder};
use proptest::prelude::*;

proptest! {
    /// TBS never exceeds the raw information capacity of the allocation
    /// and is monotone in layers, for all valid inputs.
    #[test]
    fn tbs_bounded_and_monotone(
        n_prb in 1u16..=273,
        mcs in 0u8..28,
        layers in 1u8..=4,
    ) {
        let alloc = RbAllocation::full_slot(n_prb);
        let table = midband5g::nr_phy::mcs::McsTable::Qam256;
        let tbs = transport_block_size(&alloc, table, midband5g::nr_phy::mcs::McsIndex(mcs), layers);
        // Upper bound: REs × 8 bits/symbol × layers (code rate < 1).
        let cap = alloc.tbs_re() as u64 * 8 * layers as u64;
        prop_assert!(u64::from(tbs) <= cap, "tbs {tbs} cap {cap}");
        if layers < 4 {
            let more = transport_block_size(&alloc, table, midband5g::nr_phy::mcs::McsIndex(mcs), layers + 1);
            prop_assert!(more >= tbs);
        }
    }

    /// The CQI→MCS policy always returns an index valid for its table,
    /// for every CQI and offset.
    #[test]
    fn cqi_policy_stays_in_table(cqi in 0u8..=15, offset in -8i8..=8) {
        for table in [CqiTable::Table1, CqiTable::Table2] {
            let policy = CqiToMcsPolicy {
                index_offset: offset,
                ..CqiToMcsPolicy::neutral(table)
            };
            let mcs = policy.map(Cqi::new(cqi).unwrap());
            prop_assert!(mcs.0 < policy.mcs_table.len());
        }
    }

    /// N_RB lookups either fail or return something that fits the channel.
    #[test]
    fn nrb_fits_channel(mhz in 1u32..=120) {
        for numerology in [Numerology::Mu0, Numerology::Mu1, Numerology::Mu2] {
            if let Ok(n_rb) = max_transmission_bandwidth(ChannelBandwidth::from_mhz(mhz), numerology) {
                let occupied = u32::from(n_rb) * 12 * numerology.scs_khz();
                prop_assert!(occupied < mhz * 1000, "{n_rb} RBs overflow {mhz} MHz");
            }
        }
    }

    /// V(t) is non-negative, zero for constants, and scale-invariant under
    /// constant shifts.
    #[test]
    fn variability_invariants(
        values in prop::collection::vec(-1e3f64..1e3, 16..256),
        shift in -1e3f64..1e3,
        block in 1usize..8,
    ) {
        if let Some(v) = variability(&values, block) {
            prop_assert!(v >= 0.0);
            let shifted: Vec<f64> = values.iter().map(|x| x + shift).collect();
            let vs = variability(&shifted, block).unwrap();
            prop_assert!((v - vs).abs() < 1e-6, "shift invariance: {v} vs {vs}");
        }
        let constant = vec![shift; values.len()];
        if let Some(v) = variability(&constant, block) {
            prop_assert!(v.abs() < 1e-12);
        }
    }

    /// The DASH player conserves media time: played seconds = chunks ×
    /// chunk length, and the buffer never exceeds the cap, for arbitrary
    /// (bounded) bandwidth traces.
    #[test]
    fn player_conservation(
        mbps in prop::collection::vec(5.0f64..2000.0, 100..400),
        chunk_s in 1.0f64..4.0,
    ) {
        let trace = BandwidthTrace { bin_s: 0.1, mbps };
        let ladder = QualityLadder::paper_midband().with_chunk_s(chunk_s);
        let mut abr = AbrKind::Bola.build();
        let cfg = PlayerConfig::default();
        let log = PlayerSim::new(ladder.clone(), cfg, &trace).play(abr.as_mut());
        prop_assert!((log.played_s - log.chunks.len() as f64 * chunk_s).abs() < 1e-9);
        for &(_, b) in &log.buffer_series {
            prop_assert!(b <= cfg.max_buffer_s + 1e-9);
        }
        for c in &log.chunks {
            prop_assert!(c.level <= ladder.top_level());
            prop_assert!(c.arrived_at_s >= c.request_at_s);
        }
    }

    /// The resamplers never panic and always return exactly
    /// `ceil(duration/bin)` bins — even for samples whose timestamps and
    /// values are arbitrary bit patterns (NaN, ±inf, subnormals, negative
    /// zero all included).
    #[test]
    fn resamplers_always_return_ceil_duration_over_bin_bins(
        raw in prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..64),
        bin_s in 0.01f64..10.0,
        duration_s in 0.0f64..100.0,
    ) {
        let samples: Vec<(f64, f64)> = raw
            .iter()
            .map(|&(t, v)| (f64::from_bits(t), f64::from_bits(v)))
            .collect();
        let expected = (duration_s / bin_s).ceil().max(0.0) as usize;
        let avg = bin_average(&samples, bin_s, duration_s);
        prop_assert_eq!(avg.values.len(), expected);
        let sum = bin_sum(&samples, bin_s, duration_s);
        prop_assert_eq!(sum.values.len(), expected);
        // bin_sum of garbage must still be finite in bins no finite
        // sample landed in (empty bins are exact zeros).
        if samples.iter().all(|&(t, _)| !(t.is_finite() && t >= 0.0)) {
            prop_assert!(sum.values.iter().all(|&v| v == 0.0));
        }
    }

    /// The obs-instrumented parallel campaign stays byte-identical to the
    /// sequential reference for 1/2/8 workers, with audit mode live, for
    /// arbitrary seeds and session counts.
    #[test]
    fn instrumented_parallel_campaign_is_deterministic(
        seed in 0u64..100_000,
        sessions in 1u64..=2,
        op_index in 0usize..3,
    ) {
        midband5g::obs::audit::set_enabled(true);
        let operator =
            [Operator::VodafoneItaly, Operator::TelekomGermany, Operator::VerizonUs][op_index];
        let campaign =
            Campaign { operator, sessions, session_duration_s: 0.2, base_seed: seed };
        let reference = serde_json::to_string(&campaign.run()).unwrap();
        for threads in [1, 2, 8] {
            let parallel = serde_json::to_string(&campaign.run_parallel(threads)).unwrap();
            prop_assert_eq!(&reference, &parallel, "threads {}", threads);
        }
    }
}
