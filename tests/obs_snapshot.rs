//! The observability acceptance harness (DESIGN.md §5.3).
//!
//! One test drives a three-operator campaign with audit mode forced on
//! and checks every contract the `obs` layer makes at once:
//!
//! * the snapshot carries executor span timings and a healthy set of
//!   distinct metrics;
//! * a clean campaign reports **zero** invariant violations;
//! * metrics and audit counters stay *outside* the determinism boundary —
//!   `run_parallel(n)` stays byte-identical to the sequential reference
//!   for n ∈ {1, 2, 8} with instrumentation live;
//! * `write_snapshot` produces a well-formed `OBS_<run>.json`.
//!
//! Everything lives in a single `#[test]`: the obs registry and audit
//! counters are process-global, so independent tests in one binary would
//! race on them.

use midband5g::measure::campaign::Campaign;
use midband5g::measure::session::SessionResult;
use midband5g::obs;
use midband5g::operators::Operator;

/// Operators spanning three countries and both NSA routing architectures
/// (the same spread the determinism harness uses).
const OPERATORS: [Operator; 3] =
    [Operator::VodafoneItaly, Operator::TelekomGermany, Operator::VerizonUs];

fn encode(results: &[SessionResult]) -> String {
    serde_json::to_string(&results.to_vec()).expect("session results serialise")
}

#[test]
fn audited_campaign_snapshot_is_complete_and_clean() {
    obs::audit::set_enabled(true);
    obs::reset();

    // --- Run the campaign: sequential reference, then parallel re-runs.
    let mut references = Vec::new();
    for (i, operator) in OPERATORS.into_iter().enumerate() {
        let campaign =
            Campaign { operator, sessions: 4, session_duration_s: 1.0, base_seed: 7000 + i as u64 };
        let reference = campaign.run();
        for threads in [1, 2, 8] {
            let parallel = campaign.run_parallel(threads);
            assert_eq!(
                encode(&reference),
                encode(&parallel),
                "{operator}: audit-mode instrumentation broke determinism at {threads} threads"
            );
        }
        references.push(reference);
    }

    // --- The snapshot must carry the instrumentation the run produced.
    let snap = obs::snapshot();
    assert!(
        snap.metric_count() >= 8,
        "expected >= 8 distinct metrics, got {}: {:?}",
        snap.metric_count(),
        snap.counters.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );

    // Executor span timings: every run_parallel goes through map().
    let executor_span = snap.span("executor.map").expect("executor.map span registered");
    assert!(executor_span.count >= 9, "3 operators x 3 thread counts, got {}", executor_span.count);
    assert!(executor_span.sum > 0, "span should accumulate nanoseconds");
    let session_span = snap.span("session.run").expect("session.run span registered");
    assert!(session_span.count > 0);

    // Core counters from every layer of the stack.
    let total_sessions: u64 = references.iter().map(|r| r.len() as u64 * 4).sum();
    assert_eq!(snap.counter("session.runs"), Some(total_sessions));
    assert_eq!(snap.counter("campaign.runs"), Some(12), "3 operators x (1 seq + 3 parallel)");
    assert!(snap.counter("ran.slots").unwrap_or(0) > 0, "carrier slot counter");
    assert!(snap.counter("sim.ticks").unwrap_or(0) > 0, "UE sim tick counter");
    assert!(snap.counter("ran.delivered_bits").unwrap_or(0) > 0);
    // Only the parallel re-runs route through the executor: 3 operators
    // x 3 thread counts x 4 sessions.
    assert_eq!(snap.counter("executor.items"), Some(36));
    assert!(snap.span("sim.tick").is_some(), "sampled slot-stepping span");

    // --- Zero-violation audit section.
    assert!(snap.audit.enabled);
    assert_eq!(
        snap.audit.total_violations, 0,
        "clean campaign must audit clean: {:?}",
        snap.audit.violations
    );
    assert_eq!(snap.counter("audit.sessions_with_violations"), Some(0));
    assert_eq!(snap.audit.violations.len(), obs::audit::INVARIANTS.len());

    // --- The JSON export round-trips the same content.
    let dir = std::env::temp_dir().join(format!("obs-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = obs::write_snapshot("campaign", &dir).unwrap();
    assert!(path.ends_with("OBS_campaign.json"));
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("\"run\": \"campaign\""));
    assert!(body.contains("\"executor.map\""));
    assert!(body.contains("\"total_violations\": 0"));
    assert_eq!(body.matches('{').count(), body.matches('}').count());
    std::fs::remove_dir_all(&dir).unwrap();
}
