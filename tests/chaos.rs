//! The deterministic chaos contract (DESIGN.md §5.5).
//!
//! Fault injection must not cost determinism: a campaign run under a
//! nonzero [`FaultConfig`] — collector gaps, session aborts, corrupted
//! records, worker panics — still produces a byte-identical
//! [`CampaignOutcome`] for every thread count, a quiet config reproduces
//! the healthy campaign exactly, and a checkpointed campaign that is
//! killed and resumed matches an uninterrupted one byte for byte.

use midband5g::measure::campaign::{Campaign, CampaignOutcome};
use midband5g::measure::executor::Executor;
use midband5g::measure::fault::{FaultConfig, FaultPlan};
use midband5g::measure::session::SessionSpec;
use midband5g::measure::{Dataset, DEFAULT_RETRY_BUDGET};
use midband5g::operators::Operator;
use proptest::prelude::*;
use std::path::PathBuf;

/// Operators spanning three countries and both routing architectures —
/// the same panel as `tests/determinism.rs`.
const OPERATORS: [Operator; 3] =
    [Operator::VodafoneItaly, Operator::TelekomGermany, Operator::VerizonUs];

/// Aggressive-but-plausible rates: around half the sessions lose a span,
/// a third abort early, 2% of records decode as garbage, a third of
/// sessions panic at least once.
const CHAOS: FaultConfig =
    FaultConfig { gap_rate: 0.5, abort_rate: 0.3, corrupt_rate: 0.02, panic_rate: 0.3 };

fn small_campaign(operator: Operator) -> Campaign {
    Campaign { operator, sessions: 5, session_duration_s: 1.0, base_seed: 2024 }
}

fn encode(outcome: &CampaignOutcome) -> String {
    serde_json::to_string(outcome).expect("campaign outcomes serialise")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("midband5g-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn chaotic_campaign_is_byte_identical_across_thread_counts() {
    let mut any_fault_fired = false;
    for operator in OPERATORS {
        let campaign = small_campaign(operator);
        let reference =
            campaign.run_resilient(Executor::sequential(), &CHAOS, DEFAULT_RETRY_BUDGET);
        // The accounting always partitions the campaign.
        assert_eq!(
            reference.results.len() + reference.failures.len(),
            campaign.sessions as usize,
            "{operator}: results + failures must cover every session"
        );
        assert_eq!(reference.results.len(), reference.coverage.len());
        if reference.min_coverage() < 1.0 || !reference.is_complete() {
            any_fault_fired = true;
        }
        let reference = encode(&reference);
        for threads in [2, 8] {
            let parallel =
                campaign.run_resilient(Executor::new(threads), &CHAOS, DEFAULT_RETRY_BUDGET);
            assert_eq!(
                reference,
                encode(&parallel),
                "{operator}: run_resilient({threads}) diverged from sequential"
            );
        }
    }
    // Guard against the chaos config silently going quiet: across three
    // operators at these rates, something must have been injected.
    assert!(any_fault_fired, "CHAOS config injected nothing across the whole panel");
}

#[test]
fn quiet_faults_reproduce_the_healthy_campaign_exactly() {
    for operator in OPERATORS {
        let campaign = small_campaign(operator);
        let healthy = campaign.run();
        for threads in [1, 4] {
            let outcome = campaign.run_resilient(
                Executor::new(threads),
                &FaultConfig::default(),
                DEFAULT_RETRY_BUDGET,
            );
            assert!(outcome.is_complete());
            assert_eq!(outcome.survival_rate(), 1.0);
            assert_eq!(outcome.min_coverage(), 1.0);
            assert_eq!(outcome.results, healthy, "{operator}: quiet faults changed the traces");
        }
    }
}

#[test]
fn streaming_resilient_is_byte_identical_across_thread_counts() {
    let bin_s = 0.25;
    for operator in OPERATORS {
        let campaign = small_campaign(operator);
        let describe = |threads: usize| {
            let out = campaign.run_streaming_resilient(
                Executor::new(threads),
                bin_s,
                &CHAOS,
                DEFAULT_RETRY_BUDGET,
            );
            let agg = serde_json::to_string(&out.aggregates).expect("aggregates serialise");
            let failures = serde_json::to_string(&out.failures).expect("failures serialise");
            let coverage = serde_json::to_string(&out.coverage).expect("coverage serialises");
            format!("{agg}|{failures}|{coverage}")
        };
        let reference = describe(1);
        for threads in [2, 8] {
            assert_eq!(
                reference,
                describe(threads),
                "{operator}: run_streaming_resilient({threads}) diverged"
            );
        }
    }
}

/// A gapped or aborted campaign shows its losses in the streaming
/// coverage accounting instead of silently reading as complete.
#[test]
fn streaming_coverage_reflects_injected_gaps() {
    let campaign = small_campaign(Operator::TelekomGermany);
    let gaps = FaultConfig { gap_rate: 1.0, ..FaultConfig::default() };
    let out = campaign.run_streaming_resilient(
        Executor::new(2),
        0.25,
        &gaps,
        DEFAULT_RETRY_BUDGET,
    );
    assert!(out.failures.is_empty(), "gaps alone never abandon a session");
    assert!(
        out.coverage.iter().any(|c| c.fraction() < 1.0),
        "gap_rate=1 must cost some session coverage"
    );
    assert!(
        out.aggregates.min_bin_coverage() < 1.0,
        "the merged aggregates must expose under-populated bins"
    );
}

#[test]
fn checkpoint_resume_is_byte_identical_to_uninterrupted() {
    let operator = Operator::VodafoneItaly;
    let full = Campaign { operator, sessions: 6, session_duration_s: 1.0, base_seed: 77 };
    let executor = Executor::new(2);

    // Uninterrupted reference.
    let clean_dir = tmpdir("clean");
    let uninterrupted = full
        .run_checkpointed(&clean_dir, executor, &CHAOS, DEFAULT_RETRY_BUDGET)
        .expect("uninterrupted checkpointed run");

    // Simulated kill after 3 sessions: campaign specs are prefix-stable
    // (spec `i` depends only on operator/duration/base seed/`i`), so a
    // half-size campaign checkpointed into the same directory leaves
    // exactly the state a killed full campaign would have.
    let resume_dir = tmpdir("resume");
    let half = Campaign { sessions: 3, ..full };
    half.run_checkpointed(&resume_dir, executor, &CHAOS, DEFAULT_RETRY_BUDGET)
        .expect("interrupted prefix run");
    let resumed = full
        .run_checkpointed(&resume_dir, executor, &CHAOS, DEFAULT_RETRY_BUDGET)
        .expect("resumed run");
    assert_eq!(
        encode(&uninterrupted),
        encode(&resumed),
        "resumed campaign diverged from the uninterrupted one"
    );

    // A second resume over the finished directory is all cache hits and
    // still byte-identical.
    let replayed = full
        .run_checkpointed(&resume_dir, executor, &CHAOS, DEFAULT_RETRY_BUDGET)
        .expect("replayed run");
    assert_eq!(encode(&uninterrupted), encode(&replayed));

    // The finished checkpoint directory doubles as a loadable dataset
    // over the survivors.
    let ds = Dataset::at(&resume_dir);
    let loaded = ds.load_all().expect("checkpoint dir is a loadable dataset");
    assert_eq!(loaded.len(), uninterrupted.results.len());
    for (record, result) in loaded.iter().zip(&uninterrupted.results) {
        assert_eq!(record.spec, result.spec);
        // Compare serialised: corrupted records carry NaN fields, and
        // NaN != NaN under PartialEq even for identical traces.
        assert_eq!(
            serde_json::to_string(&record.trace).expect("traces serialise"),
            serde_json::to_string(&result.trace).expect("traces serialise")
        );
    }

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&resume_dir);
}

#[test]
fn checkpoint_rejects_entries_from_a_different_campaign() {
    // A checkpoint directory seeded by a different base seed must not be
    // trusted: every entry fails the seed/spec-hash check and the whole
    // campaign reruns.
    let operator = Operator::TelekomGermany;
    let executor = Executor::new(2);
    let dir = tmpdir("reject");
    let other = Campaign { operator, sessions: 4, session_duration_s: 1.0, base_seed: 1 };
    other
        .run_checkpointed(&dir, executor, &FaultConfig::default(), DEFAULT_RETRY_BUDGET)
        .expect("other campaign");
    let campaign = Campaign { operator, sessions: 4, session_duration_s: 1.0, base_seed: 999 };
    let outcome = campaign
        .run_checkpointed(&dir, executor, &FaultConfig::default(), DEFAULT_RETRY_BUDGET)
        .expect("rerun over stale checkpoint");
    let reference = campaign.run();
    assert_eq!(outcome.results, reference, "stale checkpoint entries leaked into the outcome");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    /// A fault plan is a pure function of `(seed, duration, config)`:
    /// re-deriving it gives the identical schedule, and specs differing
    /// only in operator or mobility share it.
    #[test]
    fn fault_plans_are_pure_functions_of_seed_and_config(
        seed in 0u64..u64::MAX,
        duration_s in 0.1f64..30.0,
    ) {
        let spec = |operator: Operator, spot: usize| SessionSpec::stationary(
            operator, spot, duration_s, seed,
        );
        let a = FaultPlan::for_spec(&spec(Operator::VodafoneItaly, 0), &CHAOS);
        let b = FaultPlan::for_spec(&spec(Operator::VodafoneItaly, 0), &CHAOS);
        prop_assert_eq!(&a, &b, "replay diverged");
        let c = FaultPlan::for_spec(&spec(Operator::VerizonUs, 3), &CHAOS);
        prop_assert_eq!(&a, &c, "operator/spot leaked into the fault schedule");
    }

    /// Planned fault times stay inside the session and panic persistence
    /// stays within its documented 1..=3 attempts.
    #[test]
    fn fault_plans_stay_within_session_bounds(
        seed in 0u64..u64::MAX,
        duration_s in 0.1f64..30.0,
    ) {
        let everything = FaultConfig {
            gap_rate: 1.0, abort_rate: 1.0, corrupt_rate: 0.1, panic_rate: 1.0,
        };
        let spec = SessionSpec::stationary(Operator::TelekomGermany, 0, duration_s, seed);
        let plan = FaultPlan::for_spec(&spec, &everything);
        let (start, end) = plan.gap_s.expect("gap_rate=1 always plans a gap");
        prop_assert!(start >= 0.0 && start <= end && end <= duration_s);
        let abort_s = plan.abort_s.expect("abort_rate=1 always plans an abort");
        prop_assert!(abort_s >= 0.0 && abort_s <= duration_s);
        let p = plan.panic.expect("panic_rate=1 always plans a panic");
        prop_assert!(p.at_s >= 0.0 && p.at_s < duration_s);
        prop_assert!((1..=3).contains(&p.attempts));
    }
}
