//! Streaming-pipeline equivalence (DESIGN.md §5.4): a session emitted
//! through a [`Tee`] of the columnar trace and the online aggregates must
//! agree with the stored-trace path — the tee'd trace is the `run()` trace,
//! and the streamed aggregates equal post-hoc aggregation over it.

use midband5g::analysis::OnlineAggregates;
use midband5g::measure::session::{SessionResult, SessionSpec};
use midband5g::operators::Operator;
use midband5g::ran::kpi::{Direction, KpiTrace};
use midband5g::ran::sink::Tee;
use proptest::prelude::*;

const BIN_S: f64 = 0.1;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    /// One pass through `Tee(KpiTrace, OnlineAggregates)` is observationally
    /// the same as materialising the trace and aggregating afterwards.
    #[test]
    fn tee_stream_matches_posthoc_aggregation(
        operator in prop::sample::select(vec![
            Operator::VodafoneSpain,
            Operator::TelekomGermany,
            Operator::TMobileUs,
        ]),
        spot in 0usize..3,
        duration_s in 0.4f64..1.2,
        seed in 0u64..10_000,
    ) {
        let spec = SessionSpec::stationary(operator, spot, duration_s, seed);

        let mut tee = Tee::new(KpiTrace::new(), OnlineAggregates::new(BIN_S));
        let pushed = SessionResult::run_with_sink(spec, &mut tee);
        let Tee { first: trace, second: online } = tee;

        // The tee'd trace IS the session trace.
        let baseline = SessionResult::run(spec);
        prop_assert_eq!(pushed, trace.len() as u64);
        prop_assert_eq!(&trace, &baseline.trace);

        // Online aggregates equal post-hoc aggregation over the trace.
        prop_assert_eq!(online.records(), trace.len() as u64);
        prop_assert!(close(online.duration_s(), trace.duration_s()));
        for dir in [Direction::Dl, Direction::Ul] {
            let posthoc_bits: u64 = trace
                .direction(dir)
                .map(|r| u64::from(r.delivered_bits))
                .sum();
            prop_assert_eq!(online.delivered_bits(dir), posthoc_bits);
            prop_assert!(close(
                online.mean_throughput_mbps(dir),
                trace.mean_throughput_mbps(dir)
            ));
            let streamed = online.throughput_series_mbps(dir);
            let posthoc = trace.throughput_series_mbps(dir, BIN_S);
            prop_assert_eq!(streamed.len(), posthoc.len());
            for (s, p) in streamed.iter().zip(&posthoc) {
                prop_assert!(close(*s, *p), "bin diverged: {s} vs {p}");
            }
        }
        prop_assert!(close(online.dl_bler(), trace.dl_bler()));
        prop_assert!(close(online.mean_cqi(), trace.mean_cqi()));

        let streamed_shares = online.modulation_shares();
        let posthoc_shares = trace.modulation_shares();
        prop_assert_eq!(streamed_shares.len(), posthoc_shares.len());
        for ((ma, sa), (mb, sb)) in streamed_shares.iter().zip(&posthoc_shares) {
            prop_assert_eq!(ma, mb);
            prop_assert!(close(*sa, *sb));
        }
        for (s, p) in online.layer_shares().iter().zip(trace.layer_shares()) {
            prop_assert!(close(*s, p));
        }
    }
}
