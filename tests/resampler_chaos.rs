//! Chaos-flavored resampler regression: a fault-injected trace (the
//! `measure::fault` NaN-corruption path) fed straight through
//! `analysis::timeseries` must produce finite series.
//!
//! Before the non-finite-value fix, one corrupted `sinr_db` sample made
//! its bin's sum NaN and the sample-and-hold then poisoned every
//! subsequent bin — exactly the trace shape a long-running telemetry
//! daemon ingests for hours. ISSUE 8 satellite regression.

use midband5g::analysis::timeseries::{bin_average, bin_counts, bin_sum};
use midband5g::measure::fault::{run_session_with_faults, FaultConfig};
use midband5g::measure::session::SessionSpec;
use midband5g::obs;
use midband5g::prelude::Operator;

#[test]
fn fault_corrupted_trace_resamples_to_finite_series() {
    // Aggressive per-record corruption so every bin of the session is
    // statistically guaranteed to contain at least one NaN sample.
    let faults = FaultConfig { corrupt_rate: 0.3, ..FaultConfig::default() };
    let spec = SessionSpec::stationary(Operator::VodafoneSpain, 0, 2.0, 4242);
    let run = run_session_with_faults(spec, &faults, 0);
    assert!(run.stats.corrupted > 0, "corruption should have fired at this rate");

    let samples: Vec<(f64, f64)> =
        run.result.trace.iter().map(|r| (r.time_s, r.sinr_db)).collect();
    let n_nan = samples.iter().filter(|(_, v)| !v.is_finite()).count() as u64;
    assert!(n_nan > 0, "corrupted records must carry NaN sinr_db");

    let before = obs::registry().counter("timeseries.nonfinite_values").get();
    let duration_s = spec.duration_s;
    let avg = bin_average(&samples, 0.06, duration_s); // Fig. 13 granularity
    assert_eq!(avg.values.len(), (duration_s / 0.06).ceil() as usize);
    assert!(
        avg.values.iter().all(|v| v.is_finite()),
        "one NaN sample poisoned the held series"
    );
    let sum = bin_sum(&samples, 0.06, duration_s);
    assert!(sum.values.iter().all(|v| v.is_finite()));
    // Every dropped sample is accounted for, twice (once per resampler).
    let dropped = obs::registry().counter("timeseries.nonfinite_values").get() - before;
    assert_eq!(dropped, 2 * n_nan);

    // The coverage companion applies the same dropping rules, so the
    // corrupted records are visible as missing coverage, not as data.
    let counted: u64 = bin_counts(&samples, 0.06, duration_s).iter().sum();
    assert_eq!(counted, samples.len() as u64 - n_nan);
}
