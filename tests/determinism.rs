//! The parallel-execution determinism contract (DESIGN.md §5).
//!
//! `Campaign::run_parallel(n)` must be **byte-identical** to the
//! sequential `Campaign::run()` for every thread count: same sessions,
//! same slot traces, same serialised JSON down to the last float digit.
//! This is what lets the figure binaries fan out across cores without
//! ever changing a published number.

use midband5g::analysis::OnlineAggregates;
use midband5g::measure::campaign::Campaign;
use midband5g::measure::executor::{Executor, THREADS_ENV};
use midband5g::measure::session::{SessionResult, SessionSpec};
use midband5g::operators::Operator;
use midband5g::radio_channel::rng::SeedTree;
use proptest::prelude::*;
use rand::RngCore;

/// Operators spanning three countries and both routing architectures.
const OPERATORS: [Operator; 3] =
    [Operator::VodafoneItaly, Operator::TelekomGermany, Operator::VerizonUs];

fn small_campaign(operator: Operator) -> Campaign {
    Campaign { operator, sessions: 5, session_duration_s: 1.0, base_seed: 2024 }
}

/// Canonical byte encoding of a campaign's results.
fn encode(results: &[SessionResult]) -> String {
    serde_json::to_string(&results.to_vec()).expect("session results serialise")
}

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    for operator in OPERATORS {
        let campaign = small_campaign(operator);
        let reference = encode(&campaign.run());
        for threads in [1, 2, 8] {
            let parallel = encode(&campaign.run_parallel(threads));
            assert_eq!(
                reference, parallel,
                "{operator}: run_parallel({threads}) diverged from sequential run()"
            );
        }
    }
}

#[test]
fn parallel_results_preserve_spec_order() {
    for operator in OPERATORS {
        let campaign = small_campaign(operator);
        let specs = campaign.specs();
        for threads in [2, 8] {
            let results = campaign.run_parallel(threads);
            assert_eq!(results.len(), specs.len());
            for (result, spec) in results.iter().zip(&specs) {
                assert_eq!(result.spec, *spec, "{operator}: results out of spec order");
            }
        }
    }
}

#[test]
fn executor_map_is_deterministic_across_thread_counts() {
    let specs: Vec<SessionSpec> = (0..6)
        .map(|i| SessionSpec::stationary(Operator::OrangeFrance, i, 0.5, 900 + i as u64))
        .collect();
    let reference = Executor::sequential().run_sessions(&specs);
    for threads in [2, 3, 8] {
        let parallel = Executor::new(threads).run_sessions(&specs);
        assert_eq!(reference, parallel, "{threads}-thread run diverged");
    }
}

#[test]
fn env_thread_count_does_not_change_results() {
    // `run_auto` reads MIDBAND5G_THREADS; whatever the environment says,
    // the output must match the sequential reference.
    let campaign = small_campaign(Operator::TMobileUs);
    let reference = encode(&campaign.run());
    for value in ["1", "4"] {
        std::env::set_var(THREADS_ENV, value);
        let auto = encode(&campaign.run_auto());
        assert_eq!(reference, auto, "{THREADS_ENV}={value} changed the output");
    }
    std::env::remove_var(THREADS_ENV);
}

/// The bounded-memory streaming path obeys the same contract as the
/// trace-materialising one: `run_streaming` is byte-identical across
/// thread counts AND to folding the stored `run()` traces through
/// [`OnlineAggregates`] per session, merged in spec order.
#[test]
fn streaming_campaign_is_byte_identical_across_thread_counts() {
    use midband5g::ran::sink::SlotSink;

    let bin_s = 0.25;
    for operator in OPERATORS {
        let campaign = small_campaign(operator);

        // Sequential reference: post-hoc fold of the stored traces.
        let mut reference = OnlineAggregates::new(bin_s);
        for result in campaign.run() {
            let mut session = OnlineAggregates::new(bin_s);
            for record in result.trace.iter() {
                session.push(&record);
            }
            session.finish();
            reference.merge(&session);
        }
        let reference = serde_json::to_string(&reference).expect("aggregates serialise");

        for threads in [1, 2, 8] {
            let streamed = campaign.run_streaming_on(Executor::new(threads), bin_s);
            let streamed = serde_json::to_string(&streamed).expect("aggregates serialise");
            assert_eq!(
                reference, streamed,
                "{operator}: run_streaming_on({threads}) diverged from post-hoc fold"
            );
        }
    }
}

/// Cell-load sweeps (N UEs contending in one cell) obey the same
/// contract as campaigns: every point derives its seeds from the
/// `("load", index)` subtree and shares no state with its neighbours, so
/// the serialised sweep is byte-identical for every thread count.
#[test]
fn cell_load_sweep_is_byte_identical_across_thread_counts() {
    use midband5g::measure::loadsweep::CellLoadSweep;
    use midband5g::ran::scheduler::SchedulerPolicy;

    for policy in [SchedulerPolicy::ProportionalFair, SchedulerPolicy::EqualShare] {
        let sweep = CellLoadSweep {
            ue_counts: vec![1, 3, 8, 24],
            slots: 2_000,
            policy,
            bandwidth_mhz: 60,
            base_seed: 2024,
        };
        let reference =
            serde_json::to_string(&sweep.run(&Executor::sequential())).expect("points serialise");
        for threads in [1, 2, 8] {
            let parallel =
                serde_json::to_string(&sweep.run(&Executor::new(threads))).expect("points serialise");
            assert_eq!(
                reference, parallel,
                "{policy:?}: {threads}-thread load sweep diverged from sequential"
            );
        }
    }
}

proptest! {
    /// Session seed streams never overlap: each session derives its RNG
    /// from `base_seed + i` through the labelled [`SeedTree`], and the
    /// first draws of every stream in a campaign are pairwise distinct —
    /// sessions share no randomness, which is what makes them safe to run
    /// on any thread in any order.
    #[test]
    fn session_seed_streams_do_not_overlap(
        base_seed in 0u64..u64::MAX - 64,
        sessions in 2u64..24,
    ) {
        let campaign = Campaign {
            operator: Operator::VodafoneItaly,
            sessions,
            session_duration_s: 1.0,
            base_seed,
        };
        let mut prefixes = Vec::new();
        for spec in campaign.specs() {
            let mut stream = spec.seeds().stream("shadowing");
            let prefix = [stream.next_u64(), stream.next_u64(), stream.next_u64()];
            prop_assert!(
                !prefixes.contains(&prefix),
                "seed {} repeats another session's stream", spec.seed
            );
            prefixes.push(prefix);
        }
        prop_assert_eq!(prefixes.len() as u64, sessions);
    }

    /// Seed derivation is overflow-safe: near `u64::MAX` the per-session
    /// seeds wrap instead of panicking and stay pairwise distinct.
    #[test]
    fn seeds_wrap_without_collision_near_max(offset in 0u64..16, sessions in 2u64..32) {
        let campaign = Campaign {
            operator: Operator::TelekomGermany,
            sessions,
            session_duration_s: 1.0,
            base_seed: u64::MAX - offset,
        };
        let seeds: Vec<u64> = campaign.specs().iter().map(|s| s.seed).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u64, sessions, "wrapped seeds collided");
        // The independent streams they open stay distinct too.
        let first_draws: Vec<u64> = seeds
            .iter()
            .map(|&s| SeedTree::new(s).child("Berlin").stream("fading").next_u64())
            .collect();
        let mut unique = first_draws.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), first_draws.len());
    }
}
