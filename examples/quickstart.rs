//! Quickstart: measure one operator's 5G mid-band deployment.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
use midband5g::measure;
use midband5g::prelude::*;

fn main() {
    // Pick a deployment straight out of the paper's Table 2: Vodafone
    // Spain's 90 MHz n78 channel in Madrid.
    let operator = Operator::VodafoneSpain;
    let profile = operator.profile();
    println!(
        "operator : {} ({} / {})",
        profile.display_name, profile.city, profile.country
    );
    println!(
        "carrier  : {} {} MHz ({} RBs, {} SCS, {})",
        profile.carriers[0].cell.band,
        profile.carriers[0].cell.bandwidth.mhz(),
        profile.carriers[0].cell.n_rb,
        profile.carriers[0].cell.numerology,
        profile
            .tdd_pattern()
            .map(|p| p.pattern_string())
            .unwrap_or_else(|| "FDD".into()),
    );

    // Run a 10-second saturating DL+UL test at the first Madrid study spot.
    let session = SessionResult::run(SessionSpec::stationary(operator, 0, 10.0, 42));

    let dl = session.trace.mean_throughput_mbps(Direction::Dl);
    let ul = measure::iperf::nr_only(&session.trace).mean_throughput_mbps(Direction::Ul);
    println!("\nDL goodput : {dl:>7.1} Mbps");
    println!("NR UL      : {ul:>7.1} Mbps  (the TDD frame starves the uplink)");
    println!("mean CQI   : {:>7.1}", session.trace.mean_cqi());
    println!("DL BLER    : {:>6.1}%", 100.0 * session.trace.dl_bler());

    let layers = session.trace.layer_shares();
    println!(
        "MIMO usage : 1L {:.0}% | 2L {:.0}% | 3L {:.0}% | 4L {:.0}%",
        layers[1] * 100.0,
        layers[2] * 100.0,
        layers[3] * 100.0,
        layers[4] * 100.0
    );
    for (m, share) in session.trace.modulation_shares() {
        println!("  {m}: {:.1}% of grants", share * 100.0);
    }

    println!("\nEverything above is derived from a slot-level KPI trace");
    println!("({} records) — the simulated equivalent of an XCAL capture.", session.trace.len());
    println!("Re-running with the same seed reproduces it bit-for-bit.");
}
