//! Stream a DASH video over a simulated 5G mid-band channel and inspect
//! the ABR's behaviour (the paper's §6 case study).
//!
//! ```sh
//! cargo run --release --example video_streaming
//! ```

use midband5g::experiments::bandwidth_trace;
use midband5g::prelude::*;
use midband5g::video::{PlayerConfig, PlayerSim};

fn main() {
    // 1. Characterise the channel with a saturating transfer (as the paper
    //    does with iPerf before streaming).
    let session = SessionResult::run(SessionSpec {
        operator: Operator::VodafoneSpain,
        mobility: MobilityKind::Stationary { spot: 0 },
        dl: true,
        ul: false,
        duration_s: 120.0,
        seed: 7,
    });
    let link = bandwidth_trace(&session.trace, 0.05);
    println!(
        "channel: V_Sp, 120 s, mean {:.0} Mbps",
        session.trace.mean_throughput_mbps(Direction::Dl)
    );

    // 2. Stream the paper's 7-level ladder (30–750 Mbps, 4 s chunks) with
    //    each ABR and compare.
    println!(
        "\n{:<12} {:>12} {:>12} {:>10} {:>10}",
        "ABR", "avg level", "norm rate", "stalls", "switches"
    );
    for kind in AbrKind::ALL {
        let ladder = QualityLadder::paper_midband();
        let mut abr = kind.build();
        let log = PlayerSim::new(ladder.clone(), PlayerConfig::default(), &link)
            .play(abr.as_mut());
        let qoe = QoeMetrics::from_log(&log, &ladder);
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>9.2}% {:>10}",
            kind.to_string(),
            qoe.mean_level,
            qoe.normalized_bitrate,
            qoe.stall_pct,
            qoe.switches
        );
    }

    // 3. The paper's §6.2 improvement: shorter chunks.
    println!("\nBOLA with different chunk lengths (the §6.2 knob):");
    for chunk_s in [4.0, 2.0, 1.0] {
        let ladder = QualityLadder::paper_midband().with_chunk_s(chunk_s);
        let mut abr = AbrKind::Bola.build();
        let log = PlayerSim::new(ladder.clone(), PlayerConfig::default(), &link)
            .play(abr.as_mut());
        let qoe = QoeMetrics::from_log(&log, &ladder);
        println!(
            "  {chunk_s:>3.0} s chunks → norm bitrate {:.2}, stalls {:.2}%",
            qoe.normalized_bitrate, qoe.stall_pct
        );
    }
    println!("\nSmaller chunks let the ABR decide at a faster time scale than the");
    println!("5G channel varies — the paper's 'make applications 5G-aware' lesson.");
}
