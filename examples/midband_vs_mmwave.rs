//! The §7 comparison: why mid-band is the "sweet spot" — mmWave is faster
//! but erratic, especially under mobility.
//!
//! ```sh
//! cargo run --release --example midband_vs_mmwave
//! ```

use midband5g::experiments::bandwidth_trace;
use midband5g::prelude::*;
use midband5g::video::{PlayerConfig, PlayerSim};

fn run(op: Operator, mobility: MobilityKind, label: &str) {
    let session = SessionResult::run(SessionSpec {
        operator: op,
        mobility,
        dl: true,
        ul: false,
        duration_s: 30.0,
        seed: 11,
    });
    let mean = session.trace.mean_throughput_mbps(Direction::Dl);
    // Variability at the ~1 s scale, where mmWave blockage dips live.
    let series = session.trace.throughput_series_mbps(Direction::Dl, 0.05);
    let v = variability(&series, 20).unwrap_or(0.0);
    // Stream the paper's ladder over the same channel.
    let ladder = QualityLadder::paper_midband().with_chunk_s(1.0);
    let bw = bandwidth_trace(&session.trace, 0.05);
    let mut abr = AbrKind::Bola.build();
    let log = PlayerSim::new(ladder.clone(), PlayerConfig::default(), &bw).play(abr.as_mut());
    let qoe = QoeMetrics::from_log(&log, &ladder);
    println!(
        "{label:<22} mean {:>7.0} Mbps | V(1s)/mean {:>5.2} | video: bitrate {:.2}, stalls {:.2}%",
        mean,
        v / mean.max(1e-9),
        qoe.normalized_bitrate,
        qoe.stall_pct
    );
}

fn main() {
    println!("30 s of walking, then driving, on T-Mobile mid-band vs Verizon mmWave:\n");
    run(Operator::TMobileUs, MobilityKind::Walking, "mid-band / walking");
    run(Operator::VerizonMmwaveUs, MobilityKind::Walking, "mmWave   / walking");
    run(Operator::TMobileUs, MobilityKind::Driving, "mid-band / driving");
    run(Operator::VerizonMmwaveUs, MobilityKind::Driving, "mmWave   / driving");
    println!("\nmmWave wins on raw rate but its normalised variability is far higher");
    println!("(blockage events at 28 GHz), and the gap narrows when driving — the");
    println!("paper's argument for mid-band as the deployment sweet spot.");
}
