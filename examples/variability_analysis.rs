//! Apply the paper's §5 scaled variability metric V(t) to a slot-level
//! trace and see at which time scales a 5G channel actually churns.
//!
//! ```sh
//! cargo run --release --example variability_analysis
//! ```

use midband5g::experiments::variability::slot_series;
use midband5g::prelude::*;

fn main() {
    for op in [Operator::VodafoneItaly, Operator::OrangeSpain100] {
        let session = SessionResult::run(SessionSpec {
            operator: op,
            mobility: MobilityKind::Stationary { spot: 0 },
            dl: true,
            ul: true,
            duration_s: 20.0,
            seed: 5,
        });
        let (tput, mcs, mimo) = slot_series(&session);
        println!("=== {} (20 s, slot-level τ = 0.5 ms) ===", op.acronym());
        println!("{:>12} {:>14} {:>10} {:>10}", "t", "V_tput (Mbps)", "V_MCS", "V_MIMO");
        let profiles = [
            variability_profile(&tput, 0.5e-3, 4),
            variability_profile(&mcs, 0.5e-3, 4),
            variability_profile(&mimo, 0.5e-3, 4),
        ];
        for (i, p) in profiles[0].iter().enumerate().step_by(2) {
            println!(
                "{:>10.1} ms {:>14.1} {:>10.3} {:>10.4}",
                p.timescale_s * 1e3,
                p.variability,
                profiles[1].get(i).map(|x| x.variability).unwrap_or(f64::NAN),
                profiles[2].get(i).map(|x| x.variability).unwrap_or(f64::NAN)
            );
        }
        println!();
    }
    println!("Two §5 observations to look for: variability collapses as the time");
    println!("scale grows (stabilising around 0.2–0.5 s), and the channel with the");
    println!("churnier MCS/MIMO series (O_Sp[100]) is the one with the churnier");
    println!("throughput — parameter variability drives throughput variability.");
}
