//! The paper's Appendix 10.1: extracting an operator's channel
//! configuration from the broadcast MIB/SIB fields — reproduced against
//! the simulated deployments.
//!
//! ```sh
//! cargo run --release --example extract_configs
//! ```

use midband5g::nr_phy::band::NrArfcn;
use midband5g::nr_phy::sib::CellFrequencyInfo;
use midband5g::prelude::*;

fn main() {
    println!("Appendix 10.1 — channel identification from SIB fields");
    println!("(absoluteFrequencyPointA + offsetToCarrier + carrierBandwidth)\n");
    println!(
        "{:<10} {:>6} | {:>12} {:>8} {:>8} | {:>10} {:>10} {:>9}",
        "Operator", "band", "pointA (MHz)", "offset", "N_RB", "low edge", "high edge", "nominal"
    );

    for op in Operator::ALL_MIDBAND {
        let profile = op.profile();
        let cell = &profile.carriers[0].cell;
        // Build the SIB a UE would decode: point A at the carrier's lower
        // edge on the global raster.
        let (lo, hi) = cell.band.dl_range_mhz();
        let center_khz = u64::from(lo + hi) / 2 * 1000;
        let occupied = u64::from(cell.n_rb) * 12 * u64::from(cell.numerology.scs_khz());
        let point_a = NrArfcn::from_khz(center_khz - occupied / 2).expect("in-raster");
        let sib = CellFrequencyInfo {
            absolute_frequency_point_a: point_a,
            offset_to_carrier: 0,
            carrier_bandwidth_rb: cell.n_rb,
            numerology: cell.numerology,
        };
        // …and decode it back, as the paper's pipeline does with XCAL logs.
        let decoded = sib.decode().expect("valid SIB");
        let nominal = sib
            .nominal_channel_bandwidth()
            .map(|bw| format!("{bw}"))
            .unwrap_or_else(|| "?".into());
        println!(
            "{:<10} {:>6} | {:>12.1} {:>8} {:>8} | {:>7.1} MHz {:>6.1} MHz {:>9}",
            op.acronym(),
            cell.band.label(),
            point_a.to_mhz().unwrap(),
            0,
            cell.n_rb,
            decoded.low_edge_khz as f64 / 1000.0,
            decoded.high_edge_khz as f64 / 1000.0,
            nominal,
        );
        // The round trip must recover the configured channel bandwidth.
        assert_eq!(
            sib.nominal_channel_bandwidth(),
            Some(cell.bandwidth),
            "{op}: decoded bandwidth must match the profile"
        );
    }

    println!("\nEach deployment's nominal bandwidth is recovered from N_RB via the");
    println!("TS 38.101 table inversion — the exact procedure of Appendix 10.1");
    println!("(including the n78⊂n77 C-band relationship the paper discusses).");
}
