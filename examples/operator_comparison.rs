//! Compare the Madrid deployments the paper's §4.1 dissects: why does a
//! 100 MHz channel lose to a 90 MHz one?
//!
//! ```sh
//! cargo run --release --example operator_comparison
//! ```

use midband5g::prelude::*;

fn main() {
    println!("The paper's §4.1 question: Orange Spain runs the widest EU channel");
    println!("(100 MHz, 273 RBs) — why does it deliver the lowest throughput?\n");

    let ops = [Operator::VodafoneSpain, Operator::OrangeSpain90, Operator::OrangeSpain100];
    println!(
        "{:<12} {:>4} {:>10} {:>8} {:>8} {:>10} {:>8}",
        "operator", "MHz", "DL Mbps", "maxQAM", "rank4", "mean REs", "CQI"
    );
    for op in ops {
        // Average a few sessions over the shared Madrid study spots.
        let mut dl = 0.0;
        let mut trace = KpiTrace::new();
        let sessions = 6;
        for i in 0..sessions {
            let s = SessionResult::run(SessionSpec::stationary(op, i as usize, 6.0, 100 + i));
            dl += s.trace.mean_throughput_mbps(Direction::Dl);
            trace.extend(s.trace.iter());
        }
        dl /= sessions as f64;
        let shares = trace.layer_shares();
        let scheduled: Vec<f64> = trace
            .direction(Direction::Dl)
            .filter(|r| r.scheduled)
            .map(|r| f64::from(r.n_re))
            .collect();
        let mean_re = scheduled.iter().sum::<f64>() / scheduled.len().max(1) as f64;
        let cell = &op.profile().carriers[0].cell;
        println!(
            "{:<12} {:>4} {:>10.1} {:>8} {:>7.0}% {:>10.0} {:>8.1}",
            op.acronym(),
            cell.bandwidth.mhz(),
            dl,
            format!("{}", cell.mcs_table().max_modulation()),
            shares[4] * 100.0,
            mean_re,
            trace.mean_cqi()
        );
    }

    println!("\nThe answer, as in the paper: the 100 MHz channel allocates MORE");
    println!("resource elements, but its 64QAM cap and its sparse two-site");
    println!("coverage (lower MIMO rank) cost more than the extra bandwidth buys.");
}
