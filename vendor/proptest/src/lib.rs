#![warn(missing_docs)]

//! Offline vendored property-testing shim.
//!
//! Implements the `proptest` surface this workspace's test suites use —
//! the [`proptest!`] macro, range/collection/sample strategies, and the
//! `prop_assert*` family — over the workspace's vendored ChaCha12 RNG.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failure reports the case number and per-test seed
//!   (cases are deterministic per test name, so failures replay exactly);
//! * `PROPTEST_CASES` (default 64) controls the case count.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::ops::{Range, RangeInclusive};

/// Outcome of one generated test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; draw new ones.
    Reject,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// Build a rejection.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut ChaCha12Rng) -> Self::Value;
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut ChaCha12Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha12Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut ChaCha12Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut ChaCha12Rng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut ChaCha12Rng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut ChaCha12Rng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// A `&str` is a regex strategy generating matching `String`s, as in real
/// proptest. Supported subset: literal characters, `[...]` classes (chars
/// and `a-z` ranges), and `{n}` / `{m,n}` / `?` / `*` / `+` repetition of
/// the preceding atom (unbounded repeats capped at 8).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut ChaCha12Rng) -> String {
        let atoms = parse_regex_atoms(self);
        let mut out = String::new();
        for (chars, min, max) in &atoms {
            let reps = rng.gen_range(*min..=*max);
            for _ in 0..reps {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Parse a regex subset into (alternatives, min_reps, max_reps) atoms.
fn parse_regex_atoms(pattern: &str) -> Vec<(Vec<char>, u32, u32)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alternatives = if chars[i] == '[' {
            let close = chars[i..].iter().position(|&c| c == ']').map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated [ in regex strategy {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    for c in chars[j]..=chars[j + 2] {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            assert!(!set.is_empty(), "empty class in regex strategy {pattern:?}");
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated {{ in regex strategy {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        atoms.push((alternatives, min, max));
    }
    atoms
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut ChaCha12Rng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A/0, B/1);
tuple_strategy!(A/0, B/1, C/2);
tuple_strategy!(A/0, B/1, C/2, D/3);
tuple_strategy!(A/0, B/1, C/2, D/3, E/4);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Length bound accepted by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Minimum length, inclusive.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max: usize,
    }

    /// Conversions into [`SizeRange`].
    pub trait IntoSizeRange {
        /// Convert.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange { min: self, max: self }
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start < self.end, "empty size range");
            SizeRange { min: self.start, max: self.end - 1 }
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> SizeRange {
            SizeRange { min: *self.start(), max: *self.end() }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, size: size.into_size_range() }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut ChaCha12Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::*;

    /// Strategy choosing uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: no options");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut ChaCha12Rng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Drives the generated cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    rng: ChaCha12Rng,
    cases: u32,
}

impl TestRunner {
    /// Create the runner for a named test; the name seeds the generator,
    /// so each test's case sequence is stable run to run.
    pub fn new(test_name: &str) -> TestRunner {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in test_name.as_bytes() {
            seed = (seed ^ *b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRunner { rng: ChaCha12Rng::seed_from_u64(seed), cases: default_cases() }
    }

    /// Number of accepted cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG strategies draw from.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }

    /// Run `body` until `cases` inputs were accepted; panics on failure.
    pub fn run<F>(&mut self, test_name: &str, mut body: F)
    where
        F: FnMut(&mut ChaCha12Rng) -> Result<(), TestCaseError>,
    {
        let cases = self.cases;
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        let max_attempts = cases.saturating_mul(20).max(1000);
        while accepted < cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "{test_name}: gave up after {attempts} attempts \
                     ({accepted}/{cases} cases accepted) — prop_assume! rejects too much"
                );
            }
            match body(&mut self.rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(message)) => {
                    panic!("{test_name}: property failed at case {accepted}: {message}")
                }
            }
        }
    }
}

fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Everything the workspace's test files import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError, TestRunner,
    };

    /// The `prop::` namespace (`prop::collection::vec`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner = $crate::TestRunner::new(stringify!($name));
                __runner.run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), __rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), __l
        );
    }};
}

/// Reject the current inputs; the runner draws fresh ones without
/// counting the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -4i8..=4, z in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&z), "z out of range: {z}");
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0u8..=255, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn select_picks_members(s in prop::sample::select(vec!["a", "b", "c"])) {
            prop_assert!(["a", "b", "c"].contains(&s));
        }

        #[test]
        fn regex_strategy_matches_subset(s in "[DU]{0,8}S[a-c]+x?") {
            let stripped: String =
                s.chars().filter(|c| !matches!(c, 'D' | 'U' | 'a'..='c' | 'x')).collect();
            prop_assert_eq!(stripped, "S".to_string());
            prop_assert!(s.contains('S'));
        }

        #[test]
        fn assume_rejects(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::TestRunner::new("some_test");
        let mut b = crate::TestRunner::new("some_test");
        let sa: Vec<u64> = (0..8).map(|_| (0u64..1000).sample(a.rng())).collect();
        let sb: Vec<u64> = (0..8).map(|_| (0u64..1000).sample(b.rng())).collect();
        assert_eq!(sa, sb);
        let mut c = crate::TestRunner::new("other_test");
        let sc: Vec<u64> = (0..8).map(|_| (0u64..1000).sample(c.rng())).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_context() {
        let mut runner = crate::TestRunner::new("failing");
        runner.run("failing", |_rng| {
            crate::prop_assert!(1 == 2);
            Ok(())
        });
    }
}
