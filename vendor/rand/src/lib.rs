#![warn(missing_docs)]

//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no network access and an empty cargo registry,
//! so the workspace vendors the small API subset it actually consumes:
//! [`RngCore`], [`SeedableRng`] (with the SplitMix64 `seed_from_u64`
//! expansion), and the [`Rng`] extension trait providing `gen`,
//! `gen_range` and `gen_bool`. Streams are deterministic and stable:
//! this crate is pinned by path, so figure regeneration can never be
//! perturbed by an upstream algorithm change.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it through SplitMix64
    /// (the same construction `rand_core` documents): cheap, and distinct
    /// inputs give well-separated seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i8
    }
}
impl Standard for i16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i16
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 31) == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the `rand` 0.8
    /// `Standard` construction: high 53 bits of a `u64`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "gen_range: empty range");
        self.start + <f64 as Standard>::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + <f32 as Standard>::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as $wide).wrapping_add(draw as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type uniformly (ints over their full
    /// domain, floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x = rng.gen_range(2.5f64..9.75);
            assert!((2.5..9.75).contains(&x));
            let n = rng.gen_range(-4i8..=6);
            assert!((-4..=6).contains(&n));
            let u = rng.gen_range(10u64..11);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
