#![warn(missing_docs)]

//! Offline vendored micro-benchmark harness.
//!
//! Implements the `criterion` API shape the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with throughput annotation, `iter`/`iter_batched` —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery: warm up, calibrate an iteration count to a
//! target measurement window, report mean time per iteration (and
//! throughput when annotated).
//!
//! Output format: one line per benchmark,
//! `name                time: 12.345 µs/iter (81.0 Kelem/s)`.

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimiser from deleting benchmarked
/// work (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1000);

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per measurement in
/// [`Bencher::iter_batched`] (accepted for API compatibility; the shim
/// always runs setup per iteration, off the clock).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Measure one closure under `name`.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), None, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_override: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and annotations.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput; subsequent benches report a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for criterion compatibility; the shim sizes its own
    /// measurement window.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_override = Some(samples);
        self
    }

    /// Measure one closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_bench(&full, self.throughput, self.sample_override, &mut f);
        self
    }

    /// Finish the group (printing is immediate; provided for API shape).
    pub fn finish(self) {}
}

/// Measurement state for one benchmark: drives the timed loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup`; setup runs off the
    /// clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    sample_override: Option<usize>,
    f: &mut F,
) {
    // Calibration: run single iterations until the warmup window elapses
    // to estimate per-iteration cost.
    let calibration_start = Instant::now();
    let mut calibration_iters = 0u64;
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    while calibration_start.elapsed() < WARMUP {
        f(&mut bencher);
        calibration_iters += 1;
        // Very slow benchmarks: one call may already exceed the window.
        if bencher.elapsed > MEASURE {
            report(name, bencher.elapsed, 1, throughput);
            return;
        }
    }
    let per_iter = calibration_start.elapsed() / calibration_iters.max(1) as u32;

    // Measurement: one batch sized to fill the measurement window.
    let mut iters = if per_iter.is_zero() {
        1_000_000
    } else {
        (MEASURE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000_000) as u64
    };
    if let Some(samples) = sample_override {
        iters = iters.min(samples.max(1) as u64 * 4);
    }
    bencher.iters = iters;
    f(&mut bencher);
    report(name, bencher.elapsed, iters, throughput);
}

fn report(name: &str, elapsed: Duration, iters: u64, throughput: Option<Throughput>) {
    let nanos_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    let rate = throughput.map(|t| {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (nanos_per_iter / 1e9);
        format!(" ({}{unit}/s)", si(per_sec))
    });
    println!(
        "{name:<48} time: {}/iter{}",
        fmt_ns(nanos_per_iter),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} K", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Define a benchmark group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher { iters: 100, elapsed: Duration::ZERO };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 100);
        assert!(b.elapsed > Duration::ZERO || count == 100);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                setups
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 10);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.340 µs");
        assert!(si(2.5e6).starts_with("2.50 M"));
    }
}
