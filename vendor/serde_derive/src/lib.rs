//! Offline vendored `#[derive(Serialize, Deserialize)]`.
//!
//! Generates impls of the vendored `serde` façade's value-tree traits.
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are equally unavailable offline). Supports exactly the shapes
//! this workspace declares:
//!
//! * structs with named fields,
//! * tuple structs (newtype style),
//! * enums of unit variants and struct variants.
//!
//! Generics and `#[serde(...)]` attributes are not used anywhere in the
//! workspace and are rejected with a compile error rather than silently
//! mis-serialised. The JSON shape matches serde's defaults: named structs
//! as objects in declaration order, newtypes as their inner value, unit
//! variants as strings, struct variants as `{"Variant": {fields...}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one derive input parsed into.
enum Input {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with N fields.
    Tuple { name: String, arity: usize },
    /// Enum of unit and struct variants.
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` for a unit variant, field names for a struct variant.
    fields: Option<Vec<String>>,
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive: generated code failed to tokenise"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("serde_derive: unsupported item `{other}`")),
    };
    let name = expect_ident(&tokens, &mut pos)?;

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: `{name}` is generic; the vendored derive supports only concrete types"
        ));
    }

    let body = match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            let arity = count_tuple_fields(g.stream());
            return Ok(Input::Tuple { name, arity });
        }
        other => {
            return Err(format!(
                "serde_derive: expected body for `{name}`, found {other:?}"
            ))
        }
    };

    if is_enum {
        Ok(Input::Enum { name, variants: parse_variants(body)? })
    } else {
        Ok(Input::Struct { name, fields: parse_named_fields(body)? })
    }
}

/// Skip any number of `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // pub(crate), pub(super), …
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!("serde_derive: expected identifier, found {other:?}")),
    }
}

/// Field names of a named-field body: `[attrs] [vis] name: Type, ...`.
/// Commas inside `<...>` generic arguments are skipped by depth-counting
/// angle punctuation; tuples/arrays arrive as single groups already.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut pos)?;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "serde_derive: expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        pos += 1;
                        break;
                    }
                    _ => {}
                }
            }
            pos += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct body (top-level comma count).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth = 0i32;
    let mut fields = 1;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => fields += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount; the workspace's newtypes never
    // have one, but be safe.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        fields -= 1;
    }
    fields
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos)?;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream())?;
                pos += 1;
                Some(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde_derive: tuple variant `{name}` unsupported by the vendored derive"
                ));
            }
            _ => None,
        };
        // Skip an optional discriminant, then the separating comma.
        while let Some(tok) = tokens.get(pos) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::with_capacity({len});\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}\n",
                len = fields.len(),
            )
        }
        Input::Tuple { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}\n"
            )
        }
        Input::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                        ),
                        Some(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push(({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                                         = ::std::vec::Vec::with_capacity({len});\n\
                                     {pushes}\
                                     ::serde::Value::Object(vec![({vname:?}.to_string(), \
                                         ::serde::Value::Object(__inner))])\n\
                                 }}\n",
                                len = fields.len(),
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__obj, {f:?}, {name:?})?,\n"))
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", __v, {name:?}))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}\n"
            )
        }
        Input::Tuple { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                )
            } else {
                let gets: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __v.as_array().ok_or_else(|| \
                         ::serde::DeError::expected(\"array\", __v, {name:?}))?;\n\
                     if __items.len() != {arity} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::msg(\
                             format!(\"expected {arity} elements for {name}\")));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({gets}))",
                    gets = gets.join(", "),
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}\n"
            )
        }
        Input::Enum { name, variants } => {
            let has_unit = variants.iter().any(|v| v.fields.is_none());
            let has_struct = variants.iter().any(|v| v.fields.is_some());
            let mut outer_arms = String::new();
            if has_unit {
                let unit_arms: String = variants
                    .iter()
                    .filter(|v| v.fields.is_none())
                    .map(|v| {
                        let vname = &v.name;
                        format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n")
                    })
                    .collect();
                outer_arms.push_str(&format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::msg(\
                             format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n"
                ));
            }
            if has_struct {
                let struct_arms: String = variants
                    .iter()
                    .filter_map(|v| v.fields.as_ref().map(|fields| (&v.name, fields)))
                    .map(|(vname, fields)| {
                        let ctx = format!("{name}::{vname}");
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__inner, {f:?}, {ctx:?})?,\n"))
                            .collect();
                        format!(
                            "{vname:?} => {{\n\
                                 let __inner = __val.as_object().ok_or_else(|| \
                                     ::serde::DeError::expected(\"object\", __val, {ctx:?}))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                             }}\n"
                        )
                    })
                    .collect();
                outer_arms.push_str(&format!(
                    "::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __val) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {struct_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::msg(\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n"
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             {outer_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::expected(\
                                 \"enum variant\", __other, {name:?})),\n\
                         }}\n\
                     }}\n\
                 }}\n"
            )
        }
    }
}
