#![warn(missing_docs)]

//! Offline vendored ChaCha12 random number generator.
//!
//! A straight scalar implementation of the ChaCha stream cipher core
//! (RFC 8439 quarter-round, 12 rounds) driving the workspace's vendored
//! [`rand::RngCore`] trait. The generator is deterministic, `Clone`,
//! comparable, and stable by construction: it lives in-tree, so the
//! labelled seed streams that every figure depends on can never shift
//! under a dependency upgrade.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 12;

/// A ChaCha stream cipher RNG with 12 rounds — the workspace's only
/// randomness source (see `radio_channel::rng::SeedTree`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha12Rng {
    /// Cipher input block: constants, 8 key words, 64-bit counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

/// One RFC 8439 quarter-round on four word variables. A macro over locals
/// (rather than a function over `&mut [u32; 16]` with index parameters)
/// keeps the whole working state in registers — the round function output
/// is identical, only the codegen improves.
macro_rules! quarter_round {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(16);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(12);
        $a = $a.wrapping_add($b);
        $d = ($d ^ $a).rotate_left(8);
        $c = $c.wrapping_add($d);
        $b = ($b ^ $c).rotate_left(7);
    };
}

impl ChaCha12Rng {
    /// Refill the keystream buffer from the current state block.
    ///
    /// On x86-64 the block function runs on SSE2 vectors (baseline for the
    /// architecture, no feature detection needed); elsewhere it falls back
    /// to the scalar rounds. Both produce the RFC 8439 keystream, so the
    /// generated words are identical bit-for-bit across paths.
    fn refill(&mut self) {
        #[cfg(target_arch = "x86_64")]
        {
            self.refill_sse2();
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.refill_scalar();
        }
    }

    /// The ChaCha block function on SSE2 rows: one 128-bit vector per
    /// 4-word row, diagonalised between column and diagonal rounds with
    /// lane shuffles — the standard single-block SIMD formulation.
    #[cfg(target_arch = "x86_64")]
    fn refill_sse2(&mut self) {
        use std::arch::x86_64::{
            __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_or_si128, _mm_shuffle_epi32,
            _mm_slli_epi32, _mm_srli_epi32, _mm_storeu_si128, _mm_xor_si128,
        };

        #[inline(always)]
        unsafe fn rotl<const N: i32, const INV: i32>(x: __m128i) -> __m128i {
            _mm_or_si128(_mm_slli_epi32(x, N), _mm_srli_epi32(x, INV))
        }

        // SAFETY: SSE2 is part of the x86-64 baseline ABI; the loads and
        // stores go through unaligned intrinsics on plain `u32` arrays.
        unsafe {
            let p = self.state.as_ptr().cast::<__m128i>();
            let (row_a, row_b, row_c, row_d) = (
                _mm_loadu_si128(p),
                _mm_loadu_si128(p.add(1)),
                _mm_loadu_si128(p.add(2)),
                _mm_loadu_si128(p.add(3)),
            );
            let (mut a, mut b, mut c, mut d) = (row_a, row_b, row_c, row_d);
            for _ in 0..ROUNDS / 2 {
                // Column round on the four rows.
                a = _mm_add_epi32(a, b);
                d = rotl::<16, 16>(_mm_xor_si128(d, a));
                c = _mm_add_epi32(c, d);
                b = rotl::<12, 20>(_mm_xor_si128(b, c));
                a = _mm_add_epi32(a, b);
                d = rotl::<8, 24>(_mm_xor_si128(d, a));
                c = _mm_add_epi32(c, d);
                b = rotl::<7, 25>(_mm_xor_si128(b, c));
                // Diagonalise: rotate row lanes so the diagonal round is
                // another column round.
                b = _mm_shuffle_epi32(b, 0b00_11_10_01);
                c = _mm_shuffle_epi32(c, 0b01_00_11_10);
                d = _mm_shuffle_epi32(d, 0b10_01_00_11);
                // Diagonal round.
                a = _mm_add_epi32(a, b);
                d = rotl::<16, 16>(_mm_xor_si128(d, a));
                c = _mm_add_epi32(c, d);
                b = rotl::<12, 20>(_mm_xor_si128(b, c));
                a = _mm_add_epi32(a, b);
                d = rotl::<8, 24>(_mm_xor_si128(d, a));
                c = _mm_add_epi32(c, d);
                b = rotl::<7, 25>(_mm_xor_si128(b, c));
                // Un-diagonalise.
                b = _mm_shuffle_epi32(b, 0b10_01_00_11);
                c = _mm_shuffle_epi32(c, 0b01_00_11_10);
                d = _mm_shuffle_epi32(d, 0b00_11_10_01);
            }
            let q = self.buffer.as_mut_ptr().cast::<__m128i>();
            _mm_storeu_si128(q, _mm_add_epi32(a, row_a));
            _mm_storeu_si128(q.add(1), _mm_add_epi32(b, row_b));
            _mm_storeu_si128(q.add(2), _mm_add_epi32(c, row_c));
            _mm_storeu_si128(q.add(3), _mm_add_epi32(d, row_d));
        }
        // 64-bit block counter in words 12..13.
        let counter =
            (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// The scalar ChaCha block function (portable fallback; also the
    /// reference the SSE2 path is tested against).
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    fn refill_scalar(&mut self) {
        let [s0, s1, s2, s3, s4, s5, s6, s7, s8, s9, s10, s11, s12, s13, s14, s15] = self.state;
        let (mut x0, mut x1, mut x2, mut x3) = (s0, s1, s2, s3);
        let (mut x4, mut x5, mut x6, mut x7) = (s4, s5, s6, s7);
        let (mut x8, mut x9, mut x10, mut x11) = (s8, s9, s10, s11);
        let (mut x12, mut x13, mut x14, mut x15) = (s12, s13, s14, s15);
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round!(x0, x4, x8, x12);
            quarter_round!(x1, x5, x9, x13);
            quarter_round!(x2, x6, x10, x14);
            quarter_round!(x3, x7, x11, x15);
            // Diagonal round.
            quarter_round!(x0, x5, x10, x15);
            quarter_round!(x1, x6, x11, x12);
            quarter_round!(x2, x7, x8, x13);
            quarter_round!(x3, x4, x9, x14);
        }
        self.buffer = [
            x0.wrapping_add(s0),
            x1.wrapping_add(s1),
            x2.wrapping_add(s2),
            x3.wrapping_add(s3),
            x4.wrapping_add(s4),
            x5.wrapping_add(s5),
            x6.wrapping_add(s6),
            x7.wrapping_add(s7),
            x8.wrapping_add(s8),
            x9.wrapping_add(s9),
            x10.wrapping_add(s10),
            x11.wrapping_add(s11),
            x12.wrapping_add(s12),
            x13.wrapping_add(s13),
            x14.wrapping_add(s14),
            x15.wrapping_add(s15),
        ];
        // 64-bit block counter in words 12..13.
        let counter = (s12 as u64 | ((s13 as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// The 64-bit block counter (diagnostic; mainly for tests).
    pub fn block_counter(&self) -> u64 {
        self.state[12] as u64 | ((self.state[13] as u64) << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..15 (counter + nonce) start at zero.
        ChaCha12Rng { state, buffer: [0; BLOCK_WORDS], index: BLOCK_WORDS }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same <= 1, "{same} of 64 words collide across seeds");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        assert_eq!(rng.block_counter(), 2);
    }

    #[test]
    fn uniform_floats_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(2024);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_block_matches_scalar() {
        for seed in 0..32u64 {
            let mut simd = ChaCha12Rng::seed_from_u64(seed);
            let mut scalar = ChaCha12Rng::seed_from_u64(seed);
            for _ in 0..8 {
                simd.refill_sse2();
                scalar.refill_scalar();
                assert_eq!(simd.buffer, scalar.buffer, "seed {seed}");
                assert_eq!(simd.state, scalar.state, "seed {seed}");
            }
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let _ = rng.next_u64();
        let mut snap = rng.clone();
        assert_eq!(rng.next_u64(), snap.next_u64());
    }
}
