#![warn(missing_docs)]

//! Offline vendored ChaCha12 random number generator.
//!
//! A straight scalar implementation of the ChaCha stream cipher core
//! (RFC 8439 quarter-round, 12 rounds) driving the workspace's vendored
//! [`rand::RngCore`] trait. The generator is deterministic, `Clone`,
//! comparable, and stable by construction: it lives in-tree, so the
//! labelled seed streams that every figure depends on can never shift
//! under a dependency upgrade.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const ROUNDS: usize = 12;

/// A ChaCha stream cipher RNG with 12 rounds — the workspace's only
/// randomness source (see `radio_channel::rng::SeedTree`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha12Rng {
    /// Cipher input block: constants, 8 key words, 64-bit counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in
            self.buffer.iter_mut().zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    /// The 64-bit block counter (diagnostic; mainly for tests).
    pub fn block_counter(&self) -> u64 {
        self.state[12] as u64 | ((self.state[13] as u64) << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..15 (counter + nonce) start at zero.
        ChaCha12Rng { state, buffer: [0; BLOCK_WORDS], index: BLOCK_WORDS }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same <= 1, "{same} of 64 words collide across seeds");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        assert_eq!(rng.block_counter(), 2);
    }

    #[test]
    fn uniform_floats_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(2024);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let _ = rng.next_u64();
        let mut snap = rng.clone();
        assert_eq!(rng.next_u64(), snap.next_u64());
    }
}
