#![warn(missing_docs)]

//! Offline vendored serde façade.
//!
//! The build container has no registry access, so the workspace vendors a
//! compact serialisation framework exposing the same surface its code
//! uses: `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` (via the companion `serde_derive`
//! proc-macro), consumed by the vendored `serde_json`.
//!
//! Instead of real serde's visitor architecture, both traits go through a
//! single explicit [`Value`] tree. Object fields keep **declaration
//! order** (a `Vec`, not a map), so encodings are canonical and
//! byte-stable — the property the workspace's determinism harness
//! (`tests/determinism.rs`) asserts on.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with fields in declaration/insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// View as an object's field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// View as an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the serialised value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Fallback when a struct field is absent. `None` means "required"
    /// (an error); `Option<T>` overrides this to fill in `None`, matching
    /// serde's treatment of optional fields.
    fn absent() -> Option<Self> {
        None
    }
}

/// Deserialisation error: what was expected, what was found, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A free-form error.
    pub fn msg(message: impl Into<String>) -> DeError {
        DeError { message: message.into() }
    }

    /// "expected X, found Y while reading Z".
    pub fn expected(what: &str, found: &Value, context: &str) -> DeError {
        DeError::msg(format!("expected {what}, found {} while reading {context}", found.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Look up a struct field by name during derived deserialisation,
/// falling back to [`Deserialize::absent`] when missing.
pub fn field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    context: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError::msg(format!("{context}.{name}: {e}"))),
        None => T::absent()
            .ok_or_else(|| DeError::msg(format!("missing field `{name}` in {context}"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 { Value::I64(wide as i64) } else { Value::U64(wide) }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other, stringify!($t))),
                }
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other, "bool")),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other, "f64")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other, "String")),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other, "char")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other, "Vec")),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array().ok_or_else(|| DeError::expected("array", value, "array"))?;
        if items.len() != N {
            return Err(DeError::msg(format!("expected {N} elements, got {}", items.len())));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::msg("array length mismatch after parse"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", value, "tuple")),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::expected("3-element array", value, "tuple")),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&18446744073709551615u64.to_value()).unwrap(), u64::MAX);
        assert_eq!(i8::from_value(&(-5i8).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(<Option<u8>>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(<Vec<(f64, f64)>>::from_value(&v.to_value()).unwrap(), v);
        let arr = [9u32, 8, 7];
        assert_eq!(<[u32; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn absent_option_fields_fill_none() {
        let fields: Vec<(String, Value)> = vec![];
        let got: Option<u32> = field(&fields, "missing", "Test").unwrap();
        assert_eq!(got, None);
        assert!(field::<u32>(&fields, "missing", "Test").is_err());
    }

    #[test]
    fn object_field_order_is_preserved() {
        let obj = Value::Object(vec![
            ("z".into(), Value::I64(1)),
            ("a".into(), Value::I64(2)),
        ]);
        let keys: Vec<&str> =
            obj.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
