#![warn(missing_docs)]

//! Offline vendored JSON for the vendored `serde` façade.
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — over [`serde::Value`].
//!
//! Encoding is **canonical**: object fields serialise in declaration
//! order, floats through Rust's shortest-roundtrip `Display`, so equal
//! values always produce byte-identical text. The determinism harness
//! (`tests/determinism.rs`) leans on this to byte-compare parallel and
//! sequential campaign output.

use serde::{DeError, Deserialize, Serialize, Value};

/// JSON encode/decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise a value to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let mut buf = itoa_buffer();
            out.push_str(write_display(&mut buf, n));
        }
        Value::U64(n) => {
            let mut buf = itoa_buffer();
            out.push_str(write_display(&mut buf, n));
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn itoa_buffer() -> String {
    String::with_capacity(24)
}

fn write_display<T: std::fmt::Display>(buf: &mut String, value: T) -> &str {
    use std::fmt::Write;
    let _ = write!(buf, "{value}");
    buf
}

/// Floats print via Rust's shortest-roundtrip `Display`, with a `.0`
/// appended to integral values so they re-parse as floats (serde_json's
/// convention). Non-finite values have no JSON representation; like
/// `JSON.stringify`, they encode as `null` (and decode to NaN).
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    use std::fmt::Write;
    let _ = write!(out, "{x}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos.saturating_sub(1),
                got.map(|g| g as char)
            ))),
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((code - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::new(format!(
                            "invalid escape {:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    if byte < 0x80 {
                        out.push(byte as char);
                    } else {
                        let len = utf8_len(byte);
                        let start = self.pos - 1;
                        self.pos = (start + len).min(self.bytes.len());
                        let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                        out.push_str(chunk);
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| Error::new("invalid \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            // Overflowing integer literals degrade to float, like serde_json
            // with arbitrary_precision off.
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&u64::MAX).unwrap(), "18446744073709551615");
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("-1.25e2").unwrap(), -125.0);
    }

    #[test]
    fn float_text_is_shortest_roundtrip() {
        for x in [0.1f64, 1.0 / 3.0, 743.05, 1e-12, -0.0, 6.25] {
            let text = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap().to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let tricky = "O_Sp[90] \"quoted\" back\\slash\nnewline\ttab é™…".to_string();
        let text = to_string(&tricky).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), tricky);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(f64, f64)> = vec![(1.5, -2.5), (0.0, 3.25)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1.5,-2.5],[0.0,3.25]]");
        assert_eq!(from_str::<Vec<(f64, f64)>>(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![
            ("a".into(), Value::I64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn compact_encoding_is_canonical() {
        let v = Value::Object(vec![("x".into(), Value::F64(0.5))]);
        assert_eq!(to_string(&v).unwrap(), to_string(&v.clone()).unwrap());
        assert_eq!(to_string(&v).unwrap(), "{\"x\":0.5}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
    }
}
