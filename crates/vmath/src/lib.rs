#![warn(missing_docs)]
// Coefficient tables are transcribed digit-for-digit from fdlibm/musl and
// the minimax fits that produced them; truncating to the shortest f64
// spelling would obscure the provenance diff, so the extra digits stay.
#![allow(clippy::excessive_precision)]

//! Repo-owned transcendental kernels with bit-identical scalar/SSE2/AVX2 arms.
//!
//! The slot loop's hot math is dominated by a handful of transcendentals:
//! `ln`/`cos` inside the Box–Muller gaussian behind every AR(1) shadowing
//! and fading innovation, `10^x`/`log10` in the dBm↔mW conversions of the
//! SINR computation, `exp` in the 38.901 LOS probability and the BLER
//! waterfall, and `log2` in the Shannon SINR→CQI mapping. Calling libm for
//! each keeps every value scalar; this crate re-implements exactly the
//! functions the model needs so they can be evaluated a whole lane-set at
//! a time.
//!
//! # Equivalence contract
//!
//! Every kernel is written once as a sequence of IEEE-754 primitive
//! operations (add/sub/mul/div/sqrt, comparisons, bitwise moves) over an
//! abstract lane set, and instantiated for three arms: scalar `f64`,
//! SSE2 `__m128d` and AVX2 `__m256d`. Because each primitive is exactly
//! rounded and propagates NaNs identically in its scalar and packed
//! encodings on x86-64, the three arms produce **bit-identical results
//! for every input bit pattern** — including NaNs, infinities, negatives
//! and denormals. No FMA is ever used (SSE2 has none, and contracting
//! `a*b+c` would change results between arms). The proptests in
//! `tests/equivalence.rs` pin this over arbitrary bit patterns and ragged
//! slice lengths; the same guarantee is what lets the radio model batch
//! draws ahead of time (gaussian tiles) while staying byte-identical to
//! its scalar reference lanes.
//!
//! Accuracy is within ~1–2 ulp of the correctly-rounded value across each
//! kernel's domain — these functions *define* the model's math (the repo
//! retired libm from the hot path in the same PR that introduced them),
//! so cross-arm identity rather than correct rounding is the contract.
//!
//! # Dispatch
//!
//! [`active_arm`] picks the widest available arm once per process:
//! AVX2 when detected, else SSE2 (always present on x86-64), else scalar.
//! `MIDBAND5G_SIMD=0|off|scalar` forces the scalar arm (the CI fallback
//! job), `MIDBAND5G_SIMD=sse2` caps dispatch at SSE2. Slice entry points
//! also exist as `*_slice_with(arm, ..)` so tests can drive every arm
//! explicitly regardless of the environment.

use std::sync::OnceLock;

/// Which kernel arm the slice entry points execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// Plain `f64` operations — the reference arm, available everywhere.
    Scalar,
    /// 2-lane `__m128d` (baseline on x86-64).
    Sse2,
    /// 4-lane `__m256d` (runtime-detected).
    Avx2,
}

static ARM: OnceLock<Arm> = OnceLock::new();

fn detect_arm() -> Arm {
    let forced = std::env::var("MIDBAND5G_SIMD").ok();
    let cap = match forced.as_deref() {
        Some("0") | Some("off") | Some("scalar") => return Arm::Scalar,
        Some("sse2") => Arm::Sse2,
        _ => Arm::Avx2,
    };
    #[cfg(target_arch = "x86_64")]
    {
        if cap == Arm::Avx2 && std::arch::is_x86_feature_detected!("avx2") {
            Arm::Avx2
        } else {
            Arm::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = cap;
        Arm::Scalar
    }
}

/// The arm the process dispatches to (decided once, then cached).
pub fn active_arm() -> Arm {
    *ARM.get_or_init(detect_arm)
}

/// Every arm that can execute on this machine (always includes
/// [`Arm::Scalar`]). Equivalence tests iterate this.
pub fn available_arms() -> &'static [Arm] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            &[Arm::Scalar, Arm::Sse2, Arm::Avx2]
        } else {
            &[Arm::Scalar, Arm::Sse2]
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[Arm::Scalar]
    }
}

// ---------------------------------------------------------------------------
// Lane-set abstraction
// ---------------------------------------------------------------------------

/// One arm's lane set: `WIDTH` f64 lanes (`F`) with a same-width integer
/// view (`I`). Every method is a single IEEE-754 or bitwise primitive
/// whose scalar and packed x86 encodings agree bit-for-bit (including
/// NaN propagation and min/max NaN/±0 semantics), which is what makes
/// the kernels arm-identical by construction.
trait Lanes {
    type F: Copy;
    type I: Copy;
    const WIDTH: usize;
    unsafe fn splat(x: f64) -> Self::F;
    unsafe fn isplat(x: u64) -> Self::I;
    unsafe fn isplat32(x: u32) -> Self::I;
    unsafe fn load(p: *const f64) -> Self::F;
    unsafe fn store(p: *mut f64, v: Self::F);
    unsafe fn add(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn sub(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn mul(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn div(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn sqrt(a: Self::F) -> Self::F;
    /// x86 `minpd` semantics: `if a < b { a } else { b }` (NaN → b).
    unsafe fn min(a: Self::F, b: Self::F) -> Self::F;
    /// x86 `maxpd` semantics: `if a > b { a } else { b }` (NaN → b).
    unsafe fn max(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn lt(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn gt(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn eq(a: Self::F, b: Self::F) -> Self::F;
    /// Unordered not-equal: true when either operand is NaN.
    unsafe fn ne(a: Self::F, b: Self::F) -> Self::F;
    /// Bitwise select: `(a & m) | (b & !m)` with an all-ones/all-zeros mask.
    unsafe fn select(m: Self::F, a: Self::F, b: Self::F) -> Self::F;
    unsafe fn bits(a: Self::F) -> Self::I;
    unsafe fn from_bits(a: Self::I) -> Self::F;
    unsafe fn and(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn or(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn xor_f(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn and_f(a: Self::F, b: Self::F) -> Self::F;
    unsafe fn isub64(a: Self::I, b: Self::I) -> Self::I;
    /// Per-32-bit-lane wrapping add (`paddd`).
    unsafe fn iadd32(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn isub32(a: Self::I, b: Self::I) -> Self::I;
    unsafe fn shr64<const N: i32>(a: Self::I) -> Self::I;
    unsafe fn shl64<const N: i32>(a: Self::I) -> Self::I;
    unsafe fn shl32<const N: i32>(a: Self::I) -> Self::I;
    unsafe fn sar32<const N: i32>(a: Self::I) -> Self::I;
    /// Duplicate each 64-bit lane's low dword into its high dword
    /// (`pshufd` with 0b10100000) — widens a 32-bit mask to 64 bits.
    unsafe fn dup_even(a: Self::I) -> Self::I;
}

struct ScalarArm;

#[inline(always)]
fn scalar_mask(c: bool) -> f64 {
    if c {
        f64::from_bits(u64::MAX)
    } else {
        f64::from_bits(0)
    }
}

#[inline(always)]
fn per_dword(a: u64, b: u64, f: impl Fn(u32, u32) -> u32) -> u64 {
    let lo = f(a as u32, b as u32) as u64;
    let hi = f((a >> 32) as u32, (b >> 32) as u32) as u64;
    (hi << 32) | lo
}

impl Lanes for ScalarArm {
    type F = f64;
    type I = u64;
    const WIDTH: usize = 1;
    #[inline(always)]
    unsafe fn splat(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    unsafe fn isplat(x: u64) -> u64 {
        x
    }
    #[inline(always)]
    unsafe fn isplat32(x: u32) -> u64 {
        ((x as u64) << 32) | x as u64
    }
    #[inline(always)]
    unsafe fn load(p: *const f64) -> f64 {
        *p
    }
    #[inline(always)]
    unsafe fn store(p: *mut f64, v: f64) {
        *p = v;
    }
    #[inline(always)]
    unsafe fn add(a: f64, b: f64) -> f64 {
        a + b
    }
    #[inline(always)]
    unsafe fn sub(a: f64, b: f64) -> f64 {
        a - b
    }
    #[inline(always)]
    unsafe fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
    #[inline(always)]
    unsafe fn div(a: f64, b: f64) -> f64 {
        a / b
    }
    #[inline(always)]
    unsafe fn sqrt(a: f64) -> f64 {
        a.sqrt()
    }
    #[inline(always)]
    unsafe fn min(a: f64, b: f64) -> f64 {
        // NOT f64::min: minpd returns b whenever the comparison is false,
        // including on NaN, and that is the semantics all arms share.
        if a < b {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    unsafe fn max(a: f64, b: f64) -> f64 {
        if a > b {
            a
        } else {
            b
        }
    }
    #[inline(always)]
    unsafe fn lt(a: f64, b: f64) -> f64 {
        scalar_mask(a < b)
    }
    #[inline(always)]
    unsafe fn gt(a: f64, b: f64) -> f64 {
        scalar_mask(a > b)
    }
    #[inline(always)]
    unsafe fn eq(a: f64, b: f64) -> f64 {
        scalar_mask(a == b)
    }
    #[inline(always)]
    unsafe fn ne(a: f64, b: f64) -> f64 {
        scalar_mask(a != b)
    }
    #[inline(always)]
    unsafe fn select(m: f64, a: f64, b: f64) -> f64 {
        f64::from_bits((a.to_bits() & m.to_bits()) | (b.to_bits() & !m.to_bits()))
    }
    #[inline(always)]
    unsafe fn bits(a: f64) -> u64 {
        a.to_bits()
    }
    #[inline(always)]
    unsafe fn from_bits(a: u64) -> f64 {
        f64::from_bits(a)
    }
    #[inline(always)]
    unsafe fn and(a: u64, b: u64) -> u64 {
        a & b
    }
    #[inline(always)]
    unsafe fn or(a: u64, b: u64) -> u64 {
        a | b
    }
    #[inline(always)]
    unsafe fn xor_f(a: f64, b: f64) -> f64 {
        f64::from_bits(a.to_bits() ^ b.to_bits())
    }
    #[inline(always)]
    unsafe fn and_f(a: f64, b: f64) -> f64 {
        f64::from_bits(a.to_bits() & b.to_bits())
    }
    #[inline(always)]
    unsafe fn isub64(a: u64, b: u64) -> u64 {
        a.wrapping_sub(b)
    }
    #[inline(always)]
    unsafe fn iadd32(a: u64, b: u64) -> u64 {
        per_dword(a, b, |x, y| x.wrapping_add(y))
    }
    #[inline(always)]
    unsafe fn isub32(a: u64, b: u64) -> u64 {
        per_dword(a, b, |x, y| x.wrapping_sub(y))
    }
    #[inline(always)]
    unsafe fn shr64<const N: i32>(a: u64) -> u64 {
        a >> N
    }
    #[inline(always)]
    unsafe fn shl64<const N: i32>(a: u64) -> u64 {
        a << N
    }
    #[inline(always)]
    unsafe fn shl32<const N: i32>(a: u64) -> u64 {
        per_dword(a, 0, |x, _| x << N)
    }
    #[inline(always)]
    unsafe fn sar32<const N: i32>(a: u64) -> u64 {
        per_dword(a, 0, |x, _| ((x as i32) >> N) as u32)
    }
    #[inline(always)]
    unsafe fn dup_even(a: u64) -> u64 {
        let lo = a as u32 as u64;
        (lo << 32) | lo
    }
}

#[cfg(target_arch = "x86_64")]
mod x86_arms {
    use super::Lanes;
    use std::arch::x86_64::*;

    pub(super) struct Sse2Arm;

    impl Lanes for Sse2Arm {
        type F = __m128d;
        type I = __m128i;
        const WIDTH: usize = 2;
        #[inline(always)]
        unsafe fn splat(x: f64) -> __m128d {
            _mm_set1_pd(x)
        }
        #[inline(always)]
        unsafe fn isplat(x: u64) -> __m128i {
            _mm_set1_epi64x(x as i64)
        }
        #[inline(always)]
        unsafe fn isplat32(x: u32) -> __m128i {
            _mm_set1_epi32(x as i32)
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> __m128d {
            _mm_loadu_pd(p)
        }
        #[inline(always)]
        unsafe fn store(p: *mut f64, v: __m128d) {
            _mm_storeu_pd(p, v)
        }
        #[inline(always)]
        unsafe fn add(a: __m128d, b: __m128d) -> __m128d {
            _mm_add_pd(a, b)
        }
        #[inline(always)]
        unsafe fn sub(a: __m128d, b: __m128d) -> __m128d {
            _mm_sub_pd(a, b)
        }
        #[inline(always)]
        unsafe fn mul(a: __m128d, b: __m128d) -> __m128d {
            _mm_mul_pd(a, b)
        }
        #[inline(always)]
        unsafe fn div(a: __m128d, b: __m128d) -> __m128d {
            _mm_div_pd(a, b)
        }
        #[inline(always)]
        unsafe fn sqrt(a: __m128d) -> __m128d {
            _mm_sqrt_pd(a)
        }
        #[inline(always)]
        unsafe fn min(a: __m128d, b: __m128d) -> __m128d {
            _mm_min_pd(a, b)
        }
        #[inline(always)]
        unsafe fn max(a: __m128d, b: __m128d) -> __m128d {
            _mm_max_pd(a, b)
        }
        #[inline(always)]
        unsafe fn lt(a: __m128d, b: __m128d) -> __m128d {
            _mm_cmplt_pd(a, b)
        }
        #[inline(always)]
        unsafe fn gt(a: __m128d, b: __m128d) -> __m128d {
            _mm_cmpgt_pd(a, b)
        }
        #[inline(always)]
        unsafe fn eq(a: __m128d, b: __m128d) -> __m128d {
            _mm_cmpeq_pd(a, b)
        }
        #[inline(always)]
        unsafe fn ne(a: __m128d, b: __m128d) -> __m128d {
            _mm_cmpneq_pd(a, b)
        }
        #[inline(always)]
        unsafe fn select(m: __m128d, a: __m128d, b: __m128d) -> __m128d {
            _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b))
        }
        #[inline(always)]
        unsafe fn bits(a: __m128d) -> __m128i {
            _mm_castpd_si128(a)
        }
        #[inline(always)]
        unsafe fn from_bits(a: __m128i) -> __m128d {
            _mm_castsi128_pd(a)
        }
        #[inline(always)]
        unsafe fn and(a: __m128i, b: __m128i) -> __m128i {
            _mm_and_si128(a, b)
        }
        #[inline(always)]
        unsafe fn or(a: __m128i, b: __m128i) -> __m128i {
            _mm_or_si128(a, b)
        }
        #[inline(always)]
        unsafe fn xor_f(a: __m128d, b: __m128d) -> __m128d {
            _mm_xor_pd(a, b)
        }
        #[inline(always)]
        unsafe fn and_f(a: __m128d, b: __m128d) -> __m128d {
            _mm_and_pd(a, b)
        }
        #[inline(always)]
        unsafe fn isub64(a: __m128i, b: __m128i) -> __m128i {
            _mm_sub_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn iadd32(a: __m128i, b: __m128i) -> __m128i {
            _mm_add_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn isub32(a: __m128i, b: __m128i) -> __m128i {
            _mm_sub_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn shr64<const N: i32>(a: __m128i) -> __m128i {
            _mm_srli_epi64::<N>(a)
        }
        #[inline(always)]
        unsafe fn shl64<const N: i32>(a: __m128i) -> __m128i {
            _mm_slli_epi64::<N>(a)
        }
        #[inline(always)]
        unsafe fn shl32<const N: i32>(a: __m128i) -> __m128i {
            _mm_slli_epi32::<N>(a)
        }
        #[inline(always)]
        unsafe fn sar32<const N: i32>(a: __m128i) -> __m128i {
            _mm_srai_epi32::<N>(a)
        }
        #[inline(always)]
        unsafe fn dup_even(a: __m128i) -> __m128i {
            _mm_shuffle_epi32::<0b10100000>(a)
        }
    }

    pub(super) struct Avx2Arm;

    impl Lanes for Avx2Arm {
        type F = __m256d;
        type I = __m256i;
        const WIDTH: usize = 4;
        #[inline(always)]
        unsafe fn splat(x: f64) -> __m256d {
            _mm256_set1_pd(x)
        }
        #[inline(always)]
        unsafe fn isplat(x: u64) -> __m256i {
            _mm256_set1_epi64x(x as i64)
        }
        #[inline(always)]
        unsafe fn isplat32(x: u32) -> __m256i {
            _mm256_set1_epi32(x as i32)
        }
        #[inline(always)]
        unsafe fn load(p: *const f64) -> __m256d {
            _mm256_loadu_pd(p)
        }
        #[inline(always)]
        unsafe fn store(p: *mut f64, v: __m256d) {
            _mm256_storeu_pd(p, v)
        }
        #[inline(always)]
        unsafe fn add(a: __m256d, b: __m256d) -> __m256d {
            _mm256_add_pd(a, b)
        }
        #[inline(always)]
        unsafe fn sub(a: __m256d, b: __m256d) -> __m256d {
            _mm256_sub_pd(a, b)
        }
        #[inline(always)]
        unsafe fn mul(a: __m256d, b: __m256d) -> __m256d {
            _mm256_mul_pd(a, b)
        }
        #[inline(always)]
        unsafe fn div(a: __m256d, b: __m256d) -> __m256d {
            _mm256_div_pd(a, b)
        }
        #[inline(always)]
        unsafe fn sqrt(a: __m256d) -> __m256d {
            _mm256_sqrt_pd(a)
        }
        #[inline(always)]
        unsafe fn min(a: __m256d, b: __m256d) -> __m256d {
            _mm256_min_pd(a, b)
        }
        #[inline(always)]
        unsafe fn max(a: __m256d, b: __m256d) -> __m256d {
            _mm256_max_pd(a, b)
        }
        #[inline(always)]
        unsafe fn lt(a: __m256d, b: __m256d) -> __m256d {
            _mm256_cmp_pd::<_CMP_LT_OQ>(a, b)
        }
        #[inline(always)]
        unsafe fn gt(a: __m256d, b: __m256d) -> __m256d {
            _mm256_cmp_pd::<_CMP_GT_OQ>(a, b)
        }
        #[inline(always)]
        unsafe fn eq(a: __m256d, b: __m256d) -> __m256d {
            _mm256_cmp_pd::<_CMP_EQ_OQ>(a, b)
        }
        #[inline(always)]
        unsafe fn ne(a: __m256d, b: __m256d) -> __m256d {
            _mm256_cmp_pd::<_CMP_NEQ_UQ>(a, b)
        }
        #[inline(always)]
        unsafe fn select(m: __m256d, a: __m256d, b: __m256d) -> __m256d {
            _mm256_or_pd(_mm256_and_pd(m, a), _mm256_andnot_pd(m, b))
        }
        #[inline(always)]
        unsafe fn bits(a: __m256d) -> __m256i {
            _mm256_castpd_si256(a)
        }
        #[inline(always)]
        unsafe fn from_bits(a: __m256i) -> __m256d {
            _mm256_castsi256_pd(a)
        }
        #[inline(always)]
        unsafe fn and(a: __m256i, b: __m256i) -> __m256i {
            _mm256_and_si256(a, b)
        }
        #[inline(always)]
        unsafe fn or(a: __m256i, b: __m256i) -> __m256i {
            _mm256_or_si256(a, b)
        }
        #[inline(always)]
        unsafe fn xor_f(a: __m256d, b: __m256d) -> __m256d {
            _mm256_xor_pd(a, b)
        }
        #[inline(always)]
        unsafe fn and_f(a: __m256d, b: __m256d) -> __m256d {
            _mm256_and_pd(a, b)
        }
        #[inline(always)]
        unsafe fn isub64(a: __m256i, b: __m256i) -> __m256i {
            _mm256_sub_epi64(a, b)
        }
        #[inline(always)]
        unsafe fn iadd32(a: __m256i, b: __m256i) -> __m256i {
            _mm256_add_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn isub32(a: __m256i, b: __m256i) -> __m256i {
            _mm256_sub_epi32(a, b)
        }
        #[inline(always)]
        unsafe fn shr64<const N: i32>(a: __m256i) -> __m256i {
            _mm256_srli_epi64::<N>(a)
        }
        #[inline(always)]
        unsafe fn shl64<const N: i32>(a: __m256i) -> __m256i {
            _mm256_slli_epi64::<N>(a)
        }
        #[inline(always)]
        unsafe fn shl32<const N: i32>(a: __m256i) -> __m256i {
            _mm256_slli_epi32::<N>(a)
        }
        #[inline(always)]
        unsafe fn sar32<const N: i32>(a: __m256i) -> __m256i {
            _mm256_srai_epi32::<N>(a)
        }
        #[inline(always)]
        unsafe fn dup_even(a: __m256i) -> __m256i {
            _mm256_shuffle_epi32::<0b10100000>(a)
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel constants
// ---------------------------------------------------------------------------

const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// 1.5·2^52 — the round-to-nearest-integer magic constant. Adding and
/// subtracting it rounds |x| < 2^51 to the nearest integer (ties to
/// even) and leaves the integer, two's-complement, in the low 32
/// mantissa bits.
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// 2^52 + 1024, the bias used to rebuild a small integer as an f64.
const TWO52P1024: f64 = 4_503_599_627_371_520.0;
/// Bit pattern of √½ rounded down to a 32-bit-aligned boundary: the
/// mantissa-normalisation offset, placing z in [√½·(1−ε), √2).
const LN_OFF: u64 = 0x3fe6_a09e_0000_0000;
const EXP_FIELD: u64 = 0xfff0_0000_0000_0000;
const TWO54: f64 = 18_014_398_509_481_984.0;
/// Largest x with e^x finite.
const EXP_OVERFLOW: f64 = 709.782_712_893_383_973_096;
/// Smallest x with e^x > 0 (denormal floor).
const EXP_UNDERFLOW: f64 = -745.133_219_101_941_108_42;
/// |x| at and beyond which every f64 is an integer number of half-turns.
const COS_HUGE: f64 = 1_125_899_906_842_624.0; // 2^50

// ln(1+f) rational-polynomial coefficients (musl / fdlibm Lg1..Lg7).
const LG1: f64 = 6.666_666_666_666_735_13e-1;
const LG2: f64 = 3.999_999_999_940_941_908e-1;
const LG3: f64 = 2.857_142_874_366_239_149e-1;
const LG4: f64 = 2.222_219_843_214_978_396e-1;
const LG5: f64 = 1.818_357_216_161_805_012e-1;
const LG6: f64 = 1.531_383_769_920_937_332e-1;
const LG7: f64 = 1.479_819_860_511_658_591e-1;

// Taylor coefficients 1/n! for e^r on |r| ≤ ln2/2 (truncation < 1 ulp).
const EXP_C: [f64; 12] = [
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5_040.0,
    1.0 / 40_320.0,
    1.0 / 362_880.0,
    1.0 / 3_628_800.0,
    1.0 / 39_916_800.0,
    1.0 / 479_001_600.0,
    1.0 / 6_227_020_800.0,
];

// sin(2πg) = g·(A0 + s·A1 + …), cos(2πg) = 1 + s·B1 + …, s = g², |g| ≤ ⅛.
const SIN_A: [f64; 8] = [
    std::f64::consts::TAU,
    -4.134_170_224_039_975_49e1,
    8.160_524_927_607_504_25e1,
    -7.670_585_975_306_136_11e1,
    4.205_869_394_489_763_38e1,
    -1.509_464_257_682_298_44e1,
    3.819_952_584_848_280_26e0,
    -7.181_223_017_785_001_16e-1,
];
const COS_B: [f64; 8] = [
    -1.973_920_880_217_871_6e1,
    6.493_939_402_266_828_15e1,
    -8.545_681_720_669_371_37e1,
    6.024_464_137_187_663_94e1,
    -2.642_625_678_337_438_8e1,
    7.903_536_371_318_464_76e0,
    -1.714_390_711_088_671_14e0,
    2.820_059_684_557_910_12e-1,
];

// ---------------------------------------------------------------------------
// Generic kernel bodies
// ---------------------------------------------------------------------------

/// Natural log, total over all bit patterns: ln(+0/−0) = −∞, ln(x<0) =
/// NaN, ln(+∞) = +∞, NaN propagates, denormals are rescaled exactly.
#[inline(always)]
unsafe fn ln_core<L: Lanes>(x: L::F) -> L::F {
    // Rescale anything below the normal range by 2^54 (negatives and
    // zeros take this path too; their garbage core result is replaced by
    // the specials below).
    let tiny = L::lt(x, L::splat(f64::MIN_POSITIVE));
    let xs = L::select(tiny, L::mul(x, L::splat(TWO54)), x);
    let korr = L::select(tiny, L::splat(54.0), L::splat(0.0));
    let u = L::bits(xs);
    let tmp = L::isub64(u, L::isplat(LN_OFF));
    // Exponent k of the reduction x = 2^k · z, z ∈ [√½, √2): the 12-bit
    // field of tmp≫52, sign-extended with 32-bit shifts (SSE2 has no
    // 64-bit arithmetic shift).
    let k_i = L::sar32::<20>(L::shl32::<20>(L::shr64::<52>(tmp)));
    // Rebuild k as an f64 via the 2^52 bias (k+1024 is always positive).
    let kb = L::and(L::iadd32(k_i, L::isplat32(1024)), L::isplat(0xffff_ffff));
    let dk_raw = L::from_bits(L::or(kb, L::isplat(0x4330_0000_0000_0000)));
    let dk = L::sub(L::sub(dk_raw, L::splat(TWO52P1024)), korr);
    let z = L::from_bits(L::isub64(u, L::and(tmp, L::isplat(EXP_FIELD))));
    // fdlibm ln(1+f) over f ∈ [√½−1, √2−1].
    let f = L::sub(z, L::splat(1.0));
    let hfsq = L::mul(L::mul(L::splat(0.5), f), f);
    let s = L::div(f, L::add(L::splat(2.0), f));
    let zz = L::mul(s, s);
    let w = L::mul(zz, zz);
    let t1 = L::mul(
        w,
        L::add(L::splat(LG2), L::mul(w, L::add(L::splat(LG4), L::mul(w, L::splat(LG6))))),
    );
    let t2 = L::mul(
        zz,
        L::add(
            L::splat(LG1),
            L::mul(
                w,
                L::add(L::splat(LG3), L::mul(w, L::add(L::splat(LG5), L::mul(w, L::splat(LG7))))),
            ),
        ),
    );
    let r = L::add(t2, t1);
    let res = L::add(
        L::add(
            L::sub(
                L::add(L::mul(s, L::add(hfsq, r)), L::mul(dk, L::splat(LN2_LO))),
                hfsq,
            ),
            f,
        ),
        L::mul(dk, L::splat(LN2_HI)),
    );
    let res = L::select(L::eq(x, L::splat(0.0)), L::splat(f64::NEG_INFINITY), res);
    let res = L::select(L::lt(x, L::splat(0.0)), L::splat(f64::NAN), res);
    let res = L::select(L::eq(x, L::splat(f64::INFINITY)), L::splat(f64::INFINITY), res);
    L::select(L::ne(x, x), x, res)
}

/// e^x, total over all bit patterns: overflow → +∞, underflow → +0,
/// NaN propagates. Denormal results take two exactly-representable
/// power-of-two scalings (one final rounding each).
#[inline(always)]
unsafe fn exp_core<L: Lanes>(x: L::F) -> L::F {
    // Clamp into the range where the magic-rounding trick is exact; the
    // true result outside it is pinned by the overflow/underflow selects.
    let xc = L::max(L::min(x, L::splat(710.0)), L::splat(-746.0));
    let m = L::mul(xc, L::splat(std::f64::consts::LOG2_E));
    let t = L::add(m, L::splat(MAGIC));
    let kf = L::sub(t, L::splat(MAGIC));
    let ki = L::bits(t); // low dword of each lane = k, two's complement
    let hi = L::sub(xc, L::mul(kf, L::splat(LN2_HI)));
    let r = L::sub(hi, L::mul(kf, L::splat(LN2_LO)));
    // e^r ≈ 1 + r + r²·(c2 + r·(c3 + …)), |r| ≤ ln2/2.
    let mut q = L::splat(EXP_C[11]);
    let mut i = EXP_C.len() - 1;
    while i > 0 {
        i -= 1;
        q = L::add(L::splat(EXP_C[i]), L::mul(r, q));
    }
    let p = L::add(L::add(L::splat(1.0), r), L::mul(L::mul(r, r), q));
    // 2^k = 2^(k≫1) · 2^(k−k≫1): both factors stay in the normal range
    // for every clamped k ∈ [-1077, 1025].
    let k1 = L::sar32::<1>(ki);
    let k2 = L::isub32(ki, k1);
    let lo32 = L::isplat(0xffff_ffff);
    let bias = L::isplat32(1023);
    let f1 = L::from_bits(L::shl64::<52>(L::and(L::iadd32(k1, bias), lo32)));
    let f2 = L::from_bits(L::shl64::<52>(L::and(L::iadd32(k2, bias), lo32)));
    let res = L::mul(L::mul(p, f1), f2);
    let res = L::select(L::gt(x, L::splat(EXP_OVERFLOW)), L::splat(f64::INFINITY), res);
    let res = L::select(L::lt(x, L::splat(EXP_UNDERFLOW)), L::splat(0.0), res);
    L::select(L::ne(x, x), x, res)
}

/// cos(2π·x) with the argument in turns — the Box–Muller phase comes
/// uniform in [0,1), so reduction is exact (no π rounding). Total over
/// all bit patterns: |x| ≥ 2^50 (every f64 there is an integer) → 1.0,
/// NaN propagates.
#[inline(always)]
unsafe fn cos2pi_core<L: Lanes>(x: L::F) -> L::F {
    // Quarter-turn reduction: q = round(4x), g = x − q/4, |g| ≤ ⅛.
    let t = L::add(L::mul(x, L::splat(4.0)), L::splat(MAGIC));
    let qf = L::sub(t, L::splat(MAGIC));
    let qi = L::bits(t); // low dword of each lane = q
    let g = L::sub(x, L::mul(qf, L::splat(0.25)));
    let s = L::mul(g, g);
    let mut sp = L::splat(SIN_A[7]);
    let mut i = 7;
    while i > 0 {
        i -= 1;
        sp = L::add(L::splat(SIN_A[i]), L::mul(s, sp));
    }
    let sinp = L::mul(g, sp);
    let mut cq = L::splat(COS_B[7]);
    i = 7;
    while i > 0 {
        i -= 1;
        cq = L::add(L::splat(COS_B[i]), L::mul(s, cq));
    }
    let cosp = L::add(L::splat(1.0), L::mul(s, cq));
    // q mod 4 = 0,1,2,3 → cos, −sin, −cos, sin.
    let swap = L::from_bits(L::dup_even(L::sar32::<31>(L::shl32::<31>(qi))));
    let r0 = L::select(swap, sinp, cosp);
    let sbit = L::sar32::<31>(L::shl32::<30>(L::iadd32(qi, L::isplat32(1))));
    let sign = L::and(L::dup_even(sbit), L::isplat(0x8000_0000_0000_0000));
    let res = L::xor_f(r0, L::from_bits(sign));
    let absx = L::and_f(x, L::from_bits(L::isplat(0x7fff_ffff_ffff_ffff)));
    let res = L::select(L::lt(absx, L::splat(COS_HUGE)), res, L::splat(1.0));
    L::select(L::ne(x, x), x, res)
}

/// The Box–Muller gaussian from two uniforms: √(−2·ln u1) · cos(2π·u2).
#[inline(always)]
unsafe fn gaussian_core<L: Lanes>(u1: L::F, u2: L::F) -> L::F {
    let radius = L::sqrt(L::mul(L::splat(-2.0), ln_core::<L>(u1)));
    let res = L::mul(radius, cos2pi_core::<L>(u2));
    // When BOTH factors are NaN (u1 outside (0,1] and u2 NaN), the
    // hardware returns the first source operand's payload — and which
    // register ends up as first source is register-allocation-dependent,
    // so it can differ between arms. Canonicalise every NaN output to
    // the default quiet NaN; single-NaN cases were already
    // order-independent, and in-domain inputs never take this select.
    L::select(L::ne(res, res), L::splat(f64::NAN), res)
}

#[inline(always)]
unsafe fn log2_core<L: Lanes>(x: L::F) -> L::F {
    L::mul(ln_core::<L>(x), L::splat(std::f64::consts::LOG2_E))
}

#[inline(always)]
unsafe fn log10_core<L: Lanes>(x: L::F) -> L::F {
    L::mul(ln_core::<L>(x), L::splat(std::f64::consts::LOG10_E))
}

#[inline(always)]
unsafe fn pow10_core<L: Lanes>(x: L::F) -> L::F {
    exp_core::<L>(L::mul(x, L::splat(std::f64::consts::LN_10)))
}

#[inline(always)]
unsafe fn exp2_core<L: Lanes>(x: L::F) -> L::F {
    exp_core::<L>(L::mul(x, L::splat(std::f64::consts::LN_2)))
}

/// The link abstraction's Shannon spectral efficiency of an SINR in dB:
/// `α · log2(1 + 10^(x/10))`.
#[inline(always)]
unsafe fn shannon_se_core<L: Lanes>(x: L::F, alpha: L::F) -> L::F {
    let lin = pow10_core::<L>(L::div(x, L::splat(10.0)));
    L::mul(alpha, log2_core::<L>(L::add(L::splat(1.0), lin)))
}

// ---------------------------------------------------------------------------
// Scalar entry points
// ---------------------------------------------------------------------------

/// Natural logarithm (scalar arm).
#[inline]
pub fn ln(x: f64) -> f64 {
    unsafe { ln_core::<ScalarArm>(x) }
}

/// e^x (scalar arm).
#[inline]
pub fn exp(x: f64) -> f64 {
    unsafe { exp_core::<ScalarArm>(x) }
}

/// 2^x (scalar arm).
#[inline]
pub fn exp2(x: f64) -> f64 {
    unsafe { exp2_core::<ScalarArm>(x) }
}

/// Base-2 logarithm (scalar arm).
#[inline]
pub fn log2(x: f64) -> f64 {
    unsafe { log2_core::<ScalarArm>(x) }
}

/// Base-10 logarithm (scalar arm).
#[inline]
pub fn log10(x: f64) -> f64 {
    unsafe { log10_core::<ScalarArm>(x) }
}

/// 10^x (scalar arm).
#[inline]
pub fn pow10(x: f64) -> f64 {
    unsafe { pow10_core::<ScalarArm>(x) }
}

/// cos(2π·x), argument in turns (scalar arm).
#[inline]
pub fn cos2pi(x: f64) -> f64 {
    unsafe { cos2pi_core::<ScalarArm>(x) }
}

/// One Box–Muller gaussian from two uniforms (scalar arm); bit-identical
/// to the corresponding lane of [`gaussian_slice`].
#[inline]
pub fn gaussian_pair(u1: f64, u2: f64) -> f64 {
    unsafe { gaussian_core::<ScalarArm>(u1, u2) }
}

/// `α · log2(1 + 10^(x/10))` (scalar arm); bit-identical to the
/// corresponding lane of [`shannon_se_slice`].
#[inline]
pub fn shannon_se(x: f64, alpha: f64) -> f64 {
    unsafe { shannon_se_core::<ScalarArm>(x, alpha) }
}

// ---------------------------------------------------------------------------
// Slice entry points with runtime dispatch
// ---------------------------------------------------------------------------

macro_rules! unary_body {
    ($L:ty, $core:ident, $xs:ident, $out:ident) => {{
        let n = $xs.len();
        let w = <$L as Lanes>::WIDTH;
        let mut i = 0usize;
        while i + w <= n {
            let v = <$L as Lanes>::load($xs.as_ptr().add(i));
            <$L as Lanes>::store($out.as_mut_ptr().add(i), $core::<$L>(v));
            i += w;
        }
        while i < n {
            $out[i] = $core::<ScalarArm>($xs[i]);
            i += 1;
        }
    }};
}

macro_rules! binary_body {
    ($L:ty, $core:ident, $a:ident, $b:ident, $out:ident) => {{
        let n = $a.len();
        let w = <$L as Lanes>::WIDTH;
        let mut i = 0usize;
        while i + w <= n {
            let va = <$L as Lanes>::load($a.as_ptr().add(i));
            let vb = <$L as Lanes>::load($b.as_ptr().add(i));
            <$L as Lanes>::store($out.as_mut_ptr().add(i), $core::<$L>(va, vb));
            i += w;
        }
        while i < n {
            $out[i] = $core::<ScalarArm>($a[i], $b[i]);
            i += 1;
        }
    }};
}

#[cfg(target_arch = "x86_64")]
mod drivers {
    use super::*;
    use x86_arms::{Avx2Arm, Sse2Arm};

    macro_rules! def_unary_drivers {
        ($sse2:ident, $avx2:ident, $core:ident) => {
            pub(super) unsafe fn $sse2(xs: &[f64], out: &mut [f64]) {
                unary_body!(Sse2Arm, $core, xs, out)
            }
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $avx2(xs: &[f64], out: &mut [f64]) {
                unary_body!(Avx2Arm, $core, xs, out)
            }
        };
    }

    def_unary_drivers!(ln_sse2, ln_avx2, ln_core);
    def_unary_drivers!(exp_sse2, exp_avx2, exp_core);
    def_unary_drivers!(log10_sse2, log10_avx2, log10_core);
    def_unary_drivers!(pow10_sse2, pow10_avx2, pow10_core);
    def_unary_drivers!(cos2pi_sse2, cos2pi_avx2, cos2pi_core);

    pub(super) unsafe fn gaussian_sse2(u1: &[f64], u2: &[f64], out: &mut [f64]) {
        binary_body!(Sse2Arm, gaussian_core, u1, u2, out)
    }
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gaussian_avx2(u1: &[f64], u2: &[f64], out: &mut [f64]) {
        binary_body!(Avx2Arm, gaussian_core, u1, u2, out)
    }

    pub(super) unsafe fn shannon_sse2(xs: &[f64], alpha: f64, out: &mut [f64]) {
        let n = xs.len();
        let mut i = 0usize;
        let va = <Sse2Arm as Lanes>::splat(alpha);
        while i + 2 <= n {
            let v = <Sse2Arm as Lanes>::load(xs.as_ptr().add(i));
            <Sse2Arm as Lanes>::store(out.as_mut_ptr().add(i), shannon_se_core::<Sse2Arm>(v, va));
            i += 2;
        }
        while i < n {
            out[i] = shannon_se_core::<ScalarArm>(xs[i], alpha);
            i += 1;
        }
    }
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn shannon_avx2(xs: &[f64], alpha: f64, out: &mut [f64]) {
        let n = xs.len();
        let mut i = 0usize;
        let va = <Avx2Arm as Lanes>::splat(alpha);
        while i + 4 <= n {
            let v = <Avx2Arm as Lanes>::load(xs.as_ptr().add(i));
            <Avx2Arm as Lanes>::store(out.as_mut_ptr().add(i), shannon_se_core::<Avx2Arm>(v, va));
            i += 4;
        }
        while i < n {
            out[i] = shannon_se_core::<ScalarArm>(xs[i], alpha);
            i += 1;
        }
    }
}

macro_rules! def_unary_slice {
    ($name:ident, $with_name:ident, $core:ident, $sse2:ident, $avx2:ident, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Lengths must match; any length (including ragged, non-lane
        /// multiples) is handled — the tail runs the scalar arm, which is
        /// bit-identical to the vector lanes.
        #[inline]
        pub fn $name(xs: &[f64], out: &mut [f64]) {
            $with_name(active_arm(), xs, out)
        }

        #[doc = $doc]
        /// Explicit-arm variant (equivalence tests; an unavailable arm
        /// falls back to scalar).
        pub fn $with_name(arm: Arm, xs: &[f64], out: &mut [f64]) {
            assert_eq!(xs.len(), out.len(), "input/output length mismatch");
            match arm {
                #[cfg(target_arch = "x86_64")]
                Arm::Sse2 => unsafe { drivers::$sse2(xs, out) },
                #[cfg(target_arch = "x86_64")]
                Arm::Avx2 => unsafe { drivers::$avx2(xs, out) },
                _ => {
                    for (o, &x) in out.iter_mut().zip(xs) {
                        *o = unsafe { $core::<ScalarArm>(x) };
                    }
                }
            }
        }
    };
}

def_unary_slice!(ln_slice, ln_slice_with, ln_core, ln_sse2, ln_avx2, "Element-wise natural log.");
def_unary_slice!(exp_slice, exp_slice_with, exp_core, exp_sse2, exp_avx2, "Element-wise e^x.");
def_unary_slice!(
    log10_slice,
    log10_slice_with,
    log10_core,
    log10_sse2,
    log10_avx2,
    "Element-wise base-10 log."
);
def_unary_slice!(
    pow10_slice,
    pow10_slice_with,
    pow10_core,
    pow10_sse2,
    pow10_avx2,
    "Element-wise 10^x."
);
def_unary_slice!(
    cos2pi_slice,
    cos2pi_slice_with,
    cos2pi_core,
    cos2pi_sse2,
    cos2pi_avx2,
    "Element-wise cos(2π·x), argument in turns."
);

/// Element-wise Box–Muller: `out[i] = √(−2·ln u1[i]) · cos(2π·u2[i])`.
///
/// This is the batched form of [`gaussian_pair`]; the shadowing/fading
/// innovation tiles in `radio-channel` fill through it.
#[inline]
pub fn gaussian_slice(u1: &[f64], u2: &[f64], out: &mut [f64]) {
    gaussian_slice_with(active_arm(), u1, u2, out)
}

/// Explicit-arm variant of [`gaussian_slice`].
pub fn gaussian_slice_with(arm: Arm, u1: &[f64], u2: &[f64], out: &mut [f64]) {
    assert_eq!(u1.len(), u2.len(), "uniform slice length mismatch");
    assert_eq!(u1.len(), out.len(), "input/output length mismatch");
    match arm {
        #[cfg(target_arch = "x86_64")]
        Arm::Sse2 => unsafe { drivers::gaussian_sse2(u1, u2, out) },
        #[cfg(target_arch = "x86_64")]
        Arm::Avx2 => unsafe { drivers::gaussian_avx2(u1, u2, out) },
        _ => {
            for i in 0..out.len() {
                out[i] = unsafe { gaussian_core::<ScalarArm>(u1[i], u2[i]) };
            }
        }
    }
}

/// Element-wise `α · log2(1 + 10^(x/10))` — the batched form of
/// [`shannon_se`], behind the SINR→CQI column mapping.
#[inline]
pub fn shannon_se_slice(xs: &[f64], alpha: f64, out: &mut [f64]) {
    shannon_se_slice_with(active_arm(), xs, alpha, out)
}

/// Explicit-arm variant of [`shannon_se_slice`].
pub fn shannon_se_slice_with(arm: Arm, xs: &[f64], alpha: f64, out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "input/output length mismatch");
    match arm {
        #[cfg(target_arch = "x86_64")]
        Arm::Sse2 => unsafe { drivers::shannon_sse2(xs, alpha, out) },
        #[cfg(target_arch = "x86_64")]
        Arm::Avx2 => unsafe { drivers::shannon_avx2(xs, alpha, out) },
        _ => {
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = unsafe { shannon_se_core::<ScalarArm>(x, alpha) };
            }
        }
    }
}

/// Number of elements of `xs` strictly less than `q` (signed compare).
///
/// For a sorted table padded to a lane multiple with `i32::MAX` sentinels
/// this equals `table.partition_point(|&t| t < q)` — the form the NR TBS
/// lookup uses. The compare is *signed*, which is why callers must pad
/// with `i32::MAX`: an unsigned all-ones sentinel would read as −1 and
/// count as smaller than every query.
pub fn count_lt_i32(xs: &[i32], q: i32) -> usize {
    count_lt_i32_with(active_arm(), xs, q)
}

/// Explicit-arm variant of [`count_lt_i32`] (equivalence tests pin all
/// arms to the scalar count; integer lanes make the equality exact by
/// construction, the test guards against lane/tail bookkeeping bugs).
pub fn count_lt_i32_with(arm: Arm, xs: &[i32], q: i32) -> usize {
    match arm {
        #[cfg(target_arch = "x86_64")]
        Arm::Sse2 => unsafe { x86_count::count_lt_sse2(xs, q) },
        #[cfg(target_arch = "x86_64")]
        Arm::Avx2 => unsafe { x86_count::count_lt_avx2(xs, q) },
        _ => xs.iter().filter(|&&t| t < q).count(),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86_count {
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// # Safety
    /// SSE2 is baseline on x86_64; no further requirement.
    pub(super) unsafe fn count_lt_sse2(xs: &[i32], q: i32) -> usize {
        unsafe {
            let qv = _mm_set1_epi32(q);
            let mut acc = _mm_setzero_si128();
            let mut chunks = xs.chunks_exact(4);
            for c in chunks.by_ref() {
                let v = _mm_loadu_si128(c.as_ptr() as *const __m128i);
                // Matching lanes compare to −1; subtracting accumulates
                // the per-lane hit counts without overflow for any slice
                // shorter than 2³¹ elements.
                acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v, qv));
            }
            let mut lanes = [0i32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc);
            let simd: usize = lanes.iter().map(|&l| l as usize).sum();
            simd + chunks.remainder().iter().filter(|&&t| t < q).count()
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 support (the dispatcher does).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn count_lt_avx2(xs: &[i32], q: i32) -> usize {
        unsafe {
            let qv = _mm256_set1_epi32(q);
            let mut acc = _mm256_setzero_si256();
            let mut chunks = xs.chunks_exact(8);
            for c in chunks.by_ref() {
                let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
                // AVX2 has no cmplt; x < q ⇔ q > x.
                acc = _mm256_sub_epi32(acc, _mm256_cmpgt_epi32(qv, v));
            }
            let mut lanes = [0i32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
            let simd: usize = lanes.iter().map(|&l| l as usize).sum();
            simd + chunks.remainder().iter().filter(|&&t| t < q).count()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(a: f64, b: f64) -> f64 {
        if a == b {
            return 0.0;
        }
        ((a - b) / b).abs()
    }

    #[test]
    fn ln_matches_libm_across_domain() {
        let mut x = 1e-320; // includes denormals
        while x < 1e300 {
            assert!(rel_err(ln(x), x.ln()) < 1e-13, "x={x}: {} vs {}", ln(x), x.ln());
            x *= 1.7;
        }
    }

    #[test]
    fn exp_matches_libm_across_domain() {
        let mut x = -745.0;
        while x < 709.7 {
            let got = exp(x);
            let want = x.exp();
            assert!(rel_err(got, want) < 1e-13, "x={x}: {got} vs {want}");
            x += 0.37;
        }
    }

    #[test]
    fn log10_pow10_roundtrip() {
        for x in [-300.0, -21.5, -1.0, -0.1, 0.0, 0.3, 1.0, 17.25, 300.0] {
            assert!(rel_err(log10(pow10(x)), x) < 1e-13 || x == 0.0, "x={x}");
            assert!(rel_err(pow10(x), 10f64.powf(x)) < 1e-13, "x={x}");
        }
    }

    #[test]
    fn cos2pi_matches_libm_on_unit_interval() {
        let mut x = 0.0;
        while x < 1.0 {
            let want = (2.0 * std::f64::consts::PI * x).cos();
            assert!((cos2pi(x) - want).abs() < 1e-14, "x={x}: {} vs {want}", cos2pi(x));
            x += 0.000_937;
        }
    }

    #[test]
    fn specials_are_defined() {
        assert_eq!(ln(0.0), f64::NEG_INFINITY);
        assert_eq!(ln(-0.0), f64::NEG_INFINITY);
        assert!(ln(-1.0).is_nan());
        assert_eq!(ln(f64::INFINITY), f64::INFINITY);
        assert!(ln(f64::NAN).is_nan());
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp(800.0), f64::INFINITY);
        assert_eq!(exp(-800.0), 0.0);
        assert!(exp(f64::NAN).is_nan());
        assert_eq!(cos2pi(0.0), 1.0);
        assert_eq!(cos2pi(1e300), 1.0);
        assert!(cos2pi(f64::NAN).is_nan());
    }

    #[test]
    fn exp_handles_denormal_results() {
        // Between the normal floor (~e^-708) and the denormal floor.
        let got = exp(-730.0);
        assert!(got > 0.0 && got < f64::MIN_POSITIVE, "{got}");
        assert!(rel_err(got, (-730f64).exp()) < 1e-10, "{got}");
    }

    #[test]
    fn gaussian_pair_is_radius_times_phase() {
        let u1 = 0.25;
        let u2 = 0.125;
        let want = (-2.0 * ln(u1)).sqrt() * cos2pi(u2);
        assert_eq!(gaussian_pair(u1, u2), want);
    }

    #[test]
    fn shannon_se_matches_composition() {
        for x in [-10.0, 0.0, 7.5, 22.0, 40.0] {
            let want = 0.75 * log2(1.0 + pow10(x / 10.0));
            assert_eq!(shannon_se(x, 0.75), want);
        }
    }

    #[test]
    fn slices_match_scalar_on_all_arms() {
        let xs: Vec<f64> = (0..37).map(|i| 0.001 + i as f64 * 0.027).collect();
        for &arm in available_arms() {
            let mut out = vec![0.0; xs.len()];
            ln_slice_with(arm, &xs, &mut out);
            for (i, &x) in xs.iter().enumerate() {
                assert_eq!(out[i].to_bits(), ln(x).to_bits(), "arm {arm:?} lane {i}");
            }
        }
    }

    #[test]
    fn count_lt_matches_partition_point() {
        // A sorted, sentinel-padded table (the TBS shape) plus ragged
        // unsorted slices; every arm must agree with the scalar count.
        let mut table: Vec<i32> = (0..93).map(|i| i * 41 + 24).collect();
        table.extend_from_slice(&[i32::MAX; 3]);
        for q in [i32::MIN, -1, 0, 23, 24, 25, 1000, 3796, 3797, i32::MAX] {
            let want = table.partition_point(|&t| t < q);
            for &arm in available_arms() {
                assert_eq!(count_lt_i32_with(arm, &table, q), want, "arm {arm:?} q {q}");
            }
        }
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 31] {
            let xs: Vec<i32> =
                (0..len as i32).map(|i| i.wrapping_mul(2_654_435_761u32 as i32) ^ i).collect();
            for q in [i32::MIN, -5, 0, 7, i32::MAX] {
                let want = xs.iter().filter(|&&t| t < q).count();
                for &arm in available_arms() {
                    assert_eq!(count_lt_i32_with(arm, &xs, q), want, "arm {arm:?} len {len} q {q}");
                }
            }
        }
    }
}
