//! Pins the crate's contract: every arm (scalar, SSE2, AVX2) produces
//! bit-identical results for **every** input bit pattern — NaNs with
//! arbitrary payloads, infinities, negative zeros, denormals — at every
//! slice length, including ragged non-lane-multiple lengths where the
//! scalar tail takes over mid-slice.

use proptest::prelude::*;
use vmath::{available_arms, Arm};

/// Bit patterns that exercise every special-case branch of the kernels.
const SPECIALS: [u64; 18] = [
    0x0000_0000_0000_0000, // +0
    0x8000_0000_0000_0000, // -0
    0x7ff0_0000_0000_0000, // +inf
    0xfff0_0000_0000_0000, // -inf
    0x7ff8_0000_0000_0000, // quiet NaN
    0x7ff0_0000_0000_0001, // signalling NaN
    0xfff5_dead_beef_cafe, // negative NaN with payload
    0x0000_0000_0000_0001, // smallest denormal
    0x000f_ffff_ffff_ffff, // largest denormal
    0x0010_0000_0000_0000, // smallest normal
    0x7fef_ffff_ffff_ffff, // largest finite
    0x3ff0_0000_0000_0000, // 1.0
    0xbff0_0000_0000_0000, // -1.0
    0x3fe6_a09e_667f_3bcd, // sqrt(1/2), the ln reduction boundary
    0x4086_2e42_fefa_39ef, // ~709.78, the exp overflow edge
    0xc087_4910_d52d_3051, // ~-745.13, the exp underflow edge
    0x4300_0000_0000_0000, // 2^49, just below the cos2pi huge cutoff
    0x4320_0000_0000_0000, // 2^51, above the cos2pi huge cutoff
];

fn floats_with_specials(bits: Vec<u64>) -> Vec<f64> {
    bits.into_iter()
        .chain(SPECIALS)
        .map(f64::from_bits)
        .collect()
}

fn assert_unary_equiv(
    name: &str,
    with: fn(Arm, &[f64], &mut [f64]),
    xs: &[f64],
) -> Result<(), TestCaseError> {
    let mut want = vec![0.0; xs.len()];
    with(Arm::Scalar, xs, &mut want);
    for &arm in available_arms() {
        let mut got = vec![0.0; xs.len()];
        with(arm, xs, &mut got);
        for i in 0..xs.len() {
            prop_assert_eq!(
                got[i].to_bits(),
                want[i].to_bits(),
                "{name} arm {arm:?} lane {i}/{n}: x={x:?} ({xb:#018x}) -> {g:?} ({gb:#018x}) vs scalar {w:?} ({wb:#018x})",
                name = name,
                arm = arm,
                i = i,
                n = xs.len(),
                x = xs[i],
                xb = xs[i].to_bits(),
                g = got[i],
                gb = got[i].to_bits(),
                w = want[i],
                wb = want[i].to_bits(),
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn ln_arms_bit_identical(bits in prop::collection::vec(0u64..u64::MAX, 0..67)) {
        let xs = floats_with_specials(bits);
        assert_unary_equiv("ln", vmath::ln_slice_with, &xs)?;
    }

    #[test]
    fn exp_arms_bit_identical(bits in prop::collection::vec(0u64..u64::MAX, 0..67)) {
        let xs = floats_with_specials(bits);
        assert_unary_equiv("exp", vmath::exp_slice_with, &xs)?;
    }

    #[test]
    fn log10_arms_bit_identical(bits in prop::collection::vec(0u64..u64::MAX, 0..67)) {
        let xs = floats_with_specials(bits);
        assert_unary_equiv("log10", vmath::log10_slice_with, &xs)?;
    }

    #[test]
    fn pow10_arms_bit_identical(bits in prop::collection::vec(0u64..u64::MAX, 0..67)) {
        let xs = floats_with_specials(bits);
        assert_unary_equiv("pow10", vmath::pow10_slice_with, &xs)?;
    }

    #[test]
    fn cos2pi_arms_bit_identical(bits in prop::collection::vec(0u64..u64::MAX, 0..67)) {
        let xs = floats_with_specials(bits);
        assert_unary_equiv("cos2pi", vmath::cos2pi_slice_with, &xs)?;
    }

    #[test]
    fn gaussian_arms_bit_identical(
        pairs in prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..67),
    ) {
        let u1 = floats_with_specials(pairs.iter().map(|p| p.0).collect());
        let u2 = floats_with_specials(pairs.iter().map(|p| p.1).collect());
        let mut want = vec![0.0; u1.len()];
        vmath::gaussian_slice_with(Arm::Scalar, &u1, &u2, &mut want);
        for &arm in available_arms() {
            let mut got = vec![0.0; u1.len()];
            vmath::gaussian_slice_with(arm, &u1, &u2, &mut got);
            for i in 0..u1.len() {
                prop_assert_eq!(
                    got[i].to_bits(),
                    want[i].to_bits(),
                    "gaussian arm {arm:?} lane {i}: u1={u1v:?} u2={u2v:?}",
                    arm = arm, i = i, u1v = u1[i], u2v = u2[i],
                );
            }
        }
    }

    #[test]
    fn shannon_se_arms_bit_identical(
        bits in prop::collection::vec(0u64..u64::MAX, 0..67),
        alpha in 0.05f64..1.5,
    ) {
        let xs = floats_with_specials(bits);
        let mut want = vec![0.0; xs.len()];
        vmath::shannon_se_slice_with(Arm::Scalar, &xs, alpha, &mut want);
        for &arm in available_arms() {
            let mut got = vec![0.0; xs.len()];
            vmath::shannon_se_slice_with(arm, &xs, alpha, &mut got);
            for i in 0..xs.len() {
                prop_assert_eq!(
                    got[i].to_bits(),
                    want[i].to_bits(),
                    "shannon_se arm {arm:?} lane {i}: x={x:?} alpha={alpha}",
                    arm = arm, i = i, x = xs[i], alpha = alpha,
                );
            }
        }
    }

    /// The dispatching entry points agree with the per-element scalar
    /// functions, whatever arm the environment selected.
    #[test]
    fn dispatch_matches_scalar_functions(bits in prop::collection::vec(0u64..u64::MAX, 0..67)) {
        let xs = floats_with_specials(bits);
        let mut out = vec![0.0; xs.len()];
        vmath::ln_slice(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i].to_bits(), vmath::ln(x).to_bits(), "ln lane {}", i);
        }
        vmath::exp_slice(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i].to_bits(), vmath::exp(x).to_bits(), "exp lane {}", i);
        }
        vmath::cos2pi_slice(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(out[i].to_bits(), vmath::cos2pi(x).to_bits(), "cos2pi lane {}", i);
        }
    }

    /// The SIMD strictly-less-than count equals the scalar filter count on
    /// every arm, for arbitrary (unsorted) values and ragged lengths.
    #[test]
    fn count_lt_arms_agree(
        xs in prop::collection::vec(i32::MIN..i32::MAX, 0..67),
        q in i32::MIN..i32::MAX,
    ) {
        let want = xs.iter().filter(|&&t| t < q).count();
        for &arm in available_arms() {
            prop_assert_eq!(
                vmath::count_lt_i32_with(arm, &xs, q),
                want,
                "arm {arm:?} q {q} len {len}",
                arm = arm, q = q, len = xs.len(),
            );
        }
        prop_assert_eq!(vmath::count_lt_i32(&xs, q), want);
    }
}
