//! Property-based tests of the analysis metrics.

use analysis::stats::{cdf_points, mean, pearson, percentile, std_dev, BoxplotStats};
use analysis::timeseries::{bin_average, bin_sum};
use analysis::variability::{segment_variability, variability, variability_profile};
use proptest::prelude::*;

proptest! {
    /// V(t) is a seminorm-like functional: non-negative, zero on
    /// constants, absolutely homogeneous under scaling, shift-invariant.
    #[test]
    fn variability_seminorm(
        xs in prop::collection::vec(-1e4f64..1e4, 8..200),
        scale in -4.0f64..4.0,
        shift in -1e4f64..1e4,
        block in 1usize..6,
    ) {
        if let Some(v) = variability(&xs, block) {
            prop_assert!(v >= 0.0);
            let scaled: Vec<f64> = xs.iter().map(|x| x * scale).collect();
            let vs = variability(&scaled, block).unwrap();
            prop_assert!((vs - v * scale.abs()).abs() < 1e-6 * (1.0 + v), "homogeneity");
            let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            prop_assert!((variability(&shifted, block).unwrap() - v).abs() < 1e-6 * (1.0 + v));
        }
    }

    /// Dyadic profiles halve their block counts per step and stay finite.
    #[test]
    fn profile_structure(xs in prop::collection::vec(-1e3f64..1e3, 64..512)) {
        let profile = variability_profile(&xs, 0.001, 4);
        prop_assert!(!profile.is_empty());
        for w in profile.windows(2) {
            prop_assert!((w[1].timescale_s / w[0].timescale_s - 2.0).abs() < 1e-12);
            prop_assert!(w[1].blocks <= w[0].blocks);
        }
        for p in &profile {
            prop_assert!(p.variability.is_finite());
        }
    }

    /// Segments partition: each segment's V uses only its own samples.
    #[test]
    fn segments_are_local(xs in prop::collection::vec(-1e3f64..1e3, 40..200), segs in 1usize..5) {
        let out = segment_variability(&xs, 1, segs);
        prop_assert_eq!(out.len(), segs);
        let seg_len = xs.len() / segs;
        for (i, v) in out.iter().enumerate() {
            let direct = variability(&xs[i * seg_len..(i + 1) * seg_len], 1);
            prop_assert_eq!(*v, direct);
        }
    }

    /// Percentiles are monotone in p and bounded by the extremes; the
    /// boxplot summary is internally ordered.
    #[test]
    fn percentile_ordering(xs in prop::collection::vec(-1e6f64..1e6, 1..200), p in 0.0f64..100.0) {
        let lo = percentile(&xs, 0.0).unwrap();
        let hi = percentile(&xs, 100.0).unwrap();
        let v = percentile(&xs, p).unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        prop_assert!(percentile(&xs, (p + 5.0).min(100.0)).unwrap() >= v - 1e-9);
        let b = BoxplotStats::from_samples(&xs).unwrap();
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        prop_assert!(b.mean >= b.min - 1e-9 && b.mean <= b.max + 1e-9);
    }

    /// The empirical CDF ends at exactly 1 and is non-decreasing in both
    /// coordinates.
    #[test]
    fn cdf_properties(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let cdf = cdf_points(&xs);
        prop_assert_eq!(cdf.len(), xs.len());
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 < w[1].1);
        }
    }

    /// Pearson is symmetric, bounded by 1 in magnitude, and exactly ±1 on
    /// affine images.
    #[test]
    fn pearson_properties(
        xs in prop::collection::vec(-1e3f64..1e3, 3..100),
        a in prop::sample::select(vec![-3.0f64, -1.0, 0.5, 2.0]),
        b in -10.0f64..10.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| a * x + b).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((r.abs() - 1.0).abs() < 1e-6);
            prop_assert_eq!(r.signum(), a.signum());
        }
        if let (Some(rxy), Some(ryx)) = (pearson(&xs, &ys), pearson(&ys, &xs)) {
            prop_assert!((rxy - ryx).abs() < 1e-9);
        }
    }

    /// Binning conserves mass: the sum-bins rate series integrates back to
    /// the total of the samples.
    #[test]
    fn binning_conserves_mass(
        samples in prop::collection::vec((0.0f64..9.99, 0.0f64..1e5), 0..200),
        bin_s in prop::sample::select(vec![0.05f64, 0.1, 0.5, 1.0]),
    ) {
        let r = bin_sum(&samples, bin_s, 10.0);
        let integrated: f64 = r.values.iter().map(|v| v * bin_s).sum();
        let total: f64 = samples.iter().map(|(_, v)| v).sum();
        prop_assert!((integrated - total).abs() < 1e-6 * (1.0 + total));
        // Averages are bounded by the sample extremes.
        let avg = bin_average(&samples, bin_s, 10.0);
        if !samples.is_empty() {
            let lo = samples.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
            let hi = samples.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
            for v in avg.values {
                prop_assert!(v >= lo.min(0.0) - 1e-9 && v <= hi + 1e-9);
            }
        }
    }

    /// mean/std agree with direct formulas.
    #[test]
    fn moments(xs in prop::collection::vec(-1e3f64..1e3, 2..100)) {
        let m = mean(&xs);
        let direct: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((m - direct).abs() < 1e-9);
        prop_assert!(std_dev(&xs) >= 0.0);
    }
}
