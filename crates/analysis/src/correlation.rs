//! Lagged cross-correlation — quantifying the paper's §6.1 observation
//! that "there is a clear lag in the decisions made by BOLA and the actual
//! 5G throughput performance".
//!
//! [`cross_correlation`] computes the Pearson correlation between `x(t)`
//! and `y(t + lag)` over a window of lags; [`peak_lag`] finds the lag
//! where the two series align best. Applied to (channel capacity, chosen
//! bitrate) it measures how far the ABR's decisions trail the channel.

use crate::stats::pearson;
use serde::{Deserialize, Serialize};

/// One point of a cross-correlogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LagCorrelation {
    /// Lag in samples: positive means `y` trails `x` by this many samples.
    pub lag: i64,
    /// Pearson correlation of the overlapped segments.
    pub r: f64,
}

/// Cross-correlation of `x` against `y` for lags in `[-max_lag, max_lag]`.
///
/// For a positive lag `k`, correlates `x[0..n-k]` with `y[k..n]` — high
/// `r` at positive `k` means `y` *follows* `x` by `k` samples. Lags whose
/// overlap is shorter than 4 samples (or degenerate) are skipped.
pub fn cross_correlation(x: &[f64], y: &[f64], max_lag: usize) -> Vec<LagCorrelation> {
    let n = x.len().min(y.len());
    let mut out = Vec::new();
    let max_lag = max_lag.min(n.saturating_sub(4)) as i64;
    for lag in -max_lag..=max_lag {
        let (xs, ys) = if lag >= 0 {
            let k = lag as usize;
            (&x[..n - k], &y[k..n])
        } else {
            let k = (-lag) as usize;
            (&x[k..n], &y[..n - k])
        };
        if let Some(r) = pearson(xs, ys) {
            out.push(LagCorrelation { lag, r });
        }
    }
    out
}

/// The lag at which `y` best aligns with `x` (argmax of the
/// correlogram); `None` when no lag produced a defined correlation.
pub fn peak_lag(x: &[f64], y: &[f64], max_lag: usize) -> Option<LagCorrelation> {
    cross_correlation(x, y, max_lag)
        .into_iter()
        .max_by(|a, b| a.r.partial_cmp(&b.r).expect("finite correlations"))
}

/// Autocorrelation of a series at lags `0..=max_lag` (r(0) = 1 by
/// definition when the series is non-degenerate).
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Vec<LagCorrelation> {
    cross_correlation(x, x, max_lag).into_iter().filter(|p| p.lag >= 0).collect()
}

/// The coherence time of a series: the smallest positive lag (in samples)
/// at which the autocorrelation falls below `threshold` (0.5 is the
/// convention). `None` when the series never decorrelates within
/// `max_lag` — the §5 observation that "channel conditions appear to
/// oscillate around these time scales" made measurable.
pub fn coherence_lag(x: &[f64], max_lag: usize, threshold: f64) -> Option<usize> {
    autocorrelation(x, max_lag)
        .into_iter()
        .find(|p| p.lag > 0 && p.r < threshold)
        .map(|p| p.lag as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.31).sin() + 0.3 * (i as f64 * 0.07).cos()).collect()
    }

    #[test]
    fn shifted_copy_peaks_at_its_shift() {
        let x = signal(400);
        for shift in [0usize, 3, 11, 25] {
            // y(t) = x(t - shift): y trails x by `shift`.
            let y: Vec<f64> =
                (0..x.len()).map(|i| if i >= shift { x[i - shift] } else { 0.0 }).collect();
            let peak = peak_lag(&x, &y, 40).unwrap();
            assert_eq!(peak.lag, shift as i64, "shift {shift}");
            assert!(peak.r > 0.95, "shift {shift}: r {}", peak.r);
        }
    }

    #[test]
    fn leading_series_peaks_at_negative_lag() {
        let x = signal(400);
        // y(t) = x(t + 7): y *leads* x.
        let y: Vec<f64> = (0..x.len()).map(|i| x[(i + 7).min(x.len() - 1)]).collect();
        let peak = peak_lag(&x, &y, 20).unwrap();
        assert_eq!(peak.lag, -7);
    }

    #[test]
    fn correlogram_is_bounded_and_symmetric_in_roles() {
        let x = signal(300);
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        for pt in cross_correlation(&x, &y, 30) {
            assert!(pt.r.abs() <= 1.0 + 1e-12);
        }
        // Swapping the series mirrors the lag axis.
        let xy = peak_lag(&x, &y, 30).unwrap();
        let yx = peak_lag(&y, &x, 30).unwrap();
        assert_eq!(xy.lag, -yx.lag);
    }

    #[test]
    fn degenerate_inputs_are_skipped() {
        assert!(peak_lag(&[1.0, 1.0, 1.0, 1.0, 1.0], &[1.0; 5], 2).is_none());
        assert!(cross_correlation(&[], &[], 5).is_empty());
    }

    #[test]
    fn autocorrelation_starts_at_one_and_white_noise_decorrelates_fast() {
        // A deterministic pseudo-noise series via a simple LCG.
        let mut state = 12345u64;
        let noise: Vec<f64> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
            })
            .collect();
        let ac = autocorrelation(&noise, 20);
        assert!((ac[0].r - 1.0).abs() < 1e-12);
        assert_eq!(coherence_lag(&noise, 20, 0.5), Some(1));
    }

    #[test]
    fn slow_process_has_long_coherence() {
        // AR(1) with ρ = 0.98 stays correlated for tens of samples:
        // r(k) ≈ 0.98^k crosses 0.5 near k = 34.
        let mut state = 99u64;
        let mut v = 0.0f64;
        let series: Vec<f64> = (0..20_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let w = (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5;
                v = 0.98 * v + w;
                v
            })
            .collect();
        let lag = coherence_lag(&series, 200, 0.5).expect("decorrelates within 200");
        assert!((20..=60).contains(&lag), "coherence lag {lag}");
        // A faster process decorrelates sooner.
        let mut v2 = 0.0f64;
        let mut s2 = 7u64;
        let fast: Vec<f64> = (0..20_000)
            .map(|_| {
                s2 = s2.wrapping_mul(6364136223846793005).wrapping_add(1);
                let w = (s2 >> 33) as f64 / (1u64 << 31) as f64 - 0.5;
                v2 = 0.8 * v2 + w;
                v2
            })
            .collect();
        assert!(coherence_lag(&fast, 200, 0.5).unwrap() < lag);
    }
}
