//! Bounded-memory streaming aggregation of slot-level KPIs.
//!
//! [`OnlineAggregates`] is a [`SlotSink`] that folds each record into
//! fixed-size accumulators as the simulator produces it, so a campaign
//! can compute the paper's headline figures — binned throughput series,
//! modulation/layer shares, BLER, CQI, an RE-allocation percentile
//! sketch — without ever materialising a full trace. Memory is
//! O(duration / bin) for the series plus a constant for everything else,
//! independent of the record count.
//!
//! All accumulators are integers (bit counts, event counts) or
//! order-independent maxima, so aggregation is bitwise deterministic
//! regardless of how sessions are scheduled across workers, and
//! [`OnlineAggregates::merge`] of per-session aggregates in spec order
//! reproduces the sequential result byte for byte.

use ran::kpi::{modulation_code, modulation_from_code, Direction, Modulation, SlotKpi};
use ran::sink::SlotSink;
use serde::{Deserialize, Serialize};

/// Bucket upper bounds of the RE-allocation sketch — reused from the obs
/// crate's count histogram so sketch percentiles line up with the
/// operational metrics.
pub const RE_SKETCH_BOUNDS: &[u64] = obs::COUNT_BOUNDS;

/// Streaming aggregates over a slot-KPI stream (see the module docs).
///
/// Build with [`OnlineAggregates::new`], feed through the
/// [`SlotSink`] impl (or [`ran::sim::UeSim::run_into`]), then read the
/// accessors — which mirror their `KpiTrace` post-hoc counterparts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineAggregates {
    /// Throughput-series bin width, seconds.
    bin_s: f64,
    /// Records consumed.
    records: u64,
    /// Largest inferred slot-end time (`time_s + time_s / slot`).
    max_end_s: f64,
    /// Largest raw `time_s` (duration fallback for slot-0-only streams).
    max_time_s: f64,
    /// Records consumed per time bin (both directions) — the sample
    /// coverage behind each throughput-series point, so a collector gap
    /// is visible as an under-populated bin instead of silently reading
    /// as "the radio delivered nothing".
    bin_records: Vec<u64>,
    /// Delivered bits per DL time bin.
    dl_bin_bits: Vec<u64>,
    /// Delivered bits per UL time bin.
    ul_bin_bits: Vec<u64>,
    /// Total DL delivered bits.
    dl_bits: u64,
    /// Total UL delivered bits.
    ul_bits: u64,
    /// DL new-data grants per modulation code (Fig. 5 numerator).
    modulation_grants: [u64; 4],
    /// Scheduled DL slots.
    dl_scheduled: u64,
    /// Block errors among scheduled DL slots.
    dl_block_errors: u64,
    /// Scheduled DL slots per layer count, index `min(layers, 4)`.
    layer_counts: [u64; 5],
    /// Sum of CQI over all records.
    cqi_sum: u64,
    /// RE-allocation sketch: counts per [`RE_SKETCH_BOUNDS`] bucket plus
    /// one overflow bucket.
    re_sketch: Vec<u64>,
    /// Whether `finish` has sealed the aggregates.
    finished: bool,
}

impl OnlineAggregates {
    /// Fresh aggregates with the given throughput-series bin width
    /// (seconds; the campaign default is 1.0).
    pub fn new(bin_s: f64) -> Self {
        assert!(bin_s > 0.0, "bin width must be positive");
        OnlineAggregates {
            bin_s,
            records: 0,
            max_end_s: 0.0,
            max_time_s: 0.0,
            bin_records: Vec::new(),
            dl_bin_bits: Vec::new(),
            ul_bin_bits: Vec::new(),
            dl_bits: 0,
            ul_bits: 0,
            modulation_grants: [0; 4],
            dl_scheduled: 0,
            dl_block_errors: 0,
            layer_counts: [0; 5],
            cqi_sum: 0,
            re_sketch: vec![0; RE_SKETCH_BOUNDS.len() + 1],
            finished: false,
        }
    }

    /// The configured bin width, seconds.
    pub fn bin_s(&self) -> f64 {
        self.bin_s
    }

    /// Records consumed so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Stream duration, seconds — the end of the latest slot seen, same
    /// inference as `KpiTrace::duration_s`.
    pub fn duration_s(&self) -> f64 {
        if self.max_end_s > 0.0 {
            self.max_end_s
        } else {
            self.max_time_s
        }
    }

    /// Total delivered bits in a direction.
    pub fn delivered_bits(&self, direction: Direction) -> u64 {
        match direction {
            Direction::Dl => self.dl_bits,
            Direction::Ul => self.ul_bits,
        }
    }

    /// Mean goodput, Mbps — matches `KpiTrace::mean_throughput_mbps`.
    pub fn mean_throughput_mbps(&self, direction: Direction) -> f64 {
        let dur = self.duration_s();
        if dur <= 0.0 {
            return 0.0;
        }
        self.delivered_bits(direction) as f64 / dur / 1e6
    }

    /// Binned throughput series, Mbps — matches
    /// `KpiTrace::throughput_series_mbps` at the configured bin width.
    pub fn throughput_series_mbps(&self, direction: Direction) -> Vec<f64> {
        let bins = match direction {
            Direction::Dl => &self.dl_bin_bits,
            Direction::Ul => &self.ul_bin_bits,
        };
        let n_bins = self.n_bins();
        (0..n_bins)
            .map(|i| bins.get(i).copied().unwrap_or(0) as f64 / self.bin_s / 1e6)
            .collect()
    }

    /// Fraction of DL new-data grants per modulation order, ascending
    /// modulation code, omitting unused orders — matches
    /// `KpiTrace::modulation_shares`.
    pub fn modulation_shares(&self) -> Vec<(Modulation, f64)> {
        let grants: u64 = self.modulation_grants.iter().sum();
        if grants == 0 {
            return Vec::new();
        }
        self.modulation_grants
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(code, &n)| {
                let m = modulation_from_code(code as u8)
                    .expect("sketch indexes only valid modulation codes");
                (m, n as f64 / grants as f64)
            })
            .collect()
    }

    /// Fraction of scheduled DL slots per MIMO layer count, indexed
    /// `[unused, 1, 2, 3, 4]` — matches `KpiTrace::layer_shares`.
    pub fn layer_shares(&self) -> [f64; 5] {
        let mut shares = [0.0; 5];
        if self.dl_scheduled > 0 {
            for (share, &n) in shares.iter_mut().zip(&self.layer_counts) {
                *share = n as f64 / self.dl_scheduled as f64;
            }
        }
        shares
    }

    /// Block-error rate over scheduled DL slots — matches
    /// `KpiTrace::dl_bler`.
    pub fn dl_bler(&self) -> f64 {
        if self.dl_scheduled == 0 {
            0.0
        } else {
            self.dl_block_errors as f64 / self.dl_scheduled as f64
        }
    }

    /// Mean CQI over all records — matches `KpiTrace::mean_cqi`.
    pub fn mean_cqi(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.cqi_sum as f64 / self.records as f64
        }
    }

    /// Approximate `p`-th percentile (0–100) of DL scheduled RE
    /// allocations, from the fixed-bucket sketch: the upper bound of the
    /// bucket containing the percentile rank (`None` with no grants; the
    /// overflow bucket reports the largest bound).
    pub fn re_allocation_percentile(&self, p: f64) -> Option<u64> {
        let total: u64 = self.re_sketch.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.re_sketch.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(
                    RE_SKETCH_BOUNDS
                        .get(i)
                        .copied()
                        .unwrap_or(*RE_SKETCH_BOUNDS.last().expect("bounds non-empty")),
                );
            }
        }
        RE_SKETCH_BOUNDS.last().copied()
    }

    /// Records consumed per time bin (both directions), padded to the
    /// series length after [`SlotSink::finish`].
    pub fn bin_records(&self) -> &[u64] {
        &self.bin_records
    }

    /// Per-bin sample coverage: each bin's record count relative to the
    /// most-populated bin, in `[0, 1]`. A healthy full-buffer session
    /// reads ~1.0 everywhere; a collector gap or early abort shows up as
    /// a low-coverage span. Empty aggregates yield an empty vector.
    pub fn bin_coverage(&self) -> Vec<f64> {
        let densest = self.bin_records.iter().copied().max().unwrap_or(0);
        if densest == 0 {
            return vec![0.0; self.bin_records.len()];
        }
        self.bin_records.iter().map(|&n| n as f64 / densest as f64).collect()
    }

    /// The worst per-bin coverage (see [`OnlineAggregates::bin_coverage`]);
    /// `1.0` for an empty aggregate, so healthy pipelines can assert a
    /// floor without special-casing zero-length streams.
    pub fn min_bin_coverage(&self) -> f64 {
        self.bin_coverage().into_iter().fold(1.0, f64::min)
    }

    /// Fold another aggregate into this one (same bin width required).
    /// Merging per-session aggregates in spec order is byte-identical to
    /// streaming the sessions through one sink sequentially.
    pub fn merge(&mut self, other: &OnlineAggregates) {
        assert!(
            (self.bin_s - other.bin_s).abs() < 1e-12,
            "cannot merge aggregates with different bin widths"
        );
        self.records += other.records;
        if other.max_end_s > self.max_end_s {
            self.max_end_s = other.max_end_s;
        }
        if other.max_time_s > self.max_time_s {
            self.max_time_s = other.max_time_s;
        }
        if other.bin_records.len() > self.bin_records.len() {
            self.bin_records.resize(other.bin_records.len(), 0);
        }
        for (a, &b) in self.bin_records.iter_mut().zip(&other.bin_records) {
            *a += b;
        }
        if other.dl_bin_bits.len() > self.dl_bin_bits.len() {
            self.dl_bin_bits.resize(other.dl_bin_bits.len(), 0);
        }
        for (a, &b) in self.dl_bin_bits.iter_mut().zip(&other.dl_bin_bits) {
            *a += b;
        }
        if other.ul_bin_bits.len() > self.ul_bin_bits.len() {
            self.ul_bin_bits.resize(other.ul_bin_bits.len(), 0);
        }
        for (a, &b) in self.ul_bin_bits.iter_mut().zip(&other.ul_bin_bits) {
            *a += b;
        }
        self.dl_bits += other.dl_bits;
        self.ul_bits += other.ul_bits;
        for (a, &b) in self.modulation_grants.iter_mut().zip(&other.modulation_grants) {
            *a += b;
        }
        self.dl_scheduled += other.dl_scheduled;
        self.dl_block_errors += other.dl_block_errors;
        for (a, &b) in self.layer_counts.iter_mut().zip(&other.layer_counts) {
            *a += b;
        }
        self.cqi_sum += other.cqi_sum;
        for (a, &b) in self.re_sketch.iter_mut().zip(&other.re_sketch) {
            *a += b;
        }
        self.finished = self.finished && other.finished;
    }

    /// Number of series bins covering `[0, duration)`.
    fn n_bins(&self) -> usize {
        let dur = self.duration_s();
        if dur <= 0.0 {
            0
        } else {
            ((dur / self.bin_s).ceil() as usize).max(1)
        }
    }

    fn bin_of(&self, time_s: f64) -> usize {
        (time_s / self.bin_s) as usize
    }
}

impl SlotSink for OnlineAggregates {
    fn push(&mut self, kpi: &SlotKpi) {
        debug_assert!(!self.finished, "push after finish violates the SlotSink contract");
        self.records += 1;
        if kpi.slot > 0 {
            let end = kpi.time_s + kpi.time_s / kpi.slot as f64;
            if end > self.max_end_s {
                self.max_end_s = end;
            }
        }
        if kpi.time_s > self.max_time_s {
            self.max_time_s = kpi.time_s;
        }
        self.cqi_sum += u64::from(kpi.cqi);

        let bin = self.bin_of(kpi.time_s);
        if bin >= self.bin_records.len() {
            self.bin_records.resize(bin + 1, 0);
        }
        self.bin_records[bin] += 1;
        let bits = u64::from(kpi.delivered_bits);
        match kpi.direction {
            Direction::Dl => {
                if bin >= self.dl_bin_bits.len() {
                    self.dl_bin_bits.resize(bin + 1, 0);
                }
                self.dl_bin_bits[bin] += bits;
                self.dl_bits += bits;
            }
            Direction::Ul => {
                if bin >= self.ul_bin_bits.len() {
                    self.ul_bin_bits.resize(bin + 1, 0);
                }
                self.ul_bin_bits[bin] += bits;
                self.ul_bits += bits;
            }
        }

        if kpi.direction == Direction::Dl && kpi.scheduled {
            self.dl_scheduled += 1;
            if kpi.block_error {
                self.dl_block_errors += 1;
            }
            self.layer_counts[(kpi.layers as usize).min(4)] += 1;
            if !kpi.is_retx {
                self.modulation_grants[modulation_code(kpi.modulation) as usize] += 1;
            }
            let re = u64::from(kpi.n_re);
            let bucket = RE_SKETCH_BOUNDS
                .iter()
                .position(|&b| re <= b)
                .unwrap_or(RE_SKETCH_BOUNDS.len());
            self.re_sketch[bucket] += 1;
        }
    }

    fn finish(&mut self) {
        // Pad the series to the full duration so empty trailing bins are
        // observable, then seal.
        let n_bins = self.n_bins();
        if self.bin_records.len() < n_bins {
            self.bin_records.resize(n_bins, 0);
        }
        if self.dl_bin_bits.len() < n_bins {
            self.dl_bin_bits.resize(n_bins, 0);
        }
        if self.ul_bin_bits.len() < n_bins {
            self.ul_bin_bits.resize(n_bins, 0);
        }
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(slot: u64, direction: Direction, bits: u32) -> SlotKpi {
        SlotKpi {
            slot,
            time_s: slot as f64 * 0.0005,
            carrier: 0,
            direction,
            scheduled: true,
            n_prb: 200,
            n_re: 200 * 144,
            mcs: 18,
            modulation: Modulation::Qam64,
            layers: 4,
            tbs_bits: bits,
            delivered_bits: bits,
            is_retx: false,
            block_error: false,
            cqi: 12,
            sinr_db: 20.0,
            rsrp_dbm: -82.0,
            rsrq_db: -10.5,
            serving_site: 0,
        }
    }

    #[test]
    fn streams_match_posthoc_semantics() {
        let mut agg = OnlineAggregates::new(0.01);
        let mut trace = ran::kpi::KpiTrace::new();
        for i in 0..400u64 {
            let dir = if i % 4 == 0 { Direction::Ul } else { Direction::Dl };
            let r = record(i, dir, 50_000 + (i as u32) * 7);
            agg.push(&r);
            ran::kpi::KpiTrace::push(&mut trace, r);
        }
        agg.finish();
        assert_eq!(agg.records(), 400);
        assert!((agg.duration_s() - trace.duration_s()).abs() < 1e-12);
        for dir in [Direction::Dl, Direction::Ul] {
            assert!(
                (agg.mean_throughput_mbps(dir) - trace.mean_throughput_mbps(dir)).abs() < 1e-9
            );
            let online = agg.throughput_series_mbps(dir);
            let posthoc = trace.throughput_series_mbps(dir, 0.01);
            assert_eq!(online.len(), posthoc.len());
            for (a, b) in online.iter().zip(&posthoc) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
        assert_eq!(agg.modulation_shares(), trace.modulation_shares());
        assert_eq!(agg.layer_shares(), trace.layer_shares());
        assert_eq!(agg.dl_bler(), trace.dl_bler());
        assert!((agg.mean_cqi() - trace.mean_cqi()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_stream() {
        let records: Vec<SlotKpi> =
            (0..300).map(|i| record(i, Direction::Dl, 10_000 + i as u32)).collect();
        let mut whole = OnlineAggregates::new(0.05);
        for r in &records {
            whole.push(r);
        }
        whole.finish();

        let mut left = OnlineAggregates::new(0.05);
        let mut right = OnlineAggregates::new(0.05);
        for r in &records[..100] {
            left.push(r);
        }
        left.finish();
        for r in &records[100..] {
            right.push(r);
        }
        right.finish();
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn gapped_stream_reports_low_bin_coverage() {
        // 400 slots at 0.5 ms over 0.2 s, with slots 100..200 (the second
        // 0.05 s bin) missing — a collector gap.
        let mut agg = OnlineAggregates::new(0.05);
        for i in (0..400u64).filter(|i| !(100..200).contains(i)) {
            agg.push(&record(i, Direction::Dl, 1_000));
        }
        agg.finish();
        let coverage = agg.bin_coverage();
        assert_eq!(coverage.len(), 4);
        assert_eq!(agg.bin_records().iter().sum::<u64>(), 300);
        // Bin boundaries are float divisions, so a boundary slot may land
        // one bin over — assert the gap's shape, not exact counts.
        assert!(coverage[1] < 0.05, "gapped bin must read near-empty: {coverage:?}");
        assert!(agg.min_bin_coverage() < 0.05);
        // A healthy stream reads near-full coverage everywhere.
        let mut healthy = OnlineAggregates::new(0.05);
        for i in 0..400u64 {
            healthy.push(&record(i, Direction::Dl, 1_000));
        }
        healthy.finish();
        assert!(healthy.min_bin_coverage() > 0.9, "{:?}", healthy.bin_coverage());
        // Empty aggregates don't trip coverage assertions.
        assert_eq!(OnlineAggregates::new(1.0).min_bin_coverage(), 1.0);
    }

    #[test]
    fn re_sketch_percentiles_are_bounded() {
        let mut agg = OnlineAggregates::new(1.0);
        for i in 0..100u64 {
            agg.push(&record(i, Direction::Dl, 1_000));
        }
        agg.finish();
        let p50 = agg.re_allocation_percentile(50.0).unwrap();
        // 28 800 REs land in the overflow region of the count bounds.
        assert_eq!(p50, *RE_SKETCH_BOUNDS.last().unwrap());
        assert!(OnlineAggregates::new(1.0).re_allocation_percentile(50.0).is_none());
    }
}
