#![warn(missing_docs)]

//! # analysis — the paper's §5 scaled variability metrics and the
//! time-series machinery behind its cross-layer dissection
//!
//! * [`variability`](mod@variability) — the scaled variability metric V(t) of §5 eq. (1),
//!   evaluated across dyadic time scales (Figs. 12 and 18), plus segment
//!   variability for sub-sequence analysis;
//! * [`timeseries`] — resampling slot-level samples onto coarser grids
//!   (the 60 ms/150 ms views of Figs. 13, 15, 16);
//! * [`stats`] — summary statistics: mean/std, percentiles, CDFs,
//!   boxplot five-number summaries, Pearson correlation;
//! * [`correlation`] — lagged cross-correlation, quantifying the §6.1
//!   "clear lag in the decisions made by BOLA" against the channel.
//!
//! The numeric modules are deliberately free of simulator dependencies:
//! they consume plain `&[f64]` so they can analyse any KPI stream —
//! simulated or real. The one exception is [`online`], which implements
//! `ran`'s streaming `SlotSink` to fold slot records into bounded-memory
//! aggregates as the simulator produces them.

pub mod correlation;
pub mod online;
pub mod stats;
pub mod timeseries;
pub mod variability;

pub use correlation::{autocorrelation, coherence_lag, cross_correlation, peak_lag, LagCorrelation};
pub use online::OnlineAggregates;
pub use stats::{cdf_points, jain_fairness, mean, pearson, percentile, std_dev, BoxplotStats};
pub use timeseries::{bin_average, bin_counts, bin_coverage, bin_sum, Resampled};
pub use variability::{variability, variability_profile, VariabilityPoint};
