//! Time-series resampling: slot-level KPIs onto coarser, regular grids.
//!
//! The paper presents the same underlying slot data at several
//! granularities: 60 ms for the Fig. 13/16 time-series panels, 150 ms for
//! the Fig. 15 variability scatter, seconds for throughput plots. These
//! helpers bin irregular `(time, value)` samples onto a regular grid by
//! averaging (rates, MCS, layers) or summing (bits).

use obs::audit::{self, Invariant};
use serde::{Deserialize, Serialize};

/// A regularly-resampled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resampled {
    /// Bin width, seconds.
    pub bin_s: f64,
    /// One value per bin, starting at t = 0.
    pub values: Vec<f64>,
}

impl Resampled {
    /// Bin-centre timestamps.
    pub fn timestamps(&self) -> Vec<f64> {
        (0..self.values.len()).map(|i| (i as f64 + 0.5) * self.bin_s).collect()
    }
}

/// Number of bins of the `(bin_s, duration_s)` grid, or `None` when the
/// grid is degenerate: non-finite or non-positive `bin_s`, non-finite
/// `duration_s`, or a `duration/bin` ratio that overflows to infinity.
/// Before this guard, `(duration_s / bin_s).ceil() as usize` on any of
/// those inputs saturated to `usize::MAX` and the subsequent
/// `vec![0.0; n_bins]` aborted the process — a latent crash any
/// long-running daemon feeding live durations would eventually trip.
/// Degenerate grids are counted (`timeseries.degenerate_grids`, plus an
/// audit violation under `MIDBAND5G_AUDIT`) and the resamplers return an
/// empty series instead.
fn grid_bins(bin_s: f64, duration_s: f64) -> Option<usize> {
    let ratio = duration_s / bin_s;
    if !bin_s.is_finite() || bin_s <= 0.0 || !duration_s.is_finite() || !ratio.is_finite() {
        obs::registry().counter("timeseries.degenerate_grids").inc();
        if audit::enabled() {
            audit::check(Invariant::ResampleGridDegenerate, false);
        }
        return None;
    }
    Some(ratio.ceil().max(0.0) as usize)
}

/// Average of samples per bin; empty bins repeat the previous bin's value
/// (sample-and-hold, as a plotted KPI line would). Bins *before* the
/// first sample are backfilled with the first real bin's value — seeding
/// the hold with 0.0 would fabricate a zero-KPI ramp at the start of
/// every trace whose first sample lands after bin 0. All-empty input
/// still yields zeros. Samples with non-finite timestamps *or values*
/// are dropped (dropped values are counted under
/// `timeseries.nonfinite_values`): one NaN-corrupted sample — exactly
/// what `measure::fault` injects — would otherwise poison its bin's sum
/// and then every later bin through the hold. A degenerate grid (see
/// [`bin_counts`]) yields an empty series.
pub fn bin_average(samples: &[(f64, f64)], bin_s: f64, duration_s: f64) -> Resampled {
    let Some(n_bins) = grid_bins(bin_s, duration_s) else {
        return Resampled { bin_s, values: Vec::new() };
    };
    let mut sums = vec![0.0; n_bins];
    let mut counts = vec![0u32; n_bins];
    let mut nonfinite = 0u64;
    for &(t, v) in samples {
        if !t.is_finite() || t < 0.0 || n_bins == 0 {
            continue;
        }
        if !v.is_finite() {
            nonfinite += 1;
            continue;
        }
        let b = ((t / bin_s) as usize).min(n_bins - 1);
        sums[b] += v;
        counts[b] += 1;
    }
    count_nonfinite(nonfinite);
    let first_value = (0..n_bins)
        .find(|&b| counts[b] > 0)
        .map_or(0.0, |b| sums[b] / f64::from(counts[b]));
    let mut values = Vec::with_capacity(n_bins);
    let mut last = first_value;
    for b in 0..n_bins {
        if counts[b] > 0 {
            last = sums[b] / f64::from(counts[b]);
        }
        values.push(last);
    }
    audit_resample_len(&values, n_bins);
    Resampled { bin_s, values }
}

/// Sum of samples per bin divided by the bin width — turning per-slot bit
/// counts into a rate series (bits/s when the samples are bits). Applies
/// the same sample-dropping rules as [`bin_average`] (non-finite
/// timestamps and values skipped, degenerate grids empty).
pub fn bin_sum(samples: &[(f64, f64)], bin_s: f64, duration_s: f64) -> Resampled {
    let Some(n_bins) = grid_bins(bin_s, duration_s) else {
        return Resampled { bin_s, values: Vec::new() };
    };
    let mut sums = vec![0.0; n_bins];
    let mut nonfinite = 0u64;
    for &(t, v) in samples {
        if !t.is_finite() || t < 0.0 || n_bins == 0 {
            continue;
        }
        if !v.is_finite() {
            nonfinite += 1;
            continue;
        }
        let b = ((t / bin_s) as usize).min(n_bins - 1);
        sums[b] += v;
    }
    count_nonfinite(nonfinite);
    let values: Vec<f64> = sums.into_iter().map(|s| s / bin_s).collect();
    audit_resample_len(&values, n_bins);
    Resampled { bin_s, values }
}

/// Bump `timeseries.nonfinite_values` by the number of value-dropped
/// samples (one registry lookup per call, none when nothing was dropped).
fn count_nonfinite(n: u64) {
    if n > 0 {
        obs::registry().counter("timeseries.nonfinite_values").add(n);
    }
}

/// Samples landing in each bin of the grid that [`bin_average`] /
/// [`bin_sum`] would produce — the sample-coverage companion of a
/// resampled series. A sample-and-hold average over a gapped trace looks
/// continuous; the counts reveal which bins actually contained data and
/// which merely held the previous value. Uses the same clamping/dropping
/// rules as the resamplers, so indices line up one-to-one.
pub fn bin_counts(samples: &[(f64, f64)], bin_s: f64, duration_s: f64) -> Vec<u64> {
    let Some(n_bins) = grid_bins(bin_s, duration_s) else {
        return Vec::new();
    };
    let mut counts = vec![0u64; n_bins];
    for &(t, v) in samples {
        if !t.is_finite() || t < 0.0 || !v.is_finite() || n_bins == 0 {
            continue;
        }
        let b = ((t / bin_s) as usize).min(n_bins - 1);
        counts[b] += 1;
    }
    counts
}

/// Per-bin sample coverage on the [`bin_average`] grid: each bin's
/// sample count relative to the most-populated bin, in `[0, 1]`. An
/// all-empty input yields all-zero coverage.
pub fn bin_coverage(samples: &[(f64, f64)], bin_s: f64, duration_s: f64) -> Resampled {
    let counts = bin_counts(samples, bin_s, duration_s);
    let densest = counts.iter().copied().max().unwrap_or(0);
    let values = if densest == 0 {
        vec![0.0; counts.len()]
    } else {
        counts.iter().map(|&n| n as f64 / densest as f64).collect()
    };
    Resampled { bin_s, values }
}

/// Count every resample and, under `MIDBAND5G_AUDIT`, verify the output
/// grid has exactly the `ceil(duration/bin)` bins [`grid_bins`] computed.
fn audit_resample_len(values: &[f64], expected: usize) {
    obs::registry().counter("timeseries.resamples").inc();
    if audit::enabled() {
        audit::check(Invariant::ResampleLength, values.len() == expected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_bins_and_holds() {
        let samples = vec![(0.1, 10.0), (0.2, 20.0), (0.9, 50.0)];
        let r = bin_average(&samples, 0.5, 1.5);
        assert_eq!(r.values.len(), 3);
        assert_eq!(r.values[0], 15.0); // mean of the first two
        assert_eq!(r.values[1], 50.0);
        assert_eq!(r.values[2], 50.0); // held
    }

    #[test]
    fn sum_bins_form_rates() {
        // 1000 bits at t=0.1 and 0.3 in a 0.5 s bin → 4000 bits/s.
        let samples = vec![(0.1, 1000.0), (0.3, 1000.0)];
        let r = bin_sum(&samples, 0.5, 1.0);
        assert_eq!(r.values[0], 4000.0);
        assert_eq!(r.values[1], 0.0);
    }

    #[test]
    fn out_of_range_samples_clamped_or_dropped() {
        let samples = vec![(-1.0, 99.0), (10.0, 7.0)];
        let r = bin_average(&samples, 1.0, 2.0);
        // Negative time dropped; far-future sample clamps to the last
        // bin; the leading empty bin backfills from it.
        assert_eq!(r.values[0], 7.0);
        assert_eq!(r.values[1], 7.0);
    }

    #[test]
    fn leading_empty_bins_backfill_from_first_real_bin() {
        // First sample lands in bin 2: bins 0..2 must report the first
        // real value, not a fabricated zero ramp.
        let samples = vec![(1.1, 40.0), (1.3, 60.0), (2.4, 80.0)];
        let r = bin_average(&samples, 0.5, 3.0);
        assert_eq!(r.values.len(), 6);
        assert_eq!(r.values[0], 50.0); // backfilled
        assert_eq!(r.values[1], 50.0); // backfilled
        assert_eq!(r.values[2], 50.0); // mean of the first two samples
        assert_eq!(r.values[3], 50.0); // held
        assert_eq!(r.values[4], 80.0);
        assert_eq!(r.values[5], 80.0); // held
    }

    #[test]
    fn all_empty_input_stays_zero() {
        let r = bin_average(&[], 0.5, 2.0);
        assert_eq!(r.values, vec![0.0; 4]);
    }

    #[test]
    fn non_finite_timestamps_are_dropped() {
        let samples =
            vec![(f64::NAN, 99.0), (f64::INFINITY, 99.0), (f64::NEG_INFINITY, 99.0), (0.1, 5.0)];
        let avg = bin_average(&samples, 1.0, 2.0);
        assert_eq!(avg.values, vec![5.0, 5.0]);
        let sum = bin_sum(&samples, 1.0, 2.0);
        assert_eq!(sum.values, vec![5.0, 0.0]);
    }

    #[test]
    fn timestamps_are_bin_centres() {
        let r = Resampled { bin_s: 0.06, values: vec![0.0; 3] };
        let ts = r.timestamps();
        assert!((ts[0] - 0.03).abs() < 1e-12);
        assert!((ts[2] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn coverage_exposes_held_bins() {
        // bin_average holds through the empty middle bin; coverage tells
        // the two apart.
        let samples = vec![(0.1, 10.0), (0.2, 20.0), (1.1, 30.0)];
        let avg = bin_average(&samples, 0.5, 1.5);
        assert_eq!(avg.values, vec![15.0, 15.0, 30.0]);
        assert_eq!(bin_counts(&samples, 0.5, 1.5), vec![2, 0, 1]);
        let cov = bin_coverage(&samples, 0.5, 1.5);
        assert_eq!(cov.values, vec![1.0, 0.0, 0.5]);
        // Same grid as the resampler, including the clamp/drop rules.
        let weird = vec![(-1.0, 9.0), (f64::NAN, 9.0), (9.0, 9.0)];
        assert_eq!(bin_counts(&weird, 1.0, 2.0), vec![0, 1]);
        assert_eq!(bin_coverage(&[], 0.5, 1.0).values, vec![0.0, 0.0]);
    }

    #[test]
    fn zero_duration_is_empty() {
        assert!(bin_average(&[], 0.5, 0.0).values.is_empty());
        assert!(bin_sum(&[], 0.5, 0.0).values.is_empty());
    }

    #[test]
    fn degenerate_grids_return_empty_instead_of_aborting() {
        // Regression: each of these previously computed
        // `(duration/bin).ceil() as usize == usize::MAX` and aborted the
        // process inside `vec![0.0; n_bins]`.
        let samples = vec![(0.1, 5.0)];
        let before = obs::registry().counter("timeseries.degenerate_grids").get();
        let degenerate: &[(f64, f64)] = &[
            (0.0, 1.0),                 // bin_s == 0
            (-0.5, 1.0),                // bin_s < 0
            (f64::NAN, 1.0),            // NaN bin
            (f64::INFINITY, 1.0),       // infinite bin
            (1.0, f64::NAN),            // NaN duration
            (1.0, f64::INFINITY),       // infinite duration
            (1e-300, 1e300),            // finite inputs, ratio overflows
        ];
        for &(bin_s, duration_s) in degenerate {
            assert!(bin_average(&samples, bin_s, duration_s).values.is_empty());
            assert!(bin_sum(&samples, bin_s, duration_s).values.is_empty());
            assert!(bin_counts(&samples, bin_s, duration_s).is_empty());
            assert!(bin_coverage(&samples, bin_s, duration_s).values.is_empty());
        }
        let counted = obs::registry().counter("timeseries.degenerate_grids").get() - before;
        // 4 entry points x 7 degenerate grids (bin_coverage routes
        // through bin_counts, so it counts once per call).
        assert_eq!(counted, 4 * 7);
    }

    #[test]
    fn degenerate_grid_counts_an_audit_violation() {
        use obs::audit::{self, Invariant};
        let was_enabled = audit::enabled();
        audit::set_enabled(true);
        let before = audit::count(Invariant::ResampleGridDegenerate);
        bin_average(&[], f64::NAN, 1.0);
        assert_eq!(audit::count(Invariant::ResampleGridDegenerate), before + 1);
        audit::set_enabled(was_enabled);
    }

    #[test]
    fn non_finite_values_are_skipped_not_propagated() {
        // Regression: a single NaN value used to turn its bin's sum into
        // NaN, and the sample-and-hold then poisoned every later bin.
        let before = obs::registry().counter("timeseries.nonfinite_values").get();
        let samples = vec![
            (0.1, 10.0),
            (0.2, f64::NAN),      // corrupted sample in bin 0
            (0.6, f64::INFINITY), // bin 1 has only non-finite values
            (1.1, 30.0),
            (1.2, f64::NEG_INFINITY),
        ];
        let avg = bin_average(&samples, 0.5, 1.5);
        // Bin 0 averages the surviving sample; bin 1 is effectively
        // empty and holds; bin 2 averages its surviving sample.
        assert_eq!(avg.values, vec![10.0, 10.0, 30.0]);
        assert!(avg.values.iter().all(|v| v.is_finite()));
        let sum = bin_sum(&samples, 0.5, 1.5);
        assert_eq!(sum.values, vec![20.0, 0.0, 60.0]);
        // The skipped samples are visible in the counter and invisible
        // in the coverage grid (same dropping rules).
        let dropped = obs::registry().counter("timeseries.nonfinite_values").get() - before;
        assert_eq!(dropped, 6); // 3 per resampler call
        assert_eq!(bin_counts(&samples, 0.5, 1.5), vec![1, 0, 1]);
    }
}
