//! Time-series resampling: slot-level KPIs onto coarser, regular grids.
//!
//! The paper presents the same underlying slot data at several
//! granularities: 60 ms for the Fig. 13/16 time-series panels, 150 ms for
//! the Fig. 15 variability scatter, seconds for throughput plots. These
//! helpers bin irregular `(time, value)` samples onto a regular grid by
//! averaging (rates, MCS, layers) or summing (bits).

use serde::{Deserialize, Serialize};

/// A regularly-resampled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resampled {
    /// Bin width, seconds.
    pub bin_s: f64,
    /// One value per bin, starting at t = 0.
    pub values: Vec<f64>,
}

impl Resampled {
    /// Bin-centre timestamps.
    pub fn timestamps(&self) -> Vec<f64> {
        (0..self.values.len()).map(|i| (i as f64 + 0.5) * self.bin_s).collect()
    }
}

/// Average of samples per bin; empty bins repeat the previous bin's value
/// (sample-and-hold, as a plotted KPI line would).
pub fn bin_average(samples: &[(f64, f64)], bin_s: f64, duration_s: f64) -> Resampled {
    let n_bins = (duration_s / bin_s).ceil().max(0.0) as usize;
    let mut sums = vec![0.0; n_bins];
    let mut counts = vec![0u32; n_bins];
    for &(t, v) in samples {
        if t < 0.0 || n_bins == 0 {
            continue;
        }
        let b = ((t / bin_s) as usize).min(n_bins - 1);
        sums[b] += v;
        counts[b] += 1;
    }
    let mut values = Vec::with_capacity(n_bins);
    let mut last = 0.0;
    for b in 0..n_bins {
        if counts[b] > 0 {
            last = sums[b] / f64::from(counts[b]);
        }
        values.push(last);
    }
    Resampled { bin_s, values }
}

/// Sum of samples per bin divided by the bin width — turning per-slot bit
/// counts into a rate series (bits/s when the samples are bits).
pub fn bin_sum(samples: &[(f64, f64)], bin_s: f64, duration_s: f64) -> Resampled {
    let n_bins = (duration_s / bin_s).ceil().max(0.0) as usize;
    let mut sums = vec![0.0; n_bins];
    for &(t, v) in samples {
        if t < 0.0 || n_bins == 0 {
            continue;
        }
        let b = ((t / bin_s) as usize).min(n_bins - 1);
        sums[b] += v;
    }
    Resampled { bin_s, values: sums.into_iter().map(|s| s / bin_s).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_bins_and_holds() {
        let samples = vec![(0.1, 10.0), (0.2, 20.0), (0.9, 50.0)];
        let r = bin_average(&samples, 0.5, 1.5);
        assert_eq!(r.values.len(), 3);
        assert_eq!(r.values[0], 15.0); // mean of the first two
        assert_eq!(r.values[1], 50.0);
        assert_eq!(r.values[2], 50.0); // held
    }

    #[test]
    fn sum_bins_form_rates() {
        // 1000 bits at t=0.1 and 0.3 in a 0.5 s bin → 4000 bits/s.
        let samples = vec![(0.1, 1000.0), (0.3, 1000.0)];
        let r = bin_sum(&samples, 0.5, 1.0);
        assert_eq!(r.values[0], 4000.0);
        assert_eq!(r.values[1], 0.0);
    }

    #[test]
    fn out_of_range_samples_clamped_or_dropped() {
        let samples = vec![(-1.0, 99.0), (10.0, 7.0)];
        let r = bin_average(&samples, 1.0, 2.0);
        // Negative time dropped; far-future sample clamps to the last bin.
        assert_eq!(r.values[0], 0.0);
        assert_eq!(r.values[1], 7.0);
    }

    #[test]
    fn timestamps_are_bin_centres() {
        let r = Resampled { bin_s: 0.06, values: vec![0.0; 3] };
        let ts = r.timestamps();
        assert!((ts[0] - 0.03).abs() < 1e-12);
        assert!((ts[2] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_is_empty() {
        assert!(bin_average(&[], 0.5, 0.0).values.is_empty());
        assert!(bin_sum(&[], 0.5, 0.0).values.is_empty());
    }
}
