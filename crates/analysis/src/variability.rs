//! The scaled variability metric V(t) — paper §5, equation (1).
//!
//! Given samples x₁…xₙ at base granularity τ and a time scale t = k·τ,
//! the sequence is averaged within consecutive blocks of k samples,
//! producing X₁…X_m (m = n/k), and
//!
//! ```text
//! V(t) = 1/(m−1) · Σ_{j=1}^{m−1} |X_{j+1} − X_j|
//! ```
//!
//! — the mean absolute block-to-block variation, a discrete form of
//! bounded variation. Larger V(t) ⇒ the series moves more at scale t.
//! Evaluating V over a ladder of scales (0.5 ms … 2 s in the paper's
//! Fig. 12) reveals at which time scales a 5G channel actually churns.

use serde::{Deserialize, Serialize};

/// One point of a variability-vs-time-scale profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariabilityPoint {
    /// The time scale t in seconds.
    pub timescale_s: f64,
    /// V(t).
    pub variability: f64,
    /// Number of blocks m the estimate is based on.
    pub blocks: usize,
}

/// V(t) for a block size of `block` base samples.
///
/// Returns `None` when fewer than two complete blocks exist (the metric
/// needs at least one difference). Trailing samples that do not fill a
/// block are dropped, as in the paper's power-of-two formulation.
pub fn variability(samples: &[f64], block: usize) -> Option<f64> {
    if block == 0 {
        return None;
    }
    let m = samples.len() / block;
    if m < 2 {
        return None;
    }
    let block_mean = |j: usize| -> f64 {
        let start = j * block;
        samples[start..start + block].iter().sum::<f64>() / block as f64
    };
    let mut sum = 0.0;
    let mut prev = block_mean(0);
    for j in 1..m {
        let cur = block_mean(j);
        sum += (cur - prev).abs();
        prev = cur;
    }
    Some(sum / (m - 1) as f64)
}

/// V(t) over a dyadic ladder of scales: t = τ, 2τ, 4τ, … while at least
/// `min_blocks` blocks remain. `tau_s` is the base sample period.
pub fn variability_profile(
    samples: &[f64],
    tau_s: f64,
    min_blocks: usize,
) -> Vec<VariabilityPoint> {
    let mut out = Vec::new();
    let mut block = 1usize;
    loop {
        let m = samples.len() / block;
        if m < min_blocks.max(2) {
            break;
        }
        if let Some(v) = variability(samples, block) {
            out.push(VariabilityPoint {
                timescale_s: block as f64 * tau_s,
                variability: v,
                blocks: m,
            });
        }
        block = block.checked_mul(2).expect("block sizes stay small");
    }
    out
}

/// Segment a long series into `segments` equal sub-sequences and return
/// V(t) per segment — the paper's sub-sequence variability analysis.
pub fn segment_variability(samples: &[f64], block: usize, segments: usize) -> Vec<Option<f64>> {
    if segments == 0 {
        return Vec::new();
    }
    let seg_len = samples.len() / segments;
    (0..segments)
        .map(|i| variability(&samples[i * seg_len..(i + 1) * seg_len], block))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_zero_variability() {
        let x = vec![5.0; 1024];
        for block in [1, 2, 8, 64] {
            assert_eq!(variability(&x, block), Some(0.0));
        }
    }

    #[test]
    fn alternating_series_variability_collapses_with_scale() {
        // +1,−1,+1,−1 … : V(τ) = 2; averaged in pairs the blocks are all 0,
        // so V(2τ) = 0. The metric captures exactly this scale-dependence.
        let x: Vec<f64> = (0..1024).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert_eq!(variability(&x, 1), Some(2.0));
        assert_eq!(variability(&x, 2), Some(0.0));
    }

    #[test]
    fn slow_ramp_keeps_variability_across_scales() {
        // A linear ramp: block means differ by block·slope, and dividing by
        // (m−1) normalises — V(t) grows linearly with t for a trend.
        let x: Vec<f64> = (0..1024).map(|i| i as f64 * 0.01).collect();
        let v1 = variability(&x, 1).unwrap();
        let v4 = variability(&x, 4).unwrap();
        assert!((v1 - 0.01).abs() < 1e-12);
        assert!((v4 - 0.04).abs() < 1e-12);
    }

    #[test]
    fn too_short_series_yields_none() {
        assert_eq!(variability(&[1.0], 1), None);
        assert_eq!(variability(&[1.0, 2.0, 3.0], 2), None);
        assert_eq!(variability(&[1.0, 2.0], 0), None);
    }

    #[test]
    fn profile_covers_dyadic_ladder() {
        let x: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.1).sin()).collect();
        let profile = variability_profile(&x, 0.0005, 4);
        assert!(!profile.is_empty());
        // Scales double.
        for w in profile.windows(2) {
            assert!((w[1].timescale_s / w[0].timescale_s - 2.0).abs() < 1e-12);
        }
        // First scale is the base period.
        assert_eq!(profile[0].timescale_s, 0.0005);
        // Every point keeps at least min_blocks blocks.
        for p in &profile {
            assert!(p.blocks >= 4);
        }
    }

    #[test]
    fn noisier_series_has_higher_variability() {
        // The §5 claim in miniature: same mean, different churn.
        let calm: Vec<f64> = (0..2048).map(|i| 100.0 + (i as f64 * 0.01).sin()).collect();
        let churny: Vec<f64> =
            (0..2048).map(|i| 100.0 + 30.0 * (i as f64 * 1.7).sin()).collect();
        for block in [1, 4, 16] {
            assert!(
                variability(&churny, block).unwrap() > variability(&calm, block).unwrap(),
                "block {block}"
            );
        }
    }

    #[test]
    fn segments_partition_the_series() {
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let segs = segment_variability(&x, 1, 4);
        assert_eq!(segs.len(), 4);
        // Each segment of the ramp has the same slope → same V.
        for s in &segs {
            assert!((s.unwrap() - 1.0).abs() < 1e-12);
        }
    }
}
