//! Summary statistics: the aggregate views the paper plots before arguing
//! (§5) that aggregates alone are not enough.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1); 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linear-interpolated percentile, p ∈ [0, 100]. NaN samples are
/// excluded; `None` on empty or all-NaN input. Sorting uses
/// [`f64::total_cmp`], so a stray NaN can never panic the comparator —
/// real traces carry NaN rate samples wherever a bin had no records.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    if frac == 0.0 {
        // Exact rank: return the sample itself. The blend below would
        // turn an infinite endpoint into `inf * 0.0 = NaN`.
        return Some(sorted[lo]);
    }
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// `(value, cumulative fraction)` points of the empirical CDF — the form
/// of the paper's Fig. 3. NaN samples are excluded (all-NaN input yields
/// an empty CDF); ordering uses [`f64::total_cmp`].
pub fn cdf_points(xs: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
        .collect()
}

/// Jain's fairness index, `(Σx)² / (n·Σx²)` — the standard measure of how
/// evenly a cell's capacity is shared (1 = perfectly even, 1/n = one user
/// takes everything). Defined for non-negative allocations (per-UE
/// throughputs); returns 0 for empty or all-zero input.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// Pearson correlation coefficient; `None` when either side is degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Five-number summary plus mean — what each box of the paper's Figs. 1,
/// 9, 10, 11 shows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean (the annotation above each box in the paper).
    pub mean: f64,
    /// Sample count.
    pub n: usize,
}

impl BoxplotStats {
    /// Compute from samples. NaN samples are excluded and `n` counts
    /// only the samples used; `None` on empty or all-NaN input.
    pub fn from_samples(xs: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        if finite.is_empty() {
            return None;
        }
        Some(BoxplotStats {
            min: percentile(&finite, 0.0)?,
            q1: percentile(&finite, 25.0)?,
            median: percentile(&finite, 50.0)?,
            q3: percentile(&finite, 75.0)?,
            max: percentile(&finite, 100.0)?,
            mean: mean(&finite),
            n: finite.len(),
        })
    }
}

impl std::fmt::Display for BoxplotStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1} [min {:.1} | q1 {:.1} | med {:.1} | q3 {:.1} | max {:.1}] (n={})",
            self.mean, self.min, self.q1, self.median, self.q3, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.138).abs() < 0.001);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let cdf = cdf_points(&xs);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
    }

    #[test]
    fn pearson_signs() {
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &vec![1.0; 50]), None);
        assert_eq!(pearson(&x[..3], &y[..4]), None);
    }

    #[test]
    fn nan_samples_are_filtered_not_fatal() {
        // Pre-fix, any NaN panicked the partial_cmp comparator.
        let xs = [f64::NAN, 3.0, 1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&xs, 50.0), Some(2.0));
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), None);

        let cdf = cdf_points(&xs);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.last().unwrap(), &(3.0, 1.0));
        assert!(cdf_points(&[f64::NAN]).is_empty());

        let b = BoxplotStats::from_samples(&xs).unwrap();
        assert_eq!(b.n, 3);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 3.0);
        assert_eq!(b.mean, 2.0);
        assert!(BoxplotStats::from_samples(&[f64::NAN]).is_none());
    }

    #[test]
    fn infinities_order_correctly() {
        let xs = [f64::INFINITY, 1.0, f64::NEG_INFINITY];
        assert_eq!(percentile(&xs, 0.0), Some(f64::NEG_INFINITY));
        assert_eq!(percentile(&xs, 100.0), Some(f64::INFINITY));
        assert_eq!(percentile(&xs, 50.0), Some(1.0));
    }

    #[test]
    fn jain_index_brackets_evenness() {
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        // One user takes everything: index collapses to 1/n.
        let skewed = [100.0, 0.0, 0.0, 0.0];
        assert!((jain_fairness(&skewed) - 0.25).abs() < 1e-12);
        // Two equal of four active: (2x)²/(4·2x²) = 1/2.
        assert!((jain_fairness(&[3.0, 3.0, 0.0, 0.0]) - 0.5).abs() < 1e-12);
        assert_eq!(jain_fairness(&[]), 0.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 0.0);
        // Scale invariance.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 7.5).collect();
        assert!((jain_fairness(&xs) - jain_fairness(&scaled)).abs() < 1e-12);
    }

    #[test]
    fn boxplot_summary() {
        let xs: Vec<f64> = (1..=101).map(f64::from).collect();
        let b = BoxplotStats::from_samples(&xs).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 51.0);
        assert_eq!(b.max, 101.0);
        assert_eq!(b.mean, 51.0);
        assert_eq!(b.n, 101);
        assert!(BoxplotStats::from_samples(&[]).is_none());
    }
}
