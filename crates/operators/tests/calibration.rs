//! Calibration tests: the simulated operators must reproduce the paper's
//! *orderings and contrasts* (absolute field numbers are not a target —
//! see EXPERIMENTS.md).
//!
//! `cargo test -p operators --test calibration -- --ignored --nocapture`
//! prints the full calibration report used to tune the profiles.

use operators::Operator;
use radio_channel::geometry::Position;
use radio_channel::mobility::MobilityModel;
use radio_channel::rng::SeedTree;
use ran::carrier::TrafficPattern;
use ran::kpi::{Direction, KpiTrace};
use ran::sim::UeSimConfig;

/// The operator's measurement position for session `i`: the campaign
/// rotates over the city's shared study spots this operator serves.
fn session_position(op: Operator, session: u64) -> Position {
    let spots = op.profile().measurement_spots();
    spots[(session as usize) % spots.len()]
}

/// Run one stationary full-buffer session and return the trace.
fn run_session(op: Operator, seed: u64, duration_s: f64) -> KpiTrace {
    let profile = op.profile();
    let pos = session_position(op, seed);
    // Environment seeds are shared per city: two operators measured at
    // the same spot see the same shadowing field, as in reality.
    let seeds = SeedTree::new(seed).child(profile.city);
    let mut sim = profile.build_ue_sim(
        MobilityModel::Stationary { position: pos },
        UeSimConfig { traffic: TrafficPattern::BOTH, routing: profile.routing },
        &seeds,
    );
    sim.run(duration_s)
}

/// Average DL/UL Mbps over seeded sessions rotating across study spots.
fn mean_tput(op: Operator, n_sessions: u64, duration_s: f64) -> (f64, f64) {
    let mut dl = 0.0;
    let mut ul = 0.0;
    for s in 0..n_sessions {
        let t = run_session(op, 1000 + s, duration_s);
        dl += t.mean_throughput_mbps(Direction::Dl);
        // UL includes the LTE leg when routed there — but for Fig. 9/10 we
        // want the NR UL only; filter by carrier.
        let nr_ul: KpiTrace =
            t.iter().filter(|r| r.carrier != ran::lte::LTE_CARRIER_INDEX).collect();
        ul += nr_ul.mean_throughput_mbps(Direction::Ul);
    }
    (dl / n_sessions as f64, ul / n_sessions as f64)
}

#[test]
fn spain_inversion_reproduced() {
    // §4.1: O_Sp's 100 MHz channel loses to both 90 MHz channels.
    let (osp100, _) = mean_tput(Operator::OrangeSpain100, 3, 8.0);
    let (osp90, _) = mean_tput(Operator::OrangeSpain90, 3, 8.0);
    let (vsp, _) = mean_tput(Operator::VodafoneSpain, 3, 8.0);
    assert!(vsp > osp100, "V_Sp {vsp} must beat O_Sp100 {osp100}");
    assert!(osp90 > osp100, "O_Sp90 {osp90} must beat O_Sp100 {osp100}");
}

#[test]
fn vodafone_italy_leads_europe() {
    // Fig. 1: V_It's 80 MHz tops the EU DL ranking.
    let (vit, _) = mean_tput(Operator::VodafoneItaly, 3, 8.0);
    let (tge, _) = mean_tput(Operator::TelekomGermany, 3, 8.0);
    let (ofr, _) = mean_tput(Operator::OrangeFrance, 3, 8.0);
    assert!(vit > tge, "V_It {vit} vs T_Ge {tge}");
    assert!(vit > ofr, "V_It {vit} vs O_Fr {ofr}");
}

#[test]
fn eu_dl_throughput_in_plausible_band() {
    // All EU operators land in the few-hundred-Mbps to ~1 Gbps band of
    // Fig. 1 at good coverage.
    for op in [Operator::VodafoneSpain, Operator::OrangeSpain100, Operator::VodafoneItaly] {
        let (dl, ul) = mean_tput(op, 2, 8.0);
        assert!(dl > 250.0 && dl < 1300.0, "{op}: DL {dl}");
        assert!(ul < 130.0, "{op}: UL {ul} must stay below 120 Mbps (§4.2)");
    }
}

#[test]
fn us_ca_boosts_beyond_1gbps() {
    // Fig. 1 right panel: T-Mobile and Verizon land around/above 1 Gbps
    // via CA, AT&T trails far behind. Averaged over the spot rotation.
    let (tmb, _) = mean_tput(Operator::TMobileUs, 8, 6.0);
    let (vzw, _) = mean_tput(Operator::VerizonUs, 8, 6.0);
    let (att, _) = mean_tput(Operator::AttUs, 8, 6.0);
    assert!(tmb > 800.0, "Tmb {tmb}");
    assert!(vzw > att * 1.8, "Vzw {vzw} vs Att {att}");
    assert!(tmb > att * 1.8, "Tmb {tmb} vs Att {att}");
    assert!(att < 650.0, "Att {att}");
}

#[test]
fn ul_ordering_contrasts() {
    // Fig. 9 extremes: O_Sp90 strongest EU UL, V_Ge weakest.
    let (_, osp90) = mean_tput(Operator::OrangeSpain90, 3, 8.0);
    let (_, vge) = mean_tput(Operator::VodafoneGermany, 3, 8.0);
    let (_, vit) = mean_tput(Operator::VodafoneItaly, 3, 8.0);
    assert!(osp90 > vge * 2.0, "O_Sp90 {osp90} vs V_Ge {vge}");
    assert!(vit > vge, "V_It {vit} vs V_Ge {vge}");
}

#[test]
fn tmobile_nr_ul_is_idle_under_lte_routing() {
    let t = run_session(Operator::TMobileUs, 7, 4.0);
    let nr_ul_bits: u64 = t
        .iter()
        .filter(|r| r.direction == Direction::Ul && r.carrier != ran::lte::LTE_CARRIER_INDEX)
        .map(|r| r.delivered_bits as u64)
        .sum();
    assert_eq!(nr_ul_bits, 0, "T-Mobile routes UL to LTE");
    let lte_bits: u64 = t
        .iter()
        .filter(|r| r.carrier == ran::lte::LTE_CARRIER_INDEX)
        .map(|r| r.delivered_bits as u64)
        .sum();
    assert!(lte_bits > 0);
}

/// Pool layer/modulation statistics over the spot rotation.
fn pooled_trace(op: Operator, n_sessions: u64, duration_s: f64) -> KpiTrace {
    let mut t = KpiTrace::new();
    for s in 0..n_sessions {
        t.extend(run_session(op, 2000 + s, duration_s).iter());
    }
    t
}

#[test]
fn rank_distributions_follow_coverage() {
    // Fig. 6: V_Sp uses 4 layers most of the time (87.1% in the paper);
    // O_Sp100's sparse grid keeps it mostly at rank 3 (74.1%).
    let vsp = pooled_trace(Operator::VodafoneSpain, 8, 6.0).layer_shares();
    let osp100 = pooled_trace(Operator::OrangeSpain100, 8, 6.0).layer_shares();
    assert!(vsp[4] > 0.6, "V_Sp rank-4 share {}", vsp[4]);
    assert!(osp100[4] < 0.45, "O_Sp100 rank-4 share {}", osp100[4]);
    assert!(osp100[3] > 0.3, "O_Sp100 rank-3 share {}", osp100[3]);
    assert!(vsp[4] > osp100[4] + 0.25, "contrast: {} vs {}", vsp[4], osp100[4]);
}

#[test]
fn modulation_shares_follow_mcs_cap() {
    use nr_phy::mcs::Modulation;
    // Fig. 5: O_Sp100 never uses 256QAM; the 90 MHz channels use it for a
    // minority of grants (paper: ~8%).
    let osp100 = pooled_trace(Operator::OrangeSpain100, 12, 6.0);
    for (m, share) in osp100.modulation_shares() {
        assert!(
            m != Modulation::Qam256 || share == 0.0,
            "O_Sp100 256QAM share {share}"
        );
    }
    let vsp = pooled_trace(Operator::VodafoneSpain, 12, 6.0);
    let q256 = vsp
        .modulation_shares()
        .iter()
        .find(|(m, _)| *m == Modulation::Qam256)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    assert!(q256 < 0.5, "256QAM stays a minority share, got {q256}");
    let q16_down: f64 = vsp
        .modulation_shares()
        .iter()
        .filter(|(m, _)| *m < Modulation::Qam64)
        .map(|(_, s)| *s)
        .sum();
    let _ = q16_down;
    let q64 = vsp
        .modulation_shares()
        .iter()
        .find(|(m, _)| *m == Modulation::Qam64)
        .map(|(_, s)| *s)
        .unwrap_or(0.0);
    assert!(q64 > q256 * 0.8, "64QAM region competitive with 256QAM: {q64} vs {q256}");
}

/// Full calibration report (not asserted; for tuning).
#[test]
#[ignore = "manual calibration report"]
fn calibration_report() {
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>6} | rank shares 1-4 | modulation",
        "operator", "DL Mbps", "UL Mbps", "ULg Mbps", "CQI"
    );
    for op in Operator::ALL_MIDBAND {
        let (dl, ul) = mean_tput(op, 12, 5.0);
        // Shares/CQI pooled over the same sessions (ratios are unaffected
        // by pooling); the CQI-conditioned UL is computed per session and
        // averaged over the sessions that have qualifying bins.
        let mut t = KpiTrace::new();
        let mut ul_good_sum = 0.0;
        let mut ul_good_n = 0u32;
        for s in 0..12u64 {
            let session = run_session(op, 1000 + s, 5.0);
            let nr_only: KpiTrace = session
                .iter()
                .filter(|r| r.carrier != ran::lte::LTE_CARRIER_INDEX)
                .collect();
            if let Some(v) = nr_only.mean_throughput_mbps_where_cqi(Direction::Ul, 0.1, 12) {
                ul_good_sum += v;
                ul_good_n += 1;
            }
            t.extend(session.iter());
        }
        let shares = t.layer_shares();
        let ul_good = if ul_good_n > 0 { ul_good_sum / f64::from(ul_good_n) } else { 0.0 };
        let mods: Vec<String> = t
            .modulation_shares()
            .iter()
            .map(|(m, s)| format!("{m}:{:.0}%", s * 100.0))
            .collect();
        println!(
            "{:<12} {:>9.1} {:>9.1} {:>9.1} {:>6.1} | {:.2} {:.2} {:.2} {:.2} | {}",
            op.acronym(),
            dl,
            ul,
            ul_good,
            t.mean_cqi(),
            shares[1],
            shares[2],
            shares[3],
            shares[4],
            mods.join(" ")
        );
    }
}
