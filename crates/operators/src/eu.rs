//! European operator profiles (paper Table 2).
//!
//! All eight deployments use n78 TDD at 30 kHz with a single carrier (no
//! CA). They differ in channel bandwidth, TDD frame structure (§4.3),
//! maximum modulation (§4.1), coverage density (Appendix 10.3) and uplink
//! resource policy (§4.2). The calibration targets quoted per profile are
//! the paper's reported values; `cargo test -p operators -- --ignored
//! calibration_report --nocapture` prints the simulated equivalents.

use crate::profile::{CarrierProfile, CoverageProfile, OperatorProfile};
use nr_phy::cqi::{CqiTable, CqiToMcsPolicy};
use nr_phy::mcs::McsTable;
use nr_phy::tdd::{SpecialSlotConfig, TddPattern};
use radio_channel::geometry::DeploymentLayout;
use radio_channel::link::RankProfile;
use ran::config::{CellConfig, UplinkRouting};
use ran::lte::LteConfig;

/// Special slot with no UL symbols (V_It's DL-heaviest configuration).
const S_NO_UL: SpecialSlotConfig =
    SpecialSlotConfig { dl_symbols: 12, guard_symbols: 2, ul_symbols: 0 };

/// Shared EU baseline: NSA with an LTE anchor, NR-preferred UL.
fn eu_base(
    display_name: &'static str,
    country: &'static str,
    city: &'static str,
    cell: CellConfig,
    sinr_offset_db: f64,
    rician_k_db: f64,
    coverage: CoverageProfile,
) -> OperatorProfile {
    OperatorProfile {
        display_name,
        country,
        city,
        carriers: vec![CarrierProfile { cell, sinr_offset_db, rician_k_db }],
        nsa: true,
        routing: UplinkRouting::NrAboveCqi { threshold: 5 },
        lte: Some(LteConfig::default()),
        coverage,
        ca_description: "No",
        table_bandwidth_label: None,
        table_nrb_label: None,
    }
}

/// Rank thresholds of a dense, richly-scattering urban deployment: rank 4
/// sustainable from the mid-teens of SINR (what 87% rank-4 usage at
/// field-typical SINRs implies).
fn dense_rank_profile() -> RankProfile {
    RankProfile { rank2_db: 3.0, rank3_db: 7.0, rank4_db: 10.0, hysteresis_db: 1.0 }
}

fn dense_coverage() -> CoverageProfile {
    CoverageProfile {
        layout: DeploymentLayout::three_site_dense(),
        rank_profile: dense_rank_profile(),
        neighbor_load: 0.5,
    }
}

fn sparse_coverage() -> CoverageProfile {
    CoverageProfile {
        layout: DeploymentLayout::two_site_sparse(),
        rank_profile: RankProfile { rank2_db: 4.0, rank3_db: 9.0, rank4_db: 15.0, hysteresis_db: 1.0 },
        neighbor_load: 0.5,
    }
}

/// Vodafone Spain (Madrid), 90 MHz n78.
///
/// Paper targets: DL mean 743 Mbps (771 at CQI ≥ 12), UL 55.6 Mbps,
/// rank-4 usage 87.1%, 256QAM share ~7.6%. Three-site coverage
/// (Appendix 10.3) gives it the best RSRQ of the Madrid pair.
pub fn vodafone_spain() -> OperatorProfile {
    let mut cell = CellConfig::midband(90, "DDDSU");
    // Conservative vendor CQI->MCS mapping (the paper: 256QAM used for
    // only ~7.6% of grants even on 256QAM-capable channels).
    cell.mcs_policy.index_offset = -3;
    cell.ul_rb_fraction = 0.75;
    cell.ul_max_mcs = 24;
    eu_base("Vodafone Spain", "Spain", "Madrid", cell, 5.0, 7.0, dense_coverage())
}

/// Orange Spain (Madrid), 90 MHz n78 — the RAN-sharing twin of Vodafone's
/// channel (Appendix 10.1 concludes Orange uses Vodafone spectrum).
///
/// Paper targets: DL mean 713 Mbps (759.7 at CQI ≥ 12), UL 95.6 Mbps
/// (highest EU UL), rank-4 usage 83.8%.
pub fn orange_spain_90() -> OperatorProfile {
    let mut cell = CellConfig::midband(90, "DDDSU");
    cell.mcs_policy.index_offset = -3;
    cell.ul_rb_fraction = 0.7;
    cell.ul_max_mcs = 20;
    cell.max_ul_layers = 2;
    eu_base("Orange Spain (90 MHz)", "Spain", "Madrid", cell, 4.5, 7.0, dense_coverage())
}

/// Orange Spain (Madrid), 100 MHz n78 — the paper's §4.1 case study: the
/// *widest* EU channel with the *lowest* Spanish throughput.
///
/// Paper targets: DL mean 614.7 Mbps (557.4 at CQI ≥ 12), UL 64.3 Mbps,
/// 64QAM maximum modulation (98% of grants), rank 3 dominant (74.1%),
/// two-site coverage, highest §5 variability.
pub fn orange_spain_100() -> OperatorProfile {
    let mut cell = CellConfig::midband(100, "DDDSU");
    // The 64QAM cap: CQI still reported on Table 2, scheduling from the
    // 64QAM MCS table.
    cell.mcs_policy = CqiToMcsPolicy {
        cqi_table: CqiTable::Table2,
        mcs_table: McsTable::Qam64,
        index_offset: 0,
    };
    cell.ul_rb_fraction = 0.8;
    cell.ul_max_mcs = 24;
    let coverage = CoverageProfile {
        layout: DeploymentLayout::two_site_sparse(),
        // Sparse macro grid: rank 4 rarely sustainable (higher thresholds).
        // Rank in a sparse macro grid is scattering-limited, not
        // SNR-limited: even good-SINR periods rarely sustain 4 streams
        // (the paper's Fig. 6: 13.8% rank-4 overall, yet its Fig. 2 shows
        // O_Sp100 trailing even under CQI >= 12).
        rank_profile: RankProfile {
            rank2_db: 2.0,
            rank3_db: 5.0,
            rank4_db: 26.0,
            hysteresis_db: 1.0,
        },
        neighbor_load: 0.5,
    };
    eu_base("Orange Spain (100 MHz)", "Spain", "Madrid", cell, 1.0, 5.0, coverage)
}

/// Orange France (Paris), 90 MHz n78, the French `DDDSUUDDDD` pattern.
///
/// Paper targets: DL mean 627.1 Mbps, UL 53.6 Mbps, user-plane latency
/// 5.33 ms (BLER = 0).
pub fn orange_france() -> OperatorProfile {
    let mut cell = CellConfig::midband(90, "DDDSUUDDDD");
    cell.ul_rb_fraction = 0.8;
    cell.ul_max_mcs = 24;
    eu_base("Orange France", "France", "Paris", cell, 1.5, 6.0, sparse_coverage())
}

/// SFR France (Paris), 80 MHz n78.
///
/// Paper targets: UL 31.1 Mbps; DL not reported in Fig. 1.
pub fn sfr_france() -> OperatorProfile {
    let mut cell = CellConfig::midband(80, "DDDSUUDDDD");
    cell.ul_rb_fraction = 0.5;
    cell.ul_max_mcs = 22;
    eu_base("SFR France", "France", "Paris", cell, 2.0, 6.0, sparse_coverage())
}

/// Vodafone Italy (Rome), 80 MHz n78 — the EU throughput leader despite
/// the narrowest bandwidth: DL-heaviest pattern (`DDDDDDDSUU` with a
/// UL-free special slot) and the most stable channel (§5: lowest MCS and
/// MIMO variability).
///
/// Paper targets: DL mean 809.8 Mbps, UL 88.0 Mbps, latency 6.93 ms
/// (worst §4.3), V(2s) of throughput 42.3 ± 5.6 Mbps (lowest).
pub fn vodafone_italy() -> OperatorProfile {
    let mut cell = CellConfig::midband(80, "DDDDDDDSUU");
    cell.tdd = Some(TddPattern::parse("DDDDDDDSUU", S_NO_UL).expect("static pattern"));
    cell.max_ul_layers = 2;
    cell.ul_rb_fraction = 0.7;
    cell.ul_max_mcs = 24;
    eu_base("Vodafone Italy", "Italy", "Rome", cell, 8.0, 10.0, dense_coverage())
}

/// Deutsche Telekom (Munich), 90 MHz n78.
///
/// Paper targets: DL mean 601.1 Mbps, UL 35.2 Mbps, latency 2.48 ms.
pub fn telekom_germany() -> OperatorProfile {
    let mut cell = CellConfig::midband(90, "DDDSU");
    cell.ul_rb_fraction = 0.55;
    cell.ul_max_mcs = 22;
    eu_base("Deutsche Telekom", "Germany", "Munich", cell, 4.5, 6.0, sparse_coverage())
}

/// Vodafone Germany (Munich), 80 MHz n78 — the latency champion
/// (`DDDSU` with a balanced special slot: 2.13 ms) but the weakest EU
/// uplink (23.8 Mbps: tight UL RB policy).
pub fn vodafone_germany() -> OperatorProfile {
    let mut cell = CellConfig::midband(80, "DDDSU");
    cell.tdd =
        Some(TddPattern::parse("DDDSU", SpecialSlotConfig::BALANCED).expect("static pattern"));
    cell.ul_rb_fraction = 0.35;
    cell.ul_max_mcs = 20;
    eu_base("Vodafone Germany", "Germany", "Munich", cell, 2.5, 7.0, dense_coverage())
}
