#![warn(missing_docs)]

//! # operators — the deployment landscape of the paper's Tables 2 and 3
//!
//! One [`Operator`] per studied carrier-deployment, each carrying:
//!
//! * the *published* configuration the paper extracted over the air —
//!   band, channel bandwidth, N_RB, SCS, duplexing, CA combination
//!   (Tables 2–3, Appendix 10.1);
//! * the *behavioural* configuration its analysis inferred — maximum
//!   modulation (O_Sp's 100 MHz channel caps at 64QAM), vendor CQI→MCS
//!   mapping, TDD frame structure (§4.3), NSA uplink routing (§4.2),
//!   UL resource policy;
//! * a *coverage profile* — deployment density and link-quality offsets —
//!   calibrated so the simulated KPI distributions reproduce the paper's
//!   reported orderings (Figs. 1–12). Calibration targets are quoted in
//!   the doc comment of each profile constructor.
//!
//! Orange Spain appears twice (its 90 and 100 MHz channels) exactly as the
//! paper treats them; Verizon's FR2 deployment is included for the §7
//! mmWave comparison.

pub mod profile;

mod eu;
mod mmwave;
mod us;

pub use profile::{CarrierProfile, CoverageProfile, OperatorProfile};

use serde::{Deserialize, Serialize};

/// Every deployment the study measures (plus Verizon's mmWave for §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// Orange Spain, 100 MHz n78 channel (Madrid).
    OrangeSpain100,
    /// Orange Spain, 90 MHz n78 channel (Madrid).
    OrangeSpain90,
    /// Vodafone Spain, 90 MHz n78 (Madrid).
    VodafoneSpain,
    /// Orange France, 90 MHz n78 (Paris).
    OrangeFrance,
    /// SFR France, 80 MHz n78 (Paris).
    SfrFrance,
    /// Vodafone Italy, 80 MHz n78 (Rome).
    VodafoneItaly,
    /// Deutsche Telekom, 90 MHz n78 (Munich).
    TelekomGermany,
    /// Vodafone Germany, 80 MHz n78 (Munich).
    VodafoneGermany,
    /// T-Mobile US, n41 100+40 MHz + n25 FDD CA (Chicago).
    TMobileUs,
    /// Verizon US, 60 MHz C-band + low-band CA (Chicago).
    VerizonUs,
    /// AT&T US, 40 MHz C-band (Chicago).
    AttUs,
    /// Verizon US mmWave (n261) — the §7 comparison deployment.
    VerizonMmwaveUs,
}

impl Operator {
    /// All mid-band deployments of Tables 2–3, in the tables' order.
    pub const ALL_MIDBAND: [Operator; 11] = [
        Operator::OrangeSpain100,
        Operator::OrangeSpain90,
        Operator::VodafoneSpain,
        Operator::OrangeFrance,
        Operator::SfrFrance,
        Operator::VodafoneItaly,
        Operator::TelekomGermany,
        Operator::VodafoneGermany,
        Operator::TMobileUs,
        Operator::VerizonUs,
        Operator::AttUs,
    ];

    /// The European subset (Table 2).
    pub const EU: [Operator; 8] = [
        Operator::OrangeSpain100,
        Operator::OrangeSpain90,
        Operator::VodafoneSpain,
        Operator::OrangeFrance,
        Operator::SfrFrance,
        Operator::VodafoneItaly,
        Operator::TelekomGermany,
        Operator::VodafoneGermany,
    ];

    /// The U.S. subset (Table 3).
    pub const US: [Operator; 3] = [Operator::TMobileUs, Operator::VerizonUs, Operator::AttUs];

    /// The paper's short acronym, e.g. `O_Sp [100]`.
    pub fn acronym(self) -> &'static str {
        match self {
            Operator::OrangeSpain100 => "O_Sp[100]",
            Operator::OrangeSpain90 => "O_Sp[90]",
            Operator::VodafoneSpain => "V_Sp",
            Operator::OrangeFrance => "O_Fr",
            Operator::SfrFrance => "S_Fr",
            Operator::VodafoneItaly => "V_It",
            Operator::TelekomGermany => "T_Ge",
            Operator::VodafoneGermany => "V_Ge",
            Operator::TMobileUs => "Tmb_US",
            Operator::VerizonUs => "Vzw_US",
            Operator::AttUs => "Att_US",
            Operator::VerizonMmwaveUs => "Vzw_mmW",
        }
    }

    /// Build the full profile.
    pub fn profile(self) -> OperatorProfile {
        match self {
            Operator::OrangeSpain100 => eu::orange_spain_100(),
            Operator::OrangeSpain90 => eu::orange_spain_90(),
            Operator::VodafoneSpain => eu::vodafone_spain(),
            Operator::OrangeFrance => eu::orange_france(),
            Operator::SfrFrance => eu::sfr_france(),
            Operator::VodafoneItaly => eu::vodafone_italy(),
            Operator::TelekomGermany => eu::telekom_germany(),
            Operator::VodafoneGermany => eu::vodafone_germany(),
            Operator::TMobileUs => us::tmobile(),
            Operator::VerizonUs => us::verizon(),
            Operator::AttUs => us::att(),
            Operator::VerizonMmwaveUs => mmwave::verizon_mmwave(),
        }
    }
}

impl std::fmt::Display for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.acronym())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_phy::band::{Band, DuplexMode};

    #[test]
    fn table2_configs_match_paper() {
        // All EU operators: n78, TDD, 30 kHz SCS, no CA.
        for op in Operator::EU {
            let p = op.profile();
            assert_eq!(p.carriers.len(), 1, "{op}: EU operators have not deployed CA");
            let c = &p.carriers[0];
            assert_eq!(c.cell.band, Band::N78, "{op}");
            assert_eq!(c.cell.duplex_mode(), DuplexMode::Tdd, "{op}");
            assert_eq!(c.cell.numerology.scs_khz(), 30, "{op}");
        }
        // Bandwidths and N_RB per Table 2.
        let expect = [
            (Operator::OrangeSpain100, 100, 273),
            (Operator::OrangeSpain90, 90, 245),
            (Operator::VodafoneSpain, 90, 245),
            (Operator::OrangeFrance, 90, 245),
            (Operator::SfrFrance, 80, 217),
            (Operator::VodafoneItaly, 80, 217),
            (Operator::TelekomGermany, 90, 245),
            (Operator::VodafoneGermany, 80, 217),
        ];
        for (op, mhz, n_rb) in expect {
            let c = &op.profile().carriers[0];
            assert_eq!(c.cell.bandwidth.mhz(), mhz, "{op}");
            assert_eq!(c.cell.n_rb, n_rb, "{op}");
        }
    }

    #[test]
    fn table3_configs_match_paper() {
        // T-Mobile: n41 TDD 100+40, plus n25 FDD 20+5 at 15 kHz.
        let tmb = Operator::TMobileUs.profile();
        assert!(tmb.carriers.len() >= 2, "T-Mobile aggregates carriers");
        let n41: Vec<_> =
            tmb.carriers.iter().filter(|c| c.cell.band == Band::N41).collect();
        assert_eq!(n41.len(), 2);
        assert_eq!(n41[0].cell.bandwidth.mhz() + n41[1].cell.bandwidth.mhz(), 140);
        let n25: Vec<_> =
            tmb.carriers.iter().filter(|c| c.cell.band == Band::N25).collect();
        assert!(!n25.is_empty());
        for c in n25 {
            assert_eq!(c.cell.duplex_mode(), DuplexMode::Fdd);
            assert_eq!(c.cell.numerology.scs_khz(), 15);
        }
        // Verizon: 60 MHz C-band PCell.
        let vzw = Operator::VerizonUs.profile();
        assert_eq!(vzw.carriers[0].cell.band, Band::N77);
        assert_eq!(vzw.carriers[0].cell.bandwidth.mhz(), 60);
        assert_eq!(vzw.carriers[0].cell.n_rb, 162);
        // AT&T: 40 MHz C-band.
        let att = Operator::AttUs.profile();
        assert_eq!(att.carriers[0].cell.band, Band::N77);
        assert_eq!(att.carriers[0].cell.bandwidth.mhz(), 40);
        assert_eq!(att.carriers[0].cell.n_rb, 106);
    }

    #[test]
    fn orange_spain_100_caps_at_64qam() {
        // The §4.1 finding: O_Sp's 100 MHz channel uses 64QAM max.
        use nr_phy::mcs::McsTable;
        assert_eq!(
            Operator::OrangeSpain100.profile().carriers[0].cell.mcs_table(),
            McsTable::Qam64
        );
        assert_eq!(
            Operator::OrangeSpain90.profile().carriers[0].cell.mcs_table(),
            McsTable::Qam256
        );
        assert_eq!(
            Operator::VodafoneSpain.profile().carriers[0].cell.mcs_table(),
            McsTable::Qam256
        );
    }

    #[test]
    fn spain_coverage_density_contrast() {
        // Appendix 10.3: V_Sp three sites, O_Sp two sites.
        assert_eq!(Operator::VodafoneSpain.profile().coverage.layout.sites.len(), 3);
        assert_eq!(Operator::OrangeSpain100.profile().coverage.layout.sites.len(), 2);
    }

    #[test]
    fn tdd_patterns_match_section_4_3() {
        let vit = Operator::VodafoneItaly.profile();
        assert_eq!(
            vit.carriers[0].cell.tdd.as_ref().unwrap().pattern_string(),
            "DDDDDDDSUU"
        );
        let vge = Operator::VodafoneGermany.profile();
        assert_eq!(vge.carriers[0].cell.tdd.as_ref().unwrap().pattern_string(), "DDDSU");
    }

    #[test]
    fn all_profiles_build_and_describe() {
        for op in Operator::ALL_MIDBAND {
            let p = op.profile();
            assert!(!p.display_name.is_empty());
            assert!(!p.country.is_empty());
            assert!(!p.carriers.is_empty());
            assert!(!p.coverage.layout.sites.is_empty());
        }
        let mmw = Operator::VerizonMmwaveUs.profile();
        assert_eq!(mmw.carriers[0].cell.band, Band::N261);
    }

    #[test]
    fn nsa_everywhere_tmobile_prefers_lte_ul() {
        use ran::config::UplinkRouting;
        for op in Operator::ALL_MIDBAND {
            let p = op.profile();
            assert!(p.nsa, "{op}: all studied deployments are NSA");
        }
        assert_eq!(Operator::TMobileUs.profile().routing, UplinkRouting::LteOnly);
    }
}
