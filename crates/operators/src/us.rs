//! U.S. operator profiles (paper Table 3).
//!
//! The U.S. mid-band spectrum is fragmented, so all three operators run
//! carrier aggregation (§3.1): T-Mobile combines n41 TDD channels with n25
//! FDD channels (up to 180 MHz aggregate), Verizon and AT&T pair their
//! C-band blocks with low-band anchors. T-Mobile's NSA deployment routes
//! the uplink to LTE (§4.2, Fig. 10).

use crate::profile::{CarrierProfile, CoverageProfile, OperatorProfile};
use nr_phy::band::Band;
use nr_phy::numerology::Numerology;
use radio_channel::geometry::DeploymentLayout;
use radio_channel::link::RankProfile;
use ran::config::{CellConfig, UplinkRouting};
use ran::lte::LteConfig;

fn us_coverage(dense: bool) -> CoverageProfile {
    CoverageProfile {
        layout: if dense {
            DeploymentLayout::three_site_dense()
        } else {
            DeploymentLayout::two_site_sparse()
        },
        rank_profile: RankProfile::default(),
        neighbor_load: 0.5,
    }
}

/// T-Mobile US (Chicago): n41 100+40 MHz TDD + n25 20+5 MHz FDD, all
/// aggregated (the paper observed up to four CCs / 180 MHz aggregates,
/// Appendix 10.5 / Fig. 23).
///
/// Paper targets: DL mean ≈ 1.2 Gbps with CA; NR UL 23.8 Mbps (CQI ≥ 12)
/// because the UL rides LTE ("T-Mobile prefers to utilize the LTE
/// connection", Fig. 10's LTE_US panel: 72.6 Mbps).
pub fn tmobile() -> OperatorProfile {
    let mut n41_primary = CellConfig::midband(100, "DDDSU");
    n41_primary.band = Band::N41;
    n41_primary.ul_rb_fraction = 0.35;
    n41_primary.ul_max_mcs = 22;
    let mut n41_secondary = CellConfig::midband(40, "DDDSU");
    n41_secondary.band = Band::N41;
    let n25_20 = CellConfig::fdd(Band::N25, 20, Numerology::Mu0);
    let n25_5 = CellConfig::fdd(Band::N25, 5, Numerology::Mu0);

    OperatorProfile {
        display_name: "T-Mobile US",
        country: "USA",
        city: "Chicago",
        carriers: vec![
            CarrierProfile { cell: n41_primary, sinr_offset_db: 3.0, rician_k_db: 7.0 },
            CarrierProfile { cell: n41_secondary, sinr_offset_db: 3.0, rician_k_db: 7.0 },
            CarrierProfile { cell: n25_20, sinr_offset_db: 3.0, rician_k_db: 8.0 },
            CarrierProfile { cell: n25_5, sinr_offset_db: 3.0, rician_k_db: 8.0 },
        ],
        nsa: true,
        routing: UplinkRouting::LteOnly,
        lte: Some(LteConfig::default()),
        coverage: us_coverage(true),
        ca_description: "Mid + Mid-Band",
        table_bandwidth_label: Some("20+5, 100+40"),
        table_nrb_label: Some("51 + 11, 273 + 106"),
    }
}

/// Verizon US (Chicago): 60 MHz C-band (upper n78 range, deployed as n77)
/// aggregated with a low-band FDD anchor.
///
/// Paper targets: DL mean ≈ 1.3 Gbps with CA (the best U.S. box in
/// Fig. 1); NR UL 46.4 Mbps at CQI ≥ 12, 13.0 below CQI 10.
pub fn verizon() -> OperatorProfile {
    let mut cband = CellConfig::midband(60, "DDDSU");
    cband.band = Band::N77;
    cband.ul_rb_fraction = 0.8;
    cband.ul_max_mcs = 24;
    let lowband = CellConfig::fdd(Band::N71, 20, Numerology::Mu0);

    OperatorProfile {
        display_name: "Verizon US",
        country: "USA",
        city: "Chicago",
        carriers: vec![
            CarrierProfile { cell: cband, sinr_offset_db: 9.0, rician_k_db: 10.0 },
            CarrierProfile { cell: lowband, sinr_offset_db: 9.0, rician_k_db: 10.0 },
        ],
        nsa: true,
        routing: UplinkRouting::NrAboveCqi { threshold: 5 },
        lte: Some(LteConfig::default()),
        coverage: us_coverage(true),
        ca_description: "Mid + Low-Band",
        table_bandwidth_label: Some("60"),
        table_nrb_label: Some("162"),
    }
}

/// AT&T US (Chicago): 40 MHz C-band.
///
/// Paper targets: DL mean ≈ 0.4 Gbps (the trailing U.S. box of Fig. 1 —
/// the narrow 40 MHz block dominates); NR UL 20.5 Mbps at CQI ≥ 12 and
/// 0.3 Mbps below CQI 10 (the most coverage-sensitive UL).
pub fn att() -> OperatorProfile {
    let mut cband = CellConfig::midband(40, "DDDSU");
    cband.band = Band::N77;
    cband.ul_rb_fraction = 0.9;
    cband.ul_max_mcs = 20;

    OperatorProfile {
        display_name: "AT&T US",
        country: "USA",
        city: "Chicago",
        carriers: vec![CarrierProfile { cell: cband, sinr_offset_db: 3.0, rician_k_db: 6.0 }],
        nsa: true,
        routing: UplinkRouting::NrAboveCqi { threshold: 7 },
        lte: Some(LteConfig::default()),
        coverage: us_coverage(false),
        ca_description: "Mid + Mid-Band",
        table_bandwidth_label: Some("40"),
        table_nrb_label: Some("106"),
    }
}
