//! Verizon's FR2 (mmWave) deployment — the §7 comparison point.
//!
//! n261 at 28 GHz, modelled as a single 400 MHz carrier at µ=3 (the paper
//! compares against aggregate mmWave service; Verizon aggregates 100 MHz
//! FR2 CCs to this order of bandwidth). Beamformed links give a large SINR
//! gain when clear, but the blockage process makes the channel erratic —
//! §7's walking/driving variability findings.

use crate::profile::{CarrierProfile, CoverageProfile, OperatorProfile};
use nr_phy::band::Band;
use nr_phy::bandwidth::{max_transmission_bandwidth, ChannelBandwidth};
use nr_phy::cqi::{CqiTable, CqiToMcsPolicy};
use nr_phy::numerology::Numerology;
use nr_phy::tdd::{SpecialSlotConfig, TddPattern};
use radio_channel::geometry::{DeploymentLayout, GnbSite, Position};
use radio_channel::link::RankProfile;
use ran::config::{CellConfig, UplinkRouting};
use ran::lte::LteConfig;

/// Verizon 28 GHz mmWave profile.
pub fn verizon_mmwave() -> OperatorProfile {
    let bandwidth = ChannelBandwidth::from_mhz(400);
    let numerology = Numerology::Mu3;
    let n_rb = max_transmission_bandwidth(bandwidth, numerology)
        .expect("400 MHz at 120 kHz is defined");
    let cell = CellConfig {
        band: Band::N261,
        bandwidth,
        numerology,
        n_rb,
        tdd: Some(
            TddPattern::parse("DDDSU", SpecialSlotConfig::DL_HEAVY).expect("static pattern"),
        ),
        mcs_policy: CqiToMcsPolicy::neutral(CqiTable::Table2),
        // Commercial FR2 runs 2×2 MIMO on the data channel.
        max_dl_layers: 2,
        max_ul_layers: 1,
        ul_rb_fraction: 0.5,
        ul_max_mcs: 20,
    };

    // Small-cell style sites: dense, low power handled by the FR2 channel
    // config's beamforming offset.
    let layout = DeploymentLayout::new(vec![
        GnbSite { id: 1, position: Position::new(-90.0, 0.0), height_m: 10.0, tx_power_dbm: 40.0, sector: None },
        GnbSite { id: 2, position: Position::new(90.0, 30.0), height_m: 10.0, tx_power_dbm: 40.0, sector: None },
        GnbSite { id: 3, position: Position::new(0.0, -80.0), height_m: 10.0, tx_power_dbm: 40.0, sector: None },
    ]);

    OperatorProfile {
        display_name: "Verizon US (mmWave n261)",
        country: "USA",
        city: "Chicago",
        carriers: vec![CarrierProfile { cell, sinr_offset_db: 0.0, rician_k_db: 9.0 }],
        nsa: true,
        routing: UplinkRouting::NrAboveCqi { threshold: 5 },
        lte: Some(LteConfig::default()),
        coverage: CoverageProfile {
            layout,
            rank_profile: RankProfile {
                rank2_db: 8.0,
                rank3_db: 99.0, // rank caps at 2 on FR2 data channels
                rank4_db: 99.0,
                hysteresis_db: 1.0,
            },
            neighbor_load: 0.2,
        },
        ca_description: "FR2 (8×100 MHz class)",
        table_bandwidth_label: Some("400"),
        table_nrb_label: Some("264"),
    }
}
