//! Profile types and the UE-simulation builder.

use nr_phy::tdd::TddPattern;
use radio_channel::channel::{ChannelConfig, ChannelSimulator};
use radio_channel::geometry::DeploymentLayout;
use radio_channel::link::{LinkModel, RankProfile};
use radio_channel::mobility::MobilityModel;
use radio_channel::rng::SeedTree;
use ran::carrier::Carrier;
use ran::config::{CellConfig, UplinkRouting};
use ran::lte::{LteAnchor, LteConfig};
use ran::sim::{UeSim, UeSimConfig};

/// One component carrier of an operator.
#[derive(Debug, Clone)]
pub struct CarrierProfile {
    /// The cell configuration (Tables 2–3 content + behavioural knobs).
    pub cell: CellConfig,
    /// Calibration offset applied to this carrier's SINR, dB (systematic
    /// link-quality differences: antenna gain, interference coordination).
    pub sinr_offset_db: f64,
    /// Rician K-factor of the carrier's environment, dB.
    pub rician_k_db: f64,
}

/// Coverage/deployment characteristics of the operator around the study
/// area (the paper's Appendix 10.3 contrast).
#[derive(Debug, Clone)]
pub struct CoverageProfile {
    /// gNB site layout.
    pub layout: DeploymentLayout,
    /// Rank-adaptation profile (scattering richness, antenna quality).
    pub rank_profile: RankProfile,
    /// Neighbour-cell load seen as interference (0..=1).
    pub neighbor_load: f64,
}

/// A complete operator deployment profile.
#[derive(Debug, Clone)]
pub struct OperatorProfile {
    /// Marketing name, e.g. "Vodafone Spain".
    pub display_name: &'static str,
    /// Country of the studied city.
    pub country: &'static str,
    /// Studied city.
    pub city: &'static str,
    /// Component carriers; index 0 is the PCell.
    pub carriers: Vec<CarrierProfile>,
    /// Whether the deployment is NSA (every studied one is).
    pub nsa: bool,
    /// NSA uplink routing behaviour (§4.2).
    pub routing: UplinkRouting,
    /// LTE anchor parameters for NSA UL; `None` disables the LTE leg.
    pub lte: Option<LteConfig>,
    /// Coverage characteristics.
    pub coverage: CoverageProfile,
    /// Human-readable CA description for Table 3 ("Mid + Mid-Band").
    pub ca_description: &'static str,
    /// Bandwidth exactly as the paper's Table 2/3 prints it ("20+5, 100+40");
    /// `None` falls back to [`Self::bandwidth_label`].
    pub table_bandwidth_label: Option<&'static str>,
    /// N_RB exactly as the paper's Table 2/3 prints it ("51 + 11, 273 + 106");
    /// `None` falls back to [`Self::n_rb_label`].
    pub table_nrb_label: Option<&'static str>,
}

impl OperatorProfile {
    /// The PCell's TDD pattern, if TDD.
    pub fn tdd_pattern(&self) -> Option<&TddPattern> {
        self.carriers[0].cell.tdd.as_ref()
    }

    /// Total aggregated bandwidth, MHz.
    pub fn total_bandwidth_mhz(&self) -> u32 {
        self.carriers.iter().map(|c| c.cell.bandwidth.mhz()).sum()
    }

    /// Bandwidth string as Table 2/3 prints it ("100+40", "90").
    pub fn bandwidth_label(&self) -> String {
        self.carriers
            .iter()
            .map(|c| c.cell.bandwidth.mhz().to_string())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// N_RB string as Table 2/3 prints it ("273 + 106", "245").
    pub fn n_rb_label(&self) -> String {
        self.carriers
            .iter()
            .map(|c| c.cell.n_rb.to_string())
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// The channel configuration for one carrier of this profile.
    pub fn channel_config(&self, carrier: &CarrierProfile) -> ChannelConfig {
        let mut cfg = if carrier.cell.band == nr_phy::band::Band::N261 {
            ChannelConfig::mmwave_urban(carrier.cell.n_rb)
        } else {
            let mut c = ChannelConfig::midband_urban(carrier.cell.n_rb);
            // Carrier frequency from the band (affects Doppler/path loss).
            let (lo, hi) = carrier.cell.band.dl_range_mhz();
            let fc_ghz = f64::from(lo + hi) / 2.0 / 1000.0;
            c.pathloss = radio_channel::pathloss::PathLossModel::new(
                radio_channel::Scenario::UmaBlended,
                fc_ghz,
            );
            c.signal.scs_khz = carrier.cell.numerology.scs_khz();
            c.slot_s = carrier.cell.slot_s();
            c
        };
        cfg.sinr_offset_db += carrier.sinr_offset_db;
        cfg.rician_k_db = carrier.rician_k_db;
        cfg.signal.neighbor_load = self.coverage.neighbor_load;
        cfg
    }

    /// The link model this profile's UEs apply.
    pub fn link_model(&self, carrier: &CarrierProfile) -> LinkModel {
        LinkModel {
            cqi_table: carrier.cell.mcs_policy.cqi_table,
            rank_profile: self.coverage.rank_profile,
            bler_slope_db: 1.0,
        }
    }

    /// The operator's usable measurement spots among the city's shared
    /// study locations (paper §2 ❶): spots where this deployment offers
    /// service (relaxed RSRP floor of −92 dBm — the scouting rule proper,
    /// RSRP > −90 *and* RSRQ > −12, selects the subset analysed as "good
    /// channel"). Falls back to the three strongest spots if fewer than
    /// three qualify, since the campaign always measured somewhere.
    pub fn measurement_spots(&self) -> Vec<radio_channel::geometry::Position> {
        let cfg = self.channel_config(&self.carriers[0]);
        let candidates = radio_channel::scout::standard_study_spots();
        let mut reports = radio_channel::scout::survey(&cfg, &self.coverage.layout, &candidates);
        reports.sort_by(|a, b| {
            b.measurement.rsrp_dbm.partial_cmp(&a.measurement.rsrp_dbm).expect("finite")
        });
        // Tourist spots sit on plazas and streets, not under towers:
        // require a standoff from the serving site, plus serviceable RSRP.
        let qualifying: Vec<_> = reports
            .iter()
            .filter(|r| {
                r.measurement.rsrp_dbm > -92.0
                    && (60.0..=250.0).contains(&r.serving_distance_m)
            })
            .collect();
        if qualifying.len() >= 3 {
            qualifying.into_iter().map(|r| r.position).collect()
        } else {
            reports.iter().take(3).map(|r| r.position).collect()
        }
    }

    /// Build a ready-to-run [`UeSim`] for this operator using the
    /// profile's own NSA routing.
    ///
    /// * `mobility` — the session's movement pattern;
    /// * `sim_config` — traffic directions; the routing field is
    ///   overwritten with the profile's routing (use
    ///   [`Self::build_ue_sim_with_routing`] to force a different one,
    ///   e.g. pinning T-Mobile's UL onto NR for a per-channel test);
    /// * `seeds` — session-scoped seed tree.
    pub fn build_ue_sim(
        &self,
        mobility: MobilityModel,
        mut sim_config: UeSimConfig,
        seeds: &SeedTree,
    ) -> UeSim {
        sim_config.routing = self.routing;
        self.build_ue_sim_with_routing(mobility, sim_config, seeds)
    }

    /// [`Self::build_ue_sim`] with the caller's routing taken verbatim.
    pub fn build_ue_sim_with_routing(
        &self,
        mobility: MobilityModel,
        sim_config: UeSimConfig,
        seeds: &SeedTree,
    ) -> UeSim {
        let carriers: Vec<Carrier> = self
            .carriers
            .iter()
            .enumerate()
            .map(|(i, cp)| {
                let cc_seeds = seeds.child_indexed("cc", i as u64);
                let channel = ChannelSimulator::new(
                    self.channel_config(cp),
                    self.coverage.layout.clone(),
                    mobility.clone(),
                    &cc_seeds,
                );
                Carrier::new(cp.cell.clone(), i as u8, channel, self.link_model(cp), &cc_seeds)
            })
            .collect();
        let lte = self.lte.map(|lte_cfg| {
            let lte_seeds = seeds.child("lte");
            let channel = ChannelSimulator::new(
                LteAnchor::default_channel_config(),
                self.coverage.layout.clone(),
                mobility.clone(),
                &lte_seeds,
            );
            LteAnchor::new(lte_cfg, channel)
        });
        UeSim::new(carriers, lte, mobility, sim_config, seeds)
    }
}
