//! Property-based tests of the radio-environment invariants.

use proptest::prelude::*;
use radio_channel::channel::{ChannelConfig, ChannelSimulator};
use radio_channel::geometry::{DeploymentLayout, GnbSite, Position};
use radio_channel::link::{sinr_to_cqi, LinkModel, RankProfile};
use radio_channel::mobility::MobilityModel;
use radio_channel::pathloss::{uma_los_probability, PathLossModel, Scenario};
use radio_channel::rng::SeedTree;
use radio_channel::signal::{dbm_to_mw, mw_to_dbm, RadioMeasurement, SignalConfig};

proptest! {
    /// Path loss is monotone in distance and bounded by the LOS/NLOS
    /// envelope for the blended scenario.
    #[test]
    fn pathloss_monotone_and_bounded(
        d1 in 10.0f64..3000.0,
        delta in 1.0f64..500.0,
        fc in 0.7f64..40.0,
    ) {
        for scen in [Scenario::UmaLos, Scenario::UmaNlos, Scenario::UmaBlended, Scenario::UmiBlended] {
            let m = PathLossModel::new(scen, fc);
            prop_assert!(m.loss_db(d1 + delta) >= m.loss_db(d1) - 1e-9, "{:?}", scen);
        }
        let blend = PathLossModel::new(Scenario::UmaBlended, fc).loss_db(d1);
        let los = PathLossModel::new(Scenario::UmaLos, fc).loss_db(d1);
        let nlos = PathLossModel::new(Scenario::UmaNlos, fc).loss_db(d1);
        prop_assert!(blend >= los - 1e-9 && blend <= nlos + 1e-9);
    }

    /// LOS probability is a proper probability, decreasing in distance.
    #[test]
    fn los_probability_valid(d in 1.0f64..5000.0) {
        let p = uma_los_probability(d);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(uma_los_probability(d + 50.0) <= p + 1e-12);
    }

    /// dBm/mW conversions are inverse bijections over the physical range.
    #[test]
    fn dbm_mw_roundtrip(dbm in -180.0f64..60.0) {
        prop_assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
    }

    /// SINR and RSRQ degrade monotonically as interferers are added.
    #[test]
    fn interference_monotonicity(
        serving in -110.0f64..-50.0,
        interferers in prop::collection::vec(-120.0f64..-60.0, 0..6),
    ) {
        let cfg = SignalConfig::midband(245);
        let mut prev = RadioMeasurement::compute(&cfg, serving, &[]);
        for k in 1..=interferers.len() {
            let m = RadioMeasurement::compute(&cfg, serving, &interferers[..k]);
            prop_assert!(m.sinr_db <= prev.sinr_db + 1e-9);
            prop_assert!(m.rsrq_db <= prev.rsrq_db + 1e-9);
            prev = m;
        }
    }

    /// CQI is monotone in SINR and rank transitions respect hysteresis for
    /// arbitrary (ordered) thresholds.
    #[test]
    fn link_adaptation_monotone(
        sinr_a in -15.0f64..40.0,
        delta in 0.0f64..20.0,
        r2 in 0.0f64..8.0,
        gap3 in 1.0f64..8.0,
        gap4 in 1.0f64..8.0,
    ) {
        use nr_phy::cqi::CqiTable;
        prop_assert!(sinr_to_cqi(sinr_a + delta, CqiTable::Table2) >= sinr_to_cqi(sinr_a, CqiTable::Table2));
        let profile = RankProfile { rank2_db: r2, rank3_db: r2 + gap3, rank4_db: r2 + gap3 + gap4, hysteresis_db: 1.0 };
        for prev in 1..=4u8 {
            let rank = profile.rank(sinr_a, prev);
            prop_assert!((1..=4).contains(&rank));
            // Higher SINR never reduces the chosen rank for the same state.
            prop_assert!(profile.rank(sinr_a + delta, prev) >= rank);
        }
    }

    /// The composed channel simulator produces finite outputs and keeps the
    /// UE within its mobility bounds for random layouts and walks.
    #[test]
    fn channel_simulator_sane(
        seed in 0u64..1000,
        radius in 20.0f64..200.0,
        site_x in -300.0f64..300.0,
    ) {
        let layout = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(site_x, 0.0)),
            GnbSite::macro_site(2, Position::new(-site_x, 50.0)),
        ]);
        let mut sim = ChannelSimulator::new(
            ChannelConfig::midband_urban(245),
            layout,
            MobilityModel::walking(Position::ORIGIN, radius),
            &SeedTree::new(seed),
        );
        for _ in 0..200 {
            let st = sim.step();
            prop_assert!(st.sinr_db.is_finite());
            prop_assert!(st.measurement.rsrp_dbm.is_finite());
            prop_assert!(st.measurement.rsrq_db < 0.0, "RSRQ is always negative in dB");
            prop_assert!(st.position.distance_to(&Position::ORIGIN) <= radius + 1e-6);
            prop_assert!(st.serving_site == 1 || st.serving_site == 2);
        }
    }

    /// The cached `step_at` is bit-identical to the uncached reference for
    /// arbitrary position sequences: revisited anchors exercise the
    /// large-scale cache hit path, fresh anchors force rebuilds, and the
    /// reported movement varies independently of the position (the CA
    /// drivers do exactly this).
    #[test]
    fn cached_step_at_bit_identical_to_uncached(
        seed in 0u64..1000,
        anchors in prop::collection::vec(
            (-400.0f64..400.0, -400.0f64..400.0),
            1..5,
        ),
        steps in prop::collection::vec((0usize..8, 0.0f64..2.0), 1..80),
        mmwave in 0u8..2,
    ) {
        let config = if mmwave == 1 {
            ChannelConfig::mmwave_urban(264)
        } else {
            ChannelConfig::midband_urban(245)
        };
        let mk = || ChannelSimulator::new(
            config,
            DeploymentLayout::three_site_dense(),
            MobilityModel::Stationary { position: Position::ORIGIN },
            &SeedTree::new(seed),
        );
        let mut cached = mk();
        let mut reference = mk();
        for (i, moved) in steps {
            let (x, y) = anchors[i % anchors.len()];
            let pos = Position::new(x, y);
            prop_assert_eq!(
                cached.step_at(pos, moved),
                reference.step_at_uncached(pos, moved)
            );
        }
    }

    /// The link model's BLER is a valid probability, decreasing in SINR.
    #[test]
    fn bler_is_probability(sinr in -20.0f64..45.0, mcs in 0u8..28) {
        use nr_phy::mcs::{McsIndex, McsTable};
        let link = LinkModel::midband_qam256();
        let b = link.bler(sinr, McsTable::Qam256, McsIndex(mcs));
        prop_assert!((0.0..=1.0).contains(&b));
        let better = link.bler(sinr + 3.0, McsTable::Qam256, McsIndex(mcs));
        prop_assert!(better <= b + 1e-12);
    }
}
