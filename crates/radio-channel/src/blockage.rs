//! mmWave blockage: the two-state (LOS / blocked) process behind FR2's
//! erratic behaviour (paper §7).
//!
//! mmWave links lose 20–30 dB when a body, vehicle or street furniture
//! interrupts the beam, and blockage events arrive far more often under
//! mobility. We model blockage as a continuous-time two-state Markov chain
//! sampled per slot, with arrival rate proportional to UE speed — the
//! standard system-level abstraction (e.g. 3GPP TR 38.901 §7.6.4
//! simplified). Mid-band channels diffract around obstacles, so their
//! profiles disable blockage entirely.

use crate::rng::SeedTree;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the blockage process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockageConfig {
    /// Blockage events per metre travelled (plus a small static floor for
    /// passers-by when stationary).
    pub events_per_meter: f64,
    /// Static blockage event rate, events/s, for a stationary UE.
    pub static_events_per_s: f64,
    /// Mean blockage duration, seconds.
    pub mean_duration_s: f64,
    /// Extra attenuation while blocked, dB.
    pub loss_db: f64,
}

impl BlockageConfig {
    /// No blockage at all (mid-band).
    pub const NONE: BlockageConfig = BlockageConfig {
        events_per_meter: 0.0,
        static_events_per_s: 0.0,
        mean_duration_s: 0.0,
        loss_db: 0.0,
    };

    /// A 28 GHz urban profile: roughly one event every 15 m of travel,
    /// occasional events when still, ~0.8 s mean duration, 25 dB loss.
    pub fn mmwave_urban() -> Self {
        BlockageConfig {
            events_per_meter: 1.0 / 15.0,
            static_events_per_s: 0.02,
            mean_duration_s: 0.8,
            loss_db: 25.0,
        }
    }

    /// Whether the process can ever block.
    pub fn is_active(&self) -> bool {
        self.loss_db > 0.0 && (self.events_per_meter > 0.0 || self.static_events_per_s > 0.0)
    }
}

/// The evolving blockage state of one link.
#[derive(Debug, Clone)]
pub struct BlockageProcess {
    config: BlockageConfig,
    rng: ChaCha12Rng,
    blocked_remaining_s: f64,
}

impl BlockageProcess {
    /// Start unblocked.
    pub fn new(config: BlockageConfig, seeds: &SeedTree, link_label: &str) -> Self {
        BlockageProcess {
            config,
            rng: seeds.stream(&format!("blockage/{link_label}")),
            blocked_remaining_s: 0.0,
        }
    }

    /// Whether the link is currently blocked.
    pub fn is_blocked(&self) -> bool {
        self.blocked_remaining_s > 0.0
    }

    /// Extra loss right now, dB.
    pub fn loss_db(&self) -> f64 {
        if self.is_blocked() {
            self.config.loss_db
        } else {
            0.0
        }
    }

    /// Advance by one step of `dt_s` seconds during which the UE moved
    /// `moved_m` metres; returns the loss in force *after* the step.
    pub fn advance(&mut self, dt_s: f64, moved_m: f64) -> f64 {
        if !self.config.is_active() {
            return 0.0;
        }
        if self.is_blocked() {
            self.blocked_remaining_s -= dt_s;
            if self.blocked_remaining_s < 0.0 {
                self.blocked_remaining_s = 0.0;
            }
        } else {
            // Poisson arrival within the step.
            let rate = self.config.events_per_meter * moved_m
                + self.config.static_events_per_s * dt_s;
            let p_event = 1.0 - (-rate).exp();
            if self.rng.gen::<f64>() < p_event {
                // Exponential duration with the configured mean.
                let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                self.blocked_remaining_s = -self.config.mean_duration_s * u.ln();
            }
        }
        self.loss_db()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_config_never_blocks() {
        let mut p = BlockageProcess::new(BlockageConfig::NONE, &SeedTree::new(1), "l");
        for _ in 0..10_000 {
            assert_eq!(p.advance(0.0005, 0.01), 0.0);
        }
    }

    #[test]
    fn mobile_ue_blocks_more_than_static() {
        let count_blocked = |speed_mps: f64, seed: u64| {
            let mut p =
                BlockageProcess::new(BlockageConfig::mmwave_urban(), &SeedTree::new(seed), "l");
            let mut blocked = 0u32;
            let dt = 0.0005;
            for _ in 0..2_000_000 {
                if p.advance(dt, speed_mps * dt) > 0.0 {
                    blocked += 1;
                }
            }
            blocked
        };
        let walking = count_blocked(1.4, 7);
        let driving = count_blocked(11.0, 7);
        assert!(driving > walking * 2, "driving {driving} vs walking {walking}");
        let stationary = count_blocked(0.0, 7);
        assert!(walking > stationary, "walking {walking} vs stationary {stationary}");
    }

    #[test]
    fn blockage_fraction_sane_for_walking() {
        // Walking: ~1.4/15 ≈ 0.093 events/s, 0.8 s each → ~7% of time
        // blocked. Allow a wide band.
        let mut p = BlockageProcess::new(BlockageConfig::mmwave_urban(), &SeedTree::new(3), "l");
        let mut blocked = 0u32;
        let n = 2_000_000;
        let dt = 0.0005;
        for _ in 0..n {
            if p.advance(dt, 1.4 * dt) > 0.0 {
                blocked += 1;
            }
        }
        let frac = blocked as f64 / n as f64;
        assert!(frac > 0.02 && frac < 0.15, "blocked fraction {frac}");
    }

    #[test]
    fn loss_is_all_or_nothing() {
        let mut p = BlockageProcess::new(BlockageConfig::mmwave_urban(), &SeedTree::new(5), "l");
        for _ in 0..100_000 {
            let l = p.advance(0.0005, 0.01);
            assert!(l == 0.0 || l == 25.0);
        }
    }
}
