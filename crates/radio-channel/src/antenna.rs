//! Sector antenna patterns (3GPP TR 36.814 / 38.901 §7.3).
//!
//! Macro sites in the studied cities are 3-sector: each sector's antenna
//! has a parabolic azimuth pattern with ~65° half-power beamwidth and a
//! 30 dB front-to-back floor. [`GnbSite`](crate::geometry::GnbSite)s are
//! omnidirectional by default (the calibrated study layouts model sector
//! orientation implicitly); attach a [`SectorPattern`] via
//! [`crate::geometry::GnbSite::with_sector`] to study orientation effects
//! explicitly.

use crate::geometry::Position;
use serde::{Deserialize, Serialize};

/// The standard 3GPP parabolic azimuth pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorPattern {
    /// Boresight azimuth, degrees (0 = east, counter-clockwise positive,
    /// matching `atan2(y, x)`).
    pub azimuth_deg: f64,
    /// Half-power beamwidth θ_3dB, degrees (standard: 65).
    pub beamwidth_deg: f64,
    /// Maximum attenuation A_max at the back lobe, dB (standard: 30).
    pub max_attenuation_db: f64,
}

impl SectorPattern {
    /// A standard 65°/30 dB sector pointed at `azimuth_deg`.
    pub fn standard(azimuth_deg: f64) -> Self {
        SectorPattern { azimuth_deg, beamwidth_deg: 65.0, max_attenuation_db: 30.0 }
    }

    /// Azimuth attenuation toward a direction `theta_deg` (absolute
    /// azimuth): `A(θ) = min(12 · (Δθ/θ_3dB)², A_max)` dB.
    pub fn attenuation_db(&self, theta_deg: f64) -> f64 {
        let mut delta = (theta_deg - self.azimuth_deg) % 360.0;
        if delta > 180.0 {
            delta -= 360.0;
        } else if delta < -180.0 {
            delta += 360.0;
        }
        (12.0 * (delta / self.beamwidth_deg).powi(2)).min(self.max_attenuation_db)
    }

    /// Attenuation from a site at `site_pos` toward a UE at `ue_pos`.
    pub fn attenuation_towards(&self, site_pos: &Position, ue_pos: &Position) -> f64 {
        let theta = (ue_pos.y - site_pos.y).atan2(ue_pos.x - site_pos.x).to_degrees();
        self.attenuation_db(theta)
    }

    /// The classic 3-sector split: boresights 120° apart starting at
    /// `first_azimuth_deg`.
    pub fn three_sectors(first_azimuth_deg: f64) -> [SectorPattern; 3] {
        [
            SectorPattern::standard(first_azimuth_deg),
            SectorPattern::standard(first_azimuth_deg + 120.0),
            SectorPattern::standard(first_azimuth_deg + 240.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_has_no_loss_and_back_lobe_floors() {
        let p = SectorPattern::standard(0.0);
        assert_eq!(p.attenuation_db(0.0), 0.0);
        assert_eq!(p.attenuation_db(180.0), 30.0);
        assert_eq!(p.attenuation_db(-180.0), 30.0);
    }

    #[test]
    fn half_power_at_half_beamwidth() {
        // At Δθ = θ_3dB/2 the parabola gives 12·(1/2)² = 3 dB.
        let p = SectorPattern::standard(90.0);
        assert!((p.attenuation_db(90.0 + 32.5) - 3.0).abs() < 1e-9);
        assert!((p.attenuation_db(90.0 - 32.5) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wraparound_is_continuous() {
        let p = SectorPattern::standard(170.0);
        // A direction at −170° is only 20° away through the wrap.
        assert!((p.attenuation_db(-170.0) - 12.0 * (20.0f64 / 65.0).powi(2)).abs() < 1e-9);
        // Attenuation is symmetric around boresight.
        for d in [5.0, 40.0, 90.0] {
            assert!(
                (p.attenuation_db(170.0 + d) - p.attenuation_db(170.0 - d)).abs() < 1e-9,
                "delta {d}"
            );
        }
    }

    #[test]
    fn geometric_direction() {
        let p = SectorPattern::standard(0.0); // pointing east
        let site = Position::ORIGIN;
        assert_eq!(p.attenuation_towards(&site, &Position::new(100.0, 0.0)), 0.0);
        assert_eq!(p.attenuation_towards(&site, &Position::new(-100.0, 0.0)), 30.0);
        // Due north is 90° off an east-pointing boresight:
        // A = min(12·(90/65)², 30) ≈ 23.0 dB.
        let north = p.attenuation_towards(&site, &Position::new(0.0, 100.0));
        assert!((north - 12.0 * (90.0f64 / 65.0).powi(2)).abs() < 1e-9, "north {north}");
    }

    #[test]
    fn three_sectors_cover_the_plane() {
        // At any azimuth, at least one of the three sectors is within
        // ~8.2 dB (the worst case falls midway between boresights: Δθ=60°,
        // A = 12·(60/65)² ≈ 10.2 dB).
        let sectors = SectorPattern::three_sectors(30.0);
        for theta in (0..360).step_by(5) {
            let best = sectors
                .iter()
                .map(|s| s.attenuation_db(f64::from(theta)))
                .fold(f64::MAX, f64::min);
            assert!(best <= 10.3, "theta {theta}: best {best}");
        }
    }
}
