//! Small-scale (fast) fading.
//!
//! We model the per-slot fluctuation of the effective post-equalisation
//! SINR as a first-order autoregressive (Gauss-Markov) process in dB whose
//! time constant follows the channel's Doppler spread, plus a Rician
//! LOS-dominance parameter that shrinks the fluctuation amplitude. This is
//! the standard "fading margin" abstraction for system-level simulation:
//! it does not track per-tap impulse responses, but it reproduces the
//! *statistics* the paper's §5 analysis needs — fluctuation magnitude and
//! decorrelation time as a function of mobility.
//!
//! Calibration anchors:
//! * stationary UE: Doppler from residual environment motion (≈ 2 Hz);
//! * walking (1.4 m/s at 3.5 GHz): f_d ≈ 16 Hz → decorrelation ≈ 26 ms;
//! * driving (11 m/s at 3.5 GHz): f_d ≈ 128 Hz → decorrelation ≈ 3 ms;
//! * mmWave multiplies Doppler by the frequency ratio (≈ 8× at 28 GHz).

use crate::rng::SeedTree;
use crate::shadowing::GaussianTile;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Speed of light, m/s.
const C: f64 = 299_792_458.0;

/// Parameters of the fast-fading process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FadingConfig {
    /// Carrier frequency, GHz (sets Doppler for a given speed).
    pub frequency_ghz: f64,
    /// UE speed, m/s. Zero selects the residual-motion floor.
    pub speed_mps: f64,
    /// Rician K-factor in dB. Large K (strong LOS) → small fluctuations;
    /// K → −∞ (Rayleigh) → σ ≈ 5.6 dB fluctuations.
    pub rician_k_db: f64,
    /// Slot duration in seconds (0.5 ms at µ=1).
    pub slot_s: f64,
}

impl FadingConfig {
    /// Mid-band defaults for a given mobility speed.
    pub fn midband(speed_mps: f64, rician_k_db: f64) -> Self {
        FadingConfig { frequency_ghz: 3.5, speed_mps, rician_k_db, slot_s: 0.5e-3 }
    }

    /// Doppler spread in Hz; floored at 2 Hz of environmental motion so a
    /// stationary channel still breathes (as real measurements do).
    pub fn doppler_hz(&self) -> f64 {
        (self.speed_mps * self.frequency_ghz * 1e9 / C).max(2.0)
    }

    /// Fading fluctuation standard deviation in dB, derived from the
    /// Rician K-factor. For Rayleigh fading the post-detection SNR in dB
    /// has σ ≈ 5.57 dB; a K-factor of k (linear) scales this by
    /// `1/sqrt(1+k)` (the diffuse fraction of power).
    pub fn sigma_db(&self) -> f64 {
        let k = vmath::pow10(self.rician_k_db / 10.0);
        5.57 / (1.0 + k).sqrt()
    }

    /// Per-slot AR(1) coefficient chosen so the autocorrelation falls to
    /// 0.5 after one coherence time `T_c ≈ 0.423/f_d`:
    /// `ρ = exp(−ln2 · f_d · T_slot / 0.423)`.
    pub fn slot_rho(&self) -> f64 {
        vmath::exp(-(self.doppler_hz() * self.slot_s) / 0.423 * std::f64::consts::LN_2)
    }
}

/// The evolving fading state of one link.
#[derive(Debug, Clone)]
pub struct FadingProcess {
    config: FadingConfig,
    rng: ChaCha12Rng,
    tile: GaussianTile,
    current_db: f64,
    /// Hoisted AR(1) coefficient (`config.slot_rho()`); pure function of
    /// the config, refreshed by [`FadingProcess::set_speed`].
    rho: f64,
    /// Hoisted innovation gain `sqrt(1 − ρ²) · σ`, same association as the
    /// inline expression so the update stays bit-identical.
    gain: f64,
}

impl FadingProcess {
    /// Initialise from the stationary distribution N(0, σ²).
    pub fn new(config: FadingConfig, seeds: &SeedTree, link_label: &str) -> Self {
        let mut rng = seeds.stream(&format!("fading/{link_label}"));
        let current_db = crate::shadowing::gaussian(&mut rng) * config.sigma_db();
        let rho = config.slot_rho();
        let gain = (1.0 - rho * rho).sqrt() * config.sigma_db();
        FadingProcess { config, rng, tile: GaussianTile::new(), current_db, rho, gain }
    }

    /// Current fading value in dB (zero-mean).
    pub fn value_db(&self) -> f64 {
        self.current_db
    }

    /// Replace the speed (e.g. the UE transitions from walking to driving);
    /// keeps the current state so the process stays continuous.
    pub fn set_speed(&mut self, speed_mps: f64) {
        self.config.speed_mps = speed_mps;
        self.rho = self.config.slot_rho();
        self.gain = (1.0 - self.rho * self.rho).sqrt() * self.config.sigma_db();
    }

    /// Advance by one slot and return the new value in dB.
    pub fn advance_slot(&mut self) -> f64 {
        let w = self.tile.next_batched(&mut self.rng);
        self.current_db = self.rho * self.current_db + self.gain * w;
        self.current_db
    }

    /// How many slots a lookahead run may advance without crossing a tile
    /// refill boundary (refilling first if the tile is drained).
    pub(crate) fn lookahead_capacity(&mut self) -> usize {
        self.tile.ensure_prefetched(&mut self.rng)
    }

    /// Advance `out.len()` slots of [`advance_slot`] at once, recording
    /// the value after each. Caller must bound `out.len()` by
    /// [`lookahead_capacity`]. Bit-identical to sequential calls.
    ///
    /// [`advance_slot`]: FadingProcess::advance_slot
    /// [`lookahead_capacity`]: FadingProcess::lookahead_capacity
    pub(crate) fn advance_lookahead(&mut self, out: &mut [f64]) {
        for o in out.iter_mut() {
            let w = self.tile.take();
            self.current_db = self.rho * self.current_db + self.gain * w;
            *o = self.current_db;
        }
    }

    /// Roll back the last `n` slots of a lookahead run: restore
    /// `state_db` and return the `n` unused innovations to the tile.
    pub(crate) fn rewind_lookahead(&mut self, n: usize, state_db: f64) {
        self.tile.rewind(n);
        self.current_db = state_db;
    }

    /// The pre-optimisation [`advance_slot`]: recomputes ρ (`exp`) and σ
    /// (`powf`, `sqrt`) every slot instead of using the hoisted
    /// coefficients. Bit-identical to [`advance_slot`]; kept as the
    /// reference the `perf_baseline` uncached lane measures.
    ///
    /// [`advance_slot`]: FadingProcess::advance_slot
    pub fn advance_slot_uncached(&mut self) -> f64 {
        let rho = self.config.slot_rho();
        let sigma = self.config.sigma_db();
        let w = self.tile.next_unbatched(&mut self.rng);
        self.current_db = rho * self.current_db + (1.0 - rho * rho).sqrt() * sigma * w;
        self.current_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(speed: f64, k_db: f64) -> FadingConfig {
        FadingConfig::midband(speed, k_db)
    }

    #[test]
    fn doppler_scales_with_speed_and_frequency() {
        assert!((cfg(1.4, 6.0).doppler_hz() - 16.3).abs() < 0.5);
        assert!(cfg(11.0, 6.0).doppler_hz() > 100.0);
        let mmwave = FadingConfig { frequency_ghz: 28.0, ..cfg(1.4, 6.0) };
        assert!((mmwave.doppler_hz() / cfg(1.4, 6.0).doppler_hz() - 8.0).abs() < 0.1);
        // Stationary floor.
        assert_eq!(cfg(0.0, 6.0).doppler_hz(), 2.0);
    }

    #[test]
    fn stronger_los_means_smaller_fluctuations() {
        assert!(cfg(1.4, 12.0).sigma_db() < cfg(1.4, 6.0).sigma_db());
        assert!(cfg(1.4, 6.0).sigma_db() < cfg(1.4, -100.0).sigma_db());
        // Rayleigh limit.
        assert!((cfg(1.4, -100.0).sigma_db() - 5.57).abs() < 0.01);
    }

    #[test]
    fn faster_ue_decorrelates_faster() {
        assert!(cfg(11.0, 6.0).slot_rho() < cfg(1.4, 6.0).slot_rho());
        assert!(cfg(1.4, 6.0).slot_rho() < cfg(0.0, 6.0).slot_rho());
        // All coefficients are valid AR(1) coefficients.
        for speed in [0.0, 1.4, 11.0, 30.0] {
            let rho = cfg(speed, 6.0).slot_rho();
            assert!((0.0..1.0).contains(&rho), "speed {speed}: rho {rho}");
        }
    }

    #[test]
    fn long_run_sigma_matches_config() {
        let mut p = FadingProcess::new(cfg(11.0, 6.0), &SeedTree::new(9), "link");
        let mut vals = Vec::new();
        for _ in 0..50_000 {
            vals.push(p.advance_slot());
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (vals.len() - 1) as f64;
        let sigma = cfg(11.0, 6.0).sigma_db();
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.25, "std {} vs {}", var.sqrt(), sigma);
    }

    #[test]
    fn slot_to_slot_variability_increases_with_speed() {
        // The §7 finding in miniature: driving-speed fading moves more per
        // slot than walking-speed fading.
        let deltas = |speed: f64| {
            let mut p = FadingProcess::new(cfg(speed, 6.0), &SeedTree::new(5), "l");
            let mut sum = 0.0;
            let mut prev = p.value_db();
            for _ in 0..20_000 {
                let v = p.advance_slot();
                sum += (v - prev).abs();
                prev = v;
            }
            sum / 20_000.0
        };
        let walk = deltas(1.4);
        let drive = deltas(11.0);
        assert!(drive > walk * 1.5, "drive {drive} vs walk {walk}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = FadingProcess::new(cfg(1.4, 6.0), &SeedTree::new(3), "x");
        let mut b = FadingProcess::new(cfg(1.4, 6.0), &SeedTree::new(3), "x");
        for _ in 0..100 {
            assert_eq!(a.advance_slot(), b.advance_slot());
        }
    }

    #[test]
    fn batched_advance_matches_uncached_reference() {
        // Tile-prefetched production path vs the per-slot scalar
        // reference: same RNG stream, byte-identical values.
        let mut batched = FadingProcess::new(cfg(11.0, 6.0), &SeedTree::new(21), "eq");
        let mut reference = FadingProcess::new(cfg(11.0, 6.0), &SeedTree::new(21), "eq");
        for i in 0..150 {
            assert_eq!(
                batched.advance_slot().to_bits(),
                reference.advance_slot_uncached().to_bits(),
                "slot {i}"
            );
        }
    }
}
