//! Positions, gNB sites and deployment layouts.
//!
//! The paper's Appendix 10.3 explains the Madrid throughput gap by
//! deployment geometry: Vodafone Spain covers the measurement area with
//! *three* gNBs, Orange Spain with *two*, so Vodafone UEs enjoy better
//! RSRQ and higher MIMO ranks. [`DeploymentLayout`] captures exactly this
//! — a set of sites plus the serving-cell selection rule.

use serde::{Deserialize, Serialize};

/// A planar position in metres. The study areas are a few hundred metres
/// across, so a local tangent plane is exact enough.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// East coordinate, metres.
    pub x: f64,
    /// North coordinate, metres.
    pub y: f64,
}

impl Position {
    /// Origin.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Construct.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean (2D) distance to another position, metres.
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation towards `other` by fraction `t ∈ [0,1]`.
    pub fn lerp(&self, other: &Position, t: f64) -> Position {
        Position { x: self.x + (other.x - self.x) * t, y: self.y + (other.y - self.y) * t }
    }
}

/// One gNB site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GnbSite {
    /// Site identifier (the paper extracts gNB IDs from RRC messages).
    pub id: u32,
    /// Planar position.
    pub position: Position,
    /// Antenna height above the UE plane, metres (UMa default 25 m).
    pub height_m: f64,
    /// Total transmit power over the carrier, dBm (mid-band macro ≈ 43–46).
    pub tx_power_dbm: f64,
    /// Optional sector antenna pattern; `None` models the site as
    /// omnidirectional (the calibrated study layouts fold sector
    /// orientation into their power/offset calibration).
    pub sector: Option<crate::antenna::SectorPattern>,
}

impl GnbSite {
    /// A macro site with UMa defaults at a position (omnidirectional).
    pub fn macro_site(id: u32, position: Position) -> Self {
        GnbSite { id, position, height_m: 25.0, tx_power_dbm: 44.0, sector: None }
    }

    /// Attach a sector pattern.
    pub fn with_sector(mut self, sector: crate::antenna::SectorPattern) -> Self {
        self.sector = Some(sector);
        self
    }

    /// Azimuth antenna attenuation toward a UE, dB (0 when omni).
    pub fn sector_attenuation_db(&self, ue: &Position) -> f64 {
        self.sector.map(|s| s.attenuation_towards(&self.position, ue)).unwrap_or(0.0)
    }

    /// 3D distance from the site antenna to a UE at 1.5 m height.
    pub fn distance_3d(&self, ue: &Position) -> f64 {
        self.distances(ue).1
    }

    /// `(2D, 3D)` distance to a UE in one evaluation: callers that need
    /// both (the per-slot large-scale recompute) reuse the 2D value the
    /// 3D formula already derives, instead of a second `sqrt` chain.
    pub fn distances(&self, ue: &Position) -> (f64, f64) {
        let d2 = self.position.distance_to(ue);
        let dh = self.height_m - 1.5;
        (d2, (d2 * d2 + dh * dh).sqrt())
    }
}

/// A deployment layout: the sites of one operator around a study area.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentLayout {
    /// All sites, at least one.
    pub sites: Vec<GnbSite>,
}

impl DeploymentLayout {
    /// Build a layout from sites; panics if empty (a deployment without a
    /// site is a programmer error, not runtime input).
    pub fn new(sites: Vec<GnbSite>) -> Self {
        assert!(!sites.is_empty(), "a deployment needs at least one site");
        DeploymentLayout { sites }
    }

    /// The paper's sparse Madrid deployment: two sites ~500 m apart
    /// (Orange Spain around the test area).
    pub fn two_site_sparse() -> Self {
        DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(-260.0, 0.0)),
            GnbSite::macro_site(2, Position::new(260.0, 40.0)),
        ])
    }

    /// The paper's dense Madrid deployment: three sites covering the same
    /// area (Vodafone Spain).
    pub fn three_site_dense() -> Self {
        DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(-180.0, -30.0)),
            GnbSite::macro_site(2, Position::new(30.0, 150.0)),
            GnbSite::macro_site(3, Position::new(200.0, -40.0)),
        ])
    }

    /// A single-site layout at the origin — the §5.2 single-cell,
    /// multi-location experiments (paper Fig. 14).
    pub fn single_site() -> Self {
        DeploymentLayout::new(vec![GnbSite::macro_site(1, Position::ORIGIN)])
    }

    /// The nearest site to a UE position — the serving-cell rule (path loss
    /// is monotone in distance here, so nearest = strongest on average).
    pub fn serving_site(&self, ue: &Position) -> &GnbSite {
        self.sites
            .iter()
            .min_by(|a, b| {
                a.position
                    .distance_to(ue)
                    .partial_cmp(&b.position.distance_to(ue))
                    .expect("distances are finite")
            })
            .expect("layout is non-empty")
    }

    /// Distance from the UE to its serving site, metres (2D).
    pub fn serving_distance(&self, ue: &Position) -> f64 {
        self.serving_site(ue).position.distance_to(ue)
    }

    /// Interfering sites: every site except the serving one.
    pub fn interferers(&self, ue: &Position) -> impl Iterator<Item = &GnbSite> {
        let serving_id = self.serving_site(ue).id;
        self.sites.iter().filter(move |s| s.id != serving_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance_to(&b), 5.0);
        let mid = a.lerp(&b, 0.5);
        assert_eq!(mid.x, 1.5);
        assert_eq!(mid.y, 2.0);
    }

    #[test]
    fn distance_3d_includes_height() {
        let site = GnbSite::macro_site(1, Position::ORIGIN);
        let d = site.distance_3d(&Position::ORIGIN);
        assert!((d - 23.5).abs() < 1e-9); // 25 − 1.5 m of height difference
        assert!(site.distance_3d(&Position::new(100.0, 0.0)) > 100.0);
    }

    #[test]
    fn dense_layout_serves_closer() {
        // On average over the study area, the 3-site layout leaves the UE
        // closer to its serving gNB than the 2-site layout — the geometric
        // root of the paper's Fig. 7 RSRQ difference.
        let sparse = DeploymentLayout::two_site_sparse();
        let dense = DeploymentLayout::three_site_dense();
        let mut sum_sparse = 0.0;
        let mut sum_dense = 0.0;
        let mut n = 0;
        for xi in -5..=5 {
            for yi in -5..=5 {
                let p = Position::new(xi as f64 * 40.0, yi as f64 * 40.0);
                sum_sparse += sparse.serving_distance(&p);
                sum_dense += dense.serving_distance(&p);
                n += 1;
            }
        }
        assert!(sum_dense / n as f64 * 1.15 < sum_sparse / n as f64);
    }

    #[test]
    fn serving_site_is_nearest() {
        let layout = DeploymentLayout::three_site_dense();
        let ue = Position::new(190.0, -35.0);
        assert_eq!(layout.serving_site(&ue).id, 3);
        assert_eq!(layout.interferers(&ue).count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_layout_panics() {
        DeploymentLayout::new(vec![]);
    }
}
