//! Deterministic, labelled randomness.
//!
//! Every experiment in the workspace is driven by a single `u64` campaign
//! seed. Subsystems (shadowing, fading, blockage, traffic, ABR jitter, …)
//! each draw an independent ChaCha12 stream derived from the seed and a
//! textual label, so:
//!
//! * re-running an experiment reproduces every figure bit-for-bit;
//! * adding a new consumer of randomness never perturbs existing streams
//!   (streams are keyed by label, not by draw order).

use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A tree of named, independent random streams under one root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    root: u64,
}

impl SeedTree {
    /// Create the tree from a campaign seed.
    pub const fn new(root: u64) -> Self {
        SeedTree { root }
    }

    /// The root seed.
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derive a child tree, e.g. one per measurement session.
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree { root: mix(self.root, label) }
    }

    /// Derive a child tree keyed by an index (session number, UE id, …).
    pub fn child_indexed(&self, label: &str, index: u64) -> SeedTree {
        SeedTree { root: mix(mix(self.root, label), &index.to_string()) }
    }

    /// Open the labelled random stream.
    pub fn stream(&self, label: &str) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(mix(self.root, label))
    }

    /// Open the labelled stream for a `&'static str` label.
    ///
    /// Yields exactly the stream [`stream`](SeedTree::stream) would for
    /// the same bytes — the point of the separate entry is the call-site
    /// contract: a static label carries no hidden `format!`/`String`
    /// construction, so hot constructors (one per carrier, per site, per
    /// session) can open streams without touching the heap. Prefer this
    /// wherever the label is known at compile time.
    pub fn stream_static(&self, label: &'static str) -> ChaCha12Rng {
        self.stream(label)
    }
}

/// FNV-1a style mixing of a seed with a label — cheap, stable across
/// platforms and Rust versions (unlike `DefaultHasher`).
fn mix(seed: u64, label: &str) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    // Final avalanche (splitmix64 finaliser).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let t = SeedTree::new(42);
        let a: u64 = t.stream("fading").gen();
        let b: u64 = t.stream("fading").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let t = SeedTree::new(42);
        let a: u64 = t.stream("fading").gen();
        let b: u64 = t.stream("shadowing").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn children_are_independent() {
        let t = SeedTree::new(7);
        let c1 = t.child_indexed("session", 1);
        let c2 = t.child_indexed("session", 2);
        assert_ne!(c1.root(), c2.root());
        let a: u64 = c1.stream("x").gen();
        let b: u64 = c2.stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn static_stream_matches_dynamic() {
        let t = SeedTree::new(99);
        let a: u64 = t.stream_static("carrier0/bler").gen();
        let b: u64 = t.stream(&format!("carrier{}/bler", 0)).gen();
        assert_eq!(a, b, "stream_static must be label-byte compatible");
    }

    #[test]
    fn different_roots_differ() {
        let a: u64 = SeedTree::new(1).stream("x").gen();
        let b: u64 = SeedTree::new(2).stream("x").gen();
        assert_ne!(a, b);
    }
}
