//! Large-scale path loss, 3GPP TR 38.901 §7.4.1.
//!
//! Implements the UMa (urban macro) and UMi (urban micro / street canyon)
//! models used for mid-band system studies, in both LOS and NLOS variants.
//! The study cities (Madrid, Paris, Rome, Munich, Chicago) are all dense
//! urban; UMa-LOS/NLOS with per-operator site density reproduces the
//! coverage contrasts the paper observes.

use serde::{Deserialize, Serialize};

/// Deployment scenario of TR 38.901.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Urban macro, LOS.
    UmaLos,
    /// Urban macro, NLOS.
    UmaNlos,
    /// Urban micro street canyon, LOS.
    UmiLos,
    /// Urban micro street canyon, NLOS.
    UmiNlos,
    /// Urban macro with distance-dependent LOS probability: the expected
    /// path loss `P_LOS(d)·PL_LOS + (1−P_LOS(d))·PL_NLOS` using the 38.901
    /// §7.4.2 UMa LOS probability. This is what gives site densification
    /// its real benefit (nearby serving sites are usually LOS, distant
    /// interferers usually NLOS) — the mechanism behind the paper's
    /// Fig. 7/22 coverage findings.
    UmaBlended,
    /// Urban micro with the 38.901 UMi LOS probability blend.
    UmiBlended,
    /// Free space (reference / sanity checks).
    FreeSpace,
}

/// A path-loss model instance bound to a carrier frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathLossModel {
    /// Scenario selecting the 38.901 formula.
    pub scenario: Scenario,
    /// Carrier frequency in GHz.
    pub frequency_ghz: f64,
}

impl PathLossModel {
    /// Construct; clamps frequency into 38.901's 0.5–100 GHz validity range.
    pub fn new(scenario: Scenario, frequency_ghz: f64) -> Self {
        PathLossModel { scenario, frequency_ghz: frequency_ghz.clamp(0.5, 100.0) }
    }

    /// Path loss in dB at 3D distance `d3d_m` metres (clamped below at
    /// 10 m, the models' near-field validity limit).
    ///
    /// Uses h_BS = 25 m, h_UT = 1.5 m (UMa defaults; UMi uses 10 m BS) and
    /// the simplified PL formulations of Table 7.4.1-1. The breakpoint
    /// distance is computed per the table notes.
    pub fn loss_db(&self, d3d_m: f64) -> f64 {
        let d = d3d_m.max(10.0);
        let fc = self.frequency_ghz;
        match self.scenario {
            Scenario::FreeSpace => 32.45 + 20.0 * vmath::log10(fc) + 20.0 * vmath::log10(d),
            Scenario::UmaLos => {
                let (h_bs, h_ut) = (25.0_f64, 1.5_f64);
                let d_bp = breakpoint_m(fc, h_bs, h_ut);
                if d <= d_bp {
                    28.0 + 22.0 * vmath::log10(d) + 20.0 * vmath::log10(fc)
                } else {
                    28.0 + 40.0 * vmath::log10(d) + 20.0 * vmath::log10(fc)
                        - 9.0 * vmath::log10(d_bp.powi(2) + (h_bs - h_ut).powi(2))
                }
            }
            Scenario::UmaNlos => {
                let los = PathLossModel { scenario: Scenario::UmaLos, ..*self }.loss_db(d);
                // The −0.6·(h_UT − 1.5) term vanishes at the 1.5 m UE height we model.
                let nlos = 13.54 + 39.08 * vmath::log10(d) + 20.0 * vmath::log10(fc);
                los.max(nlos)
            }
            Scenario::UmiLos => {
                let (h_bs, h_ut) = (10.0_f64, 1.5_f64);
                let d_bp = breakpoint_m(fc, h_bs, h_ut);
                if d <= d_bp {
                    32.4 + 21.0 * vmath::log10(d) + 20.0 * vmath::log10(fc)
                } else {
                    32.4 + 40.0 * vmath::log10(d) + 20.0 * vmath::log10(fc)
                        - 9.5 * vmath::log10(d_bp.powi(2) + (h_bs - h_ut).powi(2))
                }
            }
            Scenario::UmiNlos => {
                let los = PathLossModel { scenario: Scenario::UmiLos, ..*self }.loss_db(d);
                // The −0.3·(h_UT − 1.5) term vanishes at the 1.5 m UE height we model.
                let nlos = 22.4 + 35.3 * vmath::log10(d) + 21.3 * vmath::log10(fc);
                los.max(nlos)
            }
            Scenario::UmaBlended => {
                let p = uma_los_probability(d);
                let los = PathLossModel { scenario: Scenario::UmaLos, ..*self }.loss_db(d);
                let nlos = PathLossModel { scenario: Scenario::UmaNlos, ..*self }.loss_db(d);
                p * los + (1.0 - p) * nlos
            }
            Scenario::UmiBlended => {
                let p = umi_los_probability(d);
                let los = PathLossModel { scenario: Scenario::UmiLos, ..*self }.loss_db(d);
                let nlos = PathLossModel { scenario: Scenario::UmiNlos, ..*self }.loss_db(d);
                p * los + (1.0 - p) * nlos
            }
        }
    }

    /// Shadow-fading standard deviation σ_SF in dB for the scenario
    /// (Table 7.4.1-1; blended scenarios use the NLOS value, the larger of
    /// the two, since the blend's uncertainty is NLOS-dominated).
    pub fn shadow_sigma_db(&self) -> f64 {
        match self.scenario {
            Scenario::UmaLos => 4.0,
            Scenario::UmaNlos | Scenario::UmaBlended => 6.0,
            Scenario::UmiLos => 4.0,
            Scenario::UmiNlos | Scenario::UmiBlended => 7.82,
            Scenario::FreeSpace => 0.0,
        }
    }
}

/// Breakpoint distance d'_BP = 4 · h'_BS · h'_UT · f_c / c with the 1 m
/// effective-height correction of 38.901.
fn breakpoint_m(fc_ghz: f64, h_bs: f64, h_ut: f64) -> f64 {
    let c = 299_792_458.0;
    4.0 * (h_bs - 1.0) * (h_ut - 1.0) * (fc_ghz * 1e9) / c
}

/// A [`PathLossModel`] with every distance-independent term hoisted.
///
/// [`PathLossModel::loss_db`] re-derives `log10(fc)` and the breakpoint
/// term on every call, and the blended scenarios recurse through their
/// LOS/NLOS constituents — ~4–7 `log10` evaluations per path-loss query.
/// A driving UE moves every slot, so that cost lands on the hot path.
/// The profile precomputes all of it once per (scenario, frequency);
/// [`PathLossProfile::loss_db`] then needs exactly one `log10(d)` (plus
/// one `exp` for the blended LOS probability).
///
/// Bit-identity with the model is by referential transparency: each
/// hoisted constant is computed by the very expression the model
/// evaluates inline, every distance-dependent expression keeps the
/// model's operand association, and the recursion's repeated
/// sub-evaluations are deterministic, so collapsing them changes
/// nothing. `pathloss_profile_props` pins this per scenario across the
/// frequency/distance space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLossProfile {
    scenario: Scenario,
    /// `20·log10(fc)` — the fc term shared by most formulas.
    fc20: f64,
    /// `21.3·log10(fc)` — the UMi-NLOS fc term.
    fc21_3: f64,
    /// UMa breakpoint distance (25 m BS, 1.5 m UE).
    uma_d_bp: f64,
    /// `9·log10(d_bp² + Δh²)` — the UMa above-breakpoint correction.
    uma_bp_term: f64,
    /// UMi breakpoint distance (10 m BS, 1.5 m UE).
    umi_d_bp: f64,
    /// `9.5·log10(d_bp² + Δh²)` — the UMi above-breakpoint correction.
    umi_bp_term: f64,
}

impl PathLossProfile {
    /// Hoist `model`'s distance-independent terms.
    pub fn new(model: &PathLossModel) -> Self {
        let fc = model.frequency_ghz;
        let (uma_h_bs, uma_h_ut) = (25.0_f64, 1.5_f64);
        let uma_d_bp = breakpoint_m(fc, uma_h_bs, uma_h_ut);
        let (umi_h_bs, umi_h_ut) = (10.0_f64, 1.5_f64);
        let umi_d_bp = breakpoint_m(fc, umi_h_bs, umi_h_ut);
        PathLossProfile {
            scenario: model.scenario,
            fc20: 20.0 * vmath::log10(fc),
            fc21_3: 21.3 * vmath::log10(fc),
            uma_d_bp,
            uma_bp_term: 9.0 * vmath::log10(uma_d_bp.powi(2) + (uma_h_bs - uma_h_ut).powi(2)),
            umi_d_bp,
            umi_bp_term: 9.5 * vmath::log10(umi_d_bp.powi(2) + (umi_h_bs - umi_h_ut).powi(2)),
        }
    }

    /// Path loss in dB at 3D distance `d3d_m` — bit-identical to
    /// [`PathLossModel::loss_db`] on the profiled model.
    #[inline]
    pub fn loss_db(&self, d3d_m: f64) -> f64 {
        let d = d3d_m.max(10.0);
        let ld = vmath::log10(d);
        self.loss_db_with_log(d, ld)
    }

    /// [`loss_db`] with the clamped distance and its `log10` supplied by
    /// the caller — batch paths evaluate the logarithms of many distances
    /// in one SIMD slice (lane-identical to the scalar `log10`) and
    /// finish each lane here. `d` must be `d3d_m.max(10.0)` and `ld` its
    /// base-10 logarithm.
    ///
    /// [`loss_db`]: PathLossProfile::loss_db
    #[inline]
    pub(crate) fn loss_db_with_log(&self, d: f64, ld: f64) -> f64 {
        match self.scenario {
            Scenario::FreeSpace => 32.45 + self.fc20 + 20.0 * ld,
            Scenario::UmaLos => self.uma_los(d, ld),
            Scenario::UmaNlos => self.uma_los(d, ld).max(self.uma_nlos_formula(ld)),
            Scenario::UmiLos => self.umi_los(d, ld),
            Scenario::UmiNlos => self.umi_los(d, ld).max(self.umi_nlos_formula(ld)),
            Scenario::UmaBlended => {
                let p = uma_los_probability(d);
                let los = self.uma_los(d, ld);
                let nlos = los.max(self.uma_nlos_formula(ld));
                p * los + (1.0 - p) * nlos
            }
            Scenario::UmiBlended => {
                let p = umi_los_probability(d);
                let los = self.umi_los(d, ld);
                let nlos = los.max(self.umi_nlos_formula(ld));
                p * los + (1.0 - p) * nlos
            }
        }
    }

    #[inline]
    fn uma_los(&self, d: f64, ld: f64) -> f64 {
        if d <= self.uma_d_bp {
            28.0 + 22.0 * ld + self.fc20
        } else {
            28.0 + 40.0 * ld + self.fc20 - self.uma_bp_term
        }
    }

    #[inline]
    fn uma_nlos_formula(&self, ld: f64) -> f64 {
        13.54 + 39.08 * ld + self.fc20
    }

    #[inline]
    fn umi_los(&self, d: f64, ld: f64) -> f64 {
        if d <= self.umi_d_bp {
            32.4 + 21.0 * ld + self.fc20
        } else {
            32.4 + 40.0 * ld + self.fc20 - self.umi_bp_term
        }
    }

    #[inline]
    fn umi_nlos_formula(&self, ld: f64) -> f64 {
        22.4 + 35.3 * ld + self.fc21_3
    }
}

impl PathLossModel {
    /// The hoisted fast-path evaluator for this model (see
    /// [`PathLossProfile`]).
    pub fn profile(&self) -> PathLossProfile {
        PathLossProfile::new(self)
    }
}

/// UMa LOS probability, TR 38.901 Table 7.4.2-1 (h_UT ≤ 13 m form):
/// 1 for d ≤ 18 m, else `18/d + exp(−d/63)·(1 − 18/d)`.
pub fn uma_los_probability(d2d_m: f64) -> f64 {
    if d2d_m <= 18.0 {
        1.0
    } else {
        let r = 18.0 / d2d_m;
        r + vmath::exp(-d2d_m / 63.0) * (1.0 - r)
    }
}

/// UMi LOS probability, TR 38.901 Table 7.4.2-1:
/// 1 for d ≤ 18 m, else `18/d + exp(−d/36)·(1 − 18/d)`.
pub fn umi_los_probability(d2d_m: f64) -> f64 {
    if d2d_m <= 18.0 {
        1.0
    } else {
        let r = 18.0 / d2d_m;
        r + vmath::exp(-d2d_m / 36.0) * (1.0 - r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const ALL_SCENARIOS: [Scenario; 7] = [
        Scenario::UmaLos,
        Scenario::UmaNlos,
        Scenario::UmiLos,
        Scenario::UmiNlos,
        Scenario::UmaBlended,
        Scenario::UmiBlended,
        Scenario::FreeSpace,
    ];

    proptest! {
        /// The hoisted profile is bit-identical to the recursive model
        /// for every scenario across the frequency/distance space,
        /// including the near-field clamp and breakpoint neighbourhoods.
        #[test]
        fn pathloss_profile_props(
            fc in 0.5f64..100.0,
            d in 0.1f64..5_000.0,
            bp_wiggle in -0.01f64..0.01,
        ) {
            for scen in ALL_SCENARIOS {
                let model = PathLossModel::new(scen, fc);
                let profile = model.profile();
                let bp = breakpoint_m(fc, 25.0, 1.5) * (1.0 + bp_wiggle);
                for dist in [d, 1.0, 10.0, 18.0, 18.5, bp] {
                    prop_assert_eq!(
                        profile.loss_db(dist).to_bits(),
                        model.loss_db(dist).to_bits(),
                        "{:?} fc={} d={}", scen, fc, dist
                    );
                }
            }
        }
    }

    #[test]
    fn loss_increases_with_distance_and_frequency() {
        for scen in [
            Scenario::UmaLos,
            Scenario::UmaNlos,
            Scenario::UmiLos,
            Scenario::UmiNlos,
            Scenario::UmaBlended,
            Scenario::UmiBlended,
        ] {
            let m = PathLossModel::new(scen, 3.5);
            let mut prev = 0.0;
            for d in [10.0, 30.0, 100.0, 300.0, 1000.0] {
                let l = m.loss_db(d);
                assert!(l > prev, "{scen:?} d={d}");
                prev = l;
            }
            let hi = PathLossModel::new(scen, 28.0);
            assert!(hi.loss_db(100.0) > m.loss_db(100.0), "{scen:?} mmWave loss higher");
        }
    }

    #[test]
    fn nlos_never_below_los() {
        let fc = 3.5;
        for d in [10.0, 50.0, 150.0, 500.0, 2000.0] {
            let los = PathLossModel::new(Scenario::UmaLos, fc).loss_db(d);
            let nlos = PathLossModel::new(Scenario::UmaNlos, fc).loss_db(d);
            assert!(nlos >= los, "d={d}: NLOS {nlos} < LOS {los}");
        }
    }

    #[test]
    fn uma_los_reference_value() {
        // At 3.5 GHz, 100 m (below breakpoint): 28 + 22·2 + 20·log10(3.5)
        // = 28 + 44 + 10.881 ≈ 82.88 dB.
        let m = PathLossModel::new(Scenario::UmaLos, 3.5);
        assert!((m.loss_db(100.0) - 82.881).abs() < 0.01);
    }

    #[test]
    fn free_space_reference_value() {
        // FSPL at 1 GHz, 1 km: ≈ 92.45 dB.
        let m = PathLossModel::new(Scenario::FreeSpace, 1.0);
        assert!((m.loss_db(1000.0) - 92.45).abs() < 0.01);
    }

    #[test]
    fn near_field_clamp() {
        let m = PathLossModel::new(Scenario::UmaLos, 3.5);
        assert_eq!(m.loss_db(1.0), m.loss_db(10.0));
    }

    #[test]
    fn breakpoint_continuity() {
        // The two-slope UMa-LOS model is continuous at the breakpoint.
        let fc = 3.5;
        let m = PathLossModel::new(Scenario::UmaLos, fc);
        let d_bp = breakpoint_m(fc, 25.0, 1.5);
        let below = m.loss_db(d_bp * 0.999);
        let above = m.loss_db(d_bp * 1.001);
        assert!((below - above).abs() < 0.5, "discontinuity {below} vs {above} at {d_bp}");
    }

    #[test]
    fn shadow_sigma_matches_table() {
        assert_eq!(PathLossModel::new(Scenario::UmaNlos, 3.5).shadow_sigma_db(), 6.0);
        assert_eq!(PathLossModel::new(Scenario::UmaLos, 3.5).shadow_sigma_db(), 4.0);
    }

    #[test]
    fn los_probability_decays_with_distance() {
        assert_eq!(uma_los_probability(10.0), 1.0);
        let mut prev = 1.0;
        for d in [20.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
            let p = uma_los_probability(d);
            assert!(p < prev, "d={d}");
            assert!(p > 0.0 && p <= 1.0);
            prev = p;
        }
        // UMi loses LOS faster than UMa.
        assert!(umi_los_probability(100.0) < uma_los_probability(100.0));
    }

    #[test]
    fn blended_sits_between_los_and_nlos() {
        let fc = 3.5;
        for d in [30.0, 80.0, 150.0, 400.0] {
            let los = PathLossModel::new(Scenario::UmaLos, fc).loss_db(d);
            let nlos = PathLossModel::new(Scenario::UmaNlos, fc).loss_db(d);
            let blend = PathLossModel::new(Scenario::UmaBlended, fc).loss_db(d);
            assert!(blend >= los && blend <= nlos, "d={d}: {los} {blend} {nlos}");
        }
        // Close in it tracks LOS, far out it tracks NLOS.
        let close = PathLossModel::new(Scenario::UmaBlended, fc).loss_db(20.0);
        let close_los = PathLossModel::new(Scenario::UmaLos, fc).loss_db(20.0);
        assert!((close - close_los).abs() < 3.0);
        let far = PathLossModel::new(Scenario::UmaBlended, fc).loss_db(1000.0);
        let far_nlos = PathLossModel::new(Scenario::UmaNlos, fc).loss_db(1000.0);
        assert!((far - far_nlos).abs() < 3.0);
    }
}
