//! Spatially-correlated log-normal shadowing (Gudmundson model).
//!
//! Shadow fading decorrelates with distance travelled:
//! `ρ(Δd) = exp(−Δd / d_corr)` with a correlation distance of tens of
//! metres in urban macro. We evolve the shadowing value as a Gauss-Markov
//! process indexed by distance, so a stationary UE keeps a constant
//! shadowing draw while a driving UE sees it swing — one of the reasons
//! channel variability worsens with speed (paper §7).

use crate::rng::SeedTree;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the shadowing process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation σ_SF in dB (scenario-dependent, see
    /// [`crate::pathloss::PathLossModel::shadow_sigma_db`]).
    pub sigma_db: f64,
    /// Decorrelation distance in metres (UMa ≈ 37–50 m; we default 37 m,
    /// the TR 38.901 UMa value).
    pub decorrelation_m: f64,
    /// Environment-churn speed, m/s: even a stationary UE sees its
    /// shadowing drift as people, vehicles and foliage move through the
    /// propagation paths. Acts as a floor on the effective distance
    /// travelled per step. The paper's Fig. 13 (a *stationary* UE whose
    /// MCS swings by tens of indices over tens of seconds) is direct
    /// evidence of this churn; 1.5 m/s gives a ~25 s decorrelation time.
    pub env_speed_mps: f64,
}

impl Default for ShadowingConfig {
    fn default() -> Self {
        ShadowingConfig { sigma_db: 6.0, decorrelation_m: 37.0, env_speed_mps: 1.5 }
    }
}

/// How many standard-normal draws one [`GaussianTile`] refill computes at
/// once: 64 uniforms feed one `vmath::gaussian_slice` call, so the SIMD
/// arms get full lanes and the `ln`/`cos` cost amortises across the tile.
pub(crate) const GAUSS_TILE: usize = 32;

/// A precomputed tile of standard-normal innovations.
///
/// The AR(1) shadowing/fading updates each consume one N(0,1) draw per
/// slot; computing them one at a time keeps the Box–Muller `ln`/`cos`
/// scalar. The tile draws the underlying uniforms in exactly the order
/// the scalar code would (u1 then u2, draw by draw — the RNG stream is
/// untouched) and converts a whole tile at once through
/// [`vmath::gaussian_slice`], whose lanes are bit-identical to
/// [`vmath::gaussian_pair`]. Result: the value stream is byte-equal to
/// point-of-use scalar draws, only cheaper and in bursts.
#[derive(Debug, Clone)]
pub(crate) struct GaussianTile {
    buf: [f64; GAUSS_TILE],
    /// Next unread index; `== len` means empty.
    pos: usize,
    len: usize,
}

impl GaussianTile {
    pub(crate) fn new() -> Self {
        GaussianTile { buf: [0.0; GAUSS_TILE], pos: 0, len: 0 }
    }

    /// Next innovation, refilling the tile from `rng` when drained.
    pub(crate) fn next_batched(&mut self, rng: &mut ChaCha12Rng) -> f64 {
        if self.pos == self.len {
            let mut u1 = [0.0; GAUSS_TILE];
            let mut u2 = [0.0; GAUSS_TILE];
            for i in 0..GAUSS_TILE {
                u1[i] = rng.gen_range(f64::EPSILON..1.0);
                u2[i] = rng.gen_range(0.0..1.0);
            }
            vmath::gaussian_slice(&u1, &u2, &mut self.buf);
            self.pos = 0;
            self.len = GAUSS_TILE;
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Point-of-use scalar draw — the pre-optimisation reference path.
    /// Drains any tile the batched path prefetched first, so mixing the
    /// two on one process cannot skip or reorder RNG draws.
    pub(crate) fn next_unbatched(&mut self, rng: &mut ChaCha12Rng) -> f64 {
        if self.pos < self.len {
            let v = self.buf[self.pos];
            self.pos += 1;
            return v;
        }
        gaussian(rng)
    }

    /// Refill if drained and return how many prefetched draws remain.
    /// Lookahead runs size themselves off this so a whole run always
    /// comes from one contiguous tile stretch — which is what makes
    /// [`GaussianTile::rewind`] possible at all.
    pub(crate) fn ensure_prefetched(&mut self, rng: &mut ChaCha12Rng) -> usize {
        if self.pos == self.len {
            let _ = self.next_batched(rng);
            self.pos -= 1;
        }
        self.len - self.pos
    }

    /// Take the next prefetched draw. Caller must have checked capacity
    /// via [`GaussianTile::ensure_prefetched`].
    pub(crate) fn take(&mut self) -> f64 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    /// Un-consume the last `n` draws of a speculative run: they stay in
    /// the buffer, so the next consumer (batched or unbatched) sees the
    /// exact same values in the exact same order.
    pub(crate) fn rewind(&mut self, n: usize) {
        debug_assert!(n <= self.pos, "rewinding draws that were never taken");
        self.pos -= n;
    }
}

/// The evolving shadowing state of one UE–site link.
#[derive(Debug, Clone)]
pub struct ShadowingProcess {
    config: ShadowingConfig,
    rng: ChaCha12Rng,
    tile: GaussianTile,
    current_db: f64,
    /// Memoised step distance of the last advance. Slot loops advance by a
    /// constant distance (speed × slot), so `exp`/`sqrt` below hit this
    /// memo nearly every slot. NaN compares unequal → first call misses.
    memo_delta_m: f64,
    /// `exp(−Δd/d_corr)` for `memo_delta_m`.
    memo_rho: f64,
    /// `sqrt(1 − ρ²)` for `memo_delta_m` (the σ factor stays in the
    /// innovation term so the float association is unchanged).
    memo_decay: f64,
}

impl ShadowingProcess {
    /// Initialise with a fresh draw from N(0, σ²).
    pub fn new(config: ShadowingConfig, seeds: &SeedTree, link_label: &str) -> Self {
        let mut rng = seeds.stream(&format!("shadowing/{link_label}"));
        let current_db = gaussian(&mut rng) * config.sigma_db;
        ShadowingProcess {
            config,
            rng,
            tile: GaussianTile::new(),
            current_db,
            memo_delta_m: f64::NAN,
            memo_rho: f64::NAN,
            memo_decay: f64::NAN,
        }
    }

    /// Current shadowing value in dB (zero-mean).
    pub fn value_db(&self) -> f64 {
        self.current_db
    }

    /// Advance the process after the UE moved `delta_m` metres (no
    /// environment churn — pure spatial Gudmundson).
    ///
    /// `S' = ρ·S + sqrt(1−ρ²)·σ·w`, `ρ = exp(−Δd/d_corr)` — the standard
    /// discrete update. A zero move keeps the value unchanged.
    pub fn advance(&mut self, delta_m: f64) -> f64 {
        if delta_m > 0.0 {
            if delta_m != self.memo_delta_m {
                let rho = vmath::exp(-delta_m / self.config.decorrelation_m);
                self.memo_delta_m = delta_m;
                self.memo_rho = rho;
                self.memo_decay = (1.0 - rho * rho).sqrt();
            }
            let innovation = self.tile.next_batched(&mut self.rng) * self.config.sigma_db;
            self.current_db = self.memo_rho * self.current_db + self.memo_decay * innovation;
        }
        self.current_db
    }

    /// Advance after the UE moved `delta_m` metres during `dt_s` seconds,
    /// including environment churn: the effective decorrelating distance
    /// is `max(delta_m, env_speed · dt)`, so a stationary UE still drifts.
    pub fn advance_with_time(&mut self, delta_m: f64, dt_s: f64) -> f64 {
        let effective = delta_m.max(self.config.env_speed_mps * dt_s);
        self.advance(effective)
    }

    /// How many slots a lookahead run may advance without crossing a tile
    /// refill boundary (refilling first if the tile is drained).
    pub(crate) fn lookahead_capacity(&mut self) -> usize {
        self.tile.ensure_prefetched(&mut self.rng)
    }

    /// Advance `out.len()` slots of [`advance_with_time`] at once,
    /// recording the state after each slot. Caller must bound `out.len()`
    /// by [`lookahead_capacity`]. Bit-identical to `out.len()` sequential
    /// calls: same memo update, same draw order, same float expressions.
    ///
    /// [`advance_with_time`]: ShadowingProcess::advance_with_time
    /// [`lookahead_capacity`]: ShadowingProcess::lookahead_capacity
    pub(crate) fn advance_lookahead(&mut self, delta_m: f64, dt_s: f64, out: &mut [f64]) {
        let effective = delta_m.max(self.config.env_speed_mps * dt_s);
        if effective > 0.0 {
            if effective != self.memo_delta_m {
                let rho = vmath::exp(-effective / self.config.decorrelation_m);
                self.memo_delta_m = effective;
                self.memo_rho = rho;
                self.memo_decay = (1.0 - rho * rho).sqrt();
            }
            for o in out.iter_mut() {
                let innovation = self.tile.take() * self.config.sigma_db;
                self.current_db = self.memo_rho * self.current_db + self.memo_decay * innovation;
                *o = self.current_db;
            }
        } else {
            out.fill(self.current_db);
        }
    }

    /// The per-slot-delta variant of [`advance_lookahead`] for moving
    /// lookahead runs: slot `b` advances by `moved[b]` metres. Caller
    /// must ensure every slot consumes a draw (each `moved[b]` positive,
    /// or environment churn enabled) so a rewind can account draws as
    /// one-per-slot, and must bound the length by [`lookahead_capacity`].
    ///
    /// [`advance_lookahead`]: ShadowingProcess::advance_lookahead
    /// [`lookahead_capacity`]: ShadowingProcess::lookahead_capacity
    pub(crate) fn advance_lookahead_path(&mut self, moved: &[f64], dt_s: f64, out: &mut [f64]) {
        let env_m = self.config.env_speed_mps * dt_s;
        for (o, &delta_m) in out.iter_mut().zip(moved.iter()) {
            let effective = delta_m.max(env_m);
            debug_assert!(effective > 0.0, "moving lookahead slot consumes no draw");
            if effective != self.memo_delta_m {
                let rho = vmath::exp(-effective / self.config.decorrelation_m);
                self.memo_delta_m = effective;
                self.memo_rho = rho;
                self.memo_decay = (1.0 - rho * rho).sqrt();
            }
            let innovation = self.tile.take() * self.config.sigma_db;
            self.current_db = self.memo_rho * self.current_db + self.memo_decay * innovation;
            *o = self.current_db;
        }
    }

    /// Roll back the last `n` slots of a lookahead run: restore
    /// `state_db` (the state after the last slot actually consumed) and
    /// return the `n` unused innovations to the tile. Only valid when the
    /// run consumed draws (`effective > 0`); a zero-movement lookahead
    /// has nothing to rewind.
    pub(crate) fn rewind_lookahead(&mut self, n: usize, state_db: f64) {
        self.tile.rewind(n);
        self.current_db = state_db;
    }

    /// The pre-optimisation [`advance`]: recomputes `exp`/`sqrt` every
    /// call instead of memoising them. Bit-identical to [`advance`] (same
    /// expressions, same RNG draws); kept as the reference the
    /// `perf_baseline` uncached lane measures.
    ///
    /// [`advance`]: ShadowingProcess::advance
    pub fn advance_uncached(&mut self, delta_m: f64) -> f64 {
        if delta_m > 0.0 {
            let rho = vmath::exp(-delta_m / self.config.decorrelation_m);
            let innovation = self.tile.next_unbatched(&mut self.rng) * self.config.sigma_db;
            self.current_db = rho * self.current_db + (1.0 - rho * rho).sqrt() * innovation;
        }
        self.current_db
    }

    /// The pre-optimisation [`advance_with_time`] (see
    /// [`ShadowingProcess::advance_uncached`]).
    ///
    /// [`advance_with_time`]: ShadowingProcess::advance_with_time
    pub fn advance_with_time_uncached(&mut self, delta_m: f64, dt_s: f64) -> f64 {
        let effective = delta_m.max(self.config.env_speed_mps * dt_s);
        self.advance_uncached(effective)
    }
}

/// A standard normal draw via Box-Muller (two uniforms; we discard the
/// second value for simplicity — this code is not hot enough to matter).
/// Evaluated through the `vmath` kernels so a single draw is
/// bit-identical to the corresponding lane of a [`GaussianTile`] refill.
pub(crate) fn gaussian(rng: &mut ChaCha12Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    vmath::gaussian_pair(u1, u2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(sigma: f64, dcorr: f64) -> ShadowingProcess {
        ShadowingProcess::new(
            ShadowingConfig { sigma_db: sigma, decorrelation_m: dcorr, env_speed_mps: 0.0 },
            &SeedTree::new(1234),
            "test",
        )
    }

    #[test]
    fn stationary_ue_keeps_value() {
        let mut p = process(6.0, 37.0);
        let v0 = p.value_db();
        for _ in 0..100 {
            p.advance(0.0);
        }
        assert_eq!(p.value_db(), v0);
    }

    #[test]
    fn long_run_statistics_match_sigma() {
        let mut p = process(6.0, 37.0);
        let mut values = Vec::new();
        for _ in 0..20_000 {
            values.push(p.advance(10.0));
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn small_steps_stay_correlated() {
        // Over 1 m the value should barely move relative to σ.
        let mut p = process(6.0, 37.0);
        let before = p.value_db();
        let after = p.advance(1.0);
        assert!((after - before).abs() < 6.0, "jump too large: {} -> {}", before, after);
        // Over many decorrelation distances the memory of the start fades:
        // correlate start/end over repeated trials.
        let mut same_sign = 0;
        for trial in 0..200 {
            let mut p = ShadowingProcess::new(
                ShadowingConfig { sigma_db: 6.0, decorrelation_m: 37.0, env_speed_mps: 0.0 },
                &SeedTree::new(trial),
                "x",
            );
            let s0 = p.value_db();
            let s1 = p.advance(370.0); // 10 decorrelation distances
            if s0.signum() == s1.signum() {
                same_sign += 1;
            }
        }
        // Independent values agree in sign ~50% of the time.
        assert!((60..140).contains(&same_sign), "same_sign={same_sign}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = process(6.0, 37.0);
        let mut b = process(6.0, 37.0);
        for _ in 0..50 {
            assert_eq!(a.advance(5.0), b.advance(5.0));
        }
    }

    #[test]
    fn tile_stream_matches_scalar_draws() {
        use rand::SeedableRng;
        let mut rng_batched = ChaCha12Rng::seed_from_u64(77);
        let mut rng_scalar = ChaCha12Rng::seed_from_u64(77);
        let mut tile = GaussianTile::new();
        for i in 0..(GAUSS_TILE * 5 + 3) {
            assert_eq!(
                tile.next_batched(&mut rng_batched).to_bits(),
                gaussian(&mut rng_scalar).to_bits(),
                "draw {i} diverged from the point-of-use scalar draw"
            );
        }
    }

    #[test]
    fn batched_process_matches_unbatched_reference() {
        // The production (tile-prefetching) path and the uncached
        // reference path realise the same process byte-for-byte.
        let mut batched = process(6.0, 37.0);
        let mut reference = process(6.0, 37.0);
        for i in 0..150 {
            assert_eq!(
                batched.advance(5.0).to_bits(),
                reference.advance_uncached(5.0).to_bits(),
                "step {i}"
            );
        }
        // Mixing the two paths on ONE process must not skip or reorder
        // RNG draws: the unbatched path drains the prefetched tile first.
        let mut mixed = process(6.0, 37.0);
        let mut pure = process(6.0, 37.0);
        for i in 0..150 {
            let v = if i % 3 == 0 { mixed.advance_uncached(5.0) } else { mixed.advance(5.0) };
            assert_eq!(v.to_bits(), pure.advance(5.0).to_bits(), "mixed step {i}");
        }
    }
}
