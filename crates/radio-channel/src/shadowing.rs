//! Spatially-correlated log-normal shadowing (Gudmundson model).
//!
//! Shadow fading decorrelates with distance travelled:
//! `ρ(Δd) = exp(−Δd / d_corr)` with a correlation distance of tens of
//! metres in urban macro. We evolve the shadowing value as a Gauss-Markov
//! process indexed by distance, so a stationary UE keeps a constant
//! shadowing draw while a driving UE sees it swing — one of the reasons
//! channel variability worsens with speed (paper §7).

use crate::rng::SeedTree;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the shadowing process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation σ_SF in dB (scenario-dependent, see
    /// [`crate::pathloss::PathLossModel::shadow_sigma_db`]).
    pub sigma_db: f64,
    /// Decorrelation distance in metres (UMa ≈ 37–50 m; we default 37 m,
    /// the TR 38.901 UMa value).
    pub decorrelation_m: f64,
    /// Environment-churn speed, m/s: even a stationary UE sees its
    /// shadowing drift as people, vehicles and foliage move through the
    /// propagation paths. Acts as a floor on the effective distance
    /// travelled per step. The paper's Fig. 13 (a *stationary* UE whose
    /// MCS swings by tens of indices over tens of seconds) is direct
    /// evidence of this churn; 1.5 m/s gives a ~25 s decorrelation time.
    pub env_speed_mps: f64,
}

impl Default for ShadowingConfig {
    fn default() -> Self {
        ShadowingConfig { sigma_db: 6.0, decorrelation_m: 37.0, env_speed_mps: 1.5 }
    }
}

/// The evolving shadowing state of one UE–site link.
#[derive(Debug, Clone)]
pub struct ShadowingProcess {
    config: ShadowingConfig,
    rng: ChaCha12Rng,
    current_db: f64,
    /// Memoised step distance of the last advance. Slot loops advance by a
    /// constant distance (speed × slot), so `exp`/`sqrt` below hit this
    /// memo nearly every slot. NaN compares unequal → first call misses.
    memo_delta_m: f64,
    /// `exp(−Δd/d_corr)` for `memo_delta_m`.
    memo_rho: f64,
    /// `sqrt(1 − ρ²)` for `memo_delta_m` (the σ factor stays in the
    /// innovation term so the float association is unchanged).
    memo_decay: f64,
}

impl ShadowingProcess {
    /// Initialise with a fresh draw from N(0, σ²).
    pub fn new(config: ShadowingConfig, seeds: &SeedTree, link_label: &str) -> Self {
        let mut rng = seeds.stream(&format!("shadowing/{link_label}"));
        let current_db = gaussian(&mut rng) * config.sigma_db;
        ShadowingProcess {
            config,
            rng,
            current_db,
            memo_delta_m: f64::NAN,
            memo_rho: f64::NAN,
            memo_decay: f64::NAN,
        }
    }

    /// Current shadowing value in dB (zero-mean).
    pub fn value_db(&self) -> f64 {
        self.current_db
    }

    /// Advance the process after the UE moved `delta_m` metres (no
    /// environment churn — pure spatial Gudmundson).
    ///
    /// `S' = ρ·S + sqrt(1−ρ²)·σ·w`, `ρ = exp(−Δd/d_corr)` — the standard
    /// discrete update. A zero move keeps the value unchanged.
    pub fn advance(&mut self, delta_m: f64) -> f64 {
        if delta_m > 0.0 {
            if delta_m != self.memo_delta_m {
                let rho = (-delta_m / self.config.decorrelation_m).exp();
                self.memo_delta_m = delta_m;
                self.memo_rho = rho;
                self.memo_decay = (1.0 - rho * rho).sqrt();
            }
            let innovation = gaussian(&mut self.rng) * self.config.sigma_db;
            self.current_db = self.memo_rho * self.current_db + self.memo_decay * innovation;
        }
        self.current_db
    }

    /// Advance after the UE moved `delta_m` metres during `dt_s` seconds,
    /// including environment churn: the effective decorrelating distance
    /// is `max(delta_m, env_speed · dt)`, so a stationary UE still drifts.
    pub fn advance_with_time(&mut self, delta_m: f64, dt_s: f64) -> f64 {
        let effective = delta_m.max(self.config.env_speed_mps * dt_s);
        self.advance(effective)
    }

    /// The pre-optimisation [`advance`]: recomputes `exp`/`sqrt` every
    /// call instead of memoising them. Bit-identical to [`advance`] (same
    /// expressions, same RNG draws); kept as the reference the
    /// `perf_baseline` uncached lane measures.
    ///
    /// [`advance`]: ShadowingProcess::advance
    pub fn advance_uncached(&mut self, delta_m: f64) -> f64 {
        if delta_m > 0.0 {
            let rho = (-delta_m / self.config.decorrelation_m).exp();
            let innovation = gaussian(&mut self.rng) * self.config.sigma_db;
            self.current_db = rho * self.current_db + (1.0 - rho * rho).sqrt() * innovation;
        }
        self.current_db
    }

    /// The pre-optimisation [`advance_with_time`] (see
    /// [`ShadowingProcess::advance_uncached`]).
    ///
    /// [`advance_with_time`]: ShadowingProcess::advance_with_time
    pub fn advance_with_time_uncached(&mut self, delta_m: f64, dt_s: f64) -> f64 {
        let effective = delta_m.max(self.config.env_speed_mps * dt_s);
        self.advance_uncached(effective)
    }
}

/// A standard normal draw via Box-Muller (two uniforms; we discard the
/// second value for simplicity — this code is not hot enough to matter).
pub(crate) fn gaussian(rng: &mut ChaCha12Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn process(sigma: f64, dcorr: f64) -> ShadowingProcess {
        ShadowingProcess::new(
            ShadowingConfig { sigma_db: sigma, decorrelation_m: dcorr, env_speed_mps: 0.0 },
            &SeedTree::new(1234),
            "test",
        )
    }

    #[test]
    fn stationary_ue_keeps_value() {
        let mut p = process(6.0, 37.0);
        let v0 = p.value_db();
        for _ in 0..100 {
            p.advance(0.0);
        }
        assert_eq!(p.value_db(), v0);
    }

    #[test]
    fn long_run_statistics_match_sigma() {
        let mut p = process(6.0, 37.0);
        let mut values = Vec::new();
        for _ in 0..20_000 {
            values.push(p.advance(10.0));
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn small_steps_stay_correlated() {
        // Over 1 m the value should barely move relative to σ.
        let mut p = process(6.0, 37.0);
        let before = p.value_db();
        let after = p.advance(1.0);
        assert!((after - before).abs() < 6.0, "jump too large: {} -> {}", before, after);
        // Over many decorrelation distances the memory of the start fades:
        // correlate start/end over repeated trials.
        let mut same_sign = 0;
        for trial in 0..200 {
            let mut p = ShadowingProcess::new(
                ShadowingConfig { sigma_db: 6.0, decorrelation_m: 37.0, env_speed_mps: 0.0 },
                &SeedTree::new(trial),
                "x",
            );
            let s0 = p.value_db();
            let s1 = p.advance(370.0); // 10 decorrelation distances
            if s0.signum() == s1.signum() {
                same_sign += 1;
            }
        }
        // Independent values agree in sign ~50% of the time.
        assert!((60..140).contains(&same_sign), "same_sign={same_sign}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = process(6.0, 37.0);
        let mut b = process(6.0, 37.0);
        for _ in 0..50 {
            assert_eq!(a.advance(5.0), b.advance(5.0));
        }
    }
}
