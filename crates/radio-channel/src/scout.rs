//! Coverage scouting (paper §2 ❶).
//!
//! Before measuring, the study scouted each city for areas with "good"
//! signal quality (RSRP > −90 dBm, RSRQ > −12 dB) using GNetTrack Pro.
//! Crucially, the measurement areas are *per city*, shared by every
//! operator measured there — which is why deployment density shows up in
//! the data: at the same tourist spot, the operator with three nearby
//! sites beats the one with two distant ones (Fig. 7 / Appendix 10.3).
//!
//! [`survey`] evaluates the large-scale (no fading, nominal shadowing)
//! signal at candidate spots; [`standard_study_spots`] is the shared
//! city-area candidate grid the campaign uses.

use crate::channel::ChannelConfig;
use crate::geometry::{DeploymentLayout, Position};
use crate::signal::RadioMeasurement;
use serde::{Deserialize, Serialize};

/// The large-scale signal situation at one candidate spot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoutReport {
    /// The candidate position.
    pub position: Position,
    /// Large-scale measurement (zero shadowing, no fading).
    pub measurement: RadioMeasurement,
    /// Serving site at this spot.
    pub serving_site: u32,
    /// 2D distance to the serving site, metres.
    pub serving_distance_m: f64,
}

impl ScoutReport {
    /// The paper's scouting acceptance rule.
    pub fn is_good(&self) -> bool {
        self.measurement.is_good_coverage()
    }
}

/// Evaluate the large-scale signal at each candidate position.
pub fn survey(
    config: &ChannelConfig,
    layout: &DeploymentLayout,
    candidates: &[Position],
) -> Vec<ScoutReport> {
    candidates
        .iter()
        .map(|&position| {
            let mut rx: Vec<(u32, f64, f64)> = layout
                .sites
                .iter()
                .map(|site| {
                    let pl = config.pathloss.loss_db(site.distance_3d(&position));
                    (
                        site.id,
                        config.signal.tx_per_re_dbm(site.tx_power_dbm) - pl,
                        site.position.distance_to(&position),
                    )
                })
                .collect();
            rx.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite powers"));
            let (serving_site, serving_dbm, serving_distance_m) = rx[0];
            let interferers: Vec<f64> = rx[1..].iter().map(|r| r.1).collect();
            let mut measurement =
                RadioMeasurement::compute(&config.signal, serving_dbm, &interferers);
            measurement.sinr_db += config.sinr_offset_db;
            ScoutReport { position, measurement, serving_site, serving_distance_m }
        })
        .collect()
}

/// Candidates passing the paper's scouting rule, best RSRP first.
pub fn good_spots(
    config: &ChannelConfig,
    layout: &DeploymentLayout,
    candidates: &[Position],
) -> Vec<ScoutReport> {
    let mut good: Vec<ScoutReport> = survey(config, layout, candidates)
        .into_iter()
        .filter(|r| r.is_good())
        .collect();
    good.sort_by(|a, b| {
        b.measurement.rsrp_dbm.partial_cmp(&a.measurement.rsrp_dbm).expect("finite")
    });
    good
}

/// The shared city-area candidate grid: nine "tourist spots" spread over a
/// ~400 m study area centred at the origin (where the operator layouts
/// place their sites). All operators in one city are measured at the same
/// spots, exactly as the paper's methodology prescribes.
pub fn standard_study_spots() -> Vec<Position> {
    vec![
        Position::new(0.0, 0.0),
        Position::new(140.0, 20.0),
        Position::new(-140.0, -20.0),
        Position::new(60.0, 120.0),
        Position::new(-60.0, -120.0),
        Position::new(180.0, -70.0),
        Position::new(-180.0, 60.0),
        Position::new(90.0, -90.0),
        Position::new(-90.0, 100.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_layout_yields_more_good_spots() {
        let config = ChannelConfig::midband_urban(245);
        let spots = standard_study_spots();
        let dense = good_spots(&config, &DeploymentLayout::three_site_dense(), &spots);
        let sparse = good_spots(&config, &DeploymentLayout::two_site_sparse(), &spots);
        assert!(
            dense.len() >= sparse.len(),
            "dense {} vs sparse {}",
            dense.len(),
            sparse.len()
        );
        assert!(!dense.is_empty());
    }

    #[test]
    fn reports_are_sorted_and_filtered() {
        let config = ChannelConfig::midband_urban(245);
        let spots = standard_study_spots();
        let good = good_spots(&config, &DeploymentLayout::three_site_dense(), &spots);
        for w in good.windows(2) {
            assert!(w[0].measurement.rsrp_dbm >= w[1].measurement.rsrp_dbm);
        }
        for r in &good {
            assert!(r.is_good());
        }
    }

    #[test]
    fn survey_covers_all_candidates() {
        let config = ChannelConfig::midband_urban(245);
        let spots = standard_study_spots();
        let all = survey(&config, &DeploymentLayout::two_site_sparse(), &spots);
        assert_eq!(all.len(), spots.len());
        // Serving distance is the distance to the claimed serving site.
        for r in &all {
            assert!(r.serving_distance_m >= 0.0);
        }
    }
}
