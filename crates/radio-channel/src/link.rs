//! Link-level abstractions: SINR → CQI, per-MCS BLER, and rank selection.
//!
//! This module is the UE side of the adaptation loop in the paper's
//! Fig. 21: from a post-equalisation SINR it derives the CSI content (CQI
//! and RI), and from a scheduled MCS + SINR it decides whether the
//! transport block decodes (BLER) — the quantity behind the paper's
//! Fig. 11 latency split.

use nr_phy::cqi::{Cqi, CqiTable};
use nr_phy::mcs::{McsIndex, McsTable};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Implementation loss applied to Shannon capacity when mapping SINR to a
/// supportable spectral efficiency: `SE = α · log2(1 + SINR)`. α ≈ 0.75 is
/// the standard system-level calibration for NR link abstraction.
pub const SHANNON_ALPHA: f64 = 0.75;

/// The α used for the *decode* threshold. The CQI definition already embeds
/// margin — a UE reports the CQI it can receive at ≤10% BLER — so the SINR
/// at which an MCS actually reaches 50% BLER sits below the SINR that
/// produced the matching CQI. Using a slightly larger α for the decode
/// threshold (0.85 > 0.75) reproduces that built-in margin: scheduling the
/// CQI-matched MCS yields ≈5–15% BLER, the NR operating point.
pub const SHANNON_ALPHA_DECODE: f64 = 0.85;

/// The 15 spectral-efficiency rows of a CQI table, hoisted so a scan does
/// not re-derive each row from (modulation, code-rate) fifteen times.
fn cqi_se_rows(table: CqiTable) -> [f64; 15] {
    let mut rows = [0.0; 15];
    for (i, row) in rows.iter_mut().enumerate() {
        *row = table.spectral_efficiency(Cqi::saturating(i as u8 + 1));
    }
    rows
}

/// The largest CQI whose row the supportable spectral efficiency covers —
/// the scan shared by the scalar and batched entry points, so both pick
/// boundary cases identically.
fn cqi_for_se(se: f64, rows: &[f64; 15]) -> Cqi {
    let mut best = 0u8;
    for (i, &row_se) in rows.iter().enumerate() {
        if row_se <= se {
            best = i as u8 + 1;
        }
    }
    Cqi::saturating(best)
}

/// Map a linear-domain capacity estimate to the largest CQI whose spectral
/// efficiency the channel supports.
pub fn sinr_to_cqi(sinr_db: f64, table: CqiTable) -> Cqi {
    cqi_for_se(vmath::shannon_se(sinr_db, SHANNON_ALPHA), &cqi_se_rows(table))
}

/// Batched [`sinr_to_cqi`]: one vectorised Shannon-capacity evaluation per
/// chunk of SINRs, then the shared table scan per element. Bit-identical
/// to calling the scalar function per element for *every* input bit
/// pattern (the SIMD spectral-efficiency kernel is lane-exact; see the
/// `vmath` equivalence contract).
pub fn sinr_to_cqi_batch(sinr_db: &[f64], table: CqiTable, out: &mut [Cqi]) {
    assert_eq!(sinr_db.len(), out.len(), "input/output length mismatch");
    let rows = cqi_se_rows(table);
    let mut se_buf = [0.0f64; 64];
    for (chunk, out_chunk) in sinr_db.chunks(64).zip(out.chunks_mut(64)) {
        let se = &mut se_buf[..chunk.len()];
        vmath::shannon_se_slice(chunk, SHANNON_ALPHA, se);
        for (o, &s) in out_chunk.iter_mut().zip(se.iter()) {
            *o = cqi_for_se(s, &rows);
        }
    }
}

/// Lazily filled decode-threshold cache, tables × MCS indices 0..32. The
/// threshold is a pure function of the (table, index) pair, and the BLER
/// waterfall sits on the per-slot transmit path — it should not pay an
/// `exp2` + `log10` chain on every transport block.
static MCS_THRESHOLD_LUT: OnceLock<[[f64; 32]; 3]> = OnceLock::new();

/// The computation behind [`mcs_sinr_threshold_db`], evaluated directly.
fn mcs_threshold_direct(table: McsTable, mcs: McsIndex) -> f64 {
    let se = table.spectral_efficiency(mcs).unwrap_or(0.0);
    let sinr = (vmath::exp2(se / SHANNON_ALPHA_DECODE) - 1.0).max(1e-9);
    10.0 * vmath::log10(sinr)
}

/// SINR (dB) threshold at which an MCS decodes with 50% BLER: the SINR
/// whose [`SHANNON_ALPHA_DECODE`]-scaled capacity equals the MCS spectral
/// efficiency.
pub fn mcs_sinr_threshold_db(table: McsTable, mcs: McsIndex) -> f64 {
    if mcs.0 >= 32 {
        // Reserved/retransmission indices fall outside the cache; they
        // resolve through the same `unwrap_or(0.0)` arm either way.
        return mcs_threshold_direct(table, mcs);
    }
    let lut = MCS_THRESHOLD_LUT.get_or_init(|| {
        let mut lut = [[0.0; 32]; 3];
        let tables = [McsTable::Qam64, McsTable::Qam256, McsTable::Qam64LowSe];
        for (t_i, t) in tables.iter().enumerate() {
            for m in 0..32u8 {
                lut[t_i][m as usize] = mcs_threshold_direct(*t, McsIndex(m));
            }
        }
        lut
    });
    let t_i = match table {
        McsTable::Qam64 => 0,
        McsTable::Qam256 => 1,
        McsTable::Qam64LowSe => 2,
    };
    lut[t_i][mcs.0 as usize]
}

/// Block error rate of an MCS at a given SINR: a logistic waterfall curve
/// centred on [`mcs_sinr_threshold_db`] with slope `s` dB (LDPC waterfalls
/// at mid-band block lengths are ≈ 1 dB wide).
pub fn bler(sinr_db: f64, table: McsTable, mcs: McsIndex, slope_db: f64) -> f64 {
    let thr = mcs_sinr_threshold_db(table, mcs);
    1.0 / (1.0 + vmath::exp((sinr_db - thr) / slope_db.max(0.05)))
}

/// Rank-selection profile: SINR thresholds (dB) above which the UE reports
/// rank ≥ 2, ≥ 3, ≥ 4. The offsets differ per deployment because rank
/// depends on scattering richness and antenna geometry — the knob that
/// lets operator profiles reproduce the paper's Fig. 6 rank distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankProfile {
    /// SINR above which 2 layers are sustainable.
    pub rank2_db: f64,
    /// SINR above which 3 layers are sustainable.
    pub rank3_db: f64,
    /// SINR above which 4 layers are sustainable.
    pub rank4_db: f64,
    /// Hysteresis in dB to avoid rank ping-pong at the boundaries.
    pub hysteresis_db: f64,
}

impl Default for RankProfile {
    fn default() -> Self {
        // Calibrated so a dense urban deployment (median SINR ~22 dB)
        // reports rank 4 most of the time, as Vodafone Spain does (87.1%).
        RankProfile { rank2_db: 5.0, rank3_db: 11.0, rank4_db: 17.0, hysteresis_db: 1.0 }
    }
}

impl RankProfile {
    /// Rank for an SINR, given the previous rank (hysteresis).
    pub fn rank(&self, sinr_db: f64, previous: u8) -> u8 {
        let h = |boundary: f64, up: bool| {
            if up {
                boundary + self.hysteresis_db
            } else {
                boundary - self.hysteresis_db
            }
        };
        let mut rank = previous.clamp(1, 4);
        // Climb while above the next boundary (+hysteresis).
        while rank < 4 {
            let boundary = match rank {
                1 => self.rank2_db,
                2 => self.rank3_db,
                _ => self.rank4_db,
            };
            if sinr_db > h(boundary, true) {
                rank += 1;
            } else {
                break;
            }
        }
        // Fall while below the current boundary (−hysteresis).
        while rank > 1 {
            let boundary = match rank {
                2 => self.rank2_db,
                3 => self.rank3_db,
                _ => self.rank4_db,
            };
            if sinr_db < h(boundary, false) {
                rank -= 1;
            } else {
                break;
            }
        }
        rank
    }
}

/// Bundle of the link-model parameters a cell applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// CQI table the UE reports against.
    pub cqi_table: CqiTable,
    /// Rank selection profile.
    pub rank_profile: RankProfile,
    /// BLER waterfall slope, dB.
    pub bler_slope_db: f64,
}

impl LinkModel {
    /// Defaults for a 256QAM-capable mid-band cell.
    pub fn midband_qam256() -> Self {
        LinkModel {
            cqi_table: CqiTable::Table2,
            rank_profile: RankProfile::default(),
            bler_slope_db: 1.0,
        }
    }

    /// CQI the UE would report at an SINR.
    pub fn cqi(&self, sinr_db: f64) -> Cqi {
        sinr_to_cqi(sinr_db, self.cqi_table)
    }

    /// Batched [`LinkModel::cqi`] over a slice of SINRs — the multi-UE
    /// slot engine computes all CSI-slot reports of a cell in one call.
    /// Bit-identical to the scalar method per element.
    pub fn cqi_batch(&self, sinr_db: &[f64], out: &mut [Cqi]) {
        sinr_to_cqi_batch(sinr_db, self.cqi_table, out)
    }

    /// Rank the UE would report.
    pub fn rank(&self, sinr_db: f64, previous: u8) -> u8 {
        self.rank_profile.rank(sinr_db, previous)
    }

    /// BLER of a scheduled MCS at an SINR. Transmissions above rank 1
    /// split power across layers; each extra layer costs
    /// `10·log10(layers)` dB of per-layer SINR, which the caller is
    /// expected to have applied already if it models per-layer detection.
    pub fn bler(&self, sinr_db: f64, table: McsTable, mcs: McsIndex) -> f64 {
        bler(sinr_db, table, mcs, self.bler_slope_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_monotone_in_sinr() {
        let mut prev = 0;
        for sinr in [-10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0] {
            let c = sinr_to_cqi(sinr, CqiTable::Table2).value();
            assert!(c >= prev, "sinr {sinr}: {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn cqi_endpoints() {
        assert!(sinr_to_cqi(-20.0, CqiTable::Table2).is_out_of_range());
        assert_eq!(sinr_to_cqi(40.0, CqiTable::Table2), Cqi::MAX);
        // CQI 12 (first 256QAM row of Table 2, the paper's "good channel"
        // boundary) needs roughly 20 dB.
        let c = sinr_to_cqi(21.0, CqiTable::Table2);
        assert!(c.value() >= 11 && c.value() <= 13, "cqi {c}");
    }

    #[test]
    fn bler_waterfall_shape() {
        let t = McsTable::Qam256;
        let m = McsIndex(20);
        let thr = mcs_sinr_threshold_db(t, m);
        assert!((bler(thr, t, m, 1.0) - 0.5).abs() < 1e-9);
        assert!(bler(thr + 3.0, t, m, 1.0) < 0.05);
        assert!(bler(thr - 3.0, t, m, 1.0) > 0.95);
        // Higher MCS needs higher SINR.
        assert!(mcs_sinr_threshold_db(t, McsIndex(27)) > mcs_sinr_threshold_db(t, McsIndex(5)));
    }

    #[test]
    fn bler_monotone_decreasing_in_sinr() {
        let t = McsTable::Qam64;
        let m = McsIndex(15);
        let mut prev = 1.0;
        for sinr in (-10..40).map(|s| s as f64) {
            let b = bler(sinr, t, m, 1.0);
            assert!(b <= prev);
            prev = b;
        }
    }

    #[test]
    fn rank_thresholds() {
        let p = RankProfile::default();
        assert_eq!(p.rank(0.0, 1), 1);
        assert_eq!(p.rank(8.0, 1), 2);
        assert_eq!(p.rank(14.0, 1), 3);
        assert_eq!(p.rank(25.0, 1), 4);
    }

    #[test]
    fn rank_hysteresis_prevents_pingpong() {
        let p = RankProfile::default();
        // Just below the rank-4 boundary, a UE already at rank 4 stays.
        assert_eq!(p.rank(16.5, 4), 4);
        // A UE at rank 3 does not climb for the same SINR.
        assert_eq!(p.rank(16.5, 3), 3);
        // Far below, everyone falls.
        assert_eq!(p.rank(3.0, 4), 1);
    }

    #[test]
    fn batched_cqi_bit_identical_to_scalar() {
        // Ragged lengths straddling the 64-wide chunk, plus non-finite
        // inputs: the batch must agree with the scalar path element-wise.
        for table in [CqiTable::Table1, CqiTable::Table2] {
            for n in [0usize, 1, 3, 63, 64, 65, 130] {
                let sinrs: Vec<f64> = (0..n)
                    .map(|i| match i % 5 {
                        0 => -25.0 + i as f64 * 0.7,
                        1 => f64::NAN,
                        2 => f64::INFINITY,
                        3 => f64::NEG_INFINITY,
                        _ => (i as f64 - 40.0) * 0.9,
                    })
                    .collect();
                let mut out = vec![Cqi::saturating(0); n];
                sinr_to_cqi_batch(&sinrs, table, &mut out);
                for (i, (&s, &got)) in sinrs.iter().zip(out.iter()).enumerate() {
                    assert_eq!(got, sinr_to_cqi(s, table), "{table:?} n={n} i={i} sinr={s}");
                }
            }
        }
    }

    #[test]
    fn threshold_lut_matches_direct_evaluation() {
        // The OnceLock cache holds exactly what the direct formula yields,
        // including reserved indices beyond the table (SE treated as 0).
        for table in [McsTable::Qam64, McsTable::Qam256, McsTable::Qam64LowSe] {
            for m in 0..40u8 {
                assert_eq!(
                    mcs_sinr_threshold_db(table, McsIndex(m)).to_bits(),
                    mcs_threshold_direct(table, McsIndex(m)).to_bits(),
                    "{table:?} mcs {m}"
                );
            }
        }
    }

    #[test]
    fn cqi_to_mcs_chain_is_self_consistent() {
        // Scheduling exactly the MCS the CQI implies should decode with low
        // BLER at the SINR that produced the CQI (the α-margin guarantees
        // it for most of the range).
        let link = LinkModel::midband_qam256();
        for sinr in [8.0, 12.0, 16.0, 22.0, 28.0] {
            let cqi = link.cqi(sinr);
            let policy = nr_phy::cqi::CqiToMcsPolicy::neutral(CqiTable::Table2);
            let mcs = policy.map(cqi);
            let b = link.bler(sinr, McsTable::Qam256, mcs);
            assert!(b < 0.35, "sinr {sinr}: cqi {cqi} mcs {} bler {b}", mcs.0);
        }
    }
}
