//! The composed per-slot channel simulator.
//!
//! [`ChannelSimulator`] wires the deployment geometry, path loss,
//! correlated shadowing, Doppler-matched fading, and (for mmWave) the
//! blockage process into a single per-slot stream of [`ChannelState`] —
//! the radio truth the RAN simulator schedules against and the XCAL-like
//! collector logs.

use crate::blockage::{BlockageConfig, BlockageProcess};
use crate::fading::{FadingConfig, FadingProcess};
use crate::geometry::{DeploymentLayout, Position};
use crate::mobility::{MobilityModel, MobilityState};
use crate::pathloss::{PathLossModel, PathLossProfile};
use crate::rng::SeedTree;
use crate::shadowing::{ShadowingConfig, ShadowingProcess};
use crate::signal::{NoiseTerms, RadioMeasurement, SignalConfig};
use serde::{Deserialize, Serialize};

/// Static description of a radio environment for one carrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Path-loss model (scenario + carrier frequency).
    pub pathloss: PathLossModel,
    /// Shadowing parameters (σ usually from the path-loss scenario).
    pub shadowing: ShadowingConfig,
    /// Rician K-factor in dB for the fading process.
    pub rician_k_db: f64,
    /// Blockage process parameters ([`BlockageConfig::NONE`] for FR1).
    pub blockage: BlockageConfig,
    /// Signal/noise arithmetic parameters.
    pub signal: SignalConfig,
    /// Calibration offset added to the serving SINR in dB. Operator
    /// profiles use this to express systematic differences (antenna gains,
    /// downtilt quality, interference coordination) that the geometric
    /// model does not capture individually.
    pub sinr_offset_db: f64,
    /// Handover hysteresis (A3-style): a neighbour must exceed the serving
    /// cell's large-scale power by this margin before the UE switches.
    /// Prevents serving-cell ping-pong under shadowing churn.
    pub handover_hysteresis_db: f64,
    /// Slot duration in seconds (0.5 ms at µ=1, 0.125 ms at µ=3).
    pub slot_s: f64,
}

impl ChannelConfig {
    /// A mid-band urban-macro environment for a carrier with `n_rb` RBs.
    /// Uses the LOS-probability-blended UMa path loss, which is what makes
    /// deployment density matter (the Fig. 7/22 mechanism).
    pub fn midband_urban(n_rb: u16) -> Self {
        let pathloss = PathLossModel::new(crate::pathloss::Scenario::UmaBlended, 3.5);
        ChannelConfig {
            pathloss,
            shadowing: ShadowingConfig {
                sigma_db: pathloss.shadow_sigma_db(),
                decorrelation_m: 37.0,
                env_speed_mps: 1.5,
            },
            rician_k_db: 6.0,
            blockage: BlockageConfig::NONE,
            signal: SignalConfig::midband(n_rb),
            // Serving-beam gain: the serving cell's codebook beamforming
            // and downtilt coordination benefit the scheduled UE but not
            // the interference it receives.
            sinr_offset_db: 3.0,
            handover_hysteresis_db: 3.0,
            slot_s: 0.5e-3,
        }
    }

    /// A 28 GHz urban mmWave environment (blockage active, µ=3 slots).
    pub fn mmwave_urban(n_rb: u16) -> Self {
        let pathloss = PathLossModel::new(crate::pathloss::Scenario::UmiLos, 28.0);
        ChannelConfig {
            pathloss,
            shadowing: ShadowingConfig {
                sigma_db: pathloss.shadow_sigma_db(),
                decorrelation_m: 10.0,
                env_speed_mps: 1.0,
            },
            rician_k_db: 9.0,
            blockage: BlockageConfig::mmwave_urban(),
            signal: SignalConfig {
                n_rb,
                scs_khz: 120,
                noise_figure_db: 7.0,
                neighbor_load: 0.2,
                serving_load: 1.0,
                background_interference_dbm: -115.0,
            },
            sinr_offset_db: 18.0, // beamforming gain of large FR2 arrays
            handover_hysteresis_db: 3.0,
            slot_s: 0.125e-3,
        }
    }
}

/// The channel truth for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelState {
    /// Slot index since simulator start.
    pub slot: u64,
    /// UE position this slot.
    pub position: Position,
    /// Serving site id.
    pub serving_site: u32,
    /// 2D distance to the serving site, metres.
    pub serving_distance_m: f64,
    /// Large-scale measurement (RSRP/RSSI/RSRQ and mean SINR — no fast
    /// fading, as a measurement report would average it out).
    pub measurement: RadioMeasurement,
    /// Instantaneous post-equalisation SINR including fading and blockage,
    /// the quantity link adaptation reacts to.
    pub sinr_db: f64,
    /// Whether an mmWave blockage is in force.
    pub blocked: bool,
}

/// Slots one still-path lookahead batch covers. Equal to
/// [`crate::shadowing::GAUSS_TILE`], so in steady state each batch
/// consumes exactly one innovation tile per process (a run never crosses
/// a refill boundary) and the per-batch bookkeeping amortises over 32
/// slots of full SIMD lanes.
const LA_SLOTS: usize = 32;
/// Stride of the per-site state history: the pre-batch state plus one
/// entry per lookahead slot.
const LA_STRIDE: usize = LA_SLOTS + 1;

/// Buffers of the slot lookahead (see [`ChannelSimulator::step_at`] and
/// [`ChannelSimulator::step`]).
///
/// Per-slot channel math has no external inputs beyond the UE trajectory:
/// shadowing and fading evolve from their own RNG streams, and every
/// dB↔mW conversion is a pure function of those states. The lookahead
/// therefore advances all processes [`LA_SLOTS`] slots at once (their
/// innovations are already tile-prefetched, and each process owns its
/// stream, so per-process draw order is untouched) and evaluates the
/// whole batch's `pow10`/`log10` conversions in wide SIMD slices —
/// bit-identical to the slot-by-slot path because `vmath` lanes equal
/// its scalar calls for every input.
///
/// Two front-ends share the machinery: the *still* batch (stationary UE,
/// warm large-scale cache, driven through `step_at`) and the *moving*
/// batch (internal mobility, driven through `step`, which additionally
/// batches the per-slot path-loss `log10` across slots × sites).
///
/// If the caller diverges mid-batch, the unread tail is *rewound*:
/// process states are restored from the recorded history, the unused
/// innovations are returned to their tiles, and (for a moving batch) the
/// mobility walker is restored from its snapshot and replayed over the
/// consumed slots — so the scalar path resumes exactly where a
/// never-lookahead simulator would be.
#[derive(Debug, Clone)]
struct Lookahead {
    /// Precomputed states for the batch's slots.
    states: Vec<ChannelState>,
    /// Shadowing state history, site-major with stride [`LA_STRIDE`]:
    /// entry `site·LA_STRIDE + k` is that site's state after `k`
    /// consumed batch slots (`k = 0`: the pre-batch state).
    shadow: Vec<f64>,
    /// Fading state history, same indexing (single process).
    fading: Vec<f64>,
    /// Serving index after `k` consumed slots; `usize::MAX` encodes None.
    serving: Vec<usize>,
    /// Whether the batch consumed one shadowing draw per slot (false only
    /// when environment churn is disabled).
    shadow_consumed: bool,
    /// Whether this is a moving batch built by [`ChannelSimulator::step`]
    /// (mobility-driven positions, snapshot-based rewind).
    mobility: bool,
    /// Next unread batch entry.
    pos: usize,
    /// Batch length (`0` = no batch pending).
    len: usize,
    /// Position the still batch was computed for. Moving batches store a
    /// NaN position here so the `step_at` pop test never matches them.
    position: Position,
    /// Per-slot UE positions of the batch.
    positions: Vec<Position>,
    /// Per-slot movement deltas of a moving batch, metres.
    moved: Vec<f64>,
    /// Slot-major per-(slot, site) large-scale base powers
    /// (`tx_per_re − path loss − sector`), dBm.
    bases: Vec<f64>,
    /// Slot-major per-(slot, site) 2D distances, metres.
    dist: Vec<f64>,
    /// Mobility walker state at the start of a moving batch; rewinding
    /// restores it and replays the consumed slots (deterministic, and any
    /// waypoint draws replay identically from the snapshotted RNG).
    snapshot: Option<MobilityState>,
    /// Scratch: site-major per-slot dBm/10 lanes for the `pow10` batch
    /// (also reused for the clamped path-loss distances of a moving
    /// batch's `log10` stage, which completes before the power stage).
    pow_args: Vec<f64>,
    /// Scratch: the corresponding linear powers (also reused for the
    /// path-loss logarithms of a moving batch).
    mw: Vec<f64>,
    /// Scratch: per-slot `log10` arguments (3 lanes per slot).
    log_args: Vec<f64>,
    /// Scratch: the corresponding logarithms.
    logs: Vec<f64>,
}

impl Lookahead {
    fn new(n_sites: usize) -> Self {
        let dummy = ChannelState {
            slot: 0,
            position: Position::ORIGIN,
            serving_site: 0,
            serving_distance_m: 0.0,
            measurement: RadioMeasurement {
                rsrp_dbm: 0.0,
                rssi_dbm: 0.0,
                rsrq_db: 0.0,
                sinr_db: 0.0,
            },
            sinr_db: 0.0,
            blocked: false,
        };
        Lookahead {
            states: vec![dummy; LA_SLOTS],
            shadow: vec![0.0; n_sites * LA_STRIDE],
            fading: vec![0.0; LA_STRIDE],
            serving: vec![usize::MAX; LA_STRIDE],
            shadow_consumed: false,
            mobility: false,
            pos: 0,
            len: 0,
            position: Position::ORIGIN,
            positions: vec![Position::ORIGIN; LA_SLOTS],
            moved: vec![0.0; LA_SLOTS],
            bases: vec![0.0; n_sites * LA_SLOTS],
            dist: vec![0.0; n_sites * LA_SLOTS],
            snapshot: None,
            pow_args: vec![0.0; n_sites * LA_SLOTS],
            mw: vec![0.0; n_sites * LA_SLOTS],
            log_args: vec![0.0; 3 * LA_SLOTS],
            logs: vec![0.0; 3 * LA_SLOTS],
        }
    }

    /// Resize the site-dependent buffers after a layout swap.
    fn resize_sites(&mut self, n_sites: usize) {
        self.shadow.resize(n_sites * LA_STRIDE, 0.0);
        self.bases.resize(n_sites * LA_SLOTS, 0.0);
        self.dist.resize(n_sites * LA_SLOTS, 0.0);
        self.pow_args.resize(n_sites * LA_SLOTS, 0.0);
        self.mw.resize(n_sites * LA_SLOTS, 0.0);
    }
}

/// Per-slot channel simulator for one UE on one carrier.
#[derive(Debug, Clone)]
pub struct ChannelSimulator {
    config: ChannelConfig,
    layout: DeploymentLayout,
    mobility: MobilityState,
    fading: FadingProcess,
    shadow: Vec<ShadowingProcess>,
    blockage: BlockageProcess,
    slot: u64,
    serving_idx: Option<usize>,
    /// Position the `large_scale` entries were computed for. `None` until
    /// the first slot and after a layout swap.
    cache_position: Option<Position>,
    /// Per-site cached large-scale terms for `cache_position`:
    /// `(site id, ((tx_per_re − path loss) − sector) dBm, 2D distance m)`.
    /// Pure functions of position and configuration — never of RNG state —
    /// so reuse while the UE is stationary cannot perturb any stream.
    large_scale: Vec<(u32, f64, f64)>,
    /// Scratch: per-site `(site id, received per-RE power, 2D distance)`
    /// for the current slot (cache + shadowing). Reused across slots.
    rx: Vec<(u32, f64, f64)>,
    /// Scratch: non-serving per-RE powers for the current slot.
    interferers: Vec<f64>,
    /// Config-constant linear-domain noise/background terms, hoisted out
    /// of the per-slot measurement arithmetic (bit-exact: deterministic
    /// functions of the configuration).
    noise_terms: NoiseTerms,
    /// The path-loss model with its distance-independent terms hoisted —
    /// one `log10` per site per recompute instead of the model's
    /// recursive ~4–7. Bit-identical to `config.pathloss.loss_db`
    /// (see [`PathLossProfile`]); the driving fast path.
    pl_profile: PathLossProfile,
    /// Per-site `tx_per_re_dbm(site.tx_power_dbm)` — pure function of
    /// config + layout, hoisted out of the movement recompute (one
    /// `log10` per site per slot while driving). Rebuilt on layout swap.
    tx_per_re: Vec<f64>,
    /// Lookahead batch state and scratch (see [`Lookahead`]).
    la: Lookahead,
}

impl ChannelSimulator {
    /// Build a simulator. `seeds` should already be scoped to the session
    /// and carrier so repeated sessions differ.
    pub fn new(
        config: ChannelConfig,
        layout: DeploymentLayout,
        mobility: MobilityModel,
        seeds: &SeedTree,
    ) -> Self {
        let speed = mobility.speed_mps();
        let fading_cfg = FadingConfig {
            frequency_ghz: config.pathloss.frequency_ghz,
            speed_mps: speed,
            rician_k_db: config.rician_k_db,
            slot_s: config.slot_s,
        };
        let shadow = layout
            .sites
            .iter()
            .map(|s| ShadowingProcess::new(config.shadowing, seeds, &format!("site{}", s.id)))
            .collect();
        let n_sites = layout.sites.len();
        let pl_profile = config.pathloss.profile();
        let tx_per_re =
            layout.sites.iter().map(|s| config.signal.tx_per_re_dbm(s.tx_power_dbm)).collect();
        ChannelSimulator {
            fading: FadingProcess::new(fading_cfg, seeds, "serving"),
            blockage: BlockageProcess::new(config.blockage, seeds, "serving"),
            mobility: mobility.into_state(seeds),
            config,
            layout,
            shadow,
            slot: 0,
            serving_idx: None,
            cache_position: None,
            large_scale: Vec::with_capacity(n_sites),
            rx: Vec::with_capacity(n_sites),
            interferers: Vec::with_capacity(n_sites.saturating_sub(1)),
            noise_terms: config.signal.noise_terms(),
            pl_profile,
            tx_per_re,
            la: Lookahead::new(n_sites),
        }
    }

    /// Swap the deployment layout mid-session (re-cloning scenarios,
    /// coverage sweeps). Rebuilds the per-site shadowing processes from
    /// `seeds`, drops the cached large-scale terms, and — crucially —
    /// resets the serving-cell state: the old `serving_idx` indexed the
    /// *previous* site list, and when the new layout has at least as many
    /// sites the `cur < rx.len()` hysteresis guard alone would let the
    /// stale index silently survive, pinning the UE to an arbitrary site.
    pub fn set_layout(&mut self, layout: DeploymentLayout, seeds: &SeedTree) {
        // The fading process survives the swap, so any prefetched batch
        // must be rolled back before its state is rebuilt around it.
        self.rewind_lookahead();
        self.shadow = layout
            .sites
            .iter()
            .map(|s| ShadowingProcess::new(self.config.shadowing, seeds, &format!("site{}", s.id)))
            .collect();
        self.tx_per_re = layout
            .sites
            .iter()
            .map(|s| self.config.signal.tx_per_re_dbm(s.tx_power_dbm))
            .collect();
        self.layout = layout;
        self.serving_idx = None;
        self.cache_position = None;
        self.large_scale.clear();
        self.la.resize_sites(self.layout.sites.len());
    }

    /// Adopt another simulator's cached large-scale terms, so co-located
    /// UEs of a loaded cell pay the per-site path-loss/sector computation
    /// once instead of once per UE. Copies only when the configurations
    /// and layouts are equal **and** `other` has a populated cache;
    /// returns whether the copy happened. Safe by construction: the
    /// cached terms are pure functions of `(position, config, layout)` —
    /// never of RNG state — and [`ChannelSimulator::step_at`] recomputes
    /// on any position mismatch, so priming can never change a result,
    /// only skip redundant arithmetic.
    pub fn prime_cache_from(&mut self, other: &ChannelSimulator) -> bool {
        if other.cache_position.is_none()
            || self.config != other.config
            || self.layout != other.layout
        {
            return false;
        }
        // A pending lookahead batch was computed against the *old* cache;
        // roll it back so the next step re-derives from the adopted one.
        self.rewind_lookahead();
        self.cache_position = other.cache_position;
        self.large_scale.clone_from(&other.large_scale);
        true
    }

    /// The static configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The deployment layout.
    pub fn layout(&self) -> &DeploymentLayout {
        &self.layout
    }

    /// Advance one slot using the internal mobility model.
    ///
    /// A moving UE takes the moving-lookahead path: the walker is
    /// advanced a whole batch ahead (snapshotted for exact rewind) and
    /// the per-slot path-loss `log10` plus all dB↔mW conversions are
    /// evaluated in SIMD slices across the batch — bit-identical to
    /// slot-by-slot stepping. Stationary UEs fall through to
    /// [`step_at`], whose still-path lookahead covers them.
    ///
    /// [`step_at`]: ChannelSimulator::step_at
    pub fn step(&mut self) -> ChannelState {
        if self.la.pos < self.la.len && self.la.mobility {
            let state = self.la.states[self.la.pos];
            debug_assert_eq!(state.slot, self.slot, "lookahead out of step");
            self.la.pos += 1;
            self.slot += 1;
            return state;
        }
        if self.mobility.speed_mps() > 0.0 && !self.config.blockage.is_active() {
            return self.step_moving_batch();
        }
        let moved = self.mobility.advance(self.config.slot_s);
        let position = self.mobility.position();
        self.step_at(position, moved)
    }

    /// Build a moving-lookahead batch from the internal mobility model
    /// and return its first slot (see [`Lookahead`]).
    fn step_moving_batch(&mut self) -> ChannelState {
        // A pending still batch (from interleaved `step_at` calls) must
        // be rolled back before mobility-driven stepping.
        self.rewind_lookahead();
        let slot_s = self.config.slot_s;
        let mut len = LA_SLOTS;
        for sh in self.shadow.iter_mut() {
            len = len.min(sh.lookahead_capacity());
        }
        len = len.min(self.fading.lookahead_capacity());

        // Snapshot the walker, then collect the batch trajectory.
        match &mut self.la.snapshot {
            Some(s) => s.clone_from(&self.mobility),
            None => self.la.snapshot = Some(self.mobility.clone()),
        }
        let mut all_moving = true;
        for b in 0..len {
            let m = self.mobility.advance(slot_s);
            self.la.moved[b] = m;
            self.la.positions[b] = self.mobility.position();
            all_moving &= m > 0.0;
        }
        if !all_moving && self.config.shadowing.env_speed_mps * slot_s <= 0.0 {
            // A zero-movement slot without environment churn consumes no
            // shadowing draw, which the one-draw-per-slot rewind
            // accounting cannot express. Restore the walker and take the
            // scalar path for this slot (rare: a paused walker under a
            // churn-free config).
            if let Some(snap) = self.la.snapshot.as_mut() {
                std::mem::swap(&mut self.mobility, snap);
            }
            let moved = self.mobility.advance(slot_s);
            let position = self.mobility.position();
            return self.step_at(position, moved);
        }

        // Large-scale terms for every (slot, site): the clamped distances
        // feed one `log10` batch, each lane finished through the hoisted
        // profile — the exact floats the scalar recompute produces.
        let n_sites = self.layout.sites.len();
        let la = &mut self.la;
        for b in 0..len {
            let pos = la.positions[b];
            let row = b * n_sites;
            for (p, site) in self.layout.sites.iter().enumerate() {
                let (d2, d3) = site.distances(&pos);
                la.dist[row + p] = d2;
                la.pow_args[row + p] = d3.max(10.0);
            }
        }
        vmath::log10_slice(&la.pow_args[..len * n_sites], &mut la.mw[..len * n_sites]);
        for b in 0..len {
            let pos = la.positions[b];
            let row = b * n_sites;
            for (p, site) in self.layout.sites.iter().enumerate() {
                let pl = self.pl_profile.loss_db_with_log(la.pow_args[row + p], la.mw[row + p]);
                let sector = site.sector_attenuation_db(&pos);
                la.bases[row + p] = self.tx_per_re[p] - pl - sector;
            }
        }
        // Leave the large-scale cache at the batch's final position; the
        // entries are pure functions of (position, config, layout), so a
        // later `step_at` at that position reuses them bit-exactly.
        self.large_scale.clear();
        let last = (len - 1) * n_sites;
        for (p, site) in self.layout.sites.iter().enumerate() {
            self.large_scale.push((site.id, la.bases[last + p], la.dist[last + p]));
        }
        self.cache_position = Some(la.positions[len - 1]);
        self.finish_batch(len, true, true)
    }

    /// Advance one slot with an externally-supplied position (used when
    /// several component carriers share one UE: the CA driver advances
    /// mobility once and steps every carrier's channel at that position).
    ///
    /// Allocation-free in steady state: per-site path loss and sector
    /// attenuation are cached until the position changes (stationary UEs —
    /// most campaign sessions — pay only the shadowing/fading advance),
    /// and the per-site receive vector lives in reusable scratch buffers.
    /// Bit-identical to [`ChannelSimulator::step_at_uncached`]: the cached
    /// terms are pure functions of position/config, the RNG-consuming
    /// processes advance every slot in unchanged order, and the float
    /// expression tree `((tx − pl) − sector) + sh` is preserved exactly.
    pub fn step_at(&mut self, position: Position, moved_m: f64) -> ChannelState {
        // Still-path lookahead: pop a precomputed slot if one is pending,
        // or roll the batch back when the caller diverged from the batched
        // position (the rewind restores every process bit-exactly, so the
        // scalar path below resumes as if the batch never ran).
        if self.la.pos < self.la.len {
            if moved_m == 0.0 && position == self.la.position {
                let state = self.la.states[self.la.pos];
                debug_assert_eq!(state.slot, self.slot, "lookahead out of step");
                self.la.pos += 1;
                self.slot += 1;
                return state;
            }
            self.rewind_lookahead();
        }
        // A stationary UE whose large-scale cache is already warm (and
        // whose carrier has no blockage process drawing per-slot RNG) has
        // no per-slot inputs at all — precompute a whole batch of slots
        // with the shadowing/fading innovations evaluated tile-wise and
        // the dB↔mW conversions in wide SIMD slices.
        if moved_m == 0.0
            && self.cache_position == Some(position)
            && !self.config.blockage.is_active()
        {
            return self.build_lookahead(position);
        }

        let slot = self.slot;
        self.slot += 1;
        let moved = moved_m;

        // Large-scale deterministic terms, recomputed only on movement —
        // and then through the hoisted profile/tx constants, so a driving
        // UE pays one log10 (+ one exp when blended) per site instead of
        // the model's recursive chain. Each substitution reproduces the
        // reference expression bit-for-bit: the profile is proven
        // bit-identical to `loss_db`, `tx_per_re` holds the exact value
        // `tx_per_re_dbm` returns, and `distances` reuses the 2D distance
        // `distance_3d` computes internally.
        if self.cache_position != Some(position) {
            self.large_scale.clear();
            for (site, &tx_re) in self.layout.sites.iter().zip(self.tx_per_re.iter()) {
                let (d2, d3) = site.distances(&position);
                let pl = self.pl_profile.loss_db(d3);
                let sector = site.sector_attenuation_db(&position);
                let base = tx_re - pl - sector;
                self.large_scale.push((site.id, base, d2));
            }
            self.cache_position = Some(position);
        }
        // Stochastic shadowing on top: advances (and draws) every slot for
        // every site, cached or not — caching must never skip an RNG draw.
        let rx = &mut self.rx;
        rx.clear();
        for (&(id, base, dist), shadow) in
            self.large_scale.iter().zip(self.shadow.iter_mut())
        {
            let sh = shadow.advance_with_time(moved, self.config.slot_s);
            rx.push((id, base + sh, dist));
        }
        // Serving-cell selection with A3-style hysteresis: stick with the
        // current cell until a neighbour beats it by the configured margin
        // (RRC signalling costs are modelled separately in the RAN layer).
        let (best_idx, _) = rx
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("powers are finite"))
            .expect("layout is non-empty");
        let serving_idx = match self.serving_idx {
            Some(cur) if cur < rx.len() => {
                if rx[best_idx].1 > rx[cur].1 + self.config.handover_hysteresis_db {
                    best_idx
                } else {
                    cur
                }
            }
            _ => best_idx,
        };
        self.serving_idx = Some(serving_idx);
        let (serving_site, serving_re_dbm, serving_distance_m) = rx[serving_idx];
        self.interferers.clear();
        for (i, &(_, p, _)) in rx.iter().enumerate() {
            if i != serving_idx {
                self.interferers.push(p);
            }
        }

        let measurement = RadioMeasurement::compute_with_terms(
            &self.config.signal,
            &self.noise_terms,
            serving_re_dbm,
            &self.interferers,
        );

        // Small-scale on top of the mean SINR.
        let fading_db = self.fading.advance_slot();
        let blockage_db = self.blockage.advance(self.config.slot_s, moved);
        let sinr_db =
            measurement.sinr_db + self.config.sinr_offset_db + fading_db - blockage_db;

        ChannelState {
            slot,
            position,
            serving_site,
            serving_distance_m,
            measurement: RadioMeasurement {
                sinr_db: measurement.sinr_db + self.config.sinr_offset_db,
                ..measurement
            },
            sinr_db,
            blocked: blockage_db > 0.0,
        }
    }

    /// Precompute up to [`LA_SLOTS`] stationary slots at `position` and
    /// return the first, leaving the rest for [`step_at`] to pop.
    ///
    /// Bit-identity argument, piece by piece:
    /// * each shadowing/fading process advances through the same AR(1)
    ///   recurrence, drawing the same innovations in the same per-stream
    ///   order as `LA` sequential slots would (batches never cross a tile
    ///   refill, so the prefetch grouping is unchanged);
    /// * serving selection replays the scalar `max_by` + hysteresis per
    ///   slot, sequentially, on the same `base + sh` powers;
    /// * the `pow10`/`log10` conversions use the same argument expression
    ///   trees, and `vmath` slice lanes equal its scalar calls for every
    ///   input regardless of how lanes are grouped;
    /// * blockage is gated inactive, which the scalar path evaluates as a
    ///   `0.0` contribution and zero RNG draws — and `x − 0.0 == x`
    ///   bitwise for every float the SINR sum can produce.
    ///
    /// [`step_at`]: ChannelSimulator::step_at
    fn build_lookahead(&mut self, position: Position) -> ChannelState {
        let slot_s = self.config.slot_s;
        let n_sites = self.large_scale.len();
        // Batch length: every process's run must stay inside its current
        // innovation tile so an abandoned tail can be rewound. Shadowing
        // only consumes draws when environment churn is enabled.
        let mut len = LA_SLOTS;
        let shadow_consumed = self.config.shadowing.env_speed_mps * slot_s > 0.0;
        if shadow_consumed {
            for sh in self.shadow.iter_mut() {
                len = len.min(sh.lookahead_capacity());
            }
        }
        len = len.min(self.fading.lookahead_capacity());

        // Every slot sits at the cached position with the cached
        // large-scale terms.
        let la = &mut self.la;
        for b in 0..len {
            la.positions[b] = position;
            let row = b * n_sites;
            for (p, &(_, base, d2)) in self.large_scale.iter().enumerate() {
                la.bases[row + p] = base;
                la.dist[row + p] = d2;
            }
        }
        self.finish_batch(len, shadow_consumed, false)
    }

    /// Shared back half of both batch builders: advance the stochastic
    /// processes over the trajectory already recorded in `la`
    /// (positions/bases/dist), replay serving selection per slot, convert
    /// the whole batch through SIMD `pow10`/`log10` slices, and stage the
    /// resulting states.
    fn finish_batch(&mut self, len: usize, shadow_consumed: bool, mobility: bool) -> ChannelState {
        let slot_s = self.config.slot_s;
        let n_sites = self.layout.sites.len();
        // Record pre-batch states, then advance every process `len` slots.
        let la = &mut self.la;
        for (p, sh) in self.shadow.iter_mut().enumerate() {
            let base = p * LA_STRIDE;
            la.shadow[base] = sh.value_db();
            if mobility {
                sh.advance_lookahead_path(
                    &la.moved[..len],
                    slot_s,
                    &mut la.shadow[base + 1..base + 1 + len],
                );
            } else {
                sh.advance_lookahead(0.0, slot_s, &mut la.shadow[base + 1..base + 1 + len]);
            }
        }
        la.fading[0] = self.fading.value_db();
        self.fading.advance_lookahead(&mut la.fading[1..=len]);
        la.serving[0] = self.serving_idx.unwrap_or(usize::MAX);

        // Per-site per-slot received powers (`base + sh`, slot-major) and
        // the per-slot serving selection, replayed sequentially so the
        // hysteresis chain matches the scalar path.
        for b in 0..len {
            let row = b * n_sites;
            for p in 0..n_sites {
                la.pow_args[row + p] = la.bases[row + p] + la.shadow[p * LA_STRIDE + 1 + b];
            }
        }
        let mut serving = self.serving_idx;
        for b in 0..len {
            let row = &la.pow_args[b * n_sites..(b + 1) * n_sites];
            let (best_idx, _) = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("powers are finite"))
                .expect("layout is non-empty");
            let serving_idx = match serving {
                Some(cur) if cur < n_sites => {
                    if row[best_idx] > row[cur] + self.config.handover_hysteresis_db {
                        best_idx
                    } else {
                        cur
                    }
                }
                _ => best_idx,
            };
            serving = Some(serving_idx);
            la.serving[b + 1] = serving_idx;
        }
        self.serving_idx = serving;

        // All dBm→mW conversions of the batch in one SIMD pass …
        for v in la.pow_args[..len * n_sites].iter_mut() {
            *v /= 10.0;
        }
        vmath::pow10_slice(&la.pow_args[..len * n_sites], &mut la.mw[..len * n_sites]);

        // … then the three per-slot dB outputs in one `log10` pass.
        let nrb = self.config.signal.n_rb as f64;
        for b in 0..len {
            let serving_idx = la.serving[b + 1];
            let row = &la.mw[b * n_sites..(b + 1) * n_sites];
            let s = row[serving_idx];
            let mut interference = 0.0;
            for (p, &mw) in row.iter().enumerate() {
                if p != serving_idx {
                    interference += mw;
                }
            }
            let i = interference * self.config.signal.neighbor_load
                + self.noise_terms.background_mw;
            let n = self.noise_terms.noise_mw;
            let rssi_per_re = self.config.signal.serving_load * s + i + n;
            la.log_args[b * 3] = (rssi_per_re * 12.0 * nrb).max(1e-30);
            la.log_args[b * 3 + 1] = nrb * s / (rssi_per_re * 12.0 * nrb);
            la.log_args[b * 3 + 2] = s / (i + n);
        }
        vmath::log10_slice(&la.log_args[..3 * len], &mut la.logs[..3 * len]);

        let first_slot = self.slot;
        for b in 0..len {
            let serving_idx = la.serving[b + 1];
            let row = b * n_sites;
            let serving_re_dbm =
                la.bases[row + serving_idx] + la.shadow[serving_idx * LA_STRIDE + 1 + b];
            let mean_sinr_db = 10.0 * la.logs[b * 3 + 2] + self.config.sinr_offset_db;
            la.states[b] = ChannelState {
                slot: first_slot + b as u64,
                position: la.positions[b],
                serving_site: self.layout.sites[serving_idx].id,
                serving_distance_m: la.dist[row + serving_idx],
                measurement: RadioMeasurement {
                    rsrp_dbm: serving_re_dbm,
                    rssi_dbm: 10.0 * la.logs[b * 3],
                    rsrq_db: 10.0 * la.logs[b * 3 + 1],
                    sinr_db: mean_sinr_db,
                },
                // Blockage is inactive (both builders gate on it): the
                // scalar path adds `fading − 0.0`, bitwise `+ fading`.
                sinr_db: mean_sinr_db + la.fading[1 + b],
                blocked: false,
            };
        }
        la.len = len;
        la.pos = 1;
        // A moving batch's positions differ per slot; park a NaN here so
        // the `step_at` pop test (NaN ≠ NaN) can never match it.
        la.position =
            if mobility { Position::new(f64::NAN, f64::NAN) } else { la.positions[0] };
        la.shadow_consumed = shadow_consumed;
        la.mobility = mobility;
        self.slot += 1;
        la.states[0]
    }

    /// Roll back the unread tail of a pending lookahead batch: restore the
    /// shadowing/fading states and serving index recorded at the last
    /// *consumed* slot and return the unused innovations to their tiles.
    /// After this the simulator is bit-identical to one that only ever
    /// stepped slot by slot up to `self.slot`.
    fn rewind_lookahead(&mut self) {
        let unread = self.la.len - self.la.pos;
        if unread > 0 {
            let k = self.la.pos;
            if self.la.shadow_consumed {
                for (p, sh) in self.shadow.iter_mut().enumerate() {
                    sh.rewind_lookahead(unread, self.la.shadow[p * LA_STRIDE + k]);
                }
            } else {
                for (p, sh) in self.shadow.iter_mut().enumerate() {
                    sh.rewind_lookahead(0, self.la.shadow[p * LA_STRIDE + k]);
                }
            }
            self.fading.rewind_lookahead(unread, self.la.fading[k]);
            self.serving_idx = match self.la.serving[k] {
                usize::MAX => None,
                i => Some(i),
            };
            if self.la.mobility {
                // Restore the walker to the batch start, then replay the
                // consumed slots: advancing is deterministic given the
                // snapshotted state (any waypoint draws replay from the
                // snapshotted RNG), so this lands exactly where slot-by-
                // slot stepping would have.
                if let Some(snap) = self.la.snapshot.as_mut() {
                    std::mem::swap(&mut self.mobility, snap);
                    for _ in 0..k {
                        self.mobility.advance(self.config.slot_s);
                    }
                }
            }
        }
        self.la.pos = 0;
        self.la.len = 0;
        self.la.mobility = false;
    }

    /// The pre-optimisation reference implementation of [`step_at`]:
    /// recomputes every large-scale term, every process coefficient
    /// (shadowing ρ, fading ρ/σ, noise terms) and heap-allocates the
    /// per-site vectors each slot. Kept verbatim so property tests can
    /// assert the cached path is bit-identical and so `perf_baseline` can
    /// record the uncached slots/sec alongside the cached number.
    ///
    /// [`step_at`]: ChannelSimulator::step_at
    pub fn step_at_uncached(&mut self, position: Position, moved_m: f64) -> ChannelState {
        // Callers may interleave cached and uncached stepping on one
        // simulator; a pending lookahead batch must be rolled back first.
        self.rewind_lookahead();
        let slot = self.slot;
        self.slot += 1;
        let moved = moved_m;

        // Large-scale: per-site received per-RE power.
        let mut rx: Vec<(u32, f64, f64)> = Vec::with_capacity(self.layout.sites.len());
        for (site, shadow) in self.layout.sites.iter().zip(self.shadow.iter_mut()) {
            let sh = shadow.advance_with_time_uncached(moved, self.config.slot_s);
            let pl = self.config.pathloss.loss_db(site.distance_3d(&position));
            let sector = site.sector_attenuation_db(&position);
            let p = self.config.signal.tx_per_re_dbm(site.tx_power_dbm) - pl - sector + sh;
            rx.push((site.id, p, site.position.distance_to(&position)));
        }
        let (best_idx, _) = rx
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("powers are finite"))
            .expect("layout is non-empty");
        let serving_idx = match self.serving_idx {
            Some(cur) if cur < rx.len() => {
                if rx[best_idx].1 > rx[cur].1 + self.config.handover_hysteresis_db {
                    best_idx
                } else {
                    cur
                }
            }
            _ => best_idx,
        };
        self.serving_idx = Some(serving_idx);
        let (serving_site, serving_re_dbm, serving_distance_m) = rx[serving_idx];
        let interferers: Vec<f64> = rx
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != serving_idx)
            .map(|(_, &(_, p, _))| p)
            .collect();

        let measurement =
            RadioMeasurement::compute(&self.config.signal, serving_re_dbm, &interferers);

        let fading_db = self.fading.advance_slot_uncached();
        let blockage_db = self.blockage.advance(self.config.slot_s, moved);
        let sinr_db =
            measurement.sinr_db + self.config.sinr_offset_db + fading_db - blockage_db;

        ChannelState {
            slot,
            position,
            serving_site,
            serving_distance_m,
            measurement: RadioMeasurement {
                sinr_db: measurement.sinr_db + self.config.sinr_offset_db,
                ..measurement
            },
            sinr_db,
            blocked: blockage_db > 0.0,
        }
    }

    /// Advance one slot through the uncached reference path using the
    /// internal mobility model (the uncached counterpart of [`step`]).
    ///
    /// [`step`]: ChannelSimulator::step
    pub fn step_uncached(&mut self) -> ChannelState {
        // Rewind before touching the walker: a pending moving batch has
        // already advanced it, and the rewind rolls it back.
        self.rewind_lookahead();
        let moved = self.mobility.advance(self.config.slot_s);
        let position = self.mobility.position();
        self.step_at_uncached(position, moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::GnbSite;

    fn sim(layout: DeploymentLayout, mobility: MobilityModel, seed: u64) -> ChannelSimulator {
        ChannelSimulator::new(
            ChannelConfig::midband_urban(245),
            layout,
            mobility,
            &SeedTree::new(seed),
        )
    }

    #[test]
    fn stationary_ue_drifts_only_slowly() {
        // A stationary UE's large-scale signal evolves through environment
        // churn, but over half a second the drift stays well within one
        // shadowing sigma (the churn decorrelation time is ~75 s).
        let mut s = sim(
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: Position::new(80.0, 0.0) },
            1,
        );
        let first = s.step();
        let mut max_drift: f64 = 0.0;
        for _ in 0..1000 {
            let st = s.step();
            max_drift = max_drift.max((st.measurement.rsrp_dbm - first.measurement.rsrp_dbm).abs());
            assert_eq!(st.serving_site, first.serving_site);
        }
        assert!(max_drift > 0.0, "churn must move the large scale a little");
        assert!(max_drift < 4.0, "drift {max_drift} dB too fast for 0.5 s");
    }

    #[test]
    fn fading_moves_the_instantaneous_sinr() {
        let mut s = sim(
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: Position::new(80.0, 0.0) },
            2,
        );
        let states: Vec<ChannelState> = (0..2000).map(|_| s.step()).collect();
        let mean_sinr =
            states.iter().map(|st| st.sinr_db).sum::<f64>() / states.len() as f64;
        let large_scale = states[0].measurement.sinr_db;
        assert!((mean_sinr - large_scale).abs() < 1.0, "{mean_sinr} vs {large_scale}");
        let any_motion = states.windows(2).any(|w| w[0].sinr_db != w[1].sinr_db);
        assert!(any_motion);
    }

    #[test]
    fn closer_ue_sees_better_sinr() {
        let run = |x: f64| {
            let mut s = sim(
                DeploymentLayout::single_site(),
                MobilityModel::Stationary { position: Position::new(x, 0.0) },
                3,
            );
            (0..500).map(|_| s.step().sinr_db).sum::<f64>() / 500.0
        };
        assert!(run(40.0) > run(400.0) + 10.0);
    }

    #[test]
    fn dense_layout_improves_rsrq() {
        // The Fig. 7 contrast: average RSRQ along the same walk is better
        // under the 3-site layout than the 2-site layout.
        let walk = || MobilityModel::Route {
            waypoints: vec![
                Position::new(-200.0, -60.0),
                Position::new(200.0, -60.0),
                Position::new(200.0, 60.0),
                Position::new(-200.0, 60.0),
            ],
            speed_mps: 1.4,
        };
        let averages = |layout: DeploymentLayout| {
            let mut s = sim(layout, walk(), 4);
            let n = 40_000;
            let mut rsrp = 0.0;
            let mut rsrq = 0.0;
            let mut sinr = 0.0;
            for _ in 0..n {
                let st = s.step();
                rsrp += st.measurement.rsrp_dbm;
                rsrq += st.measurement.rsrq_db;
                sinr += st.measurement.sinr_db;
            }
            (rsrp / n as f64, rsrq / n as f64, sinr / n as f64)
        };
        let (rsrp_s, rsrq_s, sinr_s) = averages(DeploymentLayout::two_site_sparse());
        let (rsrp_d, rsrq_d, sinr_d) = averages(DeploymentLayout::three_site_dense());
        assert!(rsrp_d > rsrp_s + 3.0, "RSRP dense {rsrp_d} vs sparse {rsrp_s}");
        assert!(sinr_d > sinr_s, "SINR dense {sinr_d} vs sparse {sinr_s}");
        assert!(rsrq_d > rsrq_s - 0.2, "RSRQ dense {rsrq_d} vs sparse {rsrq_s}");
    }

    #[test]
    fn handover_to_nearest_site_while_driving() {
        let layout = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(-300.0, 0.0)),
            GnbSite::macro_site(2, Position::new(300.0, 0.0)),
        ]);
        let route = MobilityModel::Route {
            waypoints: vec![Position::new(-300.0, 20.0), Position::new(300.0, 20.0)],
            speed_mps: 11.0,
        };
        let mut s = sim(layout, route, 5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..120_000 {
            seen.insert(s.step().serving_site);
        }
        assert_eq!(seen.len(), 2, "both sites should serve along the route");
    }

    #[test]
    fn mmwave_blockage_causes_deep_dips() {
        let cfg = ChannelConfig::mmwave_urban(264);
        let mut s = ChannelSimulator::new(
            cfg,
            DeploymentLayout::single_site(),
            MobilityModel::walking(Position::new(60.0, 0.0), 40.0),
            &SeedTree::new(6),
        );
        let states: Vec<ChannelState> = (0..400_000).map(|_| s.step()).collect();
        let blocked: Vec<&ChannelState> = states.iter().filter(|st| st.blocked).collect();
        assert!(!blocked.is_empty(), "expected some blockage while walking");
        let mean_blocked =
            blocked.iter().map(|st| st.sinr_db).sum::<f64>() / blocked.len() as f64;
        let unblocked: Vec<&ChannelState> = states.iter().filter(|st| !st.blocked).collect();
        let mean_clear =
            unblocked.iter().map(|st| st.sinr_db).sum::<f64>() / unblocked.len() as f64;
        assert!(mean_clear - mean_blocked > 15.0, "{mean_clear} vs {mean_blocked}");
    }

    #[test]
    fn sectored_site_shapes_coverage() {
        use crate::antenna::SectorPattern;
        use crate::geometry::GnbSite;
        // One site pointing east: a UE to the east sees ~30 dB more signal
        // than a UE to the west at the same distance.
        let east_facing = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::ORIGIN).with_sector(SectorPattern::standard(0.0)),
        ]);
        let mean_rsrp = |x: f64, seed: u64| {
            let mut s = ChannelSimulator::new(
                ChannelConfig::midband_urban(245),
                east_facing.clone(),
                MobilityModel::Stationary { position: Position::new(x, 0.0) },
                &SeedTree::new(seed),
            );
            (0..500).map(|_| s.step().measurement.rsrp_dbm).sum::<f64>() / 500.0
        };
        let front = mean_rsrp(120.0, 7);
        let back = mean_rsrp(-120.0, 7);
        assert!(
            front - back > 20.0,
            "front {front} vs back {back} (expected ~30 dB front-to-back)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            sim(
                DeploymentLayout::three_site_dense(),
                MobilityModel::walking(Position::ORIGIN, 100.0),
                42,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..500 {
            let sa = a.step();
            let sb = b.step();
            assert_eq!(sa.sinr_db, sb.sinr_db);
            assert_eq!(sa.serving_site, sb.serving_site);
        }
    }

    #[test]
    fn cached_step_bit_identical_to_uncached() {
        // Driving route: the cache recomputes every slot; stationary tail:
        // the cache hits every slot. Both must match the reference exactly.
        let mk = || {
            sim(
                DeploymentLayout::three_site_dense(),
                MobilityModel::walking(Position::ORIGIN, 100.0),
                9,
            )
        };
        let mut cached = mk();
        let mut reference = mk();
        for _ in 0..2000 {
            assert_eq!(cached.step(), reference.step_uncached());
        }
        let pos = Position::new(55.0, -20.0);
        for _ in 0..2000 {
            assert_eq!(cached.step_at(pos, 0.0), reference.step_at_uncached(pos, 0.0));
        }
    }

    #[test]
    fn primed_cache_is_bit_identical_and_skips_recompute() {
        // Two UEs at the same spot with different seeds: after UE 0 steps
        // once, UE 1 adopts its large-scale cache. Every subsequent state
        // must equal an unprimed replica's, bit for bit — priming only
        // skips arithmetic that would have produced the same floats.
        let pos = Position::new(85.0, -10.0);
        let layout = DeploymentLayout::three_site_dense;
        let mk = |seed: u64| {
            ChannelSimulator::new(
                ChannelConfig::midband_urban(245),
                layout(),
                MobilityModel::Stationary { position: pos },
                &SeedTree::new(seed),
            )
        };
        let mut leader = mk(31);
        leader.step_at(pos, 0.0);
        let mut primed = mk(32);
        let mut replica = mk(32);
        assert!(primed.prime_cache_from(&leader), "same config+layout must prime");
        for _ in 0..500 {
            assert_eq!(primed.step_at(pos, 0.0), replica.step_at(pos, 0.0));
        }
        // Mismatched layouts refuse to prime; an unstepped leader has no
        // cache to offer.
        let mut other_layout = ChannelSimulator::new(
            ChannelConfig::midband_urban(245),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &SeedTree::new(33),
        );
        assert!(!other_layout.prime_cache_from(&leader));
        assert!(!mk(34).prime_cache_from(&mk(35)));
    }

    #[test]
    fn moving_lookahead_matches_uncached_on_route() {
        // Driving a waypoint route (corner turns land mid-batch) through
        // the moving lookahead must equal the uncached reference.
        let mk = || {
            sim(
                DeploymentLayout::three_site_dense(),
                MobilityModel::driving_loop(Position::ORIGIN, 150.0),
                13,
            )
        };
        let mut cached = mk();
        let mut reference = mk();
        for i in 0..60_000 {
            assert_eq!(cached.step(), reference.step_uncached(), "slot {i}");
        }
    }

    #[test]
    fn moving_lookahead_rewinds_for_interleaved_calls() {
        // Interleaving mobility-driven step() with caller-positioned
        // step_at()/step_at_uncached() must match a reference that mixes
        // the same sequence through the scalar lanes: each switch away
        // from step() rolls back the walker and every process.
        let mk = || {
            sim(
                DeploymentLayout::three_site_dense(),
                MobilityModel::walking(Position::ORIGIN, 80.0),
                29,
            )
        };
        let mut mixed = mk();
        let mut reference = mk();
        let spot = Position::new(30.0, 12.0);
        for round in 0..30 {
            // A few mobility-driven slots (builds a moving batch) …
            for _ in 0..(3 + round % 7) {
                assert_eq!(mixed.step(), reference.step_uncached(), "round {round}");
            }
            // … abandoned mid-batch by external-position stepping …
            for _ in 0..2 {
                assert_eq!(
                    mixed.step_at(spot, 0.0),
                    reference.step_at_uncached(spot, 0.0),
                    "round {round}"
                );
            }
            // … and by the uncached entry point directly.
            assert_eq!(mixed.step_uncached(), reference.step_uncached(), "round {round}");
        }
    }

    #[test]
    fn lookahead_rewind_on_movement_is_bit_exact() {
        // Stationary stretches build 8-slot lookahead batches; popping 5
        // then moving abandons each batch mid-flight. The rewind must
        // restore every process exactly, so the whole interleaved run
        // matches a reference that only ever steps the scalar path.
        let mk = || {
            sim(
                DeploymentLayout::three_site_dense(),
                MobilityModel::Stationary { position: Position::ORIGIN },
                17,
            )
        };
        let mut cached = mk();
        let mut reference = mk();
        let spot = Position::new(42.0, -7.0);
        let step_m = 11.0 * 0.5e-3;
        for round in 0..40 {
            for _ in 0..5 {
                assert_eq!(cached.step_at(spot, 0.0), reference.step_at_uncached(spot, 0.0));
            }
            // Invalidate the three unread slots: the UE moves.
            let pos = Position::new(42.0 + round as f64, -7.0);
            assert_eq!(cached.step_at(pos, step_m), reference.step_at_uncached(pos, step_m));
            // And once more at the old spot but with motion (same position,
            // nonzero delta must also invalidate).
            assert_eq!(cached.step_at(spot, step_m), reference.step_at_uncached(spot, step_m));
        }
    }

    #[test]
    fn mixed_cached_uncached_stepping_rewinds_lookahead() {
        // Interleaving step_at and step_at_uncached on one simulator must
        // match a pure-uncached reference: the uncached entry point rolls
        // back any pending lookahead batch first.
        let spot = Position::new(60.0, 10.0);
        let mk = || {
            sim(
                DeploymentLayout::single_site(),
                MobilityModel::Stationary { position: spot },
                23,
            )
        };
        let mut mixed = mk();
        let mut reference = mk();
        for i in 0..200u32 {
            let a = if i % 7 == 3 {
                mixed.step_at_uncached(spot, 0.0)
            } else {
                mixed.step_at(spot, 0.0)
            };
            assert_eq!(a, reference.step_at_uncached(spot, 0.0), "slot {i}");
        }
    }

    #[test]
    fn priming_mid_batch_rewinds_pending_lookahead() {
        // Adopting another simulator's cache mid-batch discards the batch
        // (it was computed against the old cache) without losing state.
        let pos = Position::new(85.0, -10.0);
        let mk = |seed: u64| {
            ChannelSimulator::new(
                ChannelConfig::midband_urban(245),
                DeploymentLayout::three_site_dense(),
                MobilityModel::Stationary { position: pos },
                &SeedTree::new(seed),
            )
        };
        let mut leader = mk(41);
        leader.step_at(pos, 0.0);
        let mut primed = mk(42);
        let mut replica = mk(42);
        for _ in 0..3 {
            assert_eq!(primed.step_at(pos, 0.0), replica.step_at_uncached(pos, 0.0));
        }
        assert!(primed.prime_cache_from(&leader));
        for _ in 0..20 {
            assert_eq!(primed.step_at(pos, 0.0), replica.step_at_uncached(pos, 0.0));
        }
    }

    #[test]
    fn layout_swap_mid_batch_rewinds_fading() {
        // The fading process survives a layout swap; a swap mid-batch must
        // first return the batch's unused innovations to the fading tile.
        let pos = Position::new(40.0, 0.0);
        let mk = || {
            ChannelSimulator::new(
                ChannelConfig::midband_urban(245),
                DeploymentLayout::two_site_sparse(),
                MobilityModel::Stationary { position: pos },
                &SeedTree::new(51),
            )
        };
        let mut swapped = mk();
        let mut reference = mk();
        for _ in 0..3 {
            assert_eq!(swapped.step_at(pos, 0.0), reference.step_at_uncached(pos, 0.0));
        }
        let seeds2 = SeedTree::new(52);
        swapped.set_layout(DeploymentLayout::three_site_dense(), &seeds2);
        reference.set_layout(DeploymentLayout::three_site_dense(), &seeds2);
        for _ in 0..20 {
            assert_eq!(swapped.step_at(pos, 0.0), reference.step_at_uncached(pos, 0.0));
        }
    }

    #[test]
    fn layout_swap_resets_serving_state() {
        // Start served by the only nearby site of layout A, then swap in a
        // same-size layout whose site 1 is far away and site 2 is adjacent.
        // Without the reset, the stale serving_idx (0) passes the
        // `cur < rx.len()` guard and hysteresis pins the UE to the distant
        // site 1; after `set_layout` the first step must re-select freshly.
        let pos = Position::new(40.0, 0.0);
        let seeds = SeedTree::new(11);
        let layout_a = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(50.0, 0.0)),
            GnbSite::macro_site(2, Position::new(-2000.0, 0.0)),
        ]);
        let mut s = ChannelSimulator::new(
            ChannelConfig::midband_urban(245),
            layout_a,
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        for _ in 0..50 {
            assert_eq!(s.step_at(pos, 0.0).serving_site, 1);
        }
        let layout_b = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(-2000.0, 0.0)),
            GnbSite::macro_site(2, Position::new(50.0, 0.0)),
        ]);
        s.set_layout(layout_b, &seeds);
        assert_eq!(
            s.step_at(pos, 0.0).serving_site,
            2,
            "stale serving index must not survive a layout swap"
        );
    }
}
