//! The composed per-slot channel simulator.
//!
//! [`ChannelSimulator`] wires the deployment geometry, path loss,
//! correlated shadowing, Doppler-matched fading, and (for mmWave) the
//! blockage process into a single per-slot stream of [`ChannelState`] —
//! the radio truth the RAN simulator schedules against and the XCAL-like
//! collector logs.

use crate::blockage::{BlockageConfig, BlockageProcess};
use crate::fading::{FadingConfig, FadingProcess};
use crate::geometry::{DeploymentLayout, Position};
use crate::mobility::{MobilityModel, MobilityState};
use crate::pathloss::PathLossModel;
use crate::rng::SeedTree;
use crate::shadowing::{ShadowingConfig, ShadowingProcess};
use crate::signal::{NoiseTerms, RadioMeasurement, SignalConfig};
use serde::{Deserialize, Serialize};

/// Static description of a radio environment for one carrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Path-loss model (scenario + carrier frequency).
    pub pathloss: PathLossModel,
    /// Shadowing parameters (σ usually from the path-loss scenario).
    pub shadowing: ShadowingConfig,
    /// Rician K-factor in dB for the fading process.
    pub rician_k_db: f64,
    /// Blockage process parameters ([`BlockageConfig::NONE`] for FR1).
    pub blockage: BlockageConfig,
    /// Signal/noise arithmetic parameters.
    pub signal: SignalConfig,
    /// Calibration offset added to the serving SINR in dB. Operator
    /// profiles use this to express systematic differences (antenna gains,
    /// downtilt quality, interference coordination) that the geometric
    /// model does not capture individually.
    pub sinr_offset_db: f64,
    /// Handover hysteresis (A3-style): a neighbour must exceed the serving
    /// cell's large-scale power by this margin before the UE switches.
    /// Prevents serving-cell ping-pong under shadowing churn.
    pub handover_hysteresis_db: f64,
    /// Slot duration in seconds (0.5 ms at µ=1, 0.125 ms at µ=3).
    pub slot_s: f64,
}

impl ChannelConfig {
    /// A mid-band urban-macro environment for a carrier with `n_rb` RBs.
    /// Uses the LOS-probability-blended UMa path loss, which is what makes
    /// deployment density matter (the Fig. 7/22 mechanism).
    pub fn midband_urban(n_rb: u16) -> Self {
        let pathloss = PathLossModel::new(crate::pathloss::Scenario::UmaBlended, 3.5);
        ChannelConfig {
            pathloss,
            shadowing: ShadowingConfig {
                sigma_db: pathloss.shadow_sigma_db(),
                decorrelation_m: 37.0,
                env_speed_mps: 1.5,
            },
            rician_k_db: 6.0,
            blockage: BlockageConfig::NONE,
            signal: SignalConfig::midband(n_rb),
            // Serving-beam gain: the serving cell's codebook beamforming
            // and downtilt coordination benefit the scheduled UE but not
            // the interference it receives.
            sinr_offset_db: 3.0,
            handover_hysteresis_db: 3.0,
            slot_s: 0.5e-3,
        }
    }

    /// A 28 GHz urban mmWave environment (blockage active, µ=3 slots).
    pub fn mmwave_urban(n_rb: u16) -> Self {
        let pathloss = PathLossModel::new(crate::pathloss::Scenario::UmiLos, 28.0);
        ChannelConfig {
            pathloss,
            shadowing: ShadowingConfig {
                sigma_db: pathloss.shadow_sigma_db(),
                decorrelation_m: 10.0,
                env_speed_mps: 1.0,
            },
            rician_k_db: 9.0,
            blockage: BlockageConfig::mmwave_urban(),
            signal: SignalConfig {
                n_rb,
                scs_khz: 120,
                noise_figure_db: 7.0,
                neighbor_load: 0.2,
                serving_load: 1.0,
                background_interference_dbm: -115.0,
            },
            sinr_offset_db: 18.0, // beamforming gain of large FR2 arrays
            handover_hysteresis_db: 3.0,
            slot_s: 0.125e-3,
        }
    }
}

/// The channel truth for one slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelState {
    /// Slot index since simulator start.
    pub slot: u64,
    /// UE position this slot.
    pub position: Position,
    /// Serving site id.
    pub serving_site: u32,
    /// 2D distance to the serving site, metres.
    pub serving_distance_m: f64,
    /// Large-scale measurement (RSRP/RSSI/RSRQ and mean SINR — no fast
    /// fading, as a measurement report would average it out).
    pub measurement: RadioMeasurement,
    /// Instantaneous post-equalisation SINR including fading and blockage,
    /// the quantity link adaptation reacts to.
    pub sinr_db: f64,
    /// Whether an mmWave blockage is in force.
    pub blocked: bool,
}

/// Per-slot channel simulator for one UE on one carrier.
#[derive(Debug, Clone)]
pub struct ChannelSimulator {
    config: ChannelConfig,
    layout: DeploymentLayout,
    mobility: MobilityState,
    fading: FadingProcess,
    shadow: Vec<ShadowingProcess>,
    blockage: BlockageProcess,
    slot: u64,
    serving_idx: Option<usize>,
    /// Position the `large_scale` entries were computed for. `None` until
    /// the first slot and after a layout swap.
    cache_position: Option<Position>,
    /// Per-site cached large-scale terms for `cache_position`:
    /// `(site id, ((tx_per_re − path loss) − sector) dBm, 2D distance m)`.
    /// Pure functions of position and configuration — never of RNG state —
    /// so reuse while the UE is stationary cannot perturb any stream.
    large_scale: Vec<(u32, f64, f64)>,
    /// Scratch: per-site `(site id, received per-RE power, 2D distance)`
    /// for the current slot (cache + shadowing). Reused across slots.
    rx: Vec<(u32, f64, f64)>,
    /// Scratch: non-serving per-RE powers for the current slot.
    interferers: Vec<f64>,
    /// Config-constant linear-domain noise/background terms, hoisted out
    /// of the per-slot measurement arithmetic (bit-exact: deterministic
    /// functions of the configuration).
    noise_terms: NoiseTerms,
}

impl ChannelSimulator {
    /// Build a simulator. `seeds` should already be scoped to the session
    /// and carrier so repeated sessions differ.
    pub fn new(
        config: ChannelConfig,
        layout: DeploymentLayout,
        mobility: MobilityModel,
        seeds: &SeedTree,
    ) -> Self {
        let speed = mobility.speed_mps();
        let fading_cfg = FadingConfig {
            frequency_ghz: config.pathloss.frequency_ghz,
            speed_mps: speed,
            rician_k_db: config.rician_k_db,
            slot_s: config.slot_s,
        };
        let shadow = layout
            .sites
            .iter()
            .map(|s| ShadowingProcess::new(config.shadowing, seeds, &format!("site{}", s.id)))
            .collect();
        let n_sites = layout.sites.len();
        ChannelSimulator {
            fading: FadingProcess::new(fading_cfg, seeds, "serving"),
            blockage: BlockageProcess::new(config.blockage, seeds, "serving"),
            mobility: mobility.into_state(seeds),
            config,
            layout,
            shadow,
            slot: 0,
            serving_idx: None,
            cache_position: None,
            large_scale: Vec::with_capacity(n_sites),
            rx: Vec::with_capacity(n_sites),
            interferers: Vec::with_capacity(n_sites.saturating_sub(1)),
            noise_terms: config.signal.noise_terms(),
        }
    }

    /// Swap the deployment layout mid-session (re-cloning scenarios,
    /// coverage sweeps). Rebuilds the per-site shadowing processes from
    /// `seeds`, drops the cached large-scale terms, and — crucially —
    /// resets the serving-cell state: the old `serving_idx` indexed the
    /// *previous* site list, and when the new layout has at least as many
    /// sites the `cur < rx.len()` hysteresis guard alone would let the
    /// stale index silently survive, pinning the UE to an arbitrary site.
    pub fn set_layout(&mut self, layout: DeploymentLayout, seeds: &SeedTree) {
        self.shadow = layout
            .sites
            .iter()
            .map(|s| ShadowingProcess::new(self.config.shadowing, seeds, &format!("site{}", s.id)))
            .collect();
        self.layout = layout;
        self.serving_idx = None;
        self.cache_position = None;
        self.large_scale.clear();
    }

    /// Adopt another simulator's cached large-scale terms, so co-located
    /// UEs of a loaded cell pay the per-site path-loss/sector computation
    /// once instead of once per UE. Copies only when the configurations
    /// and layouts are equal **and** `other` has a populated cache;
    /// returns whether the copy happened. Safe by construction: the
    /// cached terms are pure functions of `(position, config, layout)` —
    /// never of RNG state — and [`ChannelSimulator::step_at`] recomputes
    /// on any position mismatch, so priming can never change a result,
    /// only skip redundant arithmetic.
    pub fn prime_cache_from(&mut self, other: &ChannelSimulator) -> bool {
        if other.cache_position.is_none()
            || self.config != other.config
            || self.layout != other.layout
        {
            return false;
        }
        self.cache_position = other.cache_position;
        self.large_scale.clone_from(&other.large_scale);
        true
    }

    /// The static configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// The deployment layout.
    pub fn layout(&self) -> &DeploymentLayout {
        &self.layout
    }

    /// Advance one slot using the internal mobility model.
    pub fn step(&mut self) -> ChannelState {
        let moved = self.mobility.advance(self.config.slot_s);
        let position = self.mobility.position();
        self.step_at(position, moved)
    }

    /// Advance one slot with an externally-supplied position (used when
    /// several component carriers share one UE: the CA driver advances
    /// mobility once and steps every carrier's channel at that position).
    ///
    /// Allocation-free in steady state: per-site path loss and sector
    /// attenuation are cached until the position changes (stationary UEs —
    /// most campaign sessions — pay only the shadowing/fading advance),
    /// and the per-site receive vector lives in reusable scratch buffers.
    /// Bit-identical to [`ChannelSimulator::step_at_uncached`]: the cached
    /// terms are pure functions of position/config, the RNG-consuming
    /// processes advance every slot in unchanged order, and the float
    /// expression tree `((tx − pl) − sector) + sh` is preserved exactly.
    pub fn step_at(&mut self, position: Position, moved_m: f64) -> ChannelState {
        let slot = self.slot;
        self.slot += 1;
        let moved = moved_m;

        // Large-scale deterministic terms, recomputed only on movement.
        if self.cache_position != Some(position) {
            self.large_scale.clear();
            for site in self.layout.sites.iter() {
                let pl = self.config.pathloss.loss_db(site.distance_3d(&position));
                let sector = site.sector_attenuation_db(&position);
                let base = self.config.signal.tx_per_re_dbm(site.tx_power_dbm) - pl - sector;
                self.large_scale.push((site.id, base, site.position.distance_to(&position)));
            }
            self.cache_position = Some(position);
        }
        // Stochastic shadowing on top: advances (and draws) every slot for
        // every site, cached or not — caching must never skip an RNG draw.
        let rx = &mut self.rx;
        rx.clear();
        for (&(id, base, dist), shadow) in
            self.large_scale.iter().zip(self.shadow.iter_mut())
        {
            let sh = shadow.advance_with_time(moved, self.config.slot_s);
            rx.push((id, base + sh, dist));
        }
        // Serving-cell selection with A3-style hysteresis: stick with the
        // current cell until a neighbour beats it by the configured margin
        // (RRC signalling costs are modelled separately in the RAN layer).
        let (best_idx, _) = rx
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("powers are finite"))
            .expect("layout is non-empty");
        let serving_idx = match self.serving_idx {
            Some(cur) if cur < rx.len() => {
                if rx[best_idx].1 > rx[cur].1 + self.config.handover_hysteresis_db {
                    best_idx
                } else {
                    cur
                }
            }
            _ => best_idx,
        };
        self.serving_idx = Some(serving_idx);
        let (serving_site, serving_re_dbm, serving_distance_m) = rx[serving_idx];
        self.interferers.clear();
        for (i, &(_, p, _)) in rx.iter().enumerate() {
            if i != serving_idx {
                self.interferers.push(p);
            }
        }

        let measurement = RadioMeasurement::compute_with_terms(
            &self.config.signal,
            &self.noise_terms,
            serving_re_dbm,
            &self.interferers,
        );

        // Small-scale on top of the mean SINR.
        let fading_db = self.fading.advance_slot();
        let blockage_db = self.blockage.advance(self.config.slot_s, moved);
        let sinr_db =
            measurement.sinr_db + self.config.sinr_offset_db + fading_db - blockage_db;

        ChannelState {
            slot,
            position,
            serving_site,
            serving_distance_m,
            measurement: RadioMeasurement {
                sinr_db: measurement.sinr_db + self.config.sinr_offset_db,
                ..measurement
            },
            sinr_db,
            blocked: blockage_db > 0.0,
        }
    }

    /// The pre-optimisation reference implementation of [`step_at`]:
    /// recomputes every large-scale term, every process coefficient
    /// (shadowing ρ, fading ρ/σ, noise terms) and heap-allocates the
    /// per-site vectors each slot. Kept verbatim so property tests can
    /// assert the cached path is bit-identical and so `perf_baseline` can
    /// record the uncached slots/sec alongside the cached number.
    ///
    /// [`step_at`]: ChannelSimulator::step_at
    pub fn step_at_uncached(&mut self, position: Position, moved_m: f64) -> ChannelState {
        let slot = self.slot;
        self.slot += 1;
        let moved = moved_m;

        // Large-scale: per-site received per-RE power.
        let mut rx: Vec<(u32, f64, f64)> = Vec::with_capacity(self.layout.sites.len());
        for (site, shadow) in self.layout.sites.iter().zip(self.shadow.iter_mut()) {
            let sh = shadow.advance_with_time_uncached(moved, self.config.slot_s);
            let pl = self.config.pathloss.loss_db(site.distance_3d(&position));
            let sector = site.sector_attenuation_db(&position);
            let p = self.config.signal.tx_per_re_dbm(site.tx_power_dbm) - pl - sector + sh;
            rx.push((site.id, p, site.position.distance_to(&position)));
        }
        let (best_idx, _) = rx
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).expect("powers are finite"))
            .expect("layout is non-empty");
        let serving_idx = match self.serving_idx {
            Some(cur) if cur < rx.len() => {
                if rx[best_idx].1 > rx[cur].1 + self.config.handover_hysteresis_db {
                    best_idx
                } else {
                    cur
                }
            }
            _ => best_idx,
        };
        self.serving_idx = Some(serving_idx);
        let (serving_site, serving_re_dbm, serving_distance_m) = rx[serving_idx];
        let interferers: Vec<f64> = rx
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != serving_idx)
            .map(|(_, &(_, p, _))| p)
            .collect();

        let measurement =
            RadioMeasurement::compute(&self.config.signal, serving_re_dbm, &interferers);

        let fading_db = self.fading.advance_slot_uncached();
        let blockage_db = self.blockage.advance(self.config.slot_s, moved);
        let sinr_db =
            measurement.sinr_db + self.config.sinr_offset_db + fading_db - blockage_db;

        ChannelState {
            slot,
            position,
            serving_site,
            serving_distance_m,
            measurement: RadioMeasurement {
                sinr_db: measurement.sinr_db + self.config.sinr_offset_db,
                ..measurement
            },
            sinr_db,
            blocked: blockage_db > 0.0,
        }
    }

    /// Advance one slot through the uncached reference path using the
    /// internal mobility model (the uncached counterpart of [`step`]).
    ///
    /// [`step`]: ChannelSimulator::step
    pub fn step_uncached(&mut self) -> ChannelState {
        let moved = self.mobility.advance(self.config.slot_s);
        let position = self.mobility.position();
        self.step_at_uncached(position, moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::GnbSite;

    fn sim(layout: DeploymentLayout, mobility: MobilityModel, seed: u64) -> ChannelSimulator {
        ChannelSimulator::new(
            ChannelConfig::midband_urban(245),
            layout,
            mobility,
            &SeedTree::new(seed),
        )
    }

    #[test]
    fn stationary_ue_drifts_only_slowly() {
        // A stationary UE's large-scale signal evolves through environment
        // churn, but over half a second the drift stays well within one
        // shadowing sigma (the churn decorrelation time is ~75 s).
        let mut s = sim(
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: Position::new(80.0, 0.0) },
            1,
        );
        let first = s.step();
        let mut max_drift: f64 = 0.0;
        for _ in 0..1000 {
            let st = s.step();
            max_drift = max_drift.max((st.measurement.rsrp_dbm - first.measurement.rsrp_dbm).abs());
            assert_eq!(st.serving_site, first.serving_site);
        }
        assert!(max_drift > 0.0, "churn must move the large scale a little");
        assert!(max_drift < 4.0, "drift {max_drift} dB too fast for 0.5 s");
    }

    #[test]
    fn fading_moves_the_instantaneous_sinr() {
        let mut s = sim(
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: Position::new(80.0, 0.0) },
            2,
        );
        let states: Vec<ChannelState> = (0..2000).map(|_| s.step()).collect();
        let mean_sinr =
            states.iter().map(|st| st.sinr_db).sum::<f64>() / states.len() as f64;
        let large_scale = states[0].measurement.sinr_db;
        assert!((mean_sinr - large_scale).abs() < 1.0, "{mean_sinr} vs {large_scale}");
        let any_motion = states.windows(2).any(|w| w[0].sinr_db != w[1].sinr_db);
        assert!(any_motion);
    }

    #[test]
    fn closer_ue_sees_better_sinr() {
        let run = |x: f64| {
            let mut s = sim(
                DeploymentLayout::single_site(),
                MobilityModel::Stationary { position: Position::new(x, 0.0) },
                3,
            );
            (0..500).map(|_| s.step().sinr_db).sum::<f64>() / 500.0
        };
        assert!(run(40.0) > run(400.0) + 10.0);
    }

    #[test]
    fn dense_layout_improves_rsrq() {
        // The Fig. 7 contrast: average RSRQ along the same walk is better
        // under the 3-site layout than the 2-site layout.
        let walk = || MobilityModel::Route {
            waypoints: vec![
                Position::new(-200.0, -60.0),
                Position::new(200.0, -60.0),
                Position::new(200.0, 60.0),
                Position::new(-200.0, 60.0),
            ],
            speed_mps: 1.4,
        };
        let averages = |layout: DeploymentLayout| {
            let mut s = sim(layout, walk(), 4);
            let n = 40_000;
            let mut rsrp = 0.0;
            let mut rsrq = 0.0;
            let mut sinr = 0.0;
            for _ in 0..n {
                let st = s.step();
                rsrp += st.measurement.rsrp_dbm;
                rsrq += st.measurement.rsrq_db;
                sinr += st.measurement.sinr_db;
            }
            (rsrp / n as f64, rsrq / n as f64, sinr / n as f64)
        };
        let (rsrp_s, rsrq_s, sinr_s) = averages(DeploymentLayout::two_site_sparse());
        let (rsrp_d, rsrq_d, sinr_d) = averages(DeploymentLayout::three_site_dense());
        assert!(rsrp_d > rsrp_s + 3.0, "RSRP dense {rsrp_d} vs sparse {rsrp_s}");
        assert!(sinr_d > sinr_s, "SINR dense {sinr_d} vs sparse {sinr_s}");
        assert!(rsrq_d > rsrq_s - 0.2, "RSRQ dense {rsrq_d} vs sparse {rsrq_s}");
    }

    #[test]
    fn handover_to_nearest_site_while_driving() {
        let layout = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(-300.0, 0.0)),
            GnbSite::macro_site(2, Position::new(300.0, 0.0)),
        ]);
        let route = MobilityModel::Route {
            waypoints: vec![Position::new(-300.0, 20.0), Position::new(300.0, 20.0)],
            speed_mps: 11.0,
        };
        let mut s = sim(layout, route, 5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..120_000 {
            seen.insert(s.step().serving_site);
        }
        assert_eq!(seen.len(), 2, "both sites should serve along the route");
    }

    #[test]
    fn mmwave_blockage_causes_deep_dips() {
        let cfg = ChannelConfig::mmwave_urban(264);
        let mut s = ChannelSimulator::new(
            cfg,
            DeploymentLayout::single_site(),
            MobilityModel::walking(Position::new(60.0, 0.0), 40.0),
            &SeedTree::new(6),
        );
        let states: Vec<ChannelState> = (0..400_000).map(|_| s.step()).collect();
        let blocked: Vec<&ChannelState> = states.iter().filter(|st| st.blocked).collect();
        assert!(!blocked.is_empty(), "expected some blockage while walking");
        let mean_blocked =
            blocked.iter().map(|st| st.sinr_db).sum::<f64>() / blocked.len() as f64;
        let unblocked: Vec<&ChannelState> = states.iter().filter(|st| !st.blocked).collect();
        let mean_clear =
            unblocked.iter().map(|st| st.sinr_db).sum::<f64>() / unblocked.len() as f64;
        assert!(mean_clear - mean_blocked > 15.0, "{mean_clear} vs {mean_blocked}");
    }

    #[test]
    fn sectored_site_shapes_coverage() {
        use crate::antenna::SectorPattern;
        use crate::geometry::GnbSite;
        // One site pointing east: a UE to the east sees ~30 dB more signal
        // than a UE to the west at the same distance.
        let east_facing = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::ORIGIN).with_sector(SectorPattern::standard(0.0)),
        ]);
        let mean_rsrp = |x: f64, seed: u64| {
            let mut s = ChannelSimulator::new(
                ChannelConfig::midband_urban(245),
                east_facing.clone(),
                MobilityModel::Stationary { position: Position::new(x, 0.0) },
                &SeedTree::new(seed),
            );
            (0..500).map(|_| s.step().measurement.rsrp_dbm).sum::<f64>() / 500.0
        };
        let front = mean_rsrp(120.0, 7);
        let back = mean_rsrp(-120.0, 7);
        assert!(
            front - back > 20.0,
            "front {front} vs back {back} (expected ~30 dB front-to-back)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            sim(
                DeploymentLayout::three_site_dense(),
                MobilityModel::walking(Position::ORIGIN, 100.0),
                42,
            )
        };
        let mut a = mk();
        let mut b = mk();
        for _ in 0..500 {
            let sa = a.step();
            let sb = b.step();
            assert_eq!(sa.sinr_db, sb.sinr_db);
            assert_eq!(sa.serving_site, sb.serving_site);
        }
    }

    #[test]
    fn cached_step_bit_identical_to_uncached() {
        // Driving route: the cache recomputes every slot; stationary tail:
        // the cache hits every slot. Both must match the reference exactly.
        let mk = || {
            sim(
                DeploymentLayout::three_site_dense(),
                MobilityModel::walking(Position::ORIGIN, 100.0),
                9,
            )
        };
        let mut cached = mk();
        let mut reference = mk();
        for _ in 0..2000 {
            assert_eq!(cached.step(), reference.step_uncached());
        }
        let pos = Position::new(55.0, -20.0);
        for _ in 0..2000 {
            assert_eq!(cached.step_at(pos, 0.0), reference.step_at_uncached(pos, 0.0));
        }
    }

    #[test]
    fn primed_cache_is_bit_identical_and_skips_recompute() {
        // Two UEs at the same spot with different seeds: after UE 0 steps
        // once, UE 1 adopts its large-scale cache. Every subsequent state
        // must equal an unprimed replica's, bit for bit — priming only
        // skips arithmetic that would have produced the same floats.
        let pos = Position::new(85.0, -10.0);
        let layout = DeploymentLayout::three_site_dense;
        let mk = |seed: u64| {
            ChannelSimulator::new(
                ChannelConfig::midband_urban(245),
                layout(),
                MobilityModel::Stationary { position: pos },
                &SeedTree::new(seed),
            )
        };
        let mut leader = mk(31);
        leader.step_at(pos, 0.0);
        let mut primed = mk(32);
        let mut replica = mk(32);
        assert!(primed.prime_cache_from(&leader), "same config+layout must prime");
        for _ in 0..500 {
            assert_eq!(primed.step_at(pos, 0.0), replica.step_at(pos, 0.0));
        }
        // Mismatched layouts refuse to prime; an unstepped leader has no
        // cache to offer.
        let mut other_layout = ChannelSimulator::new(
            ChannelConfig::midband_urban(245),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &SeedTree::new(33),
        );
        assert!(!other_layout.prime_cache_from(&leader));
        assert!(!mk(34).prime_cache_from(&mk(35)));
    }

    #[test]
    fn layout_swap_resets_serving_state() {
        // Start served by the only nearby site of layout A, then swap in a
        // same-size layout whose site 1 is far away and site 2 is adjacent.
        // Without the reset, the stale serving_idx (0) passes the
        // `cur < rx.len()` guard and hysteresis pins the UE to the distant
        // site 1; after `set_layout` the first step must re-select freshly.
        let pos = Position::new(40.0, 0.0);
        let seeds = SeedTree::new(11);
        let layout_a = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(50.0, 0.0)),
            GnbSite::macro_site(2, Position::new(-2000.0, 0.0)),
        ]);
        let mut s = ChannelSimulator::new(
            ChannelConfig::midband_urban(245),
            layout_a,
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        for _ in 0..50 {
            assert_eq!(s.step_at(pos, 0.0).serving_site, 1);
        }
        let layout_b = DeploymentLayout::new(vec![
            GnbSite::macro_site(1, Position::new(-2000.0, 0.0)),
            GnbSite::macro_site(2, Position::new(50.0, 0.0)),
        ]);
        s.set_layout(layout_b, &seeds);
        assert_eq!(
            s.step_at(pos, 0.0).serving_site,
            2,
            "stale serving index must not survive a layout swap"
        );
    }
}
