//! UE mobility models: stationary, walking, driving (paper §2, §7).
//!
//! * Stationary — experiments "placing the phones on flat surfaces";
//! * Walking — random-waypoint wander inside the study area at ~1.4 m/s;
//! * Driving — along a fixed route at urban speeds ("attaching them to
//!   car phone holders during driving experiments");
//! * Route — deterministic path walks for the Fig. 7 RSRQ maps.

use crate::geometry::Position;
use crate::rng::SeedTree;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Declarative description of a mobility pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MobilityModel {
    /// No movement.
    Stationary {
        /// Fixed position.
        position: Position,
    },
    /// Random waypoint inside a disc: pick a point, walk to it at `speed`,
    /// repeat.
    RandomWaypoint {
        /// Centre of the wander area.
        center: Position,
        /// Radius of the wander area, metres.
        radius_m: f64,
        /// Speed, m/s (walking ≈ 1.4).
        speed_mps: f64,
    },
    /// Follow a polyline of waypoints at constant speed, looping back to
    /// the start (driving routes, scouting walks).
    Route {
        /// Waypoints, at least two.
        waypoints: Vec<Position>,
        /// Speed, m/s (urban driving ≈ 8–14).
        speed_mps: f64,
    },
}

impl MobilityModel {
    /// Typical walking pattern in a study area.
    pub fn walking(center: Position, radius_m: f64) -> Self {
        MobilityModel::RandomWaypoint { center, radius_m, speed_mps: 1.4 }
    }

    /// Typical urban driving loop around the study area.
    pub fn driving_loop(center: Position, half_extent_m: f64) -> Self {
        let e = half_extent_m;
        MobilityModel::Route {
            waypoints: vec![
                Position::new(center.x - e, center.y - e),
                Position::new(center.x + e, center.y - e),
                Position::new(center.x + e, center.y + e),
                Position::new(center.x - e, center.y + e),
            ],
            speed_mps: 11.0,
        }
    }

    /// Nominal speed of the pattern, m/s.
    pub fn speed_mps(&self) -> f64 {
        match self {
            MobilityModel::Stationary { .. } => 0.0,
            MobilityModel::RandomWaypoint { speed_mps, .. }
            | MobilityModel::Route { speed_mps, .. } => *speed_mps,
        }
    }

    /// Instantiate the stateful walker.
    pub fn into_state(self, seeds: &SeedTree) -> MobilityState {
        let rng = seeds.stream("mobility");
        let position = match &self {
            MobilityModel::Stationary { position } => *position,
            MobilityModel::RandomWaypoint { center, .. } => *center,
            MobilityModel::Route { waypoints, .. } => {
                assert!(waypoints.len() >= 2, "a route needs at least two waypoints");
                waypoints[0]
            }
        };
        MobilityState { model: self, position, target: None, route_leg: 0, rng }
    }
}

/// The evolving position of one UE.
#[derive(Debug, Clone)]
pub struct MobilityState {
    model: MobilityModel,
    position: Position,
    target: Option<Position>,
    route_leg: usize,
    rng: ChaCha12Rng,
}

impl MobilityState {
    /// Current position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Current speed (0 for stationary).
    pub fn speed_mps(&self) -> f64 {
        self.model.speed_mps()
    }

    /// Advance by `dt_s` seconds; returns the distance moved in metres.
    pub fn advance(&mut self, dt_s: f64) -> f64 {
        // Destructure into disjoint borrows: the match borrows `model`
        // while the loop bodies mutate position/target/route_leg/rng, and
        // the Route arm in particular must not have to clone its waypoint
        // vector every slot to appease the borrow checker (a per-slot
        // heap allocation on the driving hot path).
        let MobilityState { model, position, target, route_leg, rng } = self;
        match model {
            MobilityModel::Stationary { .. } => 0.0,
            MobilityModel::RandomWaypoint { center, radius_m, speed_mps } => {
                let (center, radius, speed) = (*center, *radius_m, *speed_mps);
                let mut remaining = speed * dt_s;
                let mut moved = 0.0;
                while remaining > 1e-12 {
                    let tgt = match *target {
                        Some(t) => t,
                        None => {
                            // Uniform point in the disc via rejection-free polar
                            // sampling (sqrt for area uniformity).
                            let r = radius * rng.gen::<f64>().sqrt();
                            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                            let t = Position::new(
                                center.x + r * theta.cos(),
                                center.y + r * theta.sin(),
                            );
                            *target = Some(t);
                            t
                        }
                    };
                    let dist = position.distance_to(&tgt);
                    if dist <= remaining {
                        *position = tgt;
                        moved += dist;
                        remaining -= dist;
                        *target = None;
                    } else {
                        let t = remaining / dist;
                        *position = position.lerp(&tgt, t);
                        moved += remaining;
                        remaining = 0.0;
                    }
                }
                moved
            }
            MobilityModel::Route { waypoints, speed_mps } => {
                let speed = *speed_mps;
                let mut remaining = speed * dt_s;
                let mut moved = 0.0;
                while remaining > 1e-12 {
                    let next = waypoints[(*route_leg + 1) % waypoints.len()];
                    let dist = position.distance_to(&next);
                    if dist <= remaining {
                        *position = next;
                        moved += dist;
                        remaining -= dist;
                        *route_leg = (*route_leg + 1) % waypoints.len();
                    } else {
                        let t = remaining / dist;
                        *position = position.lerp(&next, t);
                        moved += remaining;
                        remaining = 0.0;
                    }
                }
                moved
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let m = MobilityModel::Stationary { position: Position::new(3.0, 4.0) };
        let mut s = m.into_state(&SeedTree::new(1));
        for _ in 0..100 {
            assert_eq!(s.advance(1.0), 0.0);
        }
        assert_eq!(s.position().x, 3.0);
    }

    #[test]
    fn walking_stays_in_disc_and_moves_at_speed() {
        let center = Position::new(10.0, -5.0);
        let m = MobilityModel::walking(center, 50.0);
        let mut s = m.into_state(&SeedTree::new(2));
        let mut total = 0.0;
        for _ in 0..1000 {
            total += s.advance(0.5);
            let d = s.position().distance_to(&center);
            assert!(d <= 50.0 + 1e-9, "escaped the disc: {d}");
        }
        // 1000 steps of 0.5 s at 1.4 m/s = 700 m.
        assert!((total - 700.0).abs() < 1e-6);
    }

    #[test]
    fn route_loops() {
        let m = MobilityModel::driving_loop(Position::ORIGIN, 100.0);
        let mut s = m.into_state(&SeedTree::new(3));
        // Perimeter = 800 m; at 11 m/s a full loop takes ≈ 72.7 s.
        let start = s.position();
        let mut total = 0.0;
        for _ in 0..728 {
            total += s.advance(0.1);
        }
        assert!((total - 800.8).abs() < 1.0);
        assert!(s.position().distance_to(&start) < 2.0, "should be back near start");
    }

    #[test]
    fn driving_covers_more_ground_than_walking() {
        let mut walk = MobilityModel::walking(Position::ORIGIN, 200.0).into_state(&SeedTree::new(4));
        let mut drive =
            MobilityModel::driving_loop(Position::ORIGIN, 200.0).into_state(&SeedTree::new(4));
        let mut dw = 0.0;
        let mut dd = 0.0;
        for _ in 0..100 {
            dw += walk.advance(1.0);
            dd += drive.advance(1.0);
        }
        assert!(dd > dw * 5.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || MobilityModel::walking(Position::ORIGIN, 80.0).into_state(&SeedTree::new(9));
        let mut a = mk();
        let mut b = mk();
        for _ in 0..200 {
            a.advance(0.3);
            b.advance(0.3);
            assert_eq!(a.position().x, b.position().x);
            assert_eq!(a.position().y, b.position().y);
        }
    }
}
