//! Signal-strength arithmetic: RSRP, RSSI, RSRQ and SINR.
//!
//! These are the quantities the paper's scouting methodology thresholds
//! ("RSRP & RSRQ greater than −90 dBm and −12 dB" for good coverage, §2 ❶)
//! and its Fig. 7 maps. Definitions follow TS 38.215:
//!
//! * RSRP — average power of one reference-signal resource element;
//! * RSSI — total received power over the measurement bandwidth,
//!   including serving signal, interference and noise;
//! * RSRQ — `N · RSRP / RSSI` with N the number of RBs in the measurement
//!   bandwidth;
//! * SINR — serving RE power over interference + noise.

use serde::{Deserialize, Serialize};

/// Thermal noise density at 290 K, dBm/Hz.
pub const THERMAL_NOISE_DBM_HZ: f64 = -174.0;

/// Convert dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    vmath::pow10(dbm / 10.0)
}

/// Convert milliwatts to dBm; −∞ guards map to a very small floor.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * vmath::log10(mw.max(1e-30))
}

/// Static configuration of the measurement arithmetic for one carrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalConfig {
    /// Number of RBs in the carrier (sets the per-RE power split and the
    /// RSRQ measurement bandwidth).
    pub n_rb: u16,
    /// Sub-carrier spacing in kHz (sets the noise bandwidth per RE).
    pub scs_khz: u32,
    /// UE noise figure in dB (typical handset: 7 dB).
    pub noise_figure_db: f64,
    /// Average fractional load of *other-cell* traffic, 0..=1. Enters the
    /// RSSI (and thus RSRQ) and the inter-cell interference power.
    pub neighbor_load: f64,
    /// Average fractional load of the serving cell's own REs, 0..=1; enters
    /// RSSI only (own-cell REs don't interfere post-equalisation).
    pub serving_load: f64,
    /// City-wide co-channel background interference per RE, dBm: the rest
    /// of the operator's grid beyond the modelled study-area sites. Keeps
    /// SIR bounded even next to an isolated site, as in any real city.
    pub background_interference_dbm: f64,
}

impl SignalConfig {
    /// A mid-band default: our own measurements saturate the serving link,
    /// but RSSI is measured over all symbols of which roughly 70% carry
    /// energy in a loaded cell; neighbours run at ~50% load.
    pub fn midband(n_rb: u16) -> Self {
        SignalConfig {
            n_rb,
            scs_khz: 30,
            noise_figure_db: 7.0,
            neighbor_load: 0.5,
            serving_load: 0.7,
            background_interference_dbm: -100.0,
        }
    }

    /// Noise power per resource element, dBm.
    pub fn noise_per_re_dbm(&self) -> f64 {
        THERMAL_NOISE_DBM_HZ
            + 10.0 * vmath::log10(self.scs_khz as f64 * 1e3)
            + self.noise_figure_db
    }

    /// Per-RE transmit power of a site whose total carrier power is
    /// `tx_power_dbm`, assuming equal power over `n_rb · 12` sub-carriers.
    pub fn tx_per_re_dbm(&self, tx_power_dbm: f64) -> f64 {
        tx_power_dbm - 10.0 * vmath::log10(self.n_rb as f64 * 12.0)
    }

    /// Precompute the linear-domain constants of
    /// [`RadioMeasurement::compute`] — pure functions of the configuration,
    /// so hoisting them out of the per-slot loop is bit-exact.
    pub fn noise_terms(&self) -> NoiseTerms {
        NoiseTerms {
            background_mw: dbm_to_mw(self.background_interference_dbm),
            noise_mw: dbm_to_mw(self.noise_per_re_dbm()),
        }
    }
}

/// The config-constant linear-domain terms of the measurement arithmetic,
/// hoisted out of the hot loop (two `powf` and a `log10` per slot).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseTerms {
    /// `dbm_to_mw(background_interference_dbm)`.
    pub background_mw: f64,
    /// `dbm_to_mw(noise_per_re_dbm())`.
    pub noise_mw: f64,
}

/// A complete signal measurement at one UE position/instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioMeasurement {
    /// Reference-signal received power, dBm.
    pub rsrp_dbm: f64,
    /// Received signal strength indicator over the carrier, dBm.
    pub rssi_dbm: f64,
    /// Reference-signal received quality, dB.
    pub rsrq_db: f64,
    /// Post-combining signal-to-interference-plus-noise ratio, dB.
    pub sinr_db: f64,
}

impl RadioMeasurement {
    /// Compute the measurement from per-RE powers (all in dBm):
    /// `serving_re_dbm` for the serving cell and `interferer_re_dbm` for
    /// each neighbour, at the UE.
    pub fn compute(
        config: &SignalConfig,
        serving_re_dbm: f64,
        interferer_re_dbm: &[f64],
    ) -> RadioMeasurement {
        Self::compute_with_terms(config, &config.noise_terms(), serving_re_dbm, interferer_re_dbm)
    }

    /// [`compute`] with the config-constant noise terms supplied by the
    /// caller (hot loops precompute them once per simulator). Bit-identical
    /// to [`compute`]: the terms are deterministic functions of `config`.
    ///
    /// [`compute`]: RadioMeasurement::compute
    pub fn compute_with_terms(
        config: &SignalConfig,
        terms: &NoiseTerms,
        serving_re_dbm: f64,
        interferer_re_dbm: &[f64],
    ) -> RadioMeasurement {
        let s = dbm_to_mw(serving_re_dbm);
        let i: f64 = interferer_re_dbm.iter().map(|&d| dbm_to_mw(d)).sum::<f64>()
            * config.neighbor_load
            + terms.background_mw;
        let n = terms.noise_mw;

        let rsrp_dbm = serving_re_dbm;
        // RSSI over one RB's 12 REs: serving load + neighbour load + noise.
        let rssi_per_re = config.serving_load * s + i + n;
        // The three dB conversions are one 4-lane `log10` batch (fourth
        // lane padded with 1.0): `vmath` lanes are bit-identical to its
        // scalar calls, so this produces exactly the floats the three
        // per-value `mw_to_dbm`/`log10` calls did — it only evaluates
        // them in one vector pass instead of three scalar ones.
        let args = [
            // `mw_to_dbm`'s −∞ guard, applied before the batch.
            (rssi_per_re * 12.0 * config.n_rb as f64).max(1e-30),
            // RSRQ = N · RSRP / RSSI.
            config.n_rb as f64 * s / (rssi_per_re * 12.0 * config.n_rb as f64),
            s / (i + n),
            1.0,
        ];
        let mut logs = [0.0f64; 4];
        vmath::log10_slice(&args, &mut logs);
        RadioMeasurement {
            rsrp_dbm,
            rssi_dbm: 10.0 * logs[0],
            rsrq_db: 10.0 * logs[1],
            sinr_db: 10.0 * logs[2],
        }
    }

    /// The paper's §2 scouting rule: RSRP > −90 dBm *and* RSRQ > −12 dB.
    pub fn is_good_coverage(&self) -> bool {
        self.rsrp_dbm > -90.0 && self.rsrq_db > -12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test config with the background floor disabled, so the closed-form
    /// expectations below stay exact.
    fn cfg() -> SignalConfig {
        SignalConfig { background_interference_dbm: -300.0, ..SignalConfig::midband(245) }
    }

    #[test]
    fn noise_floor_value() {
        // −174 + 10·log10(30e3) + 7 ≈ −122.2 dBm per RE.
        assert!((cfg().noise_per_re_dbm() + 122.23).abs() < 0.05);
    }

    #[test]
    fn tx_power_splits_over_subcarriers() {
        // 44 dBm over 245·12 = 2940 REs → ≈ 9.3 dBm per RE.
        let per_re = cfg().tx_per_re_dbm(44.0);
        assert!((per_re - (44.0 - 34.68)).abs() < 0.05);
    }

    #[test]
    fn interference_free_rsrq_floor() {
        // With no interferers at 70% serving load, RSRQ → 1/(12·0.7)
        // ≈ −9.2 dB at high SNR — matching the best values on the paper's
        // Fig. 7 colour scale (−9 dB).
        let m = RadioMeasurement::compute(&cfg(), -60.0, &[]);
        assert!((m.rsrq_db + 9.24).abs() < 0.05, "rsrq {}", m.rsrq_db);
        assert!(m.sinr_db > 40.0);
    }

    #[test]
    fn interference_degrades_rsrq_and_sinr() {
        let clean = RadioMeasurement::compute(&cfg(), -70.0, &[]);
        let dirty = RadioMeasurement::compute(&cfg(), -70.0, &[-73.0]);
        assert!(dirty.rsrq_db < clean.rsrq_db);
        assert!(dirty.sinr_db < clean.sinr_db);
        // Equal-power interferer at 50% load: SINR ≈ 10·log10(1/0.5) ≈ 3 dB
        let equal = RadioMeasurement::compute(&cfg(), -70.0, &[-70.0]);
        assert!((equal.sinr_db - 3.01).abs() < 0.1, "sinr {}", equal.sinr_db);
    }

    #[test]
    fn weak_signal_sinr_is_noise_limited() {
        // At RSRP −120 dBm (near the noise floor) SINR must be small even
        // without interference.
        let m = RadioMeasurement::compute(&cfg(), -120.0, &[]);
        assert!(m.sinr_db < 5.0 && m.sinr_db > -5.0, "sinr {}", m.sinr_db);
    }

    #[test]
    fn scouting_rule() {
        let good = RadioMeasurement { rsrp_dbm: -80.0, rssi_dbm: 0.0, rsrq_db: -10.0, sinr_db: 20.0 };
        let weak_rsrp = RadioMeasurement { rsrp_dbm: -95.0, ..good };
        let weak_rsrq = RadioMeasurement { rsrq_db: -13.0, ..good };
        assert!(good.is_good_coverage());
        assert!(!weak_rsrp.is_good_coverage());
        assert!(!weak_rsrq.is_good_coverage());
    }

    #[test]
    fn background_floor_caps_sir() {
        // With the default −100 dBm/RE city background, a −85 dBm serving
        // signal cannot exceed ≈15 dB SINR even with no local interferers.
        let m = RadioMeasurement::compute(&SignalConfig::midband(245), -85.0, &[]);
        assert!(m.sinr_db < 16.0, "sinr {}", m.sinr_db);
        assert!(m.sinr_db > 13.5, "sinr {}", m.sinr_db);
    }

    #[test]
    fn dbm_mw_roundtrip() {
        for dbm in [-120.0, -60.0, 0.0, 30.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }
}
