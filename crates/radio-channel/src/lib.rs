#![warn(missing_docs)]

//! # radio-channel — the radio environment the paper measured
//!
//! The paper's §4.1 root-causes throughput differences between operators
//! with similar channel bandwidths to *channel conditions*: coverage
//! density (Fig. 7/22), RSRQ, and the resulting MIMO-rank and MCS
//! distributions. This crate supplies that radio environment for the
//! slot-level RAN simulator in the `ran` crate:
//!
//! * [`geometry`] — positions, gNB sites, deployment layouts (the paper's
//!   2-site vs 3-site Madrid comparison);
//! * [`pathloss`] — 3GPP TR 38.901 UMa/UMi path-loss models;
//! * [`shadowing`] — spatially-correlated log-normal shadowing
//!   (Gudmundson exponential correlation);
//! * [`fading`] — Doppler-matched small-scale fading (AR(1) over slots)
//!   with a Rician LOS component;
//! * [`signal`] — RSRP / RSSI / RSRQ / SINR arithmetic (paper Fig. 7);
//! * [`link`] — SINR→CQI mapping, per-MCS BLER curves and rank (RI)
//!   selection: the UE-side origin of every CSI report;
//! * [`mobility`] — stationary / walking / driving movement models (§7);
//! * [`blockage`] — the two-state mmWave blockage process that makes FR2
//!   channels erratic under mobility (§7);
//! * [`channel`] — [`channel::ChannelSimulator`], which composes all of
//!   the above into a per-slot channel-state stream;
//! * [`rng`] — deterministic, labelled sub-streams of a campaign seed.
//!
//! Everything is deterministic given a seed; experiments in `measure`
//! re-run bit-identically.

pub mod antenna;
pub mod blockage;
pub mod channel;
pub mod fading;
pub mod geometry;
pub mod link;
pub mod mobility;
pub mod pathloss;
pub mod rng;
pub mod scout;
pub mod shadowing;
pub mod signal;

pub use antenna::SectorPattern;
pub use channel::{ChannelSimulator, ChannelState};
pub use geometry::{DeploymentLayout, GnbSite, Position};
pub use link::{LinkModel, RankProfile};
pub use mobility::MobilityModel;
pub use pathloss::{PathLossModel, Scenario};
pub use rng::SeedTree;
pub use signal::{RadioMeasurement, SignalConfig};
