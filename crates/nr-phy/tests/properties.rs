//! Property-based tests of the PHY substrate's invariants.

use nr_phy::band::NrArfcn;
use nr_phy::bandwidth::{guard_bandwidth_khz, max_transmission_bandwidth, ChannelBandwidth};
use nr_phy::cqi::{Cqi, CqiTable, CqiToMcsPolicy};
use nr_phy::mcs::{McsIndex, McsTable};
use nr_phy::resource::RbAllocation;
use nr_phy::tbs::{tbs_bits, tbs_bits_batch, transport_block_size};
use nr_phy::tdd::{SpecialSlotConfig, TddPattern};
use nr_phy::throughput::{max_data_rate_mbps, CarrierRange, CarrierSpec, LinkDirection};
use nr_phy::Numerology;
use proptest::prelude::*;

proptest! {
    /// The global frequency raster is a bijection on raster points.
    #[test]
    fn arfcn_roundtrip(n in 0u32..=3_279_165) {
        let khz = NrArfcn(n).to_khz().unwrap();
        prop_assert_eq!(NrArfcn::from_khz(khz).unwrap(), NrArfcn(n));
    }

    /// TBS is monotone in every input dimension.
    #[test]
    fn tbs_monotonicity(
        n_re in 12u32..50_000,
        rate_milli in 100u32..948,
        qm in prop::sample::select(vec![2u8, 4, 6, 8]),
        layers in 1u8..=4,
    ) {
        let rate = f64::from(rate_milli) / 1024.0;
        let base = tbs_bits(n_re, rate, qm, layers);
        prop_assert!(tbs_bits(n_re + 156, rate, qm, layers) >= base);
        prop_assert!(tbs_bits(n_re, (rate + 0.02).min(0.95), qm, layers) >= base);
        if layers < 4 {
            prop_assert!(tbs_bits(n_re, rate, qm, layers + 1) >= base);
        }
        // TBS respects the raw information bound, up to the §5.1.3.2
        // quantisation (which rounds N'_info to a 2^n grid whose step is
        // ≈ N_info/64) plus the small-table slack.
        let n_info = n_re as f64 * rate * f64::from(qm) * f64::from(layers);
        prop_assert!(f64::from(base) <= n_info * (1.0 + 1.0 / 60.0) + 3900.0);
    }

    /// The per-carrier TBS memo is bit-identical to the direct §5.1.3.2
    /// computation across random allocations, MCS tables, MCS indices,
    /// and layer counts — including the out-of-range inputs that bypass
    /// the memo and repeated queries that hit it.
    #[test]
    fn memoised_tbs_bit_identical_to_direct(
        table in prop::sample::select(vec![
            McsTable::Qam64,
            McsTable::Qam256,
            McsTable::Qam64LowSe,
        ]),
        queries in prop::collection::vec(
            (1u16..=273, 1u8..=14, 0u8..=34, 0u8..=5),
            1..100,
        ),
    ) {
        let mut memo = nr_phy::tbs::TbsCache::new();
        for (n_prb, n_symbols, mcs, layers) in queries {
            let alloc = RbAllocation {
                n_prb,
                n_symbols,
                dmrs_re_per_prb: 24,
                overhead_re_per_prb: 12,
            };
            let direct = transport_block_size(&alloc, table, McsIndex(mcs), layers);
            // Ask twice so both the fill and the hit path are checked.
            prop_assert_eq!(
                memo.transport_block_size(&alloc, table, McsIndex(mcs), layers),
                direct
            );
            prop_assert_eq!(
                memo.transport_block_size(&alloc, table, McsIndex(mcs), layers),
                direct
            );
        }
    }

    /// The batched TBS path is bit-identical to the scalar function for
    /// arbitrary RE counts and ragged batch lengths — the SIMD table
    /// lookup inside must agree with `partition_point` everywhere.
    #[test]
    fn batched_tbs_bit_identical_to_scalar(
        n_re in prop::collection::vec(0u32..100_000, 0..67),
        rate_milli in 1u32..=948,
        qm in prop::sample::select(vec![0u8, 2, 4, 6, 8]),
        layers in 0u8..=4,
    ) {
        let rate = f64::from(rate_milli) / 1024.0;
        let mut out = vec![0u32; n_re.len()];
        tbs_bits_batch(&n_re, rate, qm, layers, &mut out);
        for (i, (&re, &got)) in n_re.iter().zip(out.iter()).enumerate() {
            prop_assert_eq!(got, tbs_bits(re, rate, qm, layers), "lane {}: re {}", i, re);
        }
    }

    /// Large transport blocks always come out byte-aligned after CRC
    /// (the (TBS + 24) % 8 == 0 rule of the segmentation arms).
    #[test]
    fn large_tbs_crc_alignment(
        n_prb in 50u16..=273,
        mcs in 10u8..28,
        layers in 2u8..=4,
    ) {
        let alloc = RbAllocation::full_slot(n_prb);
        let bits = transport_block_size(&alloc, McsTable::Qam256, McsIndex(mcs), layers);
        if bits > 3824 {
            prop_assert_eq!((bits + 24) % 8, 0, "bits={}", bits);
        }
    }

    /// Any parseable TDD pattern round-trips through its string form and
    /// keeps its duty cycles in (0, 1) with DL + UL < 1 (guard exists in
    /// the special slot).
    #[test]
    fn tdd_pattern_roundtrip(
        pattern in "[DU]{0,8}S[DU]{0,8}",
        dl in 0u8..=12,
        ul in 0u8..=12,
    ) {
        prop_assume!(dl + ul <= 12); // leave ≥2 guard symbols
        prop_assume!(pattern.contains('D') || dl > 0);
        prop_assume!(pattern.contains('U') || ul > 0);
        let special = SpecialSlotConfig {
            dl_symbols: dl,
            guard_symbols: 14 - dl - ul,
            ul_symbols: ul,
        };
        let p = TddPattern::parse(&pattern, special).unwrap();
        prop_assert_eq!(p.pattern_string(), pattern);
        let (d, u) = (p.dl_duty_cycle(), p.ul_duty_cycle());
        prop_assert!(d + u < 1.0);
        prop_assert!(d > 0.0 && u > 0.0);
        // Alignment search terminates and wraps for every start slot.
        for slot in 0..p.len() as u64 {
            prop_assert!(p.slots_to_next_ul(slot) <= p.len() as u64);
            prop_assert!(p.slots_to_next_dl(slot) <= p.len() as u64);
        }
    }

    /// The vendor mapping is monotone in CQI for any fixed offset.
    #[test]
    fn cqi_policy_monotone(offset in -6i8..=6) {
        for table in [CqiTable::Table1, CqiTable::Table2] {
            let policy = CqiToMcsPolicy { index_offset: offset, ..CqiToMcsPolicy::neutral(table) };
            let mut prev = McsIndex(0);
            for c in 1..=15u8 {
                let m = policy.map(Cqi::new(c).unwrap());
                prop_assert!(m >= prev, "table {:?} cqi {}: {} < {}", table, c, m.0, prev.0);
                prev = m;
            }
        }
    }

    /// The 38.306 data rate is positive, linear in N_RB, and monotone in
    /// layers/modulation, for every valid carrier.
    #[test]
    fn max_rate_properties(
        n_rb in 11u16..=273,
        layers in 1u8..=4,
    ) {
        let cc = |n: u16, l: u8, m: nr_phy::mcs::Modulation| CarrierSpec {
            layers: l,
            modulation: m,
            scaling: 1.0,
            numerology: Numerology::Mu1,
            n_rb: n,
            range: CarrierRange::Fr1,
        };
        use nr_phy::mcs::Modulation;
        let base = max_data_rate_mbps(&[cc(n_rb, layers, Modulation::Qam64)], LinkDirection::Downlink).unwrap();
        prop_assert!(base > 0.0);
        let wider = max_data_rate_mbps(&[cc(n_rb, layers, Modulation::Qam256)], LinkDirection::Downlink).unwrap();
        prop_assert!((wider / base - 8.0 / 6.0).abs() < 1e-9);
        let double = max_data_rate_mbps(
            &[cc(n_rb, layers, Modulation::Qam64), cc(n_rb, layers, Modulation::Qam64)],
            LinkDirection::Downlink,
        ).unwrap();
        prop_assert!((double / base - 2.0).abs() < 1e-9, "CA sums linearly");
    }

    /// Every defined (bandwidth, SCS) pair keeps its occupied bandwidth
    /// inside the channel.
    #[test]
    fn nrb_guard_band_positive(mhz in prop::sample::select(vec![5u32,10,15,20,25,30,40,50,60,80,90,100])) {
        for numerology in [Numerology::Mu0, Numerology::Mu1] {
            let bw = ChannelBandwidth::from_mhz(mhz);
            if max_transmission_bandwidth(bw, numerology).is_ok() {
                let guard = guard_bandwidth_khz(bw, numerology).unwrap();
                prop_assert!(guard > 0);
            }
        }
    }
}
