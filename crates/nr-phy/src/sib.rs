//! MIB/SIB-derived channel-information extraction (paper Appendix 10.1).
//!
//! During initial access the UE reads the MIB and SIB1; the SIB fields
//! `absoluteFrequencyPointA`, `offsetToCarrier` and `carrierBandwidth` are
//! what the paper's measurement pipeline decodes (via XCAL) to locate each
//! operator's mid-band channel and its bandwidth. This module reproduces
//! that derivation so operator profiles can be expressed — and verified —
//! in the same terms the paper extracts from the air interface.

use crate::band::NrArfcn;
use crate::bandwidth::{occupied_bandwidth_khz, ChannelBandwidth};
use crate::error::PhyError;
use crate::numerology::Numerology;
use serde::{Deserialize, Serialize};

/// The subset of SIB1 / ServingCellConfigCommon fields the paper's
/// Appendix 10.1 uses to identify a carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellFrequencyInfo {
    /// `absoluteFrequencyPointA`: NR-ARFCN of "point A", the common RB-grid
    /// reference at the lower edge of the carrier.
    pub absolute_frequency_point_a: NrArfcn,
    /// `offsetToCarrier`: offset from point A to the first usable
    /// sub-carrier, in RBs at the carrier's SCS.
    pub offset_to_carrier: u16,
    /// `carrierBandwidth`: carrier width in RBs at the carrier's SCS
    /// (N_RB, the row-7 quantity of Tables 2–3).
    pub carrier_bandwidth_rb: u16,
    /// Sub-carrier spacing of the carrier.
    pub numerology: Numerology,
}

/// A decoded carrier location: what Appendix 10.1's procedure yields.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodedCarrier {
    /// Lower edge of the usable carrier, kHz.
    pub low_edge_khz: u64,
    /// Upper edge of the usable carrier, kHz.
    pub high_edge_khz: u64,
    /// Centre frequency, kHz.
    pub center_khz: u64,
    /// Occupied (transmission) bandwidth, kHz.
    pub occupied_khz: u32,
    /// N_RB of the carrier.
    pub n_rb: u16,
}

impl CellFrequencyInfo {
    /// Decode the carrier's position on the spectrum, replicating the
    /// point-A + offset arithmetic of TS 38.211 §4.4.4.2.
    pub fn decode(&self) -> Result<DecodedCarrier, PhyError> {
        let point_a_khz = self.absolute_frequency_point_a.to_khz()?;
        let rb_khz = 12 * self.numerology.scs_khz();
        let low_edge_khz = point_a_khz + self.offset_to_carrier as u64 * rb_khz as u64;
        let occupied_khz = occupied_bandwidth_khz(self.carrier_bandwidth_rb, self.numerology);
        let high_edge_khz = low_edge_khz + occupied_khz as u64;
        Ok(DecodedCarrier {
            low_edge_khz,
            high_edge_khz,
            center_khz: low_edge_khz + occupied_khz as u64 / 2,
            occupied_khz,
            n_rb: self.carrier_bandwidth_rb,
        })
    }

    /// Infer the nominal channel bandwidth (in MHz) from `carrierBandwidth`,
    /// inverting the TS 38.101 N_RB table — the "lookup table 5.3.2-1" step
    /// of Appendix 10.1. Returns `None` for N_RB values that match no
    /// standard channel bandwidth at this SCS.
    pub fn nominal_channel_bandwidth(&self) -> Option<ChannelBandwidth> {
        const CANDIDATES_MHZ: [u32; 15] =
            [5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 70, 80, 90, 100];
        for mhz in CANDIDATES_MHZ {
            let bw = ChannelBandwidth::from_mhz(mhz);
            if let Ok(n) = crate::bandwidth::max_transmission_bandwidth(bw, self.numerology) {
                if n == self.carrier_bandwidth_rb {
                    return Some(bw);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_a_c_band_carrier() {
        // A 90 MHz carrier at point A = 3 600 MHz (ARFCN 640000), offset 0.
        let info = CellFrequencyInfo {
            absolute_frequency_point_a: NrArfcn(640_000),
            offset_to_carrier: 0,
            carrier_bandwidth_rb: 245,
            numerology: Numerology::Mu1,
        };
        let d = info.decode().unwrap();
        assert_eq!(d.low_edge_khz, 3_600_000);
        assert_eq!(d.occupied_khz, 245 * 12 * 30);
        assert_eq!(d.high_edge_khz - d.low_edge_khz, d.occupied_khz as u64);
        assert!(d.center_khz > d.low_edge_khz && d.center_khz < d.high_edge_khz);
    }

    #[test]
    fn offset_to_carrier_shifts_the_grid() {
        let base = CellFrequencyInfo {
            absolute_frequency_point_a: NrArfcn(640_000),
            offset_to_carrier: 0,
            carrier_bandwidth_rb: 245,
            numerology: Numerology::Mu1,
        };
        let shifted = CellFrequencyInfo { offset_to_carrier: 10, ..base };
        let d0 = base.decode().unwrap();
        let d10 = shifted.decode().unwrap();
        assert_eq!(d10.low_edge_khz - d0.low_edge_khz, 10 * 12 * 30);
    }

    #[test]
    fn nominal_bandwidth_inversion() {
        for (n_rb, mhz) in [(106u16, 40u32), (162, 60), (217, 80), (245, 90), (273, 100)] {
            let info = CellFrequencyInfo {
                absolute_frequency_point_a: NrArfcn(640_000),
                offset_to_carrier: 0,
                carrier_bandwidth_rb: n_rb,
                numerology: Numerology::Mu1,
            };
            assert_eq!(
                info.nominal_channel_bandwidth(),
                Some(ChannelBandwidth::from_mhz(mhz)),
                "N_RB {n_rb}"
            );
        }
        // A non-standard N_RB matches nothing.
        let odd = CellFrequencyInfo {
            absolute_frequency_point_a: NrArfcn(640_000),
            offset_to_carrier: 0,
            carrier_bandwidth_rb: 200,
            numerology: Numerology::Mu1,
        };
        assert_eq!(odd.nominal_channel_bandwidth(), None);
    }
}
