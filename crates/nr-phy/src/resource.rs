//! Resource-block / resource-element accounting (TS 38.211 §4.4.4).
//!
//! A resource block (RB) is 12 sub-carriers in frequency; a resource element
//! (RE) is one sub-carrier × one OFDM symbol. The paper's Figure 3 plots
//! per-slot RE allocations and its Figure 4 the per-operator maximum RB
//! allocations; both derive from the accounting implemented here.

use serde::{Deserialize, Serialize};

/// Sub-carriers per resource block.
pub const SUBCARRIERS_PER_RB: u16 = 12;

/// OFDM symbols per slot (normal cyclic prefix).
pub const SLOT_SYMBOLS: u8 = 14;

/// The number of REs per PRB per slot is capped at 156 in the TBS procedure
/// (TS 38.214 §5.1.3.2 step 2) to bound the code-rate calculation.
pub const MAX_RE_PER_PRB: u16 = 156;

/// A contiguous RB allocation for one transmission within one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RbAllocation {
    /// Number of PRBs allocated.
    pub n_prb: u16,
    /// Scheduled data symbols in the slot (≤ 14; fewer in special slots).
    pub n_symbols: u8,
    /// DM-RS resource elements per PRB (typically 12 for 1-symbol type-A
    /// DM-RS, more with additional positions).
    pub dmrs_re_per_prb: u16,
    /// Other overhead REs per PRB (CSI-RS, PDCCH within the BWP, ...);
    /// the `xOverhead` of TS 38.214.
    pub overhead_re_per_prb: u16,
}

impl RbAllocation {
    /// A full-slot allocation of `n_prb` PRBs with typical overheads:
    /// 13 data symbols (one PDCCH symbol), 12 DM-RS REs, no extra overhead.
    pub fn full_slot(n_prb: u16) -> Self {
        RbAllocation { n_prb, n_symbols: 13, dmrs_re_per_prb: 12, overhead_re_per_prb: 0 }
    }

    /// An allocation restricted to the DL portion of a special slot.
    pub fn special_slot(n_prb: u16, dl_symbols: u8) -> Self {
        RbAllocation {
            n_prb,
            n_symbols: dl_symbols.saturating_sub(1),
            dmrs_re_per_prb: 12,
            overhead_re_per_prb: 0,
        }
    }

    /// Data REs per PRB after overheads: `12 · N_symb − N_dmrs − N_oh`,
    /// floored at zero (a pathological overhead cannot go negative).
    pub fn re_per_prb(&self) -> u16 {
        (SUBCARRIERS_PER_RB as i32 * self.n_symbols as i32
            - self.dmrs_re_per_prb as i32
            - self.overhead_re_per_prb as i32)
            .max(0) as u16
    }

    /// Effective REs per PRB for TBS purposes: capped at
    /// [`MAX_RE_PER_PRB`] per TS 38.214 §5.1.3.2.
    pub fn effective_re_per_prb(&self) -> u16 {
        self.re_per_prb().min(MAX_RE_PER_PRB)
    }

    /// Total data REs in the allocation (uncapped — this is the quantity
    /// behind the paper's Figure 3 RE-allocation CDF).
    pub fn total_re(&self) -> u32 {
        self.re_per_prb() as u32 * self.n_prb as u32
    }

    /// Total REs entering the TBS formula (with the per-PRB cap applied).
    pub fn tbs_re(&self) -> u32 {
        self.effective_re_per_prb() as u32 * self.n_prb as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_slot_re_counting() {
        // 13 symbols × 12 SC − 12 DMRS = 144 data REs/PRB.
        let a = RbAllocation::full_slot(273);
        assert_eq!(a.re_per_prb(), 144);
        assert_eq!(a.effective_re_per_prb(), 144);
        assert_eq!(a.total_re(), 144 * 273);
    }

    #[test]
    fn re_cap_applies() {
        // 14 symbols, no overhead at all: 168 REs/PRB, capped at 156 for TBS.
        let a = RbAllocation {
            n_prb: 100,
            n_symbols: 14,
            dmrs_re_per_prb: 0,
            overhead_re_per_prb: 0,
        };
        assert_eq!(a.re_per_prb(), 168);
        assert_eq!(a.effective_re_per_prb(), 156);
        assert_eq!(a.total_re(), 16_800);
        assert_eq!(a.tbs_re(), 15_600);
    }

    #[test]
    fn special_slot_has_fewer_symbols() {
        let a = RbAllocation::special_slot(245, 10);
        assert_eq!(a.n_symbols, 9);
        assert!(a.re_per_prb() < RbAllocation::full_slot(245).re_per_prb());
    }

    #[test]
    fn pathological_overhead_floors_at_zero() {
        let a = RbAllocation {
            n_prb: 10,
            n_symbols: 1,
            dmrs_re_per_prb: 12,
            overhead_re_per_prb: 12,
        };
        assert_eq!(a.re_per_prb(), 0);
        assert_eq!(a.total_re(), 0);
    }
}
