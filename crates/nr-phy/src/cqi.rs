//! CQI tables (TS 38.214 §5.2.2.1) and vendor CQI→MCS mapping policies.
//!
//! The UE periodically reports a channel quality indicator in 1..=15 (15 =
//! best). The gNB chooses the MCS from the CQI — but, as the paper stresses
//! (§3.1), *3GPP leaves the CQI→MCS mapping to vendor implementation*: for
//! the same CQI different vendors pick different MCS indices. This module
//! provides the standardised CQI tables plus a family of parameterised
//! mapping policies so operator profiles can model vendor diversity.

use crate::error::PhyError;
use crate::mcs::{McsIndex, McsTable, Modulation};
use serde::{Deserialize, Serialize};

/// A channel quality indicator, 0..=15. CQI 0 means "out of range".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cqi(u8);

impl Cqi {
    /// Lowest reportable in-range CQI.
    pub const MIN: Cqi = Cqi(1);
    /// Best channel condition.
    pub const MAX: Cqi = Cqi(15);

    /// Construct a CQI, validating the 0..=15 range.
    pub const fn new(value: u8) -> Result<Self, PhyError> {
        if value <= 15 {
            Ok(Cqi(value))
        } else {
            Err(PhyError::InvalidCqi(value))
        }
    }

    /// Construct, clamping into 0..=15.
    pub const fn saturating(value: u8) -> Self {
        if value > 15 {
            Cqi(15)
        } else {
            Cqi(value)
        }
    }

    /// The raw value.
    pub const fn value(self) -> u8 {
        self.0
    }

    /// True when the UE reported "out of range" (CQI 0).
    pub const fn is_out_of_range(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Cqi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CQI{}", self.0)
    }
}

/// Which standardised CQI table the UE reports against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CqiTable {
    /// Table 5.2.2.1-2 — up to 64QAM.
    Table1,
    /// Table 5.2.2.1-3 — up to 256QAM.
    Table2,
}

/// One CQI row: `(modulation, code rate × 1024)`; rate 0 marks CQI 0.
type CqiRow = (Modulation, u16);

/// TS 38.214 Table 5.2.2.1-2 (CQI Table 1, max 64QAM), rows 1..=15.
const CQI_TABLE_1: [CqiRow; 15] = [
    (Modulation::Qpsk, 78),
    (Modulation::Qpsk, 120),
    (Modulation::Qpsk, 193),
    (Modulation::Qpsk, 308),
    (Modulation::Qpsk, 449),
    (Modulation::Qpsk, 602),
    (Modulation::Qam16, 378),
    (Modulation::Qam16, 490),
    (Modulation::Qam16, 616),
    (Modulation::Qam64, 466),
    (Modulation::Qam64, 567),
    (Modulation::Qam64, 666),
    (Modulation::Qam64, 772),
    (Modulation::Qam64, 873),
    (Modulation::Qam64, 948),
];

/// TS 38.214 Table 5.2.2.1-3 (CQI Table 2, max 256QAM), rows 1..=15.
const CQI_TABLE_2: [CqiRow; 15] = [
    (Modulation::Qpsk, 78),
    (Modulation::Qpsk, 193),
    (Modulation::Qpsk, 449),
    (Modulation::Qam16, 378),
    (Modulation::Qam16, 490),
    (Modulation::Qam16, 616),
    (Modulation::Qam64, 466),
    (Modulation::Qam64, 567),
    (Modulation::Qam64, 666),
    (Modulation::Qam64, 772),
    (Modulation::Qam64, 873),
    (Modulation::Qam256, 711),
    (Modulation::Qam256, 797),
    (Modulation::Qam256, 885),
    (Modulation::Qam256, 948),
];

impl CqiTable {
    fn row(self, cqi: Cqi) -> Option<CqiRow> {
        if cqi.is_out_of_range() {
            return None;
        }
        let i = cqi.value() as usize - 1;
        match self {
            CqiTable::Table1 => CQI_TABLE_1.get(i).copied(),
            CqiTable::Table2 => CQI_TABLE_2.get(i).copied(),
        }
    }

    /// Modulation the CQI row prescribes; `None` for CQI 0.
    pub fn modulation(self, cqi: Cqi) -> Option<Modulation> {
        self.row(cqi).map(|(m, _)| m)
    }

    /// Code rate of the CQI row; `None` for CQI 0.
    pub fn code_rate(self, cqi: Cqi) -> Option<f64> {
        self.row(cqi).map(|(_, r)| r as f64 / 1024.0)
    }

    /// Spectral efficiency (bits/symbol) of the CQI row; 0.0 for CQI 0.
    pub fn spectral_efficiency(self, cqi: Cqi) -> f64 {
        self.row(cqi)
            .map(|(m, r)| m.bits_per_symbol() as f64 * r as f64 / 1024.0)
            .unwrap_or(0.0)
    }

    /// The matching MCS table used alongside this CQI table.
    pub const fn companion_mcs_table(self) -> McsTable {
        match self {
            CqiTable::Table1 => McsTable::Qam64,
            CqiTable::Table2 => McsTable::Qam256,
        }
    }
}

/// A vendor CQI→MCS mapping policy.
///
/// The baseline maps a CQI to the highest MCS whose spectral efficiency does
/// not exceed the CQI row's, then applies a vendor-specific index offset
/// (aggressive vendors over-shoot the reported CQI and rely on HARQ;
/// conservative vendors back off to protect BLER). The paper's finding that
/// "for a given CQI value, different vendors may map it to different MCS
/// indices" is modelled by instantiating different offsets per operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CqiToMcsPolicy {
    /// CQI table the UE reports against.
    pub cqi_table: CqiTable,
    /// MCS table the gNB schedules from (must not signal a higher
    /// modulation than the operator's configured maximum).
    pub mcs_table: McsTable,
    /// Signed index offset applied after the SE match; positive =
    /// aggressive, negative = conservative.
    pub index_offset: i8,
}

impl CqiToMcsPolicy {
    /// A neutral policy: SE-matched mapping with no offset.
    pub const fn neutral(cqi_table: CqiTable) -> Self {
        CqiToMcsPolicy {
            cqi_table,
            mcs_table: cqi_table.companion_mcs_table(),
            index_offset: 0,
        }
    }

    /// Map a reported CQI to the scheduled MCS index.
    ///
    /// CQI 0 (out of range) maps to MCS 0 — the gNB still needs a scheme for
    /// control-heavy fallback transmissions.
    pub fn map(&self, cqi: Cqi) -> McsIndex {
        if cqi.is_out_of_range() {
            return McsIndex(0);
        }
        let target_se = self.cqi_table.spectral_efficiency(cqi);
        let base = self.mcs_table.highest_index_at_or_below(target_se);
        let shifted = (base.0 as i16 + self.index_offset as i16)
            .clamp(0, self.mcs_table.max_index().0 as i16);
        McsIndex(shifted as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_range_enforced() {
        assert!(Cqi::new(15).is_ok());
        assert!(Cqi::new(16).is_err());
        assert_eq!(Cqi::saturating(99), Cqi::MAX);
        assert!(Cqi::new(0).unwrap().is_out_of_range());
    }

    #[test]
    fn table2_tops_out_at_256qam_rate_948() {
        assert_eq!(CqiTable::Table2.modulation(Cqi::MAX), Some(Modulation::Qam256));
        assert!((CqiTable::Table2.code_rate(Cqi::MAX).unwrap() - 948.0 / 1024.0).abs() < 1e-12);
        // CQI 12 is the first 256QAM row — the paper's "good channel" filter
        // (CQI ≥ 12) is exactly the 256QAM region of Table 2.
        assert_eq!(CqiTable::Table2.modulation(Cqi::new(12).unwrap()), Some(Modulation::Qam256));
        assert_eq!(CqiTable::Table2.modulation(Cqi::new(11).unwrap()), Some(Modulation::Qam64));
    }

    #[test]
    fn table1_tops_out_at_64qam() {
        assert_eq!(CqiTable::Table1.modulation(Cqi::MAX), Some(Modulation::Qam64));
    }

    #[test]
    fn spectral_efficiency_monotone_in_cqi() {
        for table in [CqiTable::Table1, CqiTable::Table2] {
            let mut prev = 0.0;
            for c in 1..=15 {
                let se = table.spectral_efficiency(Cqi::new(c).unwrap());
                assert!(se > prev, "{table:?} CQI {c}");
                prev = se;
            }
        }
    }

    #[test]
    fn neutral_policy_never_exceeds_cqi_se() {
        for table in [CqiTable::Table1, CqiTable::Table2] {
            let policy = CqiToMcsPolicy::neutral(table);
            for c in 1..=15u8 {
                let cqi = Cqi::new(c).unwrap();
                let mcs = policy.map(cqi);
                let mcs_se = policy.mcs_table.spectral_efficiency(mcs).unwrap();
                let cqi_se = table.spectral_efficiency(cqi);
                assert!(
                    mcs_se <= cqi_se + 1e-12 || mcs == McsIndex(0),
                    "{table:?} CQI {c}: MCS SE {mcs_se} > CQI SE {cqi_se}"
                );
            }
        }
    }

    #[test]
    fn vendor_offsets_shift_the_mapping() {
        let neutral = CqiToMcsPolicy::neutral(CqiTable::Table2);
        let aggressive = CqiToMcsPolicy { index_offset: 2, ..neutral };
        let conservative = CqiToMcsPolicy { index_offset: -2, ..neutral };
        let cqi = Cqi::new(9).unwrap();
        assert_eq!(aggressive.map(cqi).0, neutral.map(cqi).0 + 2);
        assert_eq!(conservative.map(cqi).0, neutral.map(cqi).0 - 2);
        // Offsets clamp at the table edges.
        assert_eq!(aggressive.map(Cqi::MAX), McsTable::Qam256.max_index());
        assert_eq!(conservative.map(Cqi::new(1).unwrap()), McsIndex(0));
    }

    #[test]
    fn policy_can_cap_modulation_below_cqi_table() {
        // O_Sp's 100 MHz channel reports CQI on Table 2 but schedules from
        // the 64QAM MCS table (the paper's §4.1 max-modulation finding).
        let capped = CqiToMcsPolicy {
            cqi_table: CqiTable::Table2,
            mcs_table: McsTable::Qam64,
            index_offset: 0,
        };
        let mcs = capped.map(Cqi::MAX);
        assert_eq!(capped.mcs_table.modulation(mcs).unwrap(), Modulation::Qam64);
    }
}
