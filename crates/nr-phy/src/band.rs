//! NR operating bands and the global frequency raster (TS 38.104 §5.2, §5.4.2).
//!
//! The catalogue below covers every band that appears in the paper: the
//! mid-bands n25/n41/n77/n78 of Tables 2–3, the low-band n71 (T-Mobile's CA
//! partner), the FR2 band n261 used for the §7 mmWave comparison, plus the
//! LTE anchor bands used by the NSA deployments.

use crate::error::PhyError;
use serde::{Deserialize, Serialize};

/// 3GPP frequency ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrequencyRange {
    /// FR1: 410 MHz – 7.125 GHz (low- and mid-bands).
    Fr1,
    /// FR2: 24.25 – 52.6 GHz (mmWave).
    Fr2,
}

/// Duplexing arrangement of a band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DuplexMode {
    /// Time-division duplexing: DL and UL share one carrier, split in time
    /// by the TDD-UL-DL pattern (all n41/n77/n78 channels in the study).
    Tdd,
    /// Frequency-division duplexing: paired DL/UL carriers (T-Mobile n25).
    Fdd,
}

impl std::fmt::Display for DuplexMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DuplexMode::Tdd => write!(f, "TDD"),
            DuplexMode::Fdd => write!(f, "FDD"),
        }
    }
}

/// NR operating bands relevant to the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum Band {
    /// n25, 1850–1915 MHz UL / 1930–1995 MHz DL, FDD (T-Mobile mid-band).
    N25,
    /// n41, 2496–2690 MHz, TDD (T-Mobile's primary mid-band).
    N41,
    /// n71, 617–652 MHz DL, FDD low-band (T-Mobile CA partner).
    N71,
    /// n77, 3300–4200 MHz, TDD — the full C-band (AT&T, Verizon).
    N77,
    /// n78, 3300–3800 MHz, TDD — sub-segment of n77 (all EU operators).
    N78,
    /// n261, 27.5–28.35 GHz, TDD mmWave (Verizon's FR2 deployment).
    N261,
}

impl Band {
    /// The 3GPP band label, e.g. `"n78"`.
    pub const fn label(self) -> &'static str {
        match self {
            Band::N25 => "n25",
            Band::N41 => "n41",
            Band::N71 => "n71",
            Band::N77 => "n77",
            Band::N78 => "n78",
            Band::N261 => "n261",
        }
    }

    /// Frequency range classification.
    pub const fn frequency_range(self) -> FrequencyRange {
        match self {
            Band::N261 => FrequencyRange::Fr2,
            _ => FrequencyRange::Fr1,
        }
    }

    /// Duplexing mode of the band.
    pub const fn duplex_mode(self) -> DuplexMode {
        match self {
            Band::N25 | Band::N71 => DuplexMode::Fdd,
            Band::N41 | Band::N77 | Band::N78 | Band::N261 => DuplexMode::Tdd,
        }
    }

    /// Downlink frequency span of the band in MHz (low, high).
    pub const fn dl_range_mhz(self) -> (u32, u32) {
        match self {
            Band::N25 => (1930, 1995),
            Band::N41 => (2496, 2690),
            Band::N71 => (617, 652),
            Band::N77 => (3300, 4200),
            Band::N78 => (3300, 3800),
            Band::N261 => (27_500, 28_350),
        }
    }

    /// Whether this band sits in the 1–6 GHz "mid-band" the paper studies.
    pub const fn is_mid_band(self) -> bool {
        let (lo, _) = self.dl_range_mhz();
        lo >= 1000 && lo < 6000
    }

    /// Whether a DL centre frequency (MHz) is legal for this band.
    pub fn contains_dl_mhz(self, freq_mhz: f64) -> bool {
        let (lo, hi) = self.dl_range_mhz();
        freq_mhz >= lo as f64 && freq_mhz <= hi as f64
    }
}

impl std::fmt::Display for Band {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An NR Absolute Radio Frequency Channel Number on the global frequency
/// raster of TS 38.104 Table 5.4.2.1-1.
///
/// The raster is piecewise linear:
///
/// | Range (MHz)   | ΔF_global | F_REF-Offs (MHz) | N_REF-Offs | N_REF range        |
/// |---------------|-----------|------------------|------------|--------------------|
/// | 0 – 3000      | 5 kHz     | 0                | 0          | 0 – 599999         |
/// | 3000 – 24250  | 15 kHz    | 3000             | 600000     | 600000 – 2016666   |
/// | 24250 – 100000| 60 kHz    | 24250.08         | 2016667    | 2016667 – 3279165  |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NrArfcn(pub u32);

impl NrArfcn {
    /// Largest valid NR-ARFCN on the global raster.
    pub const MAX: u32 = 3_279_165;

    /// Convert the channel number to its reference frequency in kHz.
    pub fn to_khz(self) -> Result<u64, PhyError> {
        let n = self.0;
        if n < 600_000 {
            Ok(5 * n as u64)
        } else if n < 2_016_667 {
            Ok(3_000_000 + 15 * (n as u64 - 600_000))
        } else if n <= Self::MAX {
            // 24250.08 MHz offset: 24_250_080 kHz.
            Ok(24_250_080 + 60 * (n as u64 - 2_016_667))
        } else {
            Err(PhyError::InvalidArfcn(n))
        }
    }

    /// Convert the channel number to its reference frequency in MHz.
    pub fn to_mhz(self) -> Result<f64, PhyError> {
        Ok(self.to_khz()? as f64 / 1000.0)
    }

    /// Build the channel number nearest to a frequency given in kHz.
    ///
    /// Frequencies that do not fall exactly on the raster are rounded to the
    /// nearest raster point (the professional tools the paper uses report
    /// raster-aligned values, so exactness holds in practice).
    pub fn from_khz(khz: u64) -> Result<Self, PhyError> {
        if khz < 3_000_000 {
            Ok(NrArfcn(((khz + 2) / 5) as u32))
        } else if khz < 24_250_080 {
            let steps = (khz - 3_000_000 + 7) / 15;
            Ok(NrArfcn(600_000 + steps as u32))
        } else if khz <= 100_000_000 {
            let steps = (khz - 24_250_080 + 30) / 60;
            let n = 2_016_667 + steps as u32;
            if n > Self::MAX {
                return Err(PhyError::InvalidFrequency(khz));
            }
            Ok(NrArfcn(n))
        } else {
            Err(PhyError::InvalidFrequency(khz))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_catalogue_matches_tables_2_and_3() {
        // Table 2: all EU operators use n78, TDD, mid-band.
        assert_eq!(Band::N78.duplex_mode(), DuplexMode::Tdd);
        assert!(Band::N78.is_mid_band());
        assert_eq!(Band::N78.dl_range_mhz(), (3300, 3800));
        // Table 3: T-Mobile n25 is FDD, n41 TDD; AT&T/Verizon C-band n77.
        assert_eq!(Band::N25.duplex_mode(), DuplexMode::Fdd);
        assert_eq!(Band::N41.duplex_mode(), DuplexMode::Tdd);
        assert!(Band::N77.contains_dl_mhz(3700.0));
        // n78 is a sub-segment of n77 (the paper's C-band discussion).
        let (lo78, hi78) = Band::N78.dl_range_mhz();
        let (lo77, hi77) = Band::N77.dl_range_mhz();
        assert!(lo77 <= lo78 && hi78 <= hi77);
    }

    #[test]
    fn mmwave_band_is_fr2_not_midband() {
        assert_eq!(Band::N261.frequency_range(), FrequencyRange::Fr2);
        assert!(!Band::N261.is_mid_band());
    }

    #[test]
    fn arfcn_conversion_known_points() {
        // 3 GHz boundary: N=600000 ↔ 3000 MHz.
        assert_eq!(NrArfcn(600_000).to_khz().unwrap(), 3_000_000);
        // A typical n78 C-band point: 3 750 MHz = 600000 + 50_000 steps.
        assert_eq!(NrArfcn(650_000).to_mhz().unwrap(), 3750.0);
        // Below 3 GHz raster: n41 centre 2 593 MHz = ARFCN 518600.
        assert_eq!(NrArfcn(518_600).to_khz().unwrap(), 2_593_000);
        // FR2 start.
        assert_eq!(NrArfcn(2_016_667).to_khz().unwrap(), 24_250_080);
    }

    #[test]
    fn arfcn_roundtrip_across_segments() {
        for n in [0u32, 123_456, 599_999, 600_000, 650_000, 2_016_666, 2_016_667, 3_279_165] {
            let khz = NrArfcn(n).to_khz().unwrap();
            assert_eq!(NrArfcn::from_khz(khz).unwrap(), NrArfcn(n), "n={n}");
        }
    }

    #[test]
    fn invalid_arfcn_rejected() {
        assert!(NrArfcn(NrArfcn::MAX + 1).to_khz().is_err());
        assert!(NrArfcn::from_khz(100_000_001).is_err());
    }
}
