//! Channel bandwidth → maximum transmission bandwidth configuration N_RB
//! (TS 38.101-1 Table 5.3.2-1 for FR1, TS 38.101-2 Table 5.3.2-1 for FR2).
//!
//! N_RB is the quantity in row 7 ("Max. Bandwidth (N_RBs)") of the paper's
//! Tables 2–3 and the y-axis of its Figure 4: 273 RBs at 100 MHz/30 kHz,
//! 245 at 90 MHz, 217 at 80 MHz, 162 at 60 MHz, 106 at 40 MHz, and so on.
//! The difference between the channel bandwidth and `N_RB · 12 · SCS` is the
//! guard band at the channel edges (paper Fig. 20).

use crate::error::PhyError;
use crate::numerology::Numerology;
use serde::{Deserialize, Serialize};

/// A channel bandwidth, stored in kHz so 5 MHz and fractional-MHz aggregate
/// labels stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelBandwidth(u32);

impl ChannelBandwidth {
    /// Construct from MHz.
    pub const fn from_mhz(mhz: u32) -> Self {
        ChannelBandwidth(mhz * 1000)
    }

    /// Construct from kHz.
    pub const fn from_khz(khz: u32) -> Self {
        ChannelBandwidth(khz)
    }

    /// Bandwidth in kHz.
    pub const fn khz(self) -> u32 {
        self.0
    }

    /// Bandwidth in MHz (rounded down; all study channels are integral MHz).
    pub const fn mhz(self) -> u32 {
        self.0 / 1000
    }

    /// Bandwidth in Hz as a float, for link-budget arithmetic.
    pub fn hz(self) -> f64 {
        self.0 as f64 * 1e3
    }
}

impl std::fmt::Display for ChannelBandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{} MHz", self.0 / 1000)
        } else {
            write!(f, "{} kHz", self.0)
        }
    }
}

/// FR1 N_RB table (TS 38.101-1 Table 5.3.2-1). Entries are
/// `(bandwidth MHz, N_RB @15 kHz, N_RB @30 kHz, N_RB @60 kHz)`; `0` marks a
/// combination the specification does not define.
const FR1_NRB: &[(u32, u16, u16, u16)] = &[
    (5, 25, 11, 0),
    (10, 52, 24, 11),
    (15, 79, 38, 18),
    (20, 106, 51, 24),
    (25, 133, 65, 31),
    (30, 160, 78, 38),
    (35, 188, 92, 44),
    (40, 216, 106, 51),
    (45, 242, 119, 58),
    (50, 270, 133, 65),
    (60, 0, 162, 79),
    (70, 0, 189, 93),
    (80, 0, 217, 107),
    (90, 0, 245, 121),
    (100, 0, 273, 135),
];

/// FR2 N_RB table (TS 38.101-2 Table 5.3.2-1):
/// `(bandwidth MHz, N_RB @60 kHz, N_RB @120 kHz)`.
const FR2_NRB: &[(u32, u16, u16)] = &[(50, 66, 32), (100, 132, 66), (200, 264, 132), (400, 0, 264)];

/// Look up the maximum transmission bandwidth configuration N_RB for a
/// channel bandwidth and numerology.
///
/// ```
/// use nr_phy::{bandwidth::{max_transmission_bandwidth, ChannelBandwidth}, Numerology};
/// // The paper's Table 2: a 90 MHz / 30 kHz channel carries 245 RBs.
/// let n_rb = max_transmission_bandwidth(ChannelBandwidth::from_mhz(90), Numerology::Mu1).unwrap();
/// assert_eq!(n_rb, 245);
/// ```
pub fn max_transmission_bandwidth(
    bw: ChannelBandwidth,
    numerology: Numerology,
) -> Result<u16, PhyError> {
    let err = || PhyError::UnsupportedBandwidth {
        bandwidth_khz: bw.khz(),
        scs_khz: numerology.scs_khz(),
    };
    let mhz = if bw.khz().is_multiple_of(1000) { bw.mhz() } else { return Err(err()) };
    match numerology {
        Numerology::Mu0 | Numerology::Mu1 => {
            let row = FR1_NRB.iter().find(|r| r.0 == mhz).ok_or_else(err)?;
            let n = if numerology == Numerology::Mu0 { row.1 } else { row.2 };
            if n == 0 {
                Err(err())
            } else {
                Ok(n)
            }
        }
        Numerology::Mu2 => {
            // 60 kHz exists in both FR1 and FR2; prefer the FR1 table for
            // bandwidths it defines, fall back to FR2 for 200 MHz.
            if let Some(row) = FR1_NRB.iter().find(|r| r.0 == mhz) {
                if row.3 != 0 {
                    return Ok(row.3);
                }
            }
            let row = FR2_NRB.iter().find(|r| r.0 == mhz).ok_or_else(err)?;
            if row.1 == 0 {
                Err(err())
            } else {
                Ok(row.1)
            }
        }
        Numerology::Mu3 => {
            let row = FR2_NRB.iter().find(|r| r.0 == mhz).ok_or_else(err)?;
            if row.2 == 0 {
                Err(err())
            } else {
                Ok(row.2)
            }
        }
        Numerology::Mu4 => Err(err()),
    }
}

/// Occupied transmission bandwidth in kHz: `N_RB · 12 · SCS`.
pub fn occupied_bandwidth_khz(n_rb: u16, numerology: Numerology) -> u32 {
    n_rb as u32 * 12 * numerology.scs_khz()
}

/// Total guard bandwidth in kHz (both edges combined): channel bandwidth
/// minus the occupied transmission bandwidth (paper Fig. 20).
pub fn guard_bandwidth_khz(bw: ChannelBandwidth, numerology: Numerology) -> Result<u32, PhyError> {
    let n_rb = max_transmission_bandwidth(bw, numerology)?;
    Ok(bw.khz() - occupied_bandwidth_khz(n_rb, numerology))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact values behind the paper's Tables 2–3 row 7 and Figure 4.
    #[test]
    fn paper_nrb_values() {
        let cases: &[(u32, u16)] = &[(40, 106), (60, 162), (80, 217), (90, 245), (100, 273)];
        for &(mhz, expect) in cases {
            let n =
                max_transmission_bandwidth(ChannelBandwidth::from_mhz(mhz), Numerology::Mu1)
                    .unwrap();
            assert_eq!(n, expect, "{mhz} MHz @ 30 kHz");
        }
        // T-Mobile n25 channels at 15 kHz SCS: 20 MHz → 106 RB, 5 MHz → 25 RB.
        assert_eq!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(20), Numerology::Mu0).unwrap(),
            106
        );
        assert_eq!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(5), Numerology::Mu0).unwrap(),
            25
        );
        // The same channels at 30 kHz would be 51 + 11 RBs — the values the
        // paper's Table 3 prints.
        assert_eq!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(20), Numerology::Mu1).unwrap(),
            51
        );
        assert_eq!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(5), Numerology::Mu1).unwrap(),
            11
        );
    }

    #[test]
    fn fr2_table() {
        assert_eq!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(100), Numerology::Mu3).unwrap(),
            66
        );
        assert_eq!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(400), Numerology::Mu3).unwrap(),
            264
        );
        assert!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(400), Numerology::Mu2).is_err()
        );
    }

    #[test]
    fn undefined_combinations_error() {
        // 60 MHz is not defined at 15 kHz SCS.
        assert!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(60), Numerology::Mu0).is_err()
        );
        // 7 MHz is not a 3GPP channel bandwidth at all.
        assert!(
            max_transmission_bandwidth(ChannelBandwidth::from_mhz(7), Numerology::Mu1).is_err()
        );
    }

    #[test]
    fn guard_band_is_positive_and_sane() {
        // Occupied bandwidth must fit inside the channel with a non-trivial
        // guard at every defined FR1/30 kHz point.
        for &(mhz, _, n30, _) in FR1_NRB {
            if n30 == 0 {
                continue;
            }
            let bw = ChannelBandwidth::from_mhz(mhz);
            let guard = guard_bandwidth_khz(bw, Numerology::Mu1).unwrap();
            assert!(guard > 0, "{mhz} MHz");
            // Narrow channels spend proportionally more on guards (5 MHz at
            // 30 kHz SCS wastes ~21%); wide channels stay under 5%.
            assert!(guard < bw.khz() / 4, "guard should be <25% at {mhz} MHz");
            if mhz >= 40 {
                assert!(guard < bw.khz() / 20, "guard should be <5% at {mhz} MHz");
            }
        }
    }
}
