//! Modulation and coding scheme tables (TS 38.214 §5.1.3.1).
//!
//! The MCS index signalled in each DCI selects a (modulation order, code
//! rate) pair from one of three standardised tables. Which *table* applies
//! is itself signalled: DCI format 1_1 with `mcs-Table = qam256` selects
//! Table 2 (256QAM), DCI format 1_0 falls back to Table 1 (64QAM) — the
//! mechanism behind the paper's observation (§3.1) that operators capping
//! modulation at 64QAM (O_Sp's 100 MHz channel) leave spectral efficiency
//! on the table.
//!
//! Code rates are stored as `R × 1024` exactly as printed in the spec so
//! table entries can be compared bit-for-bit against TS 38.214.

use crate::error::PhyError;
use serde::{Deserialize, Serialize};

/// Modulation orders used on the NR data channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Modulation {
    /// QPSK, 2 bits/symbol.
    Qpsk,
    /// 16QAM, 4 bits/symbol.
    Qam16,
    /// 64QAM, 6 bits/symbol.
    Qam64,
    /// 256QAM, 8 bits/symbol.
    Qam256,
}

impl Modulation {
    /// Bits per modulation symbol (Q_m).
    pub const fn bits_per_symbol(self) -> u8 {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
            Modulation::Qam256 => 8,
        }
    }

    /// Inverse of [`Self::bits_per_symbol`].
    pub const fn from_bits(q: u8) -> Option<Self> {
        match q {
            2 => Some(Modulation::Qpsk),
            4 => Some(Modulation::Qam16),
            6 => Some(Modulation::Qam64),
            8 => Some(Modulation::Qam256),
            _ => None,
        }
    }
}

impl std::fmt::Display for Modulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Modulation::Qpsk => write!(f, "QPSK"),
            Modulation::Qam16 => write!(f, "16QAM"),
            Modulation::Qam64 => write!(f, "64QAM"),
            Modulation::Qam256 => write!(f, "256QAM"),
        }
    }
}

/// An MCS index into one of the three tables (0..=28 for Tables 1/3,
/// 0..=27 for Table 2; 29+ are reserved for retransmissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct McsIndex(pub u8);

/// Which standardised MCS table is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum McsTable {
    /// Table 5.1.3.1-1 — maximum 64QAM (`qam64`).
    Qam64,
    /// Table 5.1.3.1-2 — maximum 256QAM (`qam256`).
    Qam256,
    /// Table 5.1.3.1-3 — low spectral efficiency (`qam64LowSE`).
    Qam64LowSe,
}

/// One row of an MCS table: `(Q_m, R × 1024 × 10)`.
///
/// The ×10 keeps Table 2's half-step entries (682.5, 916.5) exact in
/// integer form.
type McsRow = (u8, u16);

/// TS 38.214 Table 5.1.3.1-1 (qam64).
const TABLE_QAM64: [McsRow; 29] = [
    (2, 1200),
    (2, 1570),
    (2, 1930),
    (2, 2510),
    (2, 3080),
    (2, 3790),
    (2, 4490),
    (2, 5260),
    (2, 6020),
    (2, 6790),
    (4, 3400),
    (4, 3780),
    (4, 4340),
    (4, 4900),
    (4, 5530),
    (4, 6160),
    (4, 6580),
    (6, 4380),
    (6, 4660),
    (6, 5170),
    (6, 5670),
    (6, 6160),
    (6, 6660),
    (6, 7190),
    (6, 7720),
    (6, 8220),
    (6, 8730),
    (6, 9100),
    (6, 9480),
];

/// TS 38.214 Table 5.1.3.1-2 (qam256).
const TABLE_QAM256: [McsRow; 28] = [
    (2, 1200),
    (2, 1930),
    (2, 3080),
    (2, 4490),
    (2, 6020),
    (4, 3780),
    (4, 4340),
    (4, 4900),
    (4, 5530),
    (4, 6160),
    (4, 6580),
    (6, 4660),
    (6, 5170),
    (6, 5670),
    (6, 6160),
    (6, 6660),
    (6, 7190),
    (6, 7720),
    (6, 8220),
    (6, 8730),
    (8, 6825),
    (8, 7110),
    (8, 7540),
    (8, 7970),
    (8, 8410),
    (8, 8850),
    (8, 9165),
    (8, 9480),
];

/// TS 38.214 Table 5.1.3.1-3 (qam64LowSE).
const TABLE_QAM64_LOW_SE: [McsRow; 29] = [
    (2, 300),
    (2, 400),
    (2, 500),
    (2, 640),
    (2, 780),
    (2, 990),
    (2, 1200),
    (2, 1570),
    (2, 1930),
    (2, 2510),
    (2, 3080),
    (2, 3790),
    (2, 4490),
    (2, 5260),
    (2, 6020),
    (4, 3400),
    (4, 3780),
    (4, 4340),
    (4, 4900),
    (4, 5530),
    (4, 6160),
    (6, 4380),
    (6, 4660),
    (6, 5170),
    (6, 5670),
    (6, 6160),
    (6, 6660),
    (6, 7190),
    (6, 7720),
];

impl McsTable {
    /// Number of defined (non-reserved) MCS indices.
    pub const fn len(self) -> u8 {
        match self {
            McsTable::Qam64 => 29,
            McsTable::Qam256 => 28,
            McsTable::Qam64LowSe => 29,
        }
    }

    /// Always false — the tables are never empty; present for clippy's sake.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Highest defined MCS index.
    pub const fn max_index(self) -> McsIndex {
        McsIndex(self.len() - 1)
    }

    /// Maximum modulation order the table can signal.
    pub const fn max_modulation(self) -> Modulation {
        match self {
            McsTable::Qam64 | McsTable::Qam64LowSe => Modulation::Qam64,
            McsTable::Qam256 => Modulation::Qam256,
        }
    }

    fn row(self, index: McsIndex) -> Result<McsRow, PhyError> {
        let i = index.0 as usize;
        let row = match self {
            McsTable::Qam64 => TABLE_QAM64.get(i),
            McsTable::Qam256 => TABLE_QAM256.get(i),
            McsTable::Qam64LowSe => TABLE_QAM64_LOW_SE.get(i),
        };
        row.copied().ok_or(PhyError::InvalidMcsIndex { index: index.0, table_len: self.len() })
    }

    /// Modulation order for an MCS index.
    pub fn modulation(self, index: McsIndex) -> Result<Modulation, PhyError> {
        let (q, _) = self.row(index)?;
        Ok(Modulation::from_bits(q).expect("table rows hold valid Q_m"))
    }

    /// Target code rate R (0 < R < 1) for an MCS index.
    pub fn code_rate(self, index: McsIndex) -> Result<f64, PhyError> {
        let (_, r10) = self.row(index)?;
        Ok(r10 as f64 / 10.0 / 1024.0)
    }

    /// Spectral efficiency in information bits per modulation symbol:
    /// `Q_m · R`.
    pub fn spectral_efficiency(self, index: McsIndex) -> Result<f64, PhyError> {
        let (q, r10) = self.row(index)?;
        Ok(q as f64 * r10 as f64 / 10.0 / 1024.0)
    }

    /// The highest MCS index whose spectral efficiency does not exceed
    /// `target_se`, or index 0 if even that exceeds it.
    ///
    /// This is the primitive from which the vendor CQI→MCS mappings in
    /// [`crate::cqi`] are built. The scan covers the whole table because
    /// the standardised tables are *not* perfectly monotone in SE: e.g.
    /// Table 1 dips from 2.5703 (index 16, 16QAM) to 2.5664 (index 17,
    /// 64QAM) at the modulation transition.
    pub fn highest_index_at_or_below(self, target_se: f64) -> McsIndex {
        let mut best = McsIndex(0);
        for i in 0..self.len() {
            let idx = McsIndex(i);
            let se = self.spectral_efficiency(idx).expect("index in range");
            if se <= target_se {
                best = idx;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lengths() {
        assert_eq!(McsTable::Qam64.len(), 29);
        assert_eq!(McsTable::Qam256.len(), 28);
        assert_eq!(McsTable::Qam64LowSe.len(), 29);
    }

    #[test]
    fn spot_check_against_spec() {
        // Table 1, index 28: 64QAM, R = 948/1024.
        assert_eq!(McsTable::Qam64.modulation(McsIndex(28)).unwrap(), Modulation::Qam64);
        assert!((McsTable::Qam64.code_rate(McsIndex(28)).unwrap() - 948.0 / 1024.0).abs() < 1e-12);
        // Table 2, index 20: 256QAM, R = 682.5/1024.
        assert_eq!(McsTable::Qam256.modulation(McsIndex(20)).unwrap(), Modulation::Qam256);
        assert!(
            (McsTable::Qam256.code_rate(McsIndex(20)).unwrap() - 682.5 / 1024.0).abs() < 1e-12
        );
        // Table 2, index 26: 256QAM, R = 916.5/1024, SE = 7.1602 (spec: 7.1602).
        let se = McsTable::Qam256.spectral_efficiency(McsIndex(26)).unwrap();
        assert!((se - 8.0 * 916.5 / 1024.0).abs() < 1e-12);
        // Low-SE table index 0: QPSK, R = 30/1024.
        assert!(
            (McsTable::Qam64LowSe.code_rate(McsIndex(0)).unwrap() - 30.0 / 1024.0).abs() < 1e-12
        );
    }

    #[test]
    fn spectral_efficiency_is_nearly_monotone() {
        // The spec tables dip by at most ~0.004 bits/symbol at modulation
        // transitions (e.g. Table 1 index 16→17); otherwise SE increases.
        for table in [McsTable::Qam64, McsTable::Qam256, McsTable::Qam64LowSe] {
            let mut prev = 0.0;
            for i in 0..table.len() {
                let se = table.spectral_efficiency(McsIndex(i)).unwrap();
                assert!(se >= prev - 0.005, "{table:?} index {i}: {se} << {prev}");
                prev = se;
            }
        }
    }

    #[test]
    fn the_known_table1_se_dip_exists() {
        // Document the quirk the mapping code must survive.
        let se16 = McsTable::Qam64.spectral_efficiency(McsIndex(16)).unwrap();
        let se17 = McsTable::Qam64.spectral_efficiency(McsIndex(17)).unwrap();
        assert!(se17 < se16);
    }

    #[test]
    fn out_of_range_index_errors() {
        assert!(McsTable::Qam64.modulation(McsIndex(29)).is_err());
        assert!(McsTable::Qam256.code_rate(McsIndex(28)).is_err());
    }

    #[test]
    fn highest_index_at_or_below_brackets() {
        for table in [McsTable::Qam64, McsTable::Qam256] {
            for target in [0.1, 1.0, 2.5, 4.0, 5.5, 7.0, 10.0] {
                let idx = table.highest_index_at_or_below(target);
                let se = table.spectral_efficiency(idx).unwrap();
                // Chosen index does not exceed the target unless it's index 0.
                assert!(se <= target || idx == McsIndex(0));
                // No higher index would also fit under the target.
                for j in idx.0 + 1..table.len() {
                    let other = table.spectral_efficiency(McsIndex(j)).unwrap();
                    assert!(other > target, "{table:?} target {target}: index {j} also fits");
                }
            }
        }
    }

    #[test]
    fn max_modulation_per_table() {
        assert_eq!(McsTable::Qam64.max_modulation(), Modulation::Qam64);
        assert_eq!(McsTable::Qam256.max_modulation(), Modulation::Qam256);
    }
}
