//! NR numerologies (TS 38.211 §4.2–4.3): sub-carrier spacing and the slot /
//! symbol timing grid.
//!
//! All 5G mid-band channels studied by the paper use 30 kHz SCS (µ = 1)
//! except T-Mobile's n25 FDD channels (15 kHz, µ = 0); mmWave uses 120 kHz
//! (µ = 3). The slot duration at µ = 1 — 0.5 ms — is the finest time scale
//! of the paper's analysis ("slot-level, the finest time scale possible").

use serde::{Deserialize, Serialize};

/// An NR numerology µ ∈ {0, 1, 2, 3, 4}; SCS = 15 kHz · 2^µ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Numerology {
    /// µ = 0, 15 kHz SCS (LTE-compatible; T-Mobile n25 FDD).
    Mu0,
    /// µ = 1, 30 kHz SCS (every mid-band TDD channel in the study).
    Mu1,
    /// µ = 2, 60 kHz SCS.
    Mu2,
    /// µ = 3, 120 kHz SCS (FR2 / mmWave data channels).
    Mu3,
    /// µ = 4, 240 kHz SCS (FR2 SSB only).
    Mu4,
}

impl Numerology {
    /// The numerology index µ.
    pub const fn mu(self) -> u8 {
        match self {
            Numerology::Mu0 => 0,
            Numerology::Mu1 => 1,
            Numerology::Mu2 => 2,
            Numerology::Mu3 => 3,
            Numerology::Mu4 => 4,
        }
    }

    /// Construct from the index µ; `None` when µ > 4.
    pub const fn from_mu(mu: u8) -> Option<Self> {
        match mu {
            0 => Some(Numerology::Mu0),
            1 => Some(Numerology::Mu1),
            2 => Some(Numerology::Mu2),
            3 => Some(Numerology::Mu3),
            4 => Some(Numerology::Mu4),
            _ => None,
        }
    }

    /// Construct from a sub-carrier spacing in kHz; `None` if the SCS is not
    /// one of {15, 30, 60, 120, 240}.
    pub const fn from_scs_khz(scs: u32) -> Option<Self> {
        match scs {
            15 => Some(Numerology::Mu0),
            30 => Some(Numerology::Mu1),
            60 => Some(Numerology::Mu2),
            120 => Some(Numerology::Mu3),
            240 => Some(Numerology::Mu4),
            _ => None,
        }
    }

    /// Sub-carrier spacing in kHz: 15 · 2^µ.
    pub const fn scs_khz(self) -> u32 {
        15 << self.mu()
    }

    /// Slots per subframe (1 ms): 2^µ.
    pub const fn slots_per_subframe(self) -> u32 {
        1 << self.mu()
    }

    /// Slots per 10 ms radio frame: 10 · 2^µ.
    pub const fn slots_per_frame(self) -> u32 {
        10 * self.slots_per_subframe()
    }

    /// Slot duration in milliseconds: 1 / 2^µ.
    pub fn slot_duration_ms(self) -> f64 {
        1.0 / self.slots_per_subframe() as f64
    }

    /// Slot duration in microseconds.
    pub fn slot_duration_us(self) -> f64 {
        1000.0 / self.slots_per_subframe() as f64
    }

    /// Average OFDM symbol duration T_s^µ in **seconds**, as used in the
    /// TS 38.306 maximum-data-rate formula: `10^-3 / (14 · 2^µ)`.
    pub fn avg_symbol_duration_s(self) -> f64 {
        1e-3 / (14.0 * self.slots_per_subframe() as f64)
    }
}

impl std::fmt::Display for Numerology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "µ={} ({} kHz)", self.mu(), self.scs_khz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scs_follows_power_of_two_ladder() {
        assert_eq!(Numerology::Mu0.scs_khz(), 15);
        assert_eq!(Numerology::Mu1.scs_khz(), 30);
        assert_eq!(Numerology::Mu2.scs_khz(), 60);
        assert_eq!(Numerology::Mu3.scs_khz(), 120);
        assert_eq!(Numerology::Mu4.scs_khz(), 240);
    }

    #[test]
    fn midband_slot_is_half_millisecond() {
        // The paper's finest analysis granularity τ = 0.5 ms comes from µ=1.
        assert_eq!(Numerology::Mu1.slot_duration_ms(), 0.5);
        assert_eq!(Numerology::Mu1.slots_per_frame(), 20);
    }

    #[test]
    fn symbol_duration_matches_38306_formula() {
        // For µ=1: 1e-3 / 28 ≈ 35.714 µs.
        let t = Numerology::Mu1.avg_symbol_duration_s();
        assert!((t - 3.5714285714e-5).abs() < 1e-12);
    }

    #[test]
    fn from_scs_roundtrips() {
        for n in [
            Numerology::Mu0,
            Numerology::Mu1,
            Numerology::Mu2,
            Numerology::Mu3,
            Numerology::Mu4,
        ] {
            assert_eq!(Numerology::from_scs_khz(n.scs_khz()), Some(n));
            assert_eq!(Numerology::from_mu(n.mu()), Some(n));
        }
        assert_eq!(Numerology::from_scs_khz(20), None);
        assert_eq!(Numerology::from_mu(5), None);
    }
}
