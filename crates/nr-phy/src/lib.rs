#![warn(missing_docs)]

//! # nr-phy — 3GPP 5G NR physical-layer substrate
//!
//! This crate implements the parts of the 3GPP NR physical layer that the
//! SIGCOMM 2024 paper *"Unveiling the 5G Mid-Band Landscape"* dissects in its
//! measurement analysis:
//!
//! * [`numerology`] — sub-carrier spacings, slot/symbol timing (TS 38.211);
//! * [`band`] — the NR band catalogue (n25/n41/n77/n78/n261, …), duplexing
//!   modes and NR-ARFCN ↔ frequency conversion (TS 38.104 §5.4.2);
//! * [`bandwidth`] — channel bandwidth → maximum transmission bandwidth
//!   `N_RB` tables (TS 38.101-1/-2 §5.3.2), the quantity in row 7 of the
//!   paper's Tables 2 and 3 and in its Figure 4;
//! * [`tdd`] — TDD-UL-DL slot patterns (`DDDSU`, `DDDDDDDSUU`, …) whose
//!   structure drives the paper's §4.2 uplink and §4.3 latency findings;
//! * [`mcs`] — MCS index tables 1/2/3 (TS 38.214 §5.1.3.1) mapping the MCS
//!   indices signalled in DCI to modulation order and code rate;
//! * [`cqi`] — CQI tables (TS 38.214 §5.2.2.1) and the *vendor-defined*
//!   CQI→MCS mapping policies the paper highlights in §3.1;
//! * [`tbs`] — the complete transport-block-size determination procedure of
//!   TS 38.214 §5.1.3.2, which turns per-slot allocations into bytes;
//! * [`resource`] — resource block / resource element accounting;
//! * [`dci`] / [`csi`] — downlink control information and channel-state
//!   feedback records (paper Appendix 10.2, Fig. 21);
//! * [`harq`] — HARQ process state and redundancy-version sequencing;
//! * [`throughput`] — the TS 38.306 §4.1.2 maximum-data-rate formula the
//!   paper evaluates in §3.2;
//! * [`sib`] — the MIB/SIB-derived channel-information extraction procedure
//!   of the paper's Appendix 10.1.
//!
//! Everything here is deterministic, allocation-light, table-driven code —
//! in the spirit of the smoltcp design rules this workspace follows:
//! simplicity and robustness over type tricks, and documentation on every
//! public item.

pub mod band;
pub mod bandwidth;
pub mod cqi;
pub mod csi;
pub mod dci;
pub mod error;
pub mod harq;
pub mod mcs;
pub mod numerology;
pub mod resource;
pub mod sib;
pub mod tbs;
pub mod tdd;
pub mod throughput;

pub use band::{Band, DuplexMode, FrequencyRange, NrArfcn};
pub use bandwidth::{max_transmission_bandwidth, ChannelBandwidth};
pub use cqi::{Cqi, CqiTable, CqiToMcsPolicy};
pub use csi::CsiReport;
pub use dci::{Dci, DciFormat};
pub use error::PhyError;
pub use harq::{HarqProcess, RedundancyVersion};
pub use mcs::{McsIndex, McsTable, Modulation};
pub use numerology::Numerology;
pub use resource::{RbAllocation, SLOT_SYMBOLS};
pub use tbs::transport_block_size;
pub use tdd::{SlotType, SpecialSlotConfig, TddPattern};
pub use throughput::{max_data_rate_mbps, CarrierSpec, LinkDirection};
