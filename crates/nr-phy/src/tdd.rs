//! TDD-UL-DL slot patterns (TS 38.213 §11.1).
//!
//! A TDD carrier cycles through a fixed pattern of downlink (`D`), uplink
//! (`U`) and special/flexible (`S`) slots. The pattern determines:
//!
//! * the DL/UL capacity split — the cause of the paper's §4.2 finding that
//!   UL throughput sits far below DL regardless of channel bandwidth;
//! * the waiting time until the next UL opportunity — the dominant term in
//!   the §4.3 user-plane latency differences (V_It's `DDDDDDDSUU` at
//!   6.93 ms vs V_Ge's `DDDSU` at 2.13 ms);
//! * HARQ round-trip timing.
//!
//! Patterns are written exactly as the paper writes them (`"DDDSU"`), with a
//! configurable symbol split inside the special slot.

use crate::error::PhyError;
use serde::{Deserialize, Serialize};

/// Number of OFDM symbols per slot (normal cyclic prefix).
pub const SYMBOLS_PER_SLOT: u8 = 14;

/// The role of one slot in a TDD pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotType {
    /// Full downlink slot.
    Downlink,
    /// Full uplink slot.
    Uplink,
    /// Special slot: a DL run, a guard period, then a UL run.
    Special,
}

/// Symbol split of a special slot, summing to [`SYMBOLS_PER_SLOT`].
///
/// Commercial mid-band deployments commonly use splits like 10D:2G:2U or
/// 6D:4G:4U.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpecialSlotConfig {
    /// Leading downlink symbols.
    pub dl_symbols: u8,
    /// Guard symbols (switching time).
    pub guard_symbols: u8,
    /// Trailing uplink symbols.
    pub ul_symbols: u8,
}

impl SpecialSlotConfig {
    /// The common 10D:2G:2U split.
    pub const DL_HEAVY: SpecialSlotConfig =
        SpecialSlotConfig { dl_symbols: 10, guard_symbols: 2, ul_symbols: 2 };

    /// A 6D:4G:4U split giving the UL more room.
    pub const BALANCED: SpecialSlotConfig =
        SpecialSlotConfig { dl_symbols: 6, guard_symbols: 4, ul_symbols: 4 };

    /// Validate that the split sums to 14 symbols.
    pub const fn validate(self) -> Result<Self, PhyError> {
        if self.dl_symbols + self.guard_symbols + self.ul_symbols == SYMBOLS_PER_SLOT {
            Ok(self)
        } else {
            Err(PhyError::InvalidSpecialSlot {
                dl: self.dl_symbols,
                guard: self.guard_symbols,
                ul: self.ul_symbols,
            })
        }
    }
}

/// A repeating TDD-UL-DL slot pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TddPattern {
    slots: Vec<SlotType>,
    special: SpecialSlotConfig,
}

impl TddPattern {
    /// Parse a pattern string such as `"DDDSU"` with a special-slot split.
    ///
    /// ```
    /// use nr_phy::tdd::{TddPattern, SpecialSlotConfig};
    /// // Vodafone Germany's pattern from the paper's §4.3.
    /// let p = TddPattern::parse("DDDSU", SpecialSlotConfig::DL_HEAVY).unwrap();
    /// assert_eq!(p.len(), 5);
    /// ```
    pub fn parse(pattern: &str, special: SpecialSlotConfig) -> Result<Self, PhyError> {
        let special = special.validate()?;
        if pattern.is_empty() {
            return Err(PhyError::InvalidTddPattern(pattern.to_string()));
        }
        let mut slots = Vec::with_capacity(pattern.len());
        for ch in pattern.chars() {
            slots.push(match ch {
                'D' => SlotType::Downlink,
                'U' => SlotType::Uplink,
                'S' => SlotType::Special,
                _ => return Err(PhyError::InvalidTddPattern(pattern.to_string())),
            });
        }
        Ok(TddPattern { slots, special })
    }

    /// An all-downlink pseudo-pattern used to model the DL side of FDD
    /// carriers (T-Mobile n25), where the full carrier is always available.
    pub fn fdd_downlink() -> Self {
        TddPattern { slots: vec![SlotType::Downlink], special: SpecialSlotConfig::DL_HEAVY }
    }

    /// An all-uplink pseudo-pattern for the UL leg of FDD carriers.
    pub fn fdd_uplink() -> Self {
        TddPattern { slots: vec![SlotType::Uplink], special: SpecialSlotConfig::DL_HEAVY }
    }

    /// Pattern length in slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pattern is empty (never true for parsed patterns).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The special-slot symbol split.
    pub fn special_config(&self) -> SpecialSlotConfig {
        self.special
    }

    /// Slot type at an absolute slot index (the pattern repeats).
    pub fn slot_type(&self, slot_index: u64) -> SlotType {
        self.slots[(slot_index % self.slots.len() as u64) as usize]
    }

    /// The pattern string, e.g. `"DDDSU"`.
    pub fn pattern_string(&self) -> String {
        self.slots
            .iter()
            .map(|s| match s {
                SlotType::Downlink => 'D',
                SlotType::Uplink => 'U',
                SlotType::Special => 'S',
            })
            .collect()
    }

    /// Downlink symbols available in the slot at `slot_index`.
    pub fn dl_symbols(&self, slot_index: u64) -> u8 {
        match self.slot_type(slot_index) {
            SlotType::Downlink => SYMBOLS_PER_SLOT,
            SlotType::Uplink => 0,
            SlotType::Special => self.special.dl_symbols,
        }
    }

    /// Uplink symbols available in the slot at `slot_index`.
    pub fn ul_symbols(&self, slot_index: u64) -> u8 {
        match self.slot_type(slot_index) {
            SlotType::Downlink => 0,
            SlotType::Uplink => SYMBOLS_PER_SLOT,
            SlotType::Special => self.special.ul_symbols,
        }
    }

    /// Fraction of symbols usable for DL over one pattern period.
    pub fn dl_duty_cycle(&self) -> f64 {
        let total = (self.slots.len() as u32) * SYMBOLS_PER_SLOT as u32;
        let dl: u32 = (0..self.slots.len() as u64).map(|i| self.dl_symbols(i) as u32).sum();
        dl as f64 / total as f64
    }

    /// Fraction of symbols usable for UL over one pattern period.
    pub fn ul_duty_cycle(&self) -> f64 {
        let total = (self.slots.len() as u32) * SYMBOLS_PER_SLOT as u32;
        let ul: u32 = (0..self.slots.len() as u64).map(|i| self.ul_symbols(i) as u32).sum();
        ul as f64 / total as f64
    }

    /// Slots until the next slot (strictly after `slot_index`) carrying any
    /// UL symbols. Returns a value in `1..=len()`.
    pub fn slots_to_next_ul(&self, slot_index: u64) -> u64 {
        for d in 1..=self.slots.len() as u64 {
            if self.ul_symbols(slot_index + d) > 0 {
                return d;
            }
        }
        unreachable!("validated patterns always contain UL symbols")
    }

    /// Slots until the next slot (strictly after `slot_index`) carrying any
    /// DL symbols.
    pub fn slots_to_next_dl(&self, slot_index: u64) -> u64 {
        for d in 1..=self.slots.len() as u64 {
            if self.dl_symbols(slot_index + d) > 0 {
                return d;
            }
        }
        unreachable!("validated patterns always contain DL symbols")
    }

    /// Mean number of slots a packet arriving uniformly in time waits until
    /// the start of the next UL opportunity (the "alignment delay" of the
    /// §4.3 latency model). An arrival during slot `i` waits for the next
    /// UL-carrying slot; averaging over all arrival slots gives the mean.
    pub fn mean_ul_alignment_slots(&self) -> f64 {
        let n = self.slots.len() as u64;
        let total: u64 = (0..n).map(|i| self.slots_to_next_ul(i)).sum();
        total as f64 / n as f64
    }

    /// Mean DL alignment delay in slots (analogous to
    /// [`Self::mean_ul_alignment_slots`]).
    pub fn mean_dl_alignment_slots(&self) -> f64 {
        let n = self.slots.len() as u64;
        let total: u64 = (0..n).map(|i| self.slots_to_next_dl(i)).sum();
        total as f64 / n as f64
    }
}

impl std::fmt::Display for TddPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (S={}D:{}G:{}U)",
            self.pattern_string(),
            self.special.dl_symbols,
            self.special.guard_symbols,
            self.special.ul_symbols
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dddsu() -> TddPattern {
        TddPattern::parse("DDDSU", SpecialSlotConfig::DL_HEAVY).unwrap()
    }

    fn vodafone_italy() -> TddPattern {
        TddPattern::parse("DDDDDDDSUU", SpecialSlotConfig::BALANCED).unwrap()
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TddPattern::parse("", SpecialSlotConfig::DL_HEAVY).is_err());
        assert!(TddPattern::parse("DDXSU", SpecialSlotConfig::DL_HEAVY).is_err());
        let bad = SpecialSlotConfig { dl_symbols: 10, guard_symbols: 2, ul_symbols: 3 };
        assert!(TddPattern::parse("DDDSU", bad).is_err());
    }

    #[test]
    fn roundtrip_pattern_string() {
        assert_eq!(dddsu().pattern_string(), "DDDSU");
        assert_eq!(vodafone_italy().pattern_string(), "DDDDDDDSUU");
    }

    #[test]
    fn duty_cycles_reflect_dl_ul_asymmetry() {
        // DDDSU with 10D:2G:2U: DL = (3·14 + 10)/70 ≈ 0.743,
        // UL = (14 + 2)/70 ≈ 0.229. This asymmetry is the §4.2 finding.
        let p = dddsu();
        assert!((p.dl_duty_cycle() - 52.0 / 70.0).abs() < 1e-12);
        assert!((p.ul_duty_cycle() - 16.0 / 70.0).abs() < 1e-12);
        assert!(p.dl_duty_cycle() > 3.0 * p.ul_duty_cycle());
    }

    #[test]
    fn duty_cycles_sum_below_one_for_tdd() {
        for p in [dddsu(), vodafone_italy()] {
            let sum = p.dl_duty_cycle() + p.ul_duty_cycle();
            assert!(sum < 1.0, "guard symbols must leave a gap, got {sum}");
        }
    }

    #[test]
    fn ul_alignment_much_worse_for_dl_heavy_10slot_pattern() {
        // The §4.3 latency root cause: V_It's DDDDDDDSUU forces longer waits
        // for a UL opportunity than V_Ge's DDDSU.
        let short = dddsu().mean_ul_alignment_slots();
        let long = vodafone_italy().mean_ul_alignment_slots();
        assert!(long > short, "V_It pattern must wait longer: {long} vs {short}");
    }

    #[test]
    fn slots_to_next_ul_wraps_around() {
        let p = dddsu();
        // Slot 4 is U; the next UL-carrying slot after it is the S slot at
        // index 3 of the next period → distance 4.
        assert_eq!(p.slots_to_next_ul(4), 4);
        // From slot 0 (D), the S slot at 3 carries UL symbols → distance 3.
        assert_eq!(p.slots_to_next_ul(0), 3);
    }

    #[test]
    fn fdd_pseudo_patterns() {
        assert_eq!(TddPattern::fdd_downlink().dl_duty_cycle(), 1.0);
        assert_eq!(TddPattern::fdd_uplink().ul_duty_cycle(), 1.0);
    }

    #[test]
    fn slot_type_periodicity() {
        let p = vodafone_italy();
        for i in 0..40u64 {
            assert_eq!(p.slot_type(i), p.slot_type(i + 10));
        }
    }
}
