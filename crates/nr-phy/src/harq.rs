//! HARQ process machinery (TS 38.214 §5.1, TS 38.321 §5.4.2).
//!
//! NR retransmits failed transport blocks with incremental redundancy. Each
//! retransmission raises the PHY user-plane latency by at least one HARQ
//! round trip — the paper's Figure 11 splits latency into BLER = 0 (no
//! retransmission) and BLER > 0 (≥ 1 retransmission) for exactly this
//! reason.

use serde::{Deserialize, Serialize};

/// Redundancy versions, cycled in the standard 0→2→3→1 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RedundancyVersion {
    /// Initial transmission.
    Rv0,
    /// First retransmission.
    Rv2,
    /// Second retransmission.
    Rv3,
    /// Third retransmission.
    Rv1,
}

impl RedundancyVersion {
    /// The standard RV cycling sequence.
    pub const SEQUENCE: [RedundancyVersion; 4] = [
        RedundancyVersion::Rv0,
        RedundancyVersion::Rv2,
        RedundancyVersion::Rv3,
        RedundancyVersion::Rv1,
    ];

    /// RV for the `n`-th transmission attempt (0-based; wraps after 4).
    pub const fn for_attempt(n: u8) -> Self {
        Self::SEQUENCE[(n % 4) as usize]
    }

    /// The 2-bit RV field value.
    pub const fn field_value(self) -> u8 {
        match self {
            RedundancyVersion::Rv0 => 0,
            RedundancyVersion::Rv1 => 1,
            RedundancyVersion::Rv2 => 2,
            RedundancyVersion::Rv3 => 3,
        }
    }
}

/// State of one HARQ process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HarqState {
    /// No transport block in flight.
    Idle,
    /// A transport block awaits ACK/NACK.
    Pending {
        /// Slot index of the most recent (re)transmission.
        tx_slot: u64,
        /// Number of attempts so far (1 = initial transmission done).
        attempts: u8,
        /// Transport block size in bits.
        tbs_bits: u32,
    },
}

/// One HARQ process: tracks attempts and produces the RV sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarqProcess {
    /// Process identifier (0..=15; NR allows 16 DL processes).
    pub id: u8,
    /// Current state.
    pub state: HarqState,
}

/// Default maximum transmission attempts before the block is dropped to RLC
/// (initial + 3 retransmissions).
pub const DEFAULT_MAX_ATTEMPTS: u8 = 4;

impl HarqProcess {
    /// A fresh, idle process.
    pub const fn new(id: u8) -> Self {
        HarqProcess { id, state: HarqState::Idle }
    }

    /// Whether the process can accept a new transport block.
    pub const fn is_idle(&self) -> bool {
        matches!(self.state, HarqState::Idle)
    }

    /// Record an initial transmission.
    pub fn start(&mut self, tx_slot: u64, tbs_bits: u32) {
        debug_assert!(self.is_idle(), "starting a busy HARQ process");
        self.state = HarqState::Pending { tx_slot, attempts: 1, tbs_bits };
    }

    /// Record a retransmission; returns the RV used.
    pub fn retransmit(&mut self, tx_slot: u64) -> RedundancyVersion {
        match &mut self.state {
            HarqState::Pending { tx_slot: t, attempts, .. } => {
                *t = tx_slot;
                *attempts += 1;
                RedundancyVersion::for_attempt(*attempts - 1)
            }
            HarqState::Idle => {
                debug_assert!(false, "retransmitting an idle HARQ process");
                RedundancyVersion::Rv0
            }
        }
    }

    /// Number of attempts so far (0 when idle).
    pub fn attempts(&self) -> u8 {
        match self.state {
            HarqState::Idle => 0,
            HarqState::Pending { attempts, .. } => attempts,
        }
    }

    /// Complete the process (ACK received, or max attempts exhausted).
    pub fn complete(&mut self) {
        self.state = HarqState::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rv_sequence_is_0231() {
        assert_eq!(RedundancyVersion::for_attempt(0).field_value(), 0);
        assert_eq!(RedundancyVersion::for_attempt(1).field_value(), 2);
        assert_eq!(RedundancyVersion::for_attempt(2).field_value(), 3);
        assert_eq!(RedundancyVersion::for_attempt(3).field_value(), 1);
        assert_eq!(RedundancyVersion::for_attempt(4).field_value(), 0);
    }

    #[test]
    fn process_lifecycle() {
        let mut p = HarqProcess::new(0);
        assert!(p.is_idle());
        p.start(100, 8192);
        assert!(!p.is_idle());
        assert_eq!(p.attempts(), 1);
        let rv = p.retransmit(108);
        assert_eq!(rv, RedundancyVersion::Rv2);
        assert_eq!(p.attempts(), 2);
        p.complete();
        assert!(p.is_idle());
        assert_eq!(p.attempts(), 0);
    }
}
