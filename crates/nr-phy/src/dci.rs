//! Downlink control information (TS 38.212 §7.3.1).
//!
//! Each scheduled slot carries a DCI telling the UE which RBs it owns, the
//! MCS index, the MIMO layer count, and HARQ bookkeeping. The paper's
//! Appendix 10.2 (Fig. 21) describes this signalling loop; its §3.1 notes
//! that the DCI *format* selects the MCS table: format 1_1 allows 256QAM,
//! format 1_0 falls back to 64QAM when channel conditions worsen.

use crate::harq::RedundancyVersion;
use crate::mcs::{McsIndex, McsTable};
use crate::resource::RbAllocation;
use serde::{Deserialize, Serialize};

/// DCI formats relevant to data scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DciFormat {
    /// Fallback DL assignment — fixed fields, 64QAM MCS table.
    Dl1_0,
    /// Full-featured DL assignment — supports 256QAM, multi-layer MIMO.
    Dl1_1,
    /// Fallback UL grant.
    Ul0_0,
    /// Full-featured UL grant.
    Ul0_1,
}

impl DciFormat {
    /// Whether this format schedules the downlink.
    pub const fn is_downlink(self) -> bool {
        matches!(self, DciFormat::Dl1_0 | DciFormat::Dl1_1)
    }

    /// The MCS table this format can signal when the cell is configured for
    /// 256QAM: fallback formats are pinned to the 64QAM table (the
    /// mechanism the paper cites from \[41\]).
    pub const fn effective_mcs_table(self, configured: McsTable) -> McsTable {
        match self {
            DciFormat::Dl1_0 | DciFormat::Ul0_0 => McsTable::Qam64,
            DciFormat::Dl1_1 | DciFormat::Ul0_1 => configured,
        }
    }

    /// Maximum MIMO layers the format can assign (fallback = 1).
    pub const fn max_layers(self) -> u8 {
        match self {
            DciFormat::Dl1_0 | DciFormat::Ul0_0 => 1,
            DciFormat::Dl1_1 | DciFormat::Ul0_1 => 4,
        }
    }
}

/// A decoded scheduling assignment for one slot — the record an XCAL-class
/// tool logs per slot and the unit our RAN simulator emits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dci {
    /// Which format carried the grant.
    pub format: DciFormat,
    /// Frequency-domain allocation.
    pub allocation: RbAllocation,
    /// MCS index within [`Self::mcs_table`].
    pub mcs: McsIndex,
    /// The MCS table in force for this grant.
    pub mcs_table: McsTable,
    /// Number of MIMO layers ν.
    pub layers: u8,
    /// HARQ process number (0..=15).
    pub harq_id: u8,
    /// New-data indicator: toggled for fresh transport blocks.
    pub new_data: bool,
    /// Redundancy version of this (re)transmission.
    pub rv: RedundancyVersion,
}

impl Dci {
    /// Transport block size (bits) implied by this grant.
    pub fn tbs_bits(&self) -> u32 {
        crate::tbs::transport_block_size(&self.allocation, self.mcs_table, self.mcs, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_format_pins_64qam() {
        assert_eq!(DciFormat::Dl1_0.effective_mcs_table(McsTable::Qam256), McsTable::Qam64);
        assert_eq!(DciFormat::Dl1_1.effective_mcs_table(McsTable::Qam256), McsTable::Qam256);
        assert_eq!(DciFormat::Dl1_1.effective_mcs_table(McsTable::Qam64), McsTable::Qam64);
    }

    #[test]
    fn fallback_format_single_layer() {
        assert_eq!(DciFormat::Dl1_0.max_layers(), 1);
        assert_eq!(DciFormat::Dl1_1.max_layers(), 4);
    }

    #[test]
    fn dci_tbs_consistency() {
        let dci = Dci {
            format: DciFormat::Dl1_1,
            allocation: RbAllocation::full_slot(245),
            mcs: McsIndex(27),
            mcs_table: McsTable::Qam256,
            layers: 4,
            harq_id: 3,
            new_data: true,
            rv: RedundancyVersion::Rv0,
        };
        assert_eq!(
            dci.tbs_bits(),
            crate::tbs::transport_block_size(
                &RbAllocation::full_slot(245),
                McsTable::Qam256,
                McsIndex(27),
                4
            )
        );
        assert!(dci.tbs_bits() > 0);
    }
}
