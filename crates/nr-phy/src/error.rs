//! Error type shared by the fallible constructors of this crate.

use std::fmt;

/// Errors produced when a 3GPP table lookup or conversion has no defined
/// result (e.g. a bandwidth not specified for a sub-carrier spacing).
#[derive(Debug, Clone, PartialEq)]
pub enum PhyError {
    /// The (bandwidth, SCS, frequency-range) triple has no N_RB entry in
    /// TS 38.101 Table 5.3.2-1.
    UnsupportedBandwidth {
        /// Channel bandwidth in kHz.
        bandwidth_khz: u32,
        /// Sub-carrier spacing in kHz.
        scs_khz: u32,
    },
    /// An NR-ARFCN outside the global frequency raster of TS 38.104 §5.4.2.
    InvalidArfcn(u32),
    /// A frequency (in kHz) outside the 0–100 GHz global raster.
    InvalidFrequency(u64),
    /// An MCS index outside the selected MCS table.
    InvalidMcsIndex {
        /// The offending index.
        index: u8,
        /// Number of entries in the table that was consulted.
        table_len: u8,
    },
    /// A CQI outside 0..=15.
    InvalidCqi(u8),
    /// A TDD pattern string containing characters other than `D`, `S`, `U`,
    /// or with more than one special slot, or empty.
    InvalidTddPattern(String),
    /// A special-slot symbol split that does not sum to 14 symbols.
    InvalidSpecialSlot {
        /// Downlink symbols.
        dl: u8,
        /// Guard symbols.
        guard: u8,
        /// Uplink symbols.
        ul: u8,
    },
    /// MIMO layer count outside 1..=4 (this crate models up to 4x4 SU-MIMO,
    /// the maximum the paper observed in commercial mid-band deployments).
    InvalidLayerCount(u8),
    /// A scaling factor not drawn from the TS 38.306 set {1, 0.8, 0.75, 0.4}.
    InvalidScalingFactor(f64),
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::UnsupportedBandwidth { bandwidth_khz, scs_khz } => write!(
                f,
                "no N_RB entry for bandwidth {bandwidth_khz} kHz at SCS {scs_khz} kHz"
            ),
            PhyError::InvalidArfcn(n) => write!(f, "NR-ARFCN {n} outside the global raster"),
            PhyError::InvalidFrequency(khz) => {
                write!(f, "frequency {khz} kHz outside the 0..100 GHz raster")
            }
            PhyError::InvalidMcsIndex { index, table_len } => {
                write!(f, "MCS index {index} outside table of {table_len} entries")
            }
            PhyError::InvalidCqi(c) => write!(f, "CQI {c} outside 0..=15"),
            PhyError::InvalidTddPattern(p) => write!(f, "invalid TDD pattern {p:?}"),
            PhyError::InvalidSpecialSlot { dl, guard, ul } => write!(
                f,
                "special slot {dl}D:{guard}G:{ul}U does not sum to 14 symbols"
            ),
            PhyError::InvalidLayerCount(v) => write!(f, "MIMO layer count {v} outside 1..=4"),
            PhyError::InvalidScalingFactor(v) => {
                write!(f, "scaling factor {v} not in {{1, 0.8, 0.75, 0.4}}")
            }
        }
    }
}

impl std::error::Error for PhyError {}
