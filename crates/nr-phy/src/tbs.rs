//! Transport-block-size determination (TS 38.214 §5.1.3.2).
//!
//! Given the REs allocated in a slot, the MCS (code rate and modulation) and
//! the number of MIMO layers, this procedure produces the number of
//! information bits carried by the slot's transport block — the paper's §3.1
//! observation "given the same number of RBs allocated to the UE, a high MCS
//! index produces a larger TB size, translating into high throughput" made
//! exact.

use crate::mcs::{McsIndex, McsTable};
use crate::resource::RbAllocation;

/// TS 38.214 Table 5.1.3.2-1: TBS values for N_info ≤ 3824 bits.
const TBS_TABLE: [u32; 93] = [
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144, 152, 160, 168, 176,
    184, 192, 208, 224, 240, 256, 272, 288, 304, 320, 336, 352, 368, 384, 408, 432, 456, 480,
    504, 528, 552, 576, 608, 640, 672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128,
    1160, 1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736, 1800, 1864,
    1928, 2024, 2088, 2152, 2216, 2280, 2408, 2472, 2536, 2600, 2664, 2728, 2792, 2856, 2976,
    3104, 3240, 3368, 3496, 3624, 3752, 3824,
];

/// [`TBS_TABLE`] widened to `i32` and padded to a SIMD lane multiple with
/// `i32::MAX` sentinels. Counting entries strictly below a quantised
/// N'_info across the padded table equals `partition_point` on the
/// unpadded one: every real entry fits in `i32`, and the sentinels never
/// compare below a query. The sentinel must be `i32::MAX`, not an
/// all-ones `u32`, because the SIMD compare is *signed*.
const TBS_TABLE_PAD: [i32; 96] = {
    let mut padded = [i32::MAX; 96];
    let mut i = 0;
    while i < TBS_TABLE.len() {
        padded[i] = TBS_TABLE[i] as i32;
        i += 1;
    }
    padded
};

/// Compute the transport block size in **bits**.
///
/// * `n_re` — total resource elements available to the transport block
///   (already capped per-PRB by [`RbAllocation::tbs_re`]);
/// * `code_rate` — target code rate R from the MCS table;
/// * `modulation_bits` — Q_m;
/// * `layers` — number of MIMO layers ν (1..=4 for the deployments studied).
///
/// Implements every quantisation step of §5.1.3.2: intermediate N_info,
/// the ≤3824 table lookup, and the >3824 formula with code-block
/// segmentation (LDPC base-graph boundary at 3824/8424 bits, CRC 24 bits).
pub fn tbs_bits(n_re: u32, code_rate: f64, modulation_bits: u8, layers: u8) -> u32 {
    if n_re == 0 || code_rate <= 0.0 || modulation_bits == 0 || layers == 0 {
        return 0;
    }
    // Step 2: intermediate number of information bits.
    let n_info = n_re as f64 * code_rate * modulation_bits as f64 * layers as f64;
    if n_info <= 3824.0 {
        // Step 3: quantised N'_info, then the table lookup.
        let n = ((n_info.log2().floor() as i32) - 6).max(3) as u32;
        let pow = 1u64 << n;
        let quantised = (pow * (n_info as u64 / pow)).max(24);
        // Smallest table entry ≥ quantised N'_info: a branchless SIMD
        // count of entries below the query over the sentinel-padded table
        // (≡ `partition_point`; quantised ≤ 3824 = TBS_TABLE[92], so the
        // index is always in range and the fallback is defensive only).
        let idx = vmath::count_lt_i32(&TBS_TABLE_PAD, quantised as i32);
        TBS_TABLE.get(idx).copied().unwrap_or(3824)
    } else {
        // Step 4: large TBS formula.
        let n = ((n_info - 24.0).log2().floor() as i32 - 5).max(0) as u32;
        let pow = (1u64 << n) as f64;
        let quantised = (pow * ((n_info - 24.0) / pow).round()).max(3840.0);
        let q = quantised as u64;
        if code_rate <= 0.25 {
            let c = (q + 24).div_ceil(3816);
            (8 * c * (q + 24).div_ceil(8 * c) - 24) as u32
        } else if q > 8424 {
            let c = (q + 24).div_ceil(8424);
            (8 * c * (q + 24).div_ceil(8 * c) - 24) as u32
        } else {
            (8 * (q + 24).div_ceil(8) - 24) as u32
        }
    }
}

/// Batched [`tbs_bits`] over per-UE RE counts sharing one MCS/layer
/// configuration — the shape of a cell's per-slot grant sweep, where the
/// scheduler sizes many allocations against the serving MCS table row.
/// Bit-identical to calling the scalar function per element.
pub fn tbs_bits_batch(
    n_re: &[u32],
    code_rate: f64,
    modulation_bits: u8,
    layers: u8,
    out: &mut [u32],
) {
    assert_eq!(n_re.len(), out.len(), "input/output length mismatch");
    for (o, &re) in out.iter_mut().zip(n_re.iter()) {
        *o = tbs_bits(re, code_rate, modulation_bits, layers);
    }
}

/// Transport block size for an [`RbAllocation`] and an MCS drawn from a
/// table — the form the RAN scheduler uses each slot.
///
/// Returns 0 for out-of-table MCS indices (defensive: retransmission
/// indices 29..=31 carry no new TBS).
pub fn transport_block_size(
    alloc: &RbAllocation,
    table: McsTable,
    mcs: McsIndex,
    layers: u8,
) -> u32 {
    let Ok(rate) = table.code_rate(mcs) else { return 0 };
    let Ok(modulation) = table.modulation(mcs) else { return 0 };
    tbs_bits(alloc.tbs_re(), rate, modulation.bits_per_symbol(), layers)
}

/// Memo slots per `(n_re, table)` entry: MCS indices 0..32 × layers 1..=4.
const MEMO_MCS: usize = 32;
const MEMO_LAYERS: usize = 4;

/// Sentinel for "not yet computed" (0 is a valid TBS result).
const MEMO_EMPTY: u32 = u32::MAX;

/// A per-carrier transport-block-size memo.
///
/// [`transport_block_size`] is a pure function of
/// `(n_re, table, mcs, layers)`, and on the per-slot scheduling path those
/// inputs cycle with the TDD pattern and the CSI period — a handful of
/// distinct `n_re` values and a slowly-moving MCS — so hit rates are
/// near one. Entries are keyed by `(n_re, table)` with a dense MCS×layers panel
/// inside; a new `(n_re, table)` pair allocates once (construction /
/// warm-up), after which lookups are allocation-free. Out-of-range inputs
/// (MCS ≥ 32, layers 0 or > 4) fall through to the direct computation.
#[derive(Debug, Clone, Default)]
pub struct TbsCache {
    entries: Vec<(u32, McsTable, Box<[u32; MEMO_MCS * MEMO_LAYERS]>)>,
}

impl TbsCache {
    /// An empty memo.
    pub fn new() -> Self {
        TbsCache { entries: Vec::new() }
    }

    /// Memoised [`transport_block_size`] — bit-identical to the direct
    /// computation for every input.
    pub fn transport_block_size(
        &mut self,
        alloc: &RbAllocation,
        table: McsTable,
        mcs: McsIndex,
        layers: u8,
    ) -> u32 {
        let (mcs_i, layers_i) = (mcs.0 as usize, layers as usize);
        if mcs_i >= MEMO_MCS || layers_i == 0 || layers_i > MEMO_LAYERS {
            return transport_block_size(alloc, table, mcs, layers);
        }
        let n_re = alloc.tbs_re();
        let panel = match self.entries.iter_mut().find(|(r, t, _)| *r == n_re && *t == table) {
            Some((_, _, panel)) => panel,
            None => {
                self.entries.push((n_re, table, Box::new([MEMO_EMPTY; MEMO_MCS * MEMO_LAYERS])));
                &mut self.entries.last_mut().expect("just pushed").2
            }
        };
        let base = mcs_i * MEMO_LAYERS;
        if panel[base + layers_i - 1] == MEMO_EMPTY {
            // Fill the whole ν row for this MCS on a miss: rank adaptation
            // sweeps the layer count under a slowly-moving MCS, so one
            // miss warms the other three layer slots the scheduler is
            // about to ask for.
            for l in 1..=MEMO_LAYERS as u8 {
                let slot = &mut panel[base + l as usize - 1];
                if *slot == MEMO_EMPTY {
                    *slot = transport_block_size(alloc, table, mcs, l);
                }
            }
        }
        panel[base + layers_i - 1]
    }
}

/// Convenience: TBS expressed in bytes (floor).
pub fn transport_block_bytes(
    alloc: &RbAllocation,
    table: McsTable,
    mcs: McsIndex,
    layers: u8,
) -> u32 {
    transport_block_size(alloc, table, mcs, layers) / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tbs_table_is_sorted_and_sized() {
        assert_eq!(TBS_TABLE.len(), 93);
        assert!(TBS_TABLE.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(TBS_TABLE[0], 24);
        assert_eq!(TBS_TABLE[92], 3824);
    }

    #[test]
    fn zero_inputs_give_zero() {
        assert_eq!(tbs_bits(0, 0.5, 6, 4), 0);
        assert_eq!(tbs_bits(1000, 0.0, 6, 4), 0);
        assert_eq!(tbs_bits(1000, 0.5, 0, 4), 0);
        assert_eq!(tbs_bits(1000, 0.5, 6, 0), 0);
    }

    #[test]
    fn small_allocation_uses_table() {
        // 1 PRB, 144 REs, QPSK R=120/1024, 1 layer:
        // N_info = 144 · 0.1171875 · 2 = 33.75 → n = max(3, 5-6)=3,
        // N'_info = 8·floor(33.75/8)=32 → TBS = 32.
        let bits = tbs_bits(144, 120.0 / 1024.0, 2, 1);
        assert_eq!(bits, 32);
    }

    #[test]
    fn large_allocation_matches_formula_shape() {
        // Full 273-PRB slot, 256QAM R=948/1024, 4 layers:
        // N_re = 144·273 = 39312, N_info = 39312·0.92578·8·4 ≈ 1_164_711.
        let alloc = RbAllocation::full_slot(273);
        let bits = transport_block_size(&alloc, McsTable::Qam256, McsIndex(27), 4);
        // Expect within a code-block's rounding of N_info.
        let n_info = alloc.tbs_re() as f64 * (948.0 / 1024.0) * 8.0 * 4.0;
        assert!(bits as f64 > n_info * 0.99, "bits={bits} n_info={n_info}");
        assert!((bits as f64) < n_info * 1.02, "bits={bits} n_info={n_info}");
        // And byte-multiple after CRC adjustment: (TBS+24) divisible by 8.
        assert_eq!((bits + 24) % 8, 0);
    }

    #[test]
    fn tbs_monotone_in_mcs() {
        let alloc = RbAllocation::full_slot(106);
        let mut prev = 0;
        for i in 0..28 {
            let b = transport_block_size(&alloc, McsTable::Qam256, McsIndex(i), 2);
            assert!(b >= prev, "MCS {i}: {b} < {prev}");
            prev = b;
        }
    }

    #[test]
    fn tbs_monotone_in_layers() {
        let alloc = RbAllocation::full_slot(245);
        let mut prev = 0;
        for layers in 1..=4 {
            let b = transport_block_size(&alloc, McsTable::Qam64, McsIndex(20), layers);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn four_layers_roughly_quadruple_one_layer() {
        // §4.1: "4 MIMO layers essentially quadruples the radio resources".
        let alloc = RbAllocation::full_slot(245);
        let one = transport_block_size(&alloc, McsTable::Qam256, McsIndex(20), 1) as f64;
        let four = transport_block_size(&alloc, McsTable::Qam256, McsIndex(20), 4) as f64;
        assert!((four / one - 4.0).abs() < 0.05, "ratio {}", four / one);
    }

    #[test]
    fn low_rate_triggers_quarter_rate_segmentation() {
        // Huge allocation at R ≤ 1/4 exercises the 3816-bit segmentation arm.
        let bits = tbs_bits(39_312, 0.2, 2, 4);
        assert!(bits > 3824);
        assert_eq!((bits + 24) % 8, 0);
    }

    #[test]
    fn out_of_table_mcs_gives_zero() {
        let alloc = RbAllocation::full_slot(100);
        assert_eq!(transport_block_size(&alloc, McsTable::Qam256, McsIndex(31), 4), 0);
    }

    #[test]
    fn partition_point_matches_linear_scan() {
        // The binary search must agree with the original linear scan
        // ("smallest table entry ≥ quantised N'_info") for the whole
        // quantised domain of the ≤3824 branch.
        for q in 1u64..=3824 {
            let scan = TBS_TABLE.iter().copied().find(|&t| t as u64 >= q).unwrap_or(3824);
            let idx = TBS_TABLE.partition_point(|&t| (t as u64) < q);
            let binary = TBS_TABLE.get(idx).copied().unwrap_or(3824);
            assert_eq!(binary, scan, "N'_info = {q}");
            // The SIMD count over the sentinel-padded table lands on the
            // same index on every available arm.
            for &arm in vmath::available_arms() {
                assert_eq!(
                    vmath::count_lt_i32_with(arm, &TBS_TABLE_PAD, q as i32),
                    idx,
                    "{arm:?} N'_info = {q}"
                );
            }
        }
    }

    #[test]
    fn batched_tbs_matches_scalar() {
        let n_re: Vec<u32> = (0..130).map(|i| i * 311 % 40_000).collect();
        for (rate, qm, layers) in [(120.0 / 1024.0, 2u8, 1u8), (682.5 / 1024.0, 8, 4), (0.2, 2, 4)]
        {
            let mut out = vec![0u32; n_re.len()];
            tbs_bits_batch(&n_re, rate, qm, layers, &mut out);
            for (i, (&re, &got)) in n_re.iter().zip(out.iter()).enumerate() {
                assert_eq!(got, tbs_bits(re, rate, qm, layers), "i={i} re={re}");
            }
        }
    }

    #[test]
    fn memoised_tbs_matches_direct() {
        let mut cache = TbsCache::new();
        for n_prb in [1u16, 52, 106, 245, 273] {
            let alloc = RbAllocation::full_slot(n_prb);
            for table in [McsTable::Qam64, McsTable::Qam256, McsTable::Qam64LowSe] {
                for mcs in 0..32u8 {
                    for layers in 0..=5u8 {
                        let direct =
                            transport_block_size(&alloc, table, McsIndex(mcs), layers);
                        // Twice: the miss path and the hit path.
                        for _ in 0..2 {
                            let memo = cache.transport_block_size(
                                &alloc,
                                table,
                                McsIndex(mcs),
                                layers,
                            );
                            assert_eq!(memo, direct, "{n_prb} PRB mcs {mcs} ν{layers}");
                        }
                    }
                }
            }
        }
    }
}
