//! Channel-state-information feedback (TS 38.214 §5.2; paper Appendix 10.2).
//!
//! The UE reports CSI — RI (rank indicator), PMI (precoding matrix
//! indicator), CQI and LI (layer indicator) — every few tens of
//! milliseconds. The gNB uses RI to pick the MIMO layer count and CQI to
//! pick the MCS; together these are the two dynamic parameters the paper
//! identifies (§4.1, §5) as the dominant drivers of mid-band throughput and
//! its variability.

use crate::cqi::Cqi;
use serde::{Deserialize, Serialize};

/// A CSI report as fed back by the UE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsiReport {
    /// Rank indicator: how many spatial layers the channel supports (1..=4).
    pub ri: u8,
    /// Precoding matrix indicator (opaque codebook index).
    pub pmi: u16,
    /// Wideband channel quality indicator.
    pub cqi: Cqi,
    /// Layer indicator: the strongest layer (0-based, < ri).
    pub li: u8,
}

impl CsiReport {
    /// Construct a consistent report; clamps `ri` into 1..=4 and `li` below
    /// `ri` so downstream code never sees an impossible combination.
    pub fn new(ri: u8, pmi: u16, cqi: Cqi, li: u8) -> Self {
        let ri = ri.clamp(1, 4);
        CsiReport { ri, pmi, cqi, li: li.min(ri - 1) }
    }

    /// An "out of range" report (CQI 0, rank 1) — what a UE in outage sends.
    pub fn out_of_range() -> Self {
        CsiReport { ri: 1, pmi: 0, cqi: Cqi::saturating(0), li: 0 }
    }
}

/// Periodicity (in slots) of CSI reporting. The paper notes CSI feedback is
/// sent "averagely every tens of milliseconds"; at µ=1 a 40-slot period is
/// 20 ms.
pub const DEFAULT_CSI_PERIOD_SLOTS: u64 = 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_invariants_enforced() {
        let r = CsiReport::new(9, 0, Cqi::MAX, 7);
        assert_eq!(r.ri, 4);
        assert!(r.li < r.ri);
        let r = CsiReport::new(0, 0, Cqi::MIN, 0);
        assert_eq!(r.ri, 1);
    }

    #[test]
    fn out_of_range_report() {
        let r = CsiReport::out_of_range();
        assert!(r.cqi.is_out_of_range());
        assert_eq!(r.ri, 1);
    }
}
