//! The TS 38.306 §4.1.2 approximate maximum data-rate formula — the
//! expression the paper evaluates in §3.2:
//!
//! ```text
//! rate (Mbps) = 1e-6 · Σ_j  ν_layers^(j) · Q_MCS^(j) · f^(j) · R_max
//!                         · (N_RB^{BW(j),µ} · 12 / T_s^µ) · (1 − OH^(j))
//! ```
//!
//! with `R_max = 948/1024`, `T_s^µ = 1e-3 / (14 · 2^µ)` and overhead `OH`
//! depending on direction and frequency range. The sum runs over the
//! aggregated component carriers `j = 1..J` (carrier aggregation).
//!
//! For TDD carriers the raw formula assumes every symbol is available to
//! the computed direction; [`max_data_rate_mbps_tdd`] additionally applies
//! the pattern duty cycle, which is what a slot-level measurement tool
//! actually observes on a TDD channel.

use crate::error::PhyError;
use crate::mcs::Modulation;
use crate::numerology::Numerology;
use crate::tdd::TddPattern;
use serde::{Deserialize, Serialize};

/// Maximum code rate in the data-rate formula.
pub const R_MAX: f64 = 948.0 / 1024.0;

/// Link direction, selecting the overhead constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkDirection {
    /// Downlink: OH = 0.14 (FR1) / 0.18 (FR2).
    Downlink,
    /// Uplink: OH = 0.08 (FR1) / 0.10 (FR2).
    Uplink,
}

/// Whether the carrier is FR1 or FR2, for the overhead constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CarrierRange {
    /// Sub-6 GHz.
    Fr1,
    /// mmWave.
    Fr2,
}

/// Overhead constant OH per TS 38.306 §4.1.2.
pub fn overhead(direction: LinkDirection, range: CarrierRange) -> f64 {
    match (direction, range) {
        (LinkDirection::Downlink, CarrierRange::Fr1) => 0.14,
        (LinkDirection::Downlink, CarrierRange::Fr2) => 0.18,
        (LinkDirection::Uplink, CarrierRange::Fr1) => 0.08,
        (LinkDirection::Uplink, CarrierRange::Fr2) => 0.10,
    }
}

/// One component carrier's inputs to the data-rate formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarrierSpec {
    /// MIMO layers ν (1..=4).
    pub layers: u8,
    /// Maximum modulation order (Q_MCS: 6 for 64QAM, 8 for 256QAM).
    pub modulation: Modulation,
    /// UE-capability scaling factor f ∈ {1, 0.8, 0.75, 0.4}.
    pub scaling: f64,
    /// Numerology µ of the carrier.
    pub numerology: Numerology,
    /// Maximum transmission bandwidth N_RB for the carrier.
    pub n_rb: u16,
    /// FR1 or FR2 (selects OH).
    pub range: CarrierRange,
}

impl CarrierSpec {
    /// Validate the fields that have closed domains.
    pub fn validate(&self) -> Result<(), PhyError> {
        if self.layers == 0 || self.layers > 4 {
            return Err(PhyError::InvalidLayerCount(self.layers));
        }
        const ALLOWED: [f64; 4] = [1.0, 0.8, 0.75, 0.4];
        if !ALLOWED.iter().any(|&f| (f - self.scaling).abs() < 1e-9) {
            return Err(PhyError::InvalidScalingFactor(self.scaling));
        }
        Ok(())
    }

    /// This carrier's contribution to the maximum data rate, in Mbps.
    pub fn rate_mbps(&self, direction: LinkDirection) -> Result<f64, PhyError> {
        self.validate()?;
        let oh = overhead(direction, self.range);
        let t_s = self.numerology.avg_symbol_duration_s();
        Ok(1e-6
            * self.layers as f64
            * self.modulation.bits_per_symbol() as f64
            * self.scaling
            * R_MAX
            * (self.n_rb as f64 * 12.0 / t_s)
            * (1.0 - oh))
    }
}

/// The full multi-carrier formula: sum of per-carrier rates.
///
/// ```
/// use nr_phy::throughput::{max_data_rate_mbps, CarrierSpec, CarrierRange, LinkDirection};
/// use nr_phy::{mcs::Modulation, Numerology};
/// // A 4-layer, 256QAM, 100 MHz / 30 kHz carrier — the theoretical ceiling
/// // for O_Sp's 273-RB channel (§3.2).
/// let cc = CarrierSpec {
///     layers: 4,
///     modulation: Modulation::Qam256,
///     scaling: 1.0,
///     numerology: Numerology::Mu1,
///     n_rb: 273,
///     range: CarrierRange::Fr1,
/// };
/// let rate = max_data_rate_mbps(&[cc], LinkDirection::Downlink).unwrap();
/// assert!(rate > 2000.0 && rate < 2500.0);
/// ```
pub fn max_data_rate_mbps(
    carriers: &[CarrierSpec],
    direction: LinkDirection,
) -> Result<f64, PhyError> {
    carriers.iter().map(|c| c.rate_mbps(direction)).sum()
}

/// TDD-aware variant: scales each carrier by the duty cycle its TDD pattern
/// grants the direction. `patterns` must parallel `carriers`; `None` marks
/// an FDD carrier (full duty).
///
/// The paper's §3.2 compares its formula output with the *maximum observed*
/// throughput; on a TDD channel the observable ceiling includes the frame
/// structure, so this variant is the right comparator for measured data.
pub fn max_data_rate_mbps_tdd(
    carriers: &[CarrierSpec],
    patterns: &[Option<&TddPattern>],
    direction: LinkDirection,
) -> Result<f64, PhyError> {
    assert_eq!(carriers.len(), patterns.len(), "one pattern slot per carrier");
    let mut total = 0.0;
    for (cc, pat) in carriers.iter().zip(patterns) {
        let duty = match (pat, direction) {
            (Some(p), LinkDirection::Downlink) => p.dl_duty_cycle(),
            (Some(p), LinkDirection::Uplink) => p.ul_duty_cycle(),
            (None, _) => 1.0,
        };
        total += cc.rate_mbps(direction)? * duty;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdd::SpecialSlotConfig;

    fn midband_cc(n_rb: u16, layers: u8, modulation: Modulation) -> CarrierSpec {
        CarrierSpec {
            layers,
            modulation,
            scaling: 1.0,
            numerology: Numerology::Mu1,
            n_rb,
            range: CarrierRange::Fr1,
        }
    }

    #[test]
    fn formula_reference_values() {
        // Hand-computed: 4 · 8 · 1 · (948/1024) · (245·12/3.5714e-5) · 0.86
        // ≈ 2097.3 Mbps for a 90 MHz carrier.
        let rate =
            max_data_rate_mbps(&[midband_cc(245, 4, Modulation::Qam256)], LinkDirection::Downlink)
                .unwrap();
        assert!((rate - 2097.27).abs() < 1.0, "rate={rate}");
        // 100 MHz (273 RB) scales by 273/245.
        let rate100 =
            max_data_rate_mbps(&[midband_cc(273, 4, Modulation::Qam256)], LinkDirection::Downlink)
                .unwrap();
        assert!((rate100 / rate - 273.0 / 245.0).abs() < 1e-9);
    }

    #[test]
    fn tdd_duty_cycle_brings_ceiling_near_paper_values() {
        // With a DDDSU 10D:2G:2U pattern (DL duty ≈ 0.743) the 90 MHz
        // ceiling drops to ≈ 1558 Mbps; the paper's §3.2 prints 1213 Mbps
        // from the same formula family (their exact scaling assumptions are
        // not published — EXPERIMENTS.md discusses the gap).
        let p = TddPattern::parse("DDDSU", SpecialSlotConfig::DL_HEAVY).unwrap();
        let cc = midband_cc(245, 4, Modulation::Qam256);
        let full = max_data_rate_mbps(&[cc], LinkDirection::Downlink).unwrap();
        let tdd =
            max_data_rate_mbps_tdd(&[cc], &[Some(&p)], LinkDirection::Downlink).unwrap();
        assert!(tdd < full);
        assert!((tdd / full - p.dl_duty_cycle()).abs() < 1e-9);
    }

    #[test]
    fn uplink_overhead_is_lower() {
        let cc = midband_cc(245, 1, Modulation::Qam256);
        let dl = cc.rate_mbps(LinkDirection::Downlink).unwrap();
        let ul = cc.rate_mbps(LinkDirection::Uplink).unwrap();
        assert!((ul / dl - 0.92 / 0.86).abs() < 1e-9);
    }

    #[test]
    fn carrier_aggregation_sums() {
        // T-Mobile style 100+40 MHz n41 aggregate.
        let ccs = [midband_cc(273, 4, Modulation::Qam256), midband_cc(106, 4, Modulation::Qam256)];
        let agg = max_data_rate_mbps(&ccs, LinkDirection::Downlink).unwrap();
        let lone = max_data_rate_mbps(&ccs[..1], LinkDirection::Downlink).unwrap();
        assert!(agg > lone * 1.3);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut cc = midband_cc(245, 5, Modulation::Qam256);
        assert!(cc.rate_mbps(LinkDirection::Downlink).is_err());
        cc.layers = 4;
        cc.scaling = 0.9;
        assert!(cc.rate_mbps(LinkDirection::Downlink).is_err());
    }

    #[test]
    fn fr2_overheads() {
        assert_eq!(overhead(LinkDirection::Downlink, CarrierRange::Fr2), 0.18);
        assert_eq!(overhead(LinkDirection::Uplink, CarrierRange::Fr2), 0.10);
    }
}
