//! Property-based tests of the RAN simulator's invariants.

use proptest::prelude::*;
use ran::carrier::{Carrier, TrafficPattern};
use ran::config::CellConfig;
use ran::harq::{HarqConfig, HarqEntity};
use ran::kpi::Direction;
use ran::latency::{run_probes, LatencyProbeConfig};
use radio_channel::channel::{ChannelConfig, ChannelSimulator};
use radio_channel::geometry::{DeploymentLayout, Position};
use radio_channel::link::LinkModel;
use radio_channel::mobility::MobilityModel;
use radio_channel::rng::SeedTree;

proptest! {
    /// HARQ conservation: every recorded failure is eventually either
    /// retransmittable or counted as dropped — nothing vanishes.
    #[test]
    fn harq_conserves_blocks(
        failures in prop::collection::vec((1u32..1_000_000, 1u8..=3, 0u64..1000), 0..50),
        max_attempts in 2u8..=4,
    ) {
        let mut h = HarqEntity::new(HarqConfig { max_attempts, ..HarqConfig::default() });
        let mut queued = 0u64;
        let mut dropped_expect = 0u64;
        for (bits, attempts, slot) in failures {
            if attempts >= max_attempts {
                dropped_expect += 1;
            } else {
                queued += 1;
            }
            h.record_failure(bits, attempts, slot);
        }
        prop_assert_eq!(h.dropped(), dropped_expect);
        let mut popped = 0u64;
        while h.pop_ready(u64::MAX).is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, queued);
        prop_assert_eq!(h.backlog(), 0);
    }

    /// Per-slot carrier invariants hold under arbitrary (valid) geometry:
    /// delivered ≤ TBS, PRBs ≤ N_RB, layers ≤ cell max, and the CQI filter
    /// partitions the trace.
    #[test]
    fn carrier_slot_invariants(
        distance in 40.0f64..500.0,
        seed in 0u64..500,
        bw in prop::sample::select(vec![40u32, 60, 80, 90, 100]),
    ) {
        let cfg = CellConfig::midband(bw, "DDDSU");
        let n_rb = cfg.n_rb;
        let max_layers = cfg.max_dl_layers;
        let pos = Position::new(distance, 0.0);
        let seeds = SeedTree::new(seed);
        let channel = ChannelSimulator::new(
            ChannelConfig::midband_urban(n_rb),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        let mut carrier = Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &seeds);
        let mut trace = ran::kpi::KpiTrace::new();
        for _ in 0..400 {
            let out = carrier.step(pos, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
            trace.push(out.dl);
            if let Some(ul) = out.ul {
                trace.push(ul);
            }
        }
        for r in trace.iter() {
            prop_assert!(r.delivered_bits <= r.tbs_bits);
            prop_assert!(r.n_prb <= n_rb);
            prop_assert!(r.layers <= max_layers);
            prop_assert!(r.cqi <= 15);
            if !r.scheduled {
                prop_assert_eq!(r.tbs_bits, 0);
            }
            if r.block_error {
                prop_assert_eq!(r.delivered_bits, 0);
            }
        }
        let good = trace.filter_cqi_at_least(10).len();
        let bad = trace.filter_cqi_below(10).len();
        prop_assert_eq!(good + bad, trace.len());
    }

    /// Latency probes are positive, finite and bounded by a few pattern
    /// periods, for every operator-realistic pattern and retx mode.
    #[test]
    fn latency_probe_bounds(
        seed in 0u64..200,
        pattern in prop::sample::select(vec!["DDDSU", "DDSU", "DDDDDDDSUU", "DDDSUUDDDD"]),
        force in prop::sample::select(vec![Some(false), Some(true), None]),
    ) {
        let p = nr_phy::tdd::TddPattern::parse(pattern, nr_phy::tdd::SpecialSlotConfig::BALANCED).unwrap();
        let cfg = LatencyProbeConfig::default();
        let samples = run_probes(&p, &cfg, 200, force, &SeedTree::new(seed));
        let period_ms = p.len() as f64 * cfg.slot_ms;
        for s in &samples {
            prop_assert!(s.dl_ms > 0.0 && s.ul_ms > 0.0);
            prop_assert!(s.total_ms().is_finite());
            // One leg never exceeds ~3 pattern periods even with a retx.
            prop_assert!(s.dl_ms < 3.0 * period_ms + 2.0, "dl {} period {}", s.dl_ms, period_ms);
            prop_assert!(s.ul_ms < 3.0 * period_ms + 2.0);
            if force == Some(false) {
                prop_assert!(!s.had_retx);
            }
        }
    }

    /// The precomputed per-TDD-cycle allocation table is bit-identical to
    /// the direct scheduler computation across random TDD patterns,
    /// bandwidths, UL RB fractions, slots and shares — on the table's own
    /// share (the precomputed lane) and on arbitrary shares (fallthrough).
    #[test]
    fn allocation_table_bit_identical_across_patterns(
        pattern in prop::sample::select(vec![
            "DDDSU", "DDDDDDDSUU", "DDSU", "DSUUU",
        ]),
        bw in prop::sample::select(vec![40u32, 60, 80, 90, 100]),
        ul_frac in 0.05f64..1.0,
        table_share in 0.01f64..1.0,
        probes in prop::collection::vec((0u64..200, 0.01f64..1.0), 1..50),
    ) {
        use ran::scheduler::{dl_allocation, ul_allocation, AllocationTable};
        let mut cfg = CellConfig::midband(bw, pattern);
        cfg.ul_rb_fraction = ul_frac;
        let table = AllocationTable::new(&cfg, table_share, table_share);
        for (slot, share) in probes {
            // The precomputed lane.
            prop_assert_eq!(
                table.dl(&cfg, slot, table_share),
                dl_allocation(&cfg, slot, table_share)
            );
            prop_assert_eq!(
                table.ul(&cfg, slot, table_share),
                ul_allocation(&cfg, slot, table_share)
            );
            prop_assert_eq!(table.has_ul(slot), cfg.ul_symbols(slot) > 0);
            // Arbitrary shares fall through to the direct computation.
            prop_assert_eq!(table.dl(&cfg, slot, share), dl_allocation(&cfg, slot, share));
            prop_assert_eq!(table.ul(&cfg, slot, share), ul_allocation(&cfg, slot, share));
        }
    }

    /// Throughput accounting: binned series integrate to the same bits as
    /// the scalar mean, for any carrier run.
    #[test]
    fn throughput_series_consistency(seed in 0u64..300, distance in 50.0f64..300.0) {
        let cfg = CellConfig::midband(80, "DDDSU");
        let pos = Position::new(distance, 0.0);
        let seeds = SeedTree::new(seed);
        let channel = ChannelSimulator::new(
            ChannelConfig::midband_urban(cfg.n_rb),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        let mut carrier = Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &seeds);
        let mut trace = ran::kpi::KpiTrace::new();
        for _ in 0..2000 {
            trace.push(carrier.step(pos, 0.0, TrafficPattern::DL, false, 1.0, 1.0).dl);
        }
        let mean = trace.mean_throughput_mbps(Direction::Dl);
        let series = trace.throughput_series_mbps(Direction::Dl, 0.1);
        let from_series = series.iter().sum::<f64>() * 0.1 / trace.duration_s();
        prop_assert!((mean - from_series).abs() < 1e-6 * (1.0 + mean));
    }
}
