//! Counting-allocator proof that the per-slot hot path is allocation-free
//! in steady state (ISSUE 2 acceptance criterion).
//!
//! This file installs a global allocator that counts every `alloc`/
//! `realloc`, warms a carrier past its transients (scratch-buffer sizing,
//! TBS-memo fills, HARQ queue high-water mark), and then asserts that tens
//! of thousands of further slots perform **zero** heap allocations — both
//! for `ChannelSimulator::step_at` alone and for the full `Carrier::step`
//! loop. It lives in its own integration-test binary so no concurrently
//! running test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use radio_channel::channel::{ChannelConfig, ChannelSimulator};
use radio_channel::geometry::{DeploymentLayout, Position};
use radio_channel::link::LinkModel;
use radio_channel::mobility::MobilityModel;
use radio_channel::rng::SeedTree;
use ran::carrier::{Carrier, TrafficPattern};
use ran::cell::{CellParams, CellSim, CellSink, UeSpec};
use ran::config::CellConfig;
use ran::kpi::SlotKpi;
use ran::scheduler::SchedulerPolicy;

struct CountingAllocator;

// Per-thread counter: the libtest harness allocates concurrently on its
// own threads, so a process-global counter makes the assertion flaky.
// The `const` initialiser keeps the TLS access itself allocation-free,
// and `try_with` tolerates accesses during TLS teardown.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

#[test]
fn slot_loop_steady_state_is_allocation_free() {
    // --- ChannelSimulator::step_at alone: stationary and driving. ---
    let seeds = SeedTree::new(77);
    let mut channel = ChannelSimulator::new(
        ChannelConfig::midband_urban(245),
        DeploymentLayout::three_site_dense(),
        MobilityModel::walking(Position::ORIGIN, 100.0),
        &seeds,
    );
    for _ in 0..1000 {
        channel.step();
    }
    let before = allocations();
    for _ in 0..20_000 {
        channel.step();
    }
    let pos = Position::new(60.0, 10.0);
    for _ in 0..20_000 {
        channel.step_at(pos, 0.0);
    }
    let channel_allocs = allocations() - before;
    assert_eq!(
        channel_allocs, 0,
        "ChannelSimulator::step_at allocated {channel_allocs} times in steady state"
    );

    // --- Full Carrier::step at a mid-range spot (BLER ≈ OLLA target, so
    // HARQ retransmissions and MCS/layer churn are all exercised). ---
    let cfg = CellConfig::midband(90, "DDDSU");
    let spot = Position::new(280.0, 0.0);
    let channel = ChannelSimulator::new(
        ChannelConfig::midband_urban(cfg.n_rb),
        DeploymentLayout::three_site_dense(),
        MobilityModel::Stationary { position: spot },
        &seeds,
    );
    let mut carrier = Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &seeds);
    // Warm-up: fill the TBS memo panels for every slot shape the TDD
    // pattern produces, let OLLA sweep the MCS range, and let the HARQ
    // queues reach their high-water mark.
    for _ in 0..20_000 {
        carrier.step(spot, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
    }
    let before = allocations();
    for _ in 0..50_000 {
        carrier.step(spot, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
    }
    let carrier_allocs = allocations() - before;
    assert_eq!(
        carrier_allocs, 0,
        "Carrier::step allocated {carrier_allocs} times in steady state"
    );
}

/// A sink whose `push` provably cannot allocate: fixed-size pre-sized
/// accumulators, no growth paths.
struct FlatStats {
    delivered_bits: Vec<u64>,
    records: u64,
}

impl CellSink for FlatStats {
    fn push(&mut self, ue: u32, kpi: &SlotKpi) {
        self.delivered_bits[ue as usize] += u64::from(kpi.delivered_bits);
        self.records += 1;
    }
}

/// The loaded-cell engine at N = 1000 UEs must run its steady-state slot
/// loop without touching the heap (ISSUE 6 acceptance criterion): all
/// per-UE state lives in pre-sized structure-of-arrays columns and the
/// scheduler scratch vectors reach their high-water mark during warm-up.
#[test]
fn cell_slot_loop_at_1000_ues_is_allocation_free() {
    let n_ues = 1000usize;
    // Spread the UEs over the serviceable range so the run mixes good and
    // bad channels (MCS churn, HARQ activity, CSI updates at every phase).
    let ues: Vec<UeSpec> = (0..n_ues)
        .map(|i| UeSpec::at(40.0 + (i % 24) as f64 * 4.5, (i / 24) as f64 * 0.5))
        .collect();
    let mut sim = CellSim::new(
        CellParams::midband(90, SchedulerPolicy::ProportionalFair),
        &ues,
        &SeedTree::new(78),
    );
    let mut sink = FlatStats { delivered_bits: vec![0; n_ues], records: 0 };
    // Warm-up: fill TBS memo panels for every slot shape, size the
    // scheduler scratch, reach the HARQ high-water mark on every UE.
    sim.run_into(1_500, &mut sink);
    let before = allocations();
    sim.run_into(300, &mut sink);
    let cell_allocs = allocations() - before;
    assert_eq!(
        cell_allocs, 0,
        "CellSim::step allocated {cell_allocs} times in steady state at {n_ues} UEs"
    );
    assert!(sink.records >= 1_800 * n_ues as u64, "every UE gets a DL record per slot");
    assert!(sink.delivered_bits.iter().any(|&b| b > 0), "cell delivered traffic");
}
