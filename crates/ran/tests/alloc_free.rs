//! Counting-allocator proof that the per-slot hot path is allocation-free
//! in steady state (ISSUE 2 acceptance criterion).
//!
//! This file installs a global allocator that counts every `alloc`/
//! `realloc`, warms a carrier past its transients (scratch-buffer sizing,
//! TBS-memo fills, HARQ queue high-water mark), and then asserts that tens
//! of thousands of further slots perform **zero** heap allocations — both
//! for `ChannelSimulator::step_at` alone and for the full `Carrier::step`
//! loop. It lives in its own integration-test binary so no concurrently
//! running test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use radio_channel::channel::{ChannelConfig, ChannelSimulator};
use radio_channel::geometry::{DeploymentLayout, Position};
use radio_channel::link::LinkModel;
use radio_channel::mobility::MobilityModel;
use radio_channel::rng::SeedTree;
use ran::carrier::{Carrier, TrafficPattern};
use ran::config::CellConfig;

struct CountingAllocator;

// Per-thread counter: the libtest harness allocates concurrently on its
// own threads, so a process-global counter makes the assertion flaky.
// The `const` initialiser keeps the TLS access itself allocation-free,
// and `try_with` tolerates accesses during TLS teardown.
thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.try_with(Cell::get).unwrap_or(0)
}

#[test]
fn slot_loop_steady_state_is_allocation_free() {
    // --- ChannelSimulator::step_at alone: stationary and driving. ---
    let seeds = SeedTree::new(77);
    let mut channel = ChannelSimulator::new(
        ChannelConfig::midband_urban(245),
        DeploymentLayout::three_site_dense(),
        MobilityModel::walking(Position::ORIGIN, 100.0),
        &seeds,
    );
    for _ in 0..1000 {
        channel.step();
    }
    let before = allocations();
    for _ in 0..20_000 {
        channel.step();
    }
    let pos = Position::new(60.0, 10.0);
    for _ in 0..20_000 {
        channel.step_at(pos, 0.0);
    }
    let channel_allocs = allocations() - before;
    assert_eq!(
        channel_allocs, 0,
        "ChannelSimulator::step_at allocated {channel_allocs} times in steady state"
    );

    // --- Full Carrier::step at a mid-range spot (BLER ≈ OLLA target, so
    // HARQ retransmissions and MCS/layer churn are all exercised). ---
    let cfg = CellConfig::midband(90, "DDDSU");
    let spot = Position::new(280.0, 0.0);
    let channel = ChannelSimulator::new(
        ChannelConfig::midband_urban(cfg.n_rb),
        DeploymentLayout::three_site_dense(),
        MobilityModel::Stationary { position: spot },
        &seeds,
    );
    let mut carrier = Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &seeds);
    // Warm-up: fill the TBS memo panels for every slot shape the TDD
    // pattern produces, let OLLA sweep the MCS range, and let the HARQ
    // queues reach their high-water mark.
    for _ in 0..20_000 {
        carrier.step(spot, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
    }
    let before = allocations();
    for _ in 0..50_000 {
        carrier.step(spot, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
    }
    let carrier_allocs = allocations() - before;
    assert_eq!(
        carrier_allocs, 0,
        "Carrier::step allocated {carrier_allocs} times in steady state"
    );
}
