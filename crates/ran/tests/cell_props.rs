//! The loaded-cell contention/fairness contract (ISSUE 6).
//!
//! Four property groups pin the cell engine down:
//!
//! 1. **RB conservation** — the integer grants of one slot never sum past
//!    the cell's budget, at the `split_prbs` level (exhaustively) and at
//!    the engine level (via a ledger sink and the audit counter).
//! 2. **Starvation freedom** — under proportional fair every backlogged
//!    UE is scheduled within a bounded window.
//! 3. **N=1 degeneration** — a one-UE cell replays the single-UE
//!    [`Carrier`] byte for byte, for every scheduling policy.
//! 4. **Legacy equivalence** — the engine agrees with the original
//!    `MultiUeSim` driver: exactly when per-UE shares land on integers
//!    (and for every whole-slot policy), within one PRB of rounding slack
//!    otherwise.

use radio_channel::channel::{ChannelConfig, ChannelSimulator};
use radio_channel::geometry::{DeploymentLayout, Position};
use radio_channel::link::LinkModel;
use radio_channel::mobility::MobilityModel;
use radio_channel::rng::SeedTree;
use ran::carrier::{Carrier, TrafficPattern};
use ran::cell::{CellParams, CellSim, CellSink, UeSpec};
use ran::config::CellConfig;
use ran::kpi::{Direction, KpiTrace, SlotKpi};
use ran::multiuser::{MultiUeParticipant, MultiUeSim};
use ran::scheduler::{split_prbs, SchedulerPolicy};

const POLICIES: [SchedulerPolicy; 4] = [
    SchedulerPolicy::EqualShare,
    SchedulerPolicy::RoundRobinSlots,
    SchedulerPolicy::MaxCqi,
    SchedulerPolicy::ProportionalFair,
];

fn ues_at(distances: &[f64]) -> Vec<UeSpec> {
    distances.iter().map(|&d| UeSpec::at(d, 0.0)).collect()
}

fn cell_run(
    bw_mhz: u32,
    distances: &[f64],
    seed: u64,
    policy: SchedulerPolicy,
    slots: u64,
) -> Vec<KpiTrace> {
    let mut sim = CellSim::new(CellParams::midband(bw_mhz, policy), &ues_at(distances), &SeedTree::new(seed));
    sim.run(slots)
}

/// The legacy driver, assembled exactly as its own tests assemble it.
fn multiuser_run(
    bw_mhz: u32,
    distances: &[f64],
    seed: u64,
    policy: SchedulerPolicy,
    slots: u64,
) -> Vec<KpiTrace> {
    let participants = distances
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let cfg = CellConfig::midband(bw_mhz, "DDDSU");
            let pos = Position::new(d, 0.0);
            let seeds = SeedTree::new(seed).child_indexed("ue", i as u64);
            let channel = ChannelSimulator::new(
                ChannelConfig::midband_urban(cfg.n_rb),
                DeploymentLayout::single_site(),
                MobilityModel::Stationary { position: pos },
                &seeds,
            );
            MultiUeParticipant {
                carrier: Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &seeds),
                position: pos,
                active: true,
            }
        })
        .collect();
    MultiUeSim::new(participants, policy).run(slots)
}

// ---------------------------------------------------------------------------
// 1. RB conservation
// ---------------------------------------------------------------------------

#[test]
fn split_prbs_conserves_budget_and_balances() {
    // Exhaustive over realistic budgets (the N_RB of every carrier the
    // repo instantiates, plus tiny and odd ones) and user counts beyond
    // the budget, across a full rotation of slots.
    for budget in [1u16, 2, 7, 51, 106, 133, 162, 245, 273] {
        for k in 1usize..=40 {
            for slot in 0..(k as u64 + 3) {
                let grants: Vec<u16> =
                    (0..k).map(|rank| split_prbs(budget, k, rank, slot)).collect();
                let sum: u32 = grants.iter().map(|&g| u32::from(g)).sum();
                assert_eq!(
                    sum,
                    u32::from(budget),
                    "budget {budget} k {k} slot {slot}: grants sum to {sum}"
                );
                let max = grants.iter().max().copied().unwrap_or(0);
                let min = grants.iter().min().copied().unwrap_or(0);
                assert!(max - min <= 1, "budget {budget} k {k}: imbalance {min}..{max}");
            }
        }
    }
    assert_eq!(split_prbs(162, 0, 0, 0), 0, "no eligible UEs, no grant");
}

/// Ledger sink: per slot, sums the granted PRBs per direction and checks
/// the cell budget the moment the slot rolls over.
struct RbLedger {
    dl_budget: u32,
    ul_budget: u32,
    cur_slot: u64,
    dl_sum: u32,
    ul_sum: u32,
    slots_checked: u64,
}

impl RbLedger {
    fn new(dl_budget: u16, ul_budget: u16) -> Self {
        RbLedger {
            dl_budget: u32::from(dl_budget),
            ul_budget: u32::from(ul_budget),
            cur_slot: 0,
            dl_sum: 0,
            ul_sum: 0,
            slots_checked: 0,
        }
    }

    fn check(&mut self) {
        assert!(
            self.dl_sum <= self.dl_budget,
            "slot {}: DL grants {} exceed budget {}",
            self.cur_slot,
            self.dl_sum,
            self.dl_budget
        );
        assert!(
            self.ul_sum <= self.ul_budget,
            "slot {}: UL grants {} exceed budget {}",
            self.cur_slot,
            self.ul_sum,
            self.ul_budget
        );
        self.slots_checked += 1;
    }
}

impl CellSink for RbLedger {
    fn push(&mut self, _ue: u32, kpi: &SlotKpi) {
        if kpi.slot != self.cur_slot {
            self.check();
            self.cur_slot = kpi.slot;
            self.dl_sum = 0;
            self.ul_sum = 0;
        }
        match kpi.direction {
            Direction::Dl => self.dl_sum += u32::from(kpi.n_prb),
            Direction::Ul => self.ul_sum += u32::from(kpi.n_prb),
        }
    }

    fn finish(&mut self) {
        self.check();
    }
}

#[test]
fn engine_never_allocates_past_the_budget() {
    // Odd UE counts force non-zero remainders (162 % 7 = 1); 200 UEs on a
    // shrunken budget force the k > budget path. Audit mode counts the
    // same law through the RbBudgetConserved invariant — both detectors
    // must stay silent.
    obs::audit::set_enabled(true);
    obs::audit::reset();
    for (n_ues, policy) in [
        (7usize, SchedulerPolicy::EqualShare),
        (7, SchedulerPolicy::ProportionalFair),
        (13, SchedulerPolicy::EqualShare),
        (13, SchedulerPolicy::MaxCqi),
    ] {
        let distances: Vec<f64> = (0..n_ues).map(|i| 45.0 + 10.0 * i as f64).collect();
        let params = CellParams::midband(60, policy);
        let mut ledger =
            RbLedger::new(params.cell.n_rb, ran::scheduler::ul_prb_budget(&params.cell));
        let mut sim = CellSim::new(params, &ues_at(&distances), &SeedTree::new(61));
        sim.run_into(3_000, &mut ledger);
        assert_eq!(ledger.slots_checked, 3_000, "{n_ues} UEs: ledger missed slots");
    }
    assert_eq!(
        obs::audit::count(obs::audit::Invariant::RbBudgetConserved),
        0,
        "audit flagged an over-allocation the ledger missed"
    );
}

// ---------------------------------------------------------------------------
// 2. PF starvation freedom
// ---------------------------------------------------------------------------

/// Tracks, per UE, the largest gap between consecutive scheduled DL slots.
struct GapTracker {
    last: Vec<u64>,
    max_gap: Vec<u64>,
    scheduled: Vec<u64>,
    final_slot: u64,
}

impl GapTracker {
    fn new(n: usize) -> Self {
        GapTracker { last: vec![0; n], max_gap: vec![0; n], scheduled: vec![0; n], final_slot: 0 }
    }
}

impl CellSink for GapTracker {
    fn push(&mut self, ue: u32, kpi: &SlotKpi) {
        self.final_slot = kpi.slot;
        if kpi.direction == Direction::Dl && kpi.scheduled {
            let ue = ue as usize;
            let gap = kpi.slot - self.last[ue];
            if gap > self.max_gap[ue] {
                self.max_gap[ue] = gap;
            }
            self.last[ue] = kpi.slot;
            self.scheduled[ue] += 1;
        }
    }

    fn finish(&mut self) {
        // The window from a UE's last grant to the end of the run is a
        // gap too — a UE starved only at the tail must still fail.
        for ue in 0..self.last.len() {
            let tail = self.final_slot - self.last[ue];
            if tail > self.max_gap[ue] {
                self.max_gap[ue] = tail;
            }
        }
    }
}

#[test]
fn proportional_fair_schedules_every_backlogged_ue_within_a_window() {
    // Six full-buffer UEs spread over the serviceable range. PF's metric
    // grows as a UE's average rate decays (0.999/slot), so nobody can be
    // deferred long: a starved UE's CQI/avg ratio overtakes any served
    // UE's within a few hundred slots.
    let distances = [45.0, 60.0, 75.0, 90.0, 105.0, 117.0];
    let mut sim = CellSim::new(
        CellParams::midband(60, SchedulerPolicy::ProportionalFair),
        &ues_at(&distances),
        &SeedTree::new(62),
    );
    let mut gaps = GapTracker::new(distances.len());
    sim.run_into(20_000, &mut gaps);
    for (ue, (&n, &gap)) in gaps.scheduled.iter().zip(&gaps.max_gap).enumerate() {
        assert!(n > 500, "UE {ue} scheduled only {n} of 20000 slots");
        assert!(gap < 2_000, "UE {ue} went {gap} slots unscheduled");
    }
    // Contrast: max-CQI at the same spots has no such bound — the edge
    // UE's max gap dwarfs PF's.
    let mut greedy = CellSim::new(
        CellParams::midband(60, SchedulerPolicy::MaxCqi),
        &ues_at(&distances),
        &SeedTree::new(62),
    );
    let mut greedy_gaps = GapTracker::new(distances.len());
    greedy.run_into(20_000, &mut greedy_gaps);
    let pf_worst = gaps.max_gap.iter().max().copied().unwrap();
    let greedy_worst = greedy_gaps.max_gap.iter().max().copied().unwrap();
    assert!(
        greedy_worst > pf_worst * 4,
        "max-CQI worst gap {greedy_worst} vs PF {pf_worst}"
    );
}

// ---------------------------------------------------------------------------
// 3. N=1 degeneration to the single-UE Carrier
// ---------------------------------------------------------------------------

#[test]
fn one_ue_cell_replays_the_carrier_byte_for_byte() {
    let pos = Position::new(95.0, 0.0);
    let slots = 8_000u64;
    for policy in POLICIES {
        // Reference: a Carrier built from the same "ue"/0 subtree a
        // one-UE cell derives, saturating both directions at full share.
        let seeds = SeedTree::new(63);
        let ue_seeds = seeds.child_indexed("ue", 0);
        let cfg = CellConfig::midband(90, "DDDSU");
        let channel = ChannelSimulator::new(
            ChannelConfig::midband_urban(cfg.n_rb),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &ue_seeds,
        );
        let mut carrier = Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &ue_seeds);
        let mut reference = KpiTrace::new();
        for _ in 0..slots {
            let out = carrier.step(pos, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
            reference.push(out.dl);
            if let Some(ul) = out.ul {
                reference.push(ul);
            }
        }

        let mut params = CellParams::midband(90, policy);
        params.traffic = TrafficPattern::BOTH;
        let mut sim =
            CellSim::new(params, &[UeSpec { position: pos, active: true }], &seeds);
        let traces = sim.run(slots);
        assert_eq!(
            traces[0], reference,
            "{policy:?}: one-UE cell diverged from the Carrier"
        );
        assert!(reference.mean_throughput_mbps(Direction::Dl) > 50.0, "sanity: link alive");
    }
}

// ---------------------------------------------------------------------------
// 4. Equivalence with the legacy MultiUeSim
// ---------------------------------------------------------------------------

#[test]
fn cell_engine_matches_legacy_driver_exactly_when_shares_are_integral() {
    // 60 MHz = 162 RBs: equal splits over 2 or 3 UEs are integral, and
    // every whole-slot policy (RR / max-CQI / PF) grants the full budget
    // regardless of N — in all these cases the fractional-share legacy
    // path and the integer-grant engine must produce identical bytes.
    let cases: [(&[f64], SchedulerPolicy); 8] = [
        (&[45.0, 117.0], SchedulerPolicy::EqualShare),
        (&[45.0, 95.0, 135.0], SchedulerPolicy::EqualShare),
        (&[45.0, 117.0], SchedulerPolicy::ProportionalFair),
        (&[45.0, 95.0, 135.0], SchedulerPolicy::ProportionalFair),
        (&[45.0, 70.0, 95.0, 117.0], SchedulerPolicy::ProportionalFair),
        (&[45.0, 117.0], SchedulerPolicy::RoundRobinSlots),
        (&[45.0, 70.0, 95.0, 117.0], SchedulerPolicy::RoundRobinSlots),
        (&[45.0, 95.0, 135.0], SchedulerPolicy::MaxCqi),
    ];
    for (distances, policy) in cases {
        let legacy = multiuser_run(60, distances, 64, policy, 6_000);
        let cell = cell_run(60, distances, 64, policy, 6_000);
        for (ue, (l, c)) in legacy.iter().zip(&cell).enumerate() {
            assert_eq!(
                c, l,
                "{policy:?} N={} UE {ue}: engine diverged from legacy driver",
                distances.len()
            );
        }
    }
}

#[test]
fn cell_engine_matches_legacy_driver_within_rounding_otherwise() {
    // Four UEs on 162 RBs: the legacy driver rounds every share to 41
    // PRBs (over-allocating 164), the engine rotates {41,41,40,40}. The
    // adaptation trajectory (scheduling, CQI, MCS, HARQ, BLER draws) is
    // provably independent of the PRB count, so everything except the
    // allocation-sized fields must still match exactly, grants must agree
    // within one PRB, and throughput within the ~0.6% grant-size delta.
    let distances: &[f64] = &[45.0, 70.0, 95.0, 117.0];
    let legacy = multiuser_run(60, distances, 65, SchedulerPolicy::EqualShare, 6_000);
    let cell = cell_run(60, distances, 65, SchedulerPolicy::EqualShare, 6_000);
    for (ue, (l, c)) in legacy.iter().zip(&cell).enumerate() {
        assert_eq!(l.len(), c.len(), "UE {ue}: record counts differ");
        for (lr, cr) in l.iter().zip(c.iter()) {
            assert_eq!(lr.slot, cr.slot);
            assert_eq!(lr.direction, cr.direction);
            assert_eq!(lr.scheduled, cr.scheduled, "UE {ue} slot {}", lr.slot);
            assert_eq!(lr.cqi, cr.cqi, "UE {ue} slot {}", lr.slot);
            assert_eq!(lr.mcs, cr.mcs, "UE {ue} slot {}", lr.slot);
            assert_eq!(lr.layers, cr.layers);
            assert_eq!(lr.is_retx, cr.is_retx, "UE {ue} slot {}", lr.slot);
            assert_eq!(lr.block_error, cr.block_error, "UE {ue} slot {}", lr.slot);
            assert_eq!(lr.sinr_db, cr.sinr_db);
            let dprb = i32::from(lr.n_prb) - i32::from(cr.n_prb);
            assert!(dprb.abs() <= 1, "UE {ue} slot {}: Δn_prb {dprb}", lr.slot);
        }
        let lt = l.mean_throughput_mbps(Direction::Dl);
        let ct = c.mean_throughput_mbps(Direction::Dl);
        assert!(
            (lt - ct).abs() <= lt * 0.02 + 0.5,
            "UE {ue}: legacy {lt} Mbps vs engine {ct} Mbps"
        );
    }
}
