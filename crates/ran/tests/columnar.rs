//! AoS ↔ SoA equivalence: the columnar `KpiTrace` must be observationally
//! identical to a plain `Vec<SlotKpi>` baseline — same records back out,
//! same aggregates, same serialisation round-trip — for arbitrary record
//! streams, including ones that straddle chunk boundaries.

use proptest::prelude::*;
use ran::kpi::{Direction, KpiTrace, Modulation, SlotKpi, CHUNK_RECORDS};
use serde::{Deserialize, Serialize};

/// SplitMix64: small deterministic generator for record fields, so each
/// property case is fully determined by (seed, n) drawn from the runner.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }

    /// Uniform draw in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }
}

/// Build `n` records with non-decreasing slots (jumps of 0..3), covering
/// every modulation, both directions, and all flag combinations.
fn gen_records(seed: u64, n: usize) -> Vec<SlotKpi> {
    let mut rng = Mix(seed);
    let mut slot = 0u64;
    (0..n)
        .map(|_| {
            slot += rng.below(3);
            let n_prb = rng.below(274) as u16;
            let tbs_bits = rng.below(2_000_000) as u32;
            let block_error = rng.chance(5);
            SlotKpi {
                slot,
                time_s: slot as f64 * 0.0005,
                carrier: rng.below(3) as u8,
                direction: if rng.chance(3) { Direction::Ul } else { Direction::Dl },
                scheduled: !rng.chance(4),
                n_prb,
                n_re: u32::from(n_prb) * 144,
                mcs: rng.below(29) as u8,
                modulation: match rng.below(4) {
                    0 => Modulation::Qpsk,
                    1 => Modulation::Qam16,
                    2 => Modulation::Qam64,
                    _ => Modulation::Qam256,
                },
                layers: rng.below(5) as u8,
                tbs_bits,
                delivered_bits: if block_error { 0 } else { tbs_bits },
                is_retx: rng.chance(6),
                block_error,
                cqi: rng.below(16) as u8,
                sinr_db: rng.f64_in(-10.0, 40.0),
                rsrp_dbm: rng.f64_in(-130.0, -60.0),
                rsrq_db: -12.0,
                serving_site: rng.below(6) as u32,
            }
        })
        .collect()
}

/// Reference AoS implementations, straight off the record vector.
mod reference {
    use super::*;

    pub fn duration_s(records: &[SlotKpi]) -> f64 {
        let max_end = records
            .iter()
            .filter(|r| r.slot > 0)
            .map(|r| r.time_s + r.time_s / r.slot as f64)
            .fold(0.0f64, f64::max);
        if max_end > 0.0 {
            max_end
        } else {
            records.iter().map(|r| r.time_s).fold(0.0f64, f64::max)
        }
    }

    pub fn mean_throughput_mbps(records: &[SlotKpi], dir: Direction) -> f64 {
        let dur = duration_s(records);
        if dur <= 0.0 {
            return 0.0;
        }
        let bits: u64 = records
            .iter()
            .filter(|r| r.direction == dir)
            .map(|r| u64::from(r.delivered_bits))
            .sum();
        bits as f64 / dur / 1e6
    }

    pub fn throughput_series_mbps(records: &[SlotKpi], dir: Direction, bin_s: f64) -> Vec<f64> {
        let dur = duration_s(records);
        if dur <= 0.0 || bin_s <= 0.0 {
            return Vec::new();
        }
        let n_bins = ((dur / bin_s).ceil() as usize).max(1);
        let mut bits = vec![0u64; n_bins];
        for r in records.iter().filter(|r| r.direction == dir) {
            bits[((r.time_s / bin_s) as usize).min(n_bins - 1)] += u64::from(r.delivered_bits);
        }
        bits.into_iter().map(|b| b as f64 / bin_s / 1e6).collect()
    }

    pub fn dl_bler(records: &[SlotKpi]) -> f64 {
        let sched: Vec<&SlotKpi> = records
            .iter()
            .filter(|r| r.direction == Direction::Dl && r.scheduled)
            .collect();
        if sched.is_empty() {
            0.0
        } else {
            sched.iter().filter(|r| r.block_error).count() as f64 / sched.len() as f64
        }
    }

    pub fn layer_shares(records: &[SlotKpi]) -> [f64; 5] {
        let mut counts = [0u64; 5];
        let mut total = 0u64;
        for r in records.iter().filter(|r| r.direction == Direction::Dl && r.scheduled) {
            counts[(r.layers as usize).min(4)] += 1;
            total += 1;
        }
        let mut shares = [0.0; 5];
        if total > 0 {
            for (s, &n) in shares.iter_mut().zip(&counts) {
                *s = n as f64 / total as f64;
            }
        }
        shares
    }
}

proptest! {
    #[test]
    fn columnar_trace_is_observationally_identical_to_aos(
        seed in 0u64..1_000_000,
        n in 0usize..600,
    ) {
        let records = gen_records(seed, n);
        let trace: KpiTrace = records.iter().copied().collect();

        // Round-trip through the columns.
        prop_assert_eq!(trace.len(), records.len());
        prop_assert!(trace.iter().eq(records.iter().copied()));
        for probe in [0, records.len() / 2, records.len().saturating_sub(1)] {
            prop_assert_eq!(trace.get(probe), records.get(probe).copied());
        }
        prop_assert_eq!(trace.last(), records.last().copied());

        // Aggregations match the AoS reference implementations.
        prop_assert!((trace.duration_s() - reference::duration_s(&records)).abs() < 1e-12);
        for dir in [Direction::Dl, Direction::Ul] {
            prop_assert!(
                (trace.mean_throughput_mbps(dir)
                    - reference::mean_throughput_mbps(&records, dir))
                .abs()
                    < 1e-9
            );
            let a = trace.throughput_series_mbps(dir, 0.01);
            let b = reference::throughput_series_mbps(&records, dir, 0.01);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
        prop_assert!((trace.dl_bler() - reference::dl_bler(&records)).abs() < 1e-12);
        prop_assert_eq!(trace.layer_shares(), reference::layer_shares(&records));

        // CQI filter views partition the trace.
        let good = trace.filter_cqi_at_least(10);
        let bad = trace.filter_cqi_below(10);
        prop_assert_eq!(good.len() + bad.len(), trace.len());
        prop_assert!(good.iter().all(|r| r.cqi >= 10));
        prop_assert!(bad.iter().all(|r| r.cqi < 10));
        prop_assert_eq!(good.to_trace().len(), good.len());
    }

    #[test]
    fn columnar_serde_roundtrip(seed in 0u64..1_000_000, n in 0usize..300) {
        let records = gen_records(seed, n);
        let trace: KpiTrace = records.iter().copied().collect();
        let back = KpiTrace::from_value(&trace.to_value()).expect("decode own encoding");
        prop_assert_eq!(&trace, &back);
        prop_assert!((trace.duration_s() - back.duration_s()).abs() < 1e-12);
    }
}

#[test]
fn chunk_boundary_exactness() {
    // Exercise the full-chunk path deterministically: bitset words of full
    // chunks must concatenate exactly through serialisation.
    let n = CHUNK_RECORDS + 64;
    let records: Vec<SlotKpi> = (0..n as u64)
        .map(|i| {
            let mut r = SlotKpi::idle(
                i,
                i as f64 * 0.0005,
                0,
                if i % 2 == 0 { Direction::Dl } else { Direction::Ul },
                10,
                15.0,
                -85.0,
                -11.0,
                0,
            );
            r.scheduled = i % 3 == 0;
            r.is_retx = i % 5 == 0;
            r.block_error = i % 7 == 0;
            r
        })
        .collect();
    let trace: KpiTrace = records.iter().copied().collect();
    let back = KpiTrace::from_value(&trace.to_value()).unwrap();
    assert_eq!(trace, back);
    assert!(back.iter().eq(records.iter().copied()));
}
