//! RB allocation per slot.
//!
//! The paper observes (§4.1, Fig. 4) that during saturating transfers every
//! operator allocates close to the maximum RBs to the measuring UE — so the
//! single-UE scheduler is a full-allocation scheduler. Overheads are where
//! real deployments differ from naive accounting: 1 PDCCH symbol, 2-symbol
//! DM-RS (24 REs) and ~1 symbol's worth of CSI-RS/TRS overhead per PRB.
//! With several UEs ([`crate::multiuser`]) the frequency domain is split
//! per the configured policy, which is how Fig. 14's "RBs halve with two
//! active users" arises.

use crate::config::CellConfig;
use nr_phy::resource::RbAllocation;
use serde::{Deserialize, Serialize};

/// DM-RS REs per PRB for the 2-symbol type-A mapping used at rank 3–4.
pub const DMRS_RE_PER_PRB: u16 = 24;

/// Other overhead REs per PRB (CSI-RS, TRS, PT-RS budget).
pub const OVERHEAD_RE_PER_PRB: u16 = 12;

/// PDCCH control symbols at the head of a DL slot.
pub const PDCCH_SYMBOLS: u8 = 1;

/// How a cell splits RBs among active UEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Equal instantaneous share of PRBs every slot (frequency-domain
    /// round-robin; what Fig. 14's RB counts show).
    EqualShare,
    /// Time-domain round-robin: one UE owns the whole slot, rotating.
    RoundRobinSlots,
    /// Proportional fair: slot goes to the UE maximising instantaneous
    /// rate / long-term average rate.
    ProportionalFair,
}

/// DL allocation for a UE holding `share` (0..=1] of the carrier in this
/// slot; `None` when the slot carries no DL symbols.
pub fn dl_allocation(cfg: &CellConfig, slot: u64, share: f64) -> Option<RbAllocation> {
    let symbols = cfg.dl_symbols(slot);
    if symbols == 0 {
        return None;
    }
    let n_prb = ((cfg.n_rb as f64 * share).round() as u16).clamp(1, cfg.n_rb);
    Some(RbAllocation {
        n_prb,
        n_symbols: symbols.saturating_sub(PDCCH_SYMBOLS),
        dmrs_re_per_prb: DMRS_RE_PER_PRB,
        overhead_re_per_prb: OVERHEAD_RE_PER_PRB,
    })
}

/// UL allocation for a UE holding `share` of the carrier's UL RBs this
/// slot; `None` when the slot carries no UL symbols. The cell-level
/// `ul_rb_fraction` (operators reserving UL RBs) is applied on top.
pub fn ul_allocation(cfg: &CellConfig, slot: u64, share: f64) -> Option<RbAllocation> {
    let symbols = cfg.ul_symbols(slot);
    if symbols == 0 {
        return None;
    }
    let frac = (cfg.ul_rb_fraction * share).clamp(0.0, 1.0);
    let n_prb = ((cfg.n_rb as f64 * frac).round() as u16).clamp(1, cfg.n_rb);
    Some(RbAllocation {
        n_prb,
        n_symbols: symbols, // no PDCCH inside UL symbols
        dmrs_re_per_prb: 12,
        overhead_re_per_prb: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellConfig {
        CellConfig::midband(90, "DDDSU")
    }

    #[test]
    fn full_share_allocates_all_rbs() {
        let a = dl_allocation(&cell(), 0, 1.0).unwrap();
        assert_eq!(a.n_prb, 245);
        assert_eq!(a.n_symbols, 13);
        // 12·13 − 24 − 12 = 120 data REs per PRB.
        assert_eq!(a.re_per_prb(), 120);
    }

    #[test]
    fn half_share_halves_prbs() {
        let a = dl_allocation(&cell(), 0, 0.5).unwrap();
        assert_eq!(a.n_prb, 123); // round(245/2)
    }

    #[test]
    fn ul_slot_has_no_dl_allocation() {
        assert!(dl_allocation(&cell(), 4, 1.0).is_none());
        assert!(ul_allocation(&cell(), 4, 1.0).is_some());
        assert!(ul_allocation(&cell(), 0, 1.0).is_none());
    }

    #[test]
    fn special_slot_shrinks_symbols() {
        let a = dl_allocation(&cell(), 3, 1.0).unwrap();
        assert_eq!(a.n_symbols, 9); // 10 DL symbols − 1 PDCCH
        let u = ul_allocation(&cell(), 3, 1.0).unwrap();
        assert_eq!(u.n_symbols, 2);
    }

    #[test]
    fn ul_rb_fraction_applies() {
        let mut c = cell();
        c.ul_rb_fraction = 0.4;
        let a = ul_allocation(&c, 4, 1.0).unwrap();
        assert_eq!(a.n_prb, 98); // round(245·0.4)
    }

    #[test]
    fn allocation_never_zero_prbs() {
        let a = dl_allocation(&cell(), 0, 0.0001).unwrap();
        assert_eq!(a.n_prb, 1);
    }
}
