//! RB allocation per slot.
//!
//! The paper observes (§4.1, Fig. 4) that during saturating transfers every
//! operator allocates close to the maximum RBs to the measuring UE — so the
//! single-UE scheduler is a full-allocation scheduler. Overheads are where
//! real deployments differ from naive accounting: 1 PDCCH symbol, 2-symbol
//! DM-RS (24 REs) and ~1 symbol's worth of CSI-RS/TRS overhead per PRB.
//! With several UEs ([`crate::multiuser`]) the frequency domain is split
//! per the configured policy, which is how Fig. 14's "RBs halve with two
//! active users" arises.

use crate::config::CellConfig;
use nr_phy::resource::RbAllocation;
use obs::audit::{self, Invariant};
use serde::{Deserialize, Serialize};

/// DM-RS REs per PRB for the 2-symbol type-A mapping used at rank 3–4.
pub const DMRS_RE_PER_PRB: u16 = 24;

/// Other overhead REs per PRB (CSI-RS, TRS, PT-RS budget).
pub const OVERHEAD_RE_PER_PRB: u16 = 12;

/// PDCCH control symbols at the head of a DL slot.
pub const PDCCH_SYMBOLS: u8 = 1;

/// How a cell splits RBs among active UEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Equal instantaneous share of PRBs every slot (frequency-domain
    /// round-robin; what Fig. 14's RB counts show).
    EqualShare,
    /// Time-domain round-robin: one UE owns the whole slot, rotating.
    RoundRobinSlots,
    /// Max-CQI: the whole slot goes to the UE with the best reported CQI
    /// (first index wins ties). The throughput-maximising, fairness-free
    /// comparison policy.
    MaxCqi,
    /// Proportional fair: slot goes to the UE maximising instantaneous
    /// rate / long-term average rate.
    ProportionalFair,
}

/// DL allocation of exactly `n_prb` PRBs in this slot; `None` when the
/// slot carries no DL symbols or the grant is empty. This is the cell
/// scheduler's primitive: per-UE integer grants that sum to at most the
/// RB budget ([`split_prbs`]).
pub fn dl_allocation_prbs(cfg: &CellConfig, slot: u64, n_prb: u16) -> Option<RbAllocation> {
    let symbols = cfg.dl_symbols(slot);
    if symbols == 0 || n_prb == 0 {
        return None;
    }
    if audit::enabled() {
        audit::check(Invariant::RbWithinCarrier, n_prb <= cfg.n_rb);
    }
    Some(RbAllocation {
        n_prb,
        n_symbols: symbols.saturating_sub(PDCCH_SYMBOLS),
        dmrs_re_per_prb: DMRS_RE_PER_PRB,
        overhead_re_per_prb: OVERHEAD_RE_PER_PRB,
    })
}

/// UL allocation of exactly `n_prb` PRBs in this slot; `None` when the
/// slot carries no UL symbols or the grant is empty.
pub fn ul_allocation_prbs(cfg: &CellConfig, slot: u64, n_prb: u16) -> Option<RbAllocation> {
    let symbols = cfg.ul_symbols(slot);
    if symbols == 0 || n_prb == 0 {
        return None;
    }
    if audit::enabled() {
        audit::check(Invariant::RbWithinCarrier, n_prb <= cfg.n_rb);
    }
    Some(RbAllocation {
        n_prb,
        n_symbols: symbols, // no PDCCH inside UL symbols
        dmrs_re_per_prb: 12,
        overhead_re_per_prb: 0,
    })
}

/// The cell's UL PRB budget: the carrier scaled by `ul_rb_fraction`
/// (operators reserving UL RBs), at least 1 PRB.
pub fn ul_prb_budget(cfg: &CellConfig) -> u16 {
    ((cfg.n_rb as f64 * cfg.ul_rb_fraction.clamp(0.0, 1.0)).round() as u16).clamp(1, cfg.n_rb)
}

/// The PRBs granted to the UE at `rank` (0-based) when `budget` PRBs are
/// split equally across `k` UEs: everyone gets `budget / k`, and the
/// `budget % k` leftover PRBs rotate through the ranks with `slot` so no
/// fixed subset is systematically favoured. The grants of one slot sum to
/// exactly `min(budget, …)` — never more — which is the RB-conservation
/// law `ran/tests/cell_props.rs` pins down. With `k > budget`, only the
/// `budget` ranks nearest the rotation point get a (1-PRB) grant.
pub fn split_prbs(budget: u16, k: usize, rank: usize, slot: u64) -> u16 {
    if k == 0 {
        return 0;
    }
    let base = budget / k as u16;
    let rem = (budget % k as u16) as usize;
    let rotated = (rank + (slot as usize % k)) % k;
    base + u16::from(rotated < rem)
}

/// DL allocation for a UE holding `share` (0..=1] of the carrier in this
/// slot; `None` when the slot carries no DL symbols.
pub fn dl_allocation(cfg: &CellConfig, slot: u64, share: f64) -> Option<RbAllocation> {
    let n_prb = ((cfg.n_rb as f64 * share).round() as u16).clamp(1, cfg.n_rb);
    dl_allocation_prbs(cfg, slot, n_prb)
}

/// UL allocation for a UE holding `share` of the carrier's UL RBs this
/// slot; `None` when the slot carries no UL symbols. The cell-level
/// `ul_rb_fraction` (operators reserving UL RBs) is applied on top.
pub fn ul_allocation(cfg: &CellConfig, slot: u64, share: f64) -> Option<RbAllocation> {
    let frac = (cfg.ul_rb_fraction * share).clamp(0.0, 1.0);
    let n_prb = ((cfg.n_rb as f64 * frac).round() as u16).clamp(1, cfg.n_rb);
    ul_allocation_prbs(cfg, slot, n_prb)
}

/// Precomputed per-TDD-cycle allocations for one (cell, share) pair.
///
/// [`dl_allocation`]/[`ul_allocation`] are pure functions of
/// `(cfg, slot % pattern_len, share)` — the TDD pattern repeats every
/// `pattern_len` slots (period 1 for FDD) — so a [`crate::carrier::Carrier`]
/// computes one cycle up front and indexes per slot instead of re-deriving
/// symbol counts and PRB rounding 2000 times a second. Lookups for a
/// different share than the table was built for (the multi-UE drivers pass
/// per-slot splits) fall through to the direct computation, which is
/// allocation-free either way.
#[derive(Debug, Clone)]
pub struct AllocationTable {
    period: u64,
    dl_share: f64,
    ul_share: f64,
    dl: Vec<Option<RbAllocation>>,
    ul: Vec<Option<RbAllocation>>,
}

impl AllocationTable {
    /// Precompute one TDD cycle of DL/UL allocations at the given shares.
    pub fn new(cfg: &CellConfig, dl_share: f64, ul_share: f64) -> Self {
        let period = cfg.tdd.as_ref().map(|p| p.len() as u64).unwrap_or(1).max(1);
        AllocationTable {
            period,
            dl_share,
            ul_share,
            dl: (0..period).map(|s| dl_allocation(cfg, s, dl_share)).collect(),
            ul: (0..period).map(|s| ul_allocation(cfg, s, ul_share)).collect(),
        }
    }

    /// DL allocation for `slot`, bit-identical to
    /// `dl_allocation(cfg, slot, share)`.
    pub fn dl(&self, cfg: &CellConfig, slot: u64, share: f64) -> Option<RbAllocation> {
        if share == self.dl_share {
            self.dl[(slot % self.period) as usize]
        } else {
            dl_allocation(cfg, slot, share)
        }
    }

    /// UL allocation for `slot`, bit-identical to
    /// `ul_allocation(cfg, slot, share)`.
    pub fn ul(&self, cfg: &CellConfig, slot: u64, share: f64) -> Option<RbAllocation> {
        if share == self.ul_share {
            self.ul[(slot % self.period) as usize]
        } else {
            ul_allocation(cfg, slot, share)
        }
    }

    /// Whether `slot` carries any UL symbols (share-independent: presence
    /// only depends on the pattern's symbol counts).
    pub fn has_ul(&self, slot: u64) -> bool {
        self.ul[(slot % self.period) as usize].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellConfig {
        CellConfig::midband(90, "DDDSU")
    }

    #[test]
    fn full_share_allocates_all_rbs() {
        let a = dl_allocation(&cell(), 0, 1.0).unwrap();
        assert_eq!(a.n_prb, 245);
        assert_eq!(a.n_symbols, 13);
        // 12·13 − 24 − 12 = 120 data REs per PRB.
        assert_eq!(a.re_per_prb(), 120);
    }

    #[test]
    fn half_share_halves_prbs() {
        let a = dl_allocation(&cell(), 0, 0.5).unwrap();
        assert_eq!(a.n_prb, 123); // round(245/2)
    }

    #[test]
    fn ul_slot_has_no_dl_allocation() {
        assert!(dl_allocation(&cell(), 4, 1.0).is_none());
        assert!(ul_allocation(&cell(), 4, 1.0).is_some());
        assert!(ul_allocation(&cell(), 0, 1.0).is_none());
    }

    #[test]
    fn special_slot_shrinks_symbols() {
        let a = dl_allocation(&cell(), 3, 1.0).unwrap();
        assert_eq!(a.n_symbols, 9); // 10 DL symbols − 1 PDCCH
        let u = ul_allocation(&cell(), 3, 1.0).unwrap();
        assert_eq!(u.n_symbols, 2);
    }

    #[test]
    fn ul_rb_fraction_applies() {
        let mut c = cell();
        c.ul_rb_fraction = 0.4;
        let a = ul_allocation(&c, 4, 1.0).unwrap();
        assert_eq!(a.n_prb, 98); // round(245·0.4)
    }

    #[test]
    fn allocation_never_zero_prbs() {
        let a = dl_allocation(&cell(), 0, 0.0001).unwrap();
        assert_eq!(a.n_prb, 1);
    }

    #[test]
    fn allocation_table_matches_direct_computation() {
        let mut tdd = cell();
        tdd.ul_rb_fraction = 0.6;
        let fdd = {
            use nr_phy::band::Band;
            use nr_phy::numerology::Numerology;
            CellConfig::fdd(Band::N25, 20, Numerology::Mu0)
        };
        for cfg in [&tdd, &fdd] {
            let table = AllocationTable::new(cfg, 1.0, 1.0);
            for slot in 0..40u64 {
                assert_eq!(table.dl(cfg, slot, 1.0), dl_allocation(cfg, slot, 1.0));
                assert_eq!(table.ul(cfg, slot, 1.0), ul_allocation(cfg, slot, 1.0));
                assert_eq!(table.has_ul(slot), cfg.ul_symbols(slot) > 0);
                // Off-table shares fall through to the direct path.
                assert_eq!(table.dl(cfg, slot, 0.5), dl_allocation(cfg, slot, 0.5));
                assert_eq!(table.ul(cfg, slot, 0.25), ul_allocation(cfg, slot, 0.25));
            }
        }
    }
}
