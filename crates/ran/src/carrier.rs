//! One component carrier of one UE: the per-slot adaptation loop.
//!
//! Every slot this module executes the paper's Fig. 21 cycle — channel
//! evolution, (periodic) CSI feedback, scheduling with the vendor CQI→MCS
//! policy + OLLA, TBS computation, BLER draw and HARQ bookkeeping — and
//! emits the slot's KPI records.

use crate::amc::{AmcState, OllaConfig};
use crate::config::CellConfig;
use crate::harq::{HarqConfig, HarqEntity};
use crate::kpi::{Direction, SlotKpi};
use crate::scheduler::AllocationTable;
use crate::traffic::{TrafficSource, TrafficState};
use nr_phy::csi::DEFAULT_CSI_PERIOD_SLOTS;
use nr_phy::tbs::TbsCache;
use obs::audit::{self, Invariant};
use obs::Counter;
use radio_channel::channel::{ChannelSimulator, ChannelState};
use radio_channel::geometry::Position;
use radio_channel::link::LinkModel;
use radio_channel::rng::SeedTree;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// Which directions carry saturating traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficPattern {
    /// Full-buffer downlink (iPerf DL).
    pub dl: bool,
    /// Full-buffer uplink (iPerf UL).
    pub ul: bool,
}

impl TrafficPattern {
    /// DL-only saturation.
    pub const DL: TrafficPattern = TrafficPattern { dl: true, ul: false };
    /// UL-only saturation.
    pub const UL: TrafficPattern = TrafficPattern { dl: false, ul: true };
    /// Both directions.
    pub const BOTH: TrafficPattern = TrafficPattern { dl: true, ul: true };
}

/// The output of one carrier slot.
#[derive(Debug, Clone)]
pub struct CarrierSlotOutput {
    /// The DL record (present every slot; unscheduled on UL-only slots).
    pub dl: SlotKpi,
    /// The UL record, when the slot carries UL symbols.
    pub ul: Option<SlotKpi>,
    /// The channel truth used this slot.
    pub channel: ChannelState,
}

/// Stream labels for the first few carrier indices, so the common case
/// opens its BLER stream without a `format!` allocation. The bytes match
/// `format!("carrier{index}/bler")` exactly — labels key RNG streams, so
/// they must never drift.
const CARRIER_BLER_LABELS: [&str; 8] = [
    "carrier0/bler",
    "carrier1/bler",
    "carrier2/bler",
    "carrier3/bler",
    "carrier4/bler",
    "carrier5/bler",
    "carrier6/bler",
    "carrier7/bler",
];

/// Cached metric handles shared by every carrier. Handles are resolved
/// once at construction so the per-slot path is pure atomic adds
/// (`ran/tests/alloc_free.rs` holds with these compiled in).
#[derive(Debug, Clone, Copy)]
struct CarrierMetrics {
    slots: Counter,
    retx: Counter,
    block_errors: Counter,
    delivered_bits: Counter,
}

impl CarrierMetrics {
    fn new() -> Self {
        let reg = obs::registry();
        CarrierMetrics {
            slots: reg.counter("ran.slots"),
            retx: reg.counter("ran.retx"),
            block_errors: reg.counter("ran.block_errors"),
            delivered_bits: reg.counter("ran.delivered_bits"),
        }
    }
}

/// One component carrier bound to one UE.
#[derive(Debug, Clone)]
pub struct Carrier {
    /// Cell configuration (public: profiles and tests inspect it; callers
    /// that mutate TDD/bandwidth fields after construction must call
    /// [`Carrier::rebuild_allocation_table`]).
    pub cfg: CellConfig,
    index: u8,
    channel: ChannelSimulator,
    link: LinkModel,
    amc: AmcState,
    dl_harq: HarqEntity,
    ul_harq: HarqEntity,
    dl_traffic: TrafficState,
    ul_traffic: TrafficState,
    rng: ChaCha12Rng,
    slot: u64,
    csi_period: u64,
    ewma_sinr_db: f64,
    prev_rank: u8,
    /// Per-TDD-cycle RB allocations at full share (the single-UE case).
    alloc_table: AllocationTable,
    /// Memoised §5.1.3.2 TBS results (inputs cycle with the TDD pattern
    /// and CSI period; DL and UL share the memo — `n_re` disambiguates).
    tbs_cache: TbsCache,
    metrics: CarrierMetrics,
}

impl Carrier {
    /// Build a carrier. `index` distinguishes CCs of an aggregate (0 =
    /// PCell); seeds should be scoped per session.
    pub fn new(
        cfg: CellConfig,
        index: u8,
        channel: ChannelSimulator,
        link: LinkModel,
        seeds: &SeedTree,
    ) -> Self {
        let rng = match CARRIER_BLER_LABELS.get(index as usize) {
            Some(&label) => seeds.stream_static(label),
            None => seeds.stream(&format!("carrier{index}/bler")),
        };
        let alloc_table = AllocationTable::new(&cfg, 1.0, 1.0);
        Carrier {
            cfg,
            index,
            channel,
            link,
            amc: AmcState::new(OllaConfig::default()),
            dl_harq: HarqEntity::new(HarqConfig::default()),
            ul_harq: HarqEntity::new(HarqConfig::default()),
            dl_traffic: TrafficState::new(TrafficSource::FullBuffer, seeds, "dl"),
            ul_traffic: TrafficState::new(TrafficSource::FullBuffer, seeds, "ul"),
            rng,
            slot: 0,
            csi_period: DEFAULT_CSI_PERIOD_SLOTS,
            ewma_sinr_db: 15.0,
            prev_rank: 2,
            alloc_table,
            tbs_cache: TbsCache::new(),
            metrics: CarrierMetrics::new(),
        }
    }

    /// Recompute the precomputed allocation table (and drop the TBS memo)
    /// after a post-construction `cfg` mutation that changes the TDD
    /// pattern, bandwidth, or UL RB fraction.
    pub fn rebuild_allocation_table(&mut self) {
        self.alloc_table = AllocationTable::new(&self.cfg, 1.0, 1.0);
        self.tbs_cache = TbsCache::new();
    }

    /// Replace the DL traffic source (default: full buffer). `seeds`
    /// should be the same tree the carrier was built with so results stay
    /// reproducible.
    pub fn set_dl_traffic(&mut self, source: TrafficSource, seeds: &SeedTree) {
        self.dl_traffic = TrafficState::new(source, seeds, "dl");
    }

    /// Replace the UL traffic source (default: full buffer).
    pub fn set_ul_traffic(&mut self, source: TrafficSource, seeds: &SeedTree) {
        self.ul_traffic = TrafficState::new(source, seeds, "ul");
    }

    /// Inspect the DL traffic state (offered/delivered accounting).
    pub fn dl_traffic(&self) -> &TrafficState {
        &self.dl_traffic
    }

    /// Override the OLLA configuration (ablation experiments).
    pub fn set_olla(&mut self, olla: OllaConfig) {
        self.amc = AmcState::new(olla);
    }

    /// Override the HARQ configuration (ablation experiments).
    pub fn set_harq(&mut self, harq: HarqConfig) {
        self.dl_harq = HarqEntity::new(harq);
        self.ul_harq = HarqEntity::new(harq);
    }

    /// Override the CSI reporting period in slots.
    pub fn set_csi_period(&mut self, slots: u64) {
        self.csi_period = slots.max(1);
    }

    /// Carrier index within the aggregate.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Slot duration of this carrier, seconds.
    pub fn slot_s(&self) -> f64 {
        self.cfg.slot_s()
    }

    /// Latest CQI known to the gNB (drives NSA UL routing).
    pub fn current_cqi(&self) -> u8 {
        self.amc.csi().cqi.value()
    }

    /// Advance one slot of this carrier.
    ///
    /// * `position`/`moved_m` come from the UE-level mobility step;
    /// * `traffic` selects saturating directions;
    /// * `ul_on_nr` gates the UL leg (false when NSA routing sent UL to
    ///   LTE this slot);
    /// * `dl_share`/`ul_share` are the fraction of the carrier granted to
    ///   this UE (1.0 when alone; the multi-UE driver passes splits).
    pub fn step(
        &mut self,
        position: Position,
        moved_m: f64,
        traffic: TrafficPattern,
        ul_on_nr: bool,
        dl_share: f64,
        ul_share: f64,
    ) -> CarrierSlotOutput {
        let slot = self.slot;
        self.slot += 1;
        let time_s = slot as f64 * self.slot_s();

        let ch = self.channel.step_at(position, moved_m);
        self.dl_traffic.arrive(self.cfg.slot_s());
        self.ul_traffic.arrive(self.cfg.slot_s());

        // UE side: smooth the SINR the way CQI filtering does, and report
        // CSI every period.
        self.ewma_sinr_db = 0.9 * self.ewma_sinr_db + 0.1 * ch.sinr_db;
        if slot.is_multiple_of(self.csi_period) {
            let csi = AmcState::make_csi(&self.link, self.ewma_sinr_db, self.prev_rank);
            self.prev_rank = csi.ri;
            self.amc.update_csi(csi);
        }
        let cqi = self.amc.csi().cqi.value();
        self.metrics.slots.inc();
        if audit::enabled() {
            audit::check(Invariant::CqiRange, cqi <= 15);
        }

        let dl = if traffic.dl && self.dl_traffic.has_data() {
            self.dl_step(slot, time_s, cqi, &ch, dl_share)
        } else {
            SlotKpi::idle(
                slot,
                time_s,
                self.index,
                Direction::Dl,
                cqi,
                ch.sinr_db,
                ch.measurement.rsrp_dbm,
                ch.measurement.rsrq_db,
                ch.serving_site,
            )
        };

        let ul = if self.alloc_table.has_ul(slot) {
            Some(if traffic.ul && ul_on_nr && self.ul_traffic.has_data() {
                self.ul_step(slot, time_s, cqi, &ch, ul_share)
            } else {
                SlotKpi::idle(
                    slot,
                    time_s,
                    self.index,
                    Direction::Ul,
                    cqi,
                    ch.sinr_db,
                    ch.measurement.rsrp_dbm,
                    ch.measurement.rsrq_db,
                    ch.serving_site,
                )
            })
        } else {
            None
        };

        CarrierSlotOutput { dl, ul, channel: ch }
    }

    fn dl_step(
        &mut self,
        slot: u64,
        time_s: f64,
        cqi: u8,
        ch: &ChannelState,
        share: f64,
    ) -> SlotKpi {
        let alloc = self.alloc_table.dl(&self.cfg, slot, share);
        // No DL symbols this slot, or the UE reported out-of-range (CQI 0):
        // nothing is scheduled (a real gNB cannot close the link either).
        let (Some(alloc), false) = (alloc, cqi == 0) else {
            return SlotKpi::idle(
                slot,
                time_s,
                self.index,
                Direction::Dl,
                cqi,
                ch.sinr_db,
                ch.measurement.rsrp_dbm,
                ch.measurement.rsrq_db,
                ch.serving_site,
            );
        };
        let grant = self.amc.dl_grant(&self.cfg);
        let table = grant.format.effective_mcs_table(self.cfg.mcs_table());
        let modulation = table.modulation(grant.mcs).unwrap_or(nr_phy::mcs::Modulation::Qpsk);

        // Retransmission takes priority over new data; fresh transport
        // blocks are sized to the queued backlog (a rate-limited source
        // produces smaller TBs than the allocation could carry).
        let (tbs_bits, attempts, is_retx) = match self.dl_harq.pop_ready(slot) {
            Some(tb) => (tb.tbs_bits, tb.attempts + 1, true),
            None => {
                let full =
                    self.tbs_cache.transport_block_size(&alloc, table, grant.mcs, grant.layers);
                (self.dl_traffic.consume(full), 1, false)
            }
        };

        let bonus = self.dl_harq.combining_bonus_db(attempts);
        let p_err = self.link.bler(ch.sinr_db + bonus, table, grant.mcs);
        let failed = self.rng.gen::<f64>() < p_err;
        if failed {
            self.dl_harq.record_failure(tbs_bits, attempts, slot);
        }
        self.amc.harq_feedback(!failed);

        let delivered_bits = if failed { 0 } else { tbs_bits };
        if failed {
            self.metrics.block_errors.inc();
        }
        if is_retx {
            self.metrics.retx.inc();
        }
        self.metrics.delivered_bits.add(u64::from(delivered_bits));
        if audit::enabled() {
            audit::check(Invariant::RbWithinCarrier, alloc.n_prb <= self.cfg.n_rb);
            audit::check(
                Invariant::HarqAttemptsWithinMax,
                attempts <= self.dl_harq.config().max_attempts,
            );
            audit::check(Invariant::DeliveredWithinTbs, delivered_bits <= tbs_bits);
        }

        SlotKpi {
            slot,
            time_s,
            carrier: self.index,
            direction: Direction::Dl,
            scheduled: true,
            n_prb: alloc.n_prb,
            n_re: alloc.total_re(),
            mcs: grant.mcs.0,
            modulation,
            layers: grant.layers,
            tbs_bits,
            delivered_bits,
            is_retx,
            block_error: failed,
            cqi,
            sinr_db: ch.sinr_db,
            rsrp_dbm: ch.measurement.rsrp_dbm,
            rsrq_db: ch.measurement.rsrq_db,
            serving_site: ch.serving_site,
        }
    }

    fn ul_step(
        &mut self,
        slot: u64,
        time_s: f64,
        cqi: u8,
        ch: &ChannelState,
        share: f64,
    ) -> SlotKpi {
        let alloc = self.alloc_table.ul(&self.cfg, slot, share)
            .expect("caller checked ul_symbols > 0");
        if cqi == 0 {
            return SlotKpi::idle(
                slot,
                time_s,
                self.index,
                Direction::Ul,
                cqi,
                ch.sinr_db,
                ch.measurement.rsrp_dbm,
                ch.measurement.rsrq_db,
                ch.serving_site,
            );
        }
        let grant = self.amc.ul_grant(&self.cfg);
        let table = grant.format.effective_mcs_table(self.cfg.mcs_table());
        let modulation = table.modulation(grant.mcs).unwrap_or(nr_phy::mcs::Modulation::Qpsk);

        let (tbs_bits, attempts, is_retx) = match self.ul_harq.pop_ready(slot) {
            Some(tb) => (tb.tbs_bits, tb.attempts + 1, true),
            None => {
                let full =
                    self.tbs_cache.transport_block_size(&alloc, table, grant.mcs, grant.layers);
                (self.ul_traffic.consume(full), 1, false)
            }
        };

        // UL runs several dB below DL at the same spot: the UE's power
        // budget (23 dBm vs 44 dBm, partly offset by gNB receive gain).
        const UL_SINR_PENALTY_DB: f64 = 6.0;
        let bonus = self.ul_harq.combining_bonus_db(attempts);
        let p_err = self.link.bler(ch.sinr_db - UL_SINR_PENALTY_DB + bonus, table, grant.mcs);
        let failed = self.rng.gen::<f64>() < p_err;
        if failed {
            self.ul_harq.record_failure(tbs_bits, attempts, slot);
        }

        let delivered_bits = if failed { 0 } else { tbs_bits };
        if failed {
            self.metrics.block_errors.inc();
        }
        if is_retx {
            self.metrics.retx.inc();
        }
        self.metrics.delivered_bits.add(u64::from(delivered_bits));
        if audit::enabled() {
            audit::check(Invariant::RbWithinCarrier, alloc.n_prb <= self.cfg.n_rb);
            audit::check(
                Invariant::HarqAttemptsWithinMax,
                attempts <= self.ul_harq.config().max_attempts,
            );
            audit::check(Invariant::DeliveredWithinTbs, delivered_bits <= tbs_bits);
        }

        SlotKpi {
            slot,
            time_s,
            carrier: self.index,
            direction: Direction::Ul,
            scheduled: true,
            n_prb: alloc.n_prb,
            n_re: alloc.total_re(),
            mcs: grant.mcs.0,
            modulation,
            layers: grant.layers,
            tbs_bits,
            delivered_bits,
            is_retx,
            block_error: failed,
            cqi,
            sinr_db: ch.sinr_db,
            rsrp_dbm: ch.measurement.rsrp_dbm,
            rsrq_db: ch.measurement.rsrq_db,
            serving_site: ch.serving_site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_channel::channel::ChannelConfig;
    use radio_channel::geometry::DeploymentLayout;
    use radio_channel::mobility::MobilityModel;

    fn carrier(bw_mhz: u32, distance_m: f64, seed: u64) -> (Carrier, Position) {
        let cfg = CellConfig::midband(bw_mhz, "DDDSU");
        let pos = Position::new(distance_m, 0.0);
        let seeds = SeedTree::new(seed);
        let channel = ChannelSimulator::new(
            ChannelConfig::midband_urban(cfg.n_rb),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        (Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &seeds), pos)
    }

    fn run_dl(bw_mhz: u32, distance_m: f64, seed: u64, slots: u64) -> crate::kpi::KpiTrace {
        let (mut c, pos) = carrier(bw_mhz, distance_m, seed);
        let mut trace = crate::kpi::KpiTrace::new();
        for _ in 0..slots {
            let out = c.step(pos, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
            trace.push(out.dl);
            if let Some(ul) = out.ul {
                trace.push(ul);
            }
        }
        trace
    }

    #[test]
    fn good_channel_dl_throughput_in_paper_range() {
        // 90 MHz near the site: the paper's V_Sp averages ~743 Mbps with
        // peaks above 1 Gbps. Expect several hundred Mbps to ~1.2 Gbps.
        let t = run_dl(90, 70.0, 1, 20_000);
        let mbps = t.mean_throughput_mbps(Direction::Dl);
        assert!(mbps > 400.0 && mbps < 1400.0, "DL {mbps} Mbps");
    }

    #[test]
    fn far_ue_gets_much_less() {
        let near = run_dl(90, 70.0, 2, 10_000).mean_throughput_mbps(Direction::Dl);
        let far = run_dl(90, 600.0, 2, 10_000).mean_throughput_mbps(Direction::Dl);
        assert!(far < near * 0.6, "near {near} far {far}");
    }

    #[test]
    fn ul_far_below_dl() {
        // §4.2: UL "well below 120 Mbps" while DL runs at hundreds.
        let t = run_dl(90, 70.0, 3, 20_000);
        let dl = t.mean_throughput_mbps(Direction::Dl);
        let ul = t.mean_throughput_mbps(Direction::Ul);
        assert!(ul < 130.0, "UL {ul}");
        assert!(dl > 3.0 * ul, "DL {dl} vs UL {ul}");
    }

    #[test]
    fn bler_near_olla_target() {
        // Mid-range conditions, where the MCS table is not saturated: OLLA
        // should hold BLER in the vicinity of its 10% target. (At very
        // good spots the highest MCS index still decodes with BLER ≈ 0 —
        // the outer loop clamps at the table edge; in outage the gNB does
        // not schedule at all.) The quasi-static shadowing makes each
        // (seed, distance) pair one realisation with ±several-dB swings,
        // so the probe point must sit mid-range *for this seed*: seed 4
        // at 100 m averages ~8 dB SINR / CQI 5 — squarely in OLLA's
        // operating regime (at this seed's 280 m the UE is in outage,
        // where stale-CSI slots dominate the BLER).
        let t = run_dl(90, 100.0, 4, 40_000);
        let bler = t.dl_bler();
        assert!(bler > 0.01 && bler < 0.3, "bler {bler}");
    }

    #[test]
    fn wider_channel_higher_throughput_same_conditions() {
        // All else equal, 100 MHz > 80 MHz (it's the *other* factors the
        // paper blames for O_Sp's inversion, which operator profiles set).
        let t80 = run_dl(80, 80.0, 5, 15_000).mean_throughput_mbps(Direction::Dl);
        let t100 = run_dl(100, 80.0, 5, 15_000).mean_throughput_mbps(Direction::Dl);
        assert!(t100 > t80, "100 MHz {t100} vs 80 MHz {t80}");
    }

    #[test]
    fn qam64_cap_costs_throughput_in_good_conditions() {
        // The cap only binds where the uncapped link actually reaches the
        // 256QAM rows. Seed 6's shadowing draw at 60 m leaves only ~10 dB
        // SINR (64QAM territory either way); at 30 m the same seed holds
        // ~20 dB / MCS 18 on the 256QAM table, so capping to 64QAM costs
        // real throughput.
        let (mut capped, pos) = carrier(90, 30.0, 6);
        capped.cfg.mcs_policy = nr_phy::cqi::CqiToMcsPolicy {
            cqi_table: nr_phy::cqi::CqiTable::Table2,
            mcs_table: nr_phy::mcs::McsTable::Qam64,
            index_offset: 0,
        };
        let mut trace = crate::kpi::KpiTrace::new();
        for _ in 0..15_000 {
            trace.push(capped.step(pos, 0.0, TrafficPattern::DL, true, 1.0, 1.0).dl);
        }
        let capped_mbps = trace.mean_throughput_mbps(Direction::Dl);
        let free_mbps = run_dl(90, 30.0, 6, 15_000).mean_throughput_mbps(Direction::Dl);
        assert!(
            capped_mbps < free_mbps,
            "64QAM cap {capped_mbps} should trail 256QAM {free_mbps}"
        );
    }

    #[test]
    fn retransmissions_happen_and_recover_bits() {
        let t = run_dl(90, 350.0, 7, 30_000);
        let retx: Vec<SlotKpi> =
            t.direction(Direction::Dl).filter(|r| r.is_retx).collect();
        assert!(!retx.is_empty(), "expected retransmissions at cell edge");
        assert!(retx.iter().any(|r| r.delivered_bits > 0), "some retx succeed");
    }

    #[test]
    fn ul_slots_follow_tdd_pattern() {
        let (mut c, pos) = carrier(90, 70.0, 8);
        for i in 0..10u64 {
            let out = c.step(pos, 0.0, TrafficPattern::BOTH, true, 1.0, 1.0);
            let expect_ul = matches!(i % 5, 3 | 4);
            assert_eq!(out.ul.is_some(), expect_ul, "slot {i}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_dl(90, 100.0, 42, 5000);
        let b = run_dl(90, 100.0, 42, 5000);
        assert_eq!(a.mean_throughput_mbps(Direction::Dl), b.mean_throughput_mbps(Direction::Dl));
    }

    #[test]
    fn cbr_traffic_caps_delivered_rate() {
        use crate::traffic::TrafficSource;
        // A 100 Mbps CBR source over a channel that could carry several
        // hundred: goodput tracks the offered load, not the capacity.
        let (mut c, pos) = carrier(90, 70.0, 21);
        let seeds = radio_channel::rng::SeedTree::new(21);
        c.set_dl_traffic(TrafficSource::Cbr { rate_mbps: 100.0 }, &seeds);
        let mut trace = crate::kpi::KpiTrace::new();
        for _ in 0..20_000 {
            trace.push(c.step(pos, 0.0, TrafficPattern::DL, false, 1.0, 1.0).dl);
        }
        let mbps = trace.mean_throughput_mbps(Direction::Dl);
        assert!((mbps - 100.0).abs() < 12.0, "goodput {mbps} for 100 Mbps offered");
        // TBs shrink to the queued backlog: the mean scheduled TB is far
        // below what the allocation could carry (~600 kbit at this SINR).
        let scheduled: Vec<u32> = trace
            .direction(Direction::Dl)
            .filter(|r| r.scheduled && !r.is_retx)
            .map(|r| r.tbs_bits)
            .collect();
        let mean_tb = scheduled.iter().map(|&b| f64::from(b)).sum::<f64>()
            / scheduled.len().max(1) as f64;
        assert!(mean_tb < 200_000.0, "mean TB {mean_tb} bits");
    }

    #[test]
    fn finite_transfer_drains_and_goes_quiet() {
        use crate::traffic::TrafficSource;
        let (mut c, pos) = carrier(90, 70.0, 22);
        let seeds = radio_channel::rng::SeedTree::new(22);
        c.set_dl_traffic(TrafficSource::Finite { total_megabits: 100.0 }, &seeds);
        let mut delivered = 0u64;
        let mut quiet_slots = 0u32;
        for _ in 0..20_000 {
            let out = c.step(pos, 0.0, TrafficPattern::DL, false, 1.0, 1.0);
            delivered += u64::from(out.dl.delivered_bits);
            if !out.dl.scheduled {
                quiet_slots += 1;
            }
        }
        // Everything offered is eventually delivered (HARQ may drop a
        // residual block or two at most).
        assert!(delivered as f64 >= 100.0e6 * 0.995, "delivered {delivered}");
        assert!(delivered as f64 <= 100.5e6);
        assert!(quiet_slots > 10_000, "channel goes quiet after the transfer");
    }
}
