//! RRC state handling (paper §2 ❺).
//!
//! The paper's methodology explicitly controls for the idle→connected
//! promotion delay ("we play a random video for 20 seconds, close the
//! application, and wait for 5 seconds before starting our measurement").
//! This module models the state machine and its timing costs so campaign
//! code can either pay the promotion penalty or apply the paper's warm-up
//! procedure.

use serde::{Deserialize, Serialize};

/// RRC states relevant to user-plane latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RrcState {
    /// No dedicated resources; data triggers a promotion.
    Idle,
    /// Connected with active data radio bearers.
    Connected,
    /// Connected but inactivity-suspended (NR RRC_INACTIVE): cheaper
    /// resume than a full idle promotion.
    Inactive,
}

/// Timing constants of the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrcTimings {
    /// Full idle→connected promotion, ms (random access + RRC setup +
    /// NSA secondary-cell addition; ~100–300 ms in commercial networks).
    pub idle_promotion_ms: f64,
    /// Inactive→connected resume, ms.
    pub resume_ms: f64,
    /// Inactivity timer before connected→inactive, ms.
    pub inactivity_timeout_ms: f64,
}

impl Default for RrcTimings {
    fn default() -> Self {
        RrcTimings {
            idle_promotion_ms: 180.0,
            resume_ms: 45.0,
            inactivity_timeout_ms: 10_000.0,
        }
    }
}

/// The UE's RRC machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RrcMachine {
    /// Current state.
    pub state: RrcState,
    timings: RrcTimings,
    last_activity_ms: f64,
}

impl RrcMachine {
    /// Start idle at time zero.
    pub fn new(timings: RrcTimings) -> Self {
        RrcMachine { state: RrcState::Idle, timings, last_activity_ms: 0.0 }
    }

    /// Data arrives at `now_ms`: returns the promotion delay (0 when
    /// already connected) and moves the machine to Connected.
    pub fn on_data(&mut self, now_ms: f64) -> f64 {
        self.tick(now_ms);
        let delay = match self.state {
            RrcState::Connected => 0.0,
            RrcState::Inactive => self.timings.resume_ms,
            RrcState::Idle => self.timings.idle_promotion_ms,
        };
        self.state = RrcState::Connected;
        self.last_activity_ms = now_ms + delay;
        delay
    }

    /// Advance the inactivity timer.
    pub fn tick(&mut self, now_ms: f64) {
        if self.state == RrcState::Connected
            && now_ms - self.last_activity_ms > self.timings.inactivity_timeout_ms
        {
            self.state = RrcState::Inactive;
        }
    }

    /// The paper's warm-up procedure: traffic at `now_ms`, then the
    /// measurement starts 5 s later — guaranteed Connected with no
    /// promotion cost, provided 5 s < inactivity timeout.
    pub fn warmed_up(timings: RrcTimings, now_ms: f64) -> Self {
        let mut m = RrcMachine::new(timings);
        m.on_data(now_ms);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_promotion_costs_most() {
        let mut m = RrcMachine::new(RrcTimings::default());
        let d = m.on_data(0.0);
        assert_eq!(d, 180.0);
        assert_eq!(m.state, RrcState::Connected);
        // Immediately after, data is free.
        assert_eq!(m.on_data(200.0), 0.0);
    }

    #[test]
    fn inactivity_suspends_then_resume_is_cheaper() {
        let mut m = RrcMachine::new(RrcTimings::default());
        m.on_data(0.0);
        m.tick(15_000.0);
        assert_eq!(m.state, RrcState::Inactive);
        let d = m.on_data(15_000.0);
        assert_eq!(d, 45.0);
    }

    #[test]
    fn warmup_procedure_avoids_promotion() {
        // §2 ❺: play video, wait 5 s, measure — no promotion in the data.
        let mut m = RrcMachine::warmed_up(RrcTimings::default(), 0.0);
        assert_eq!(m.on_data(5_180.0), 0.0);
    }
}
