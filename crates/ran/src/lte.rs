//! The 4G LTE anchor of an NSA (EN-DC) deployment.
//!
//! In NSA, the UE keeps an LTE leg alive; §4.2 of the paper finds that
//! operators route much of the uplink there ("T-Mobile prefers to utilize
//! the LTE connection rather than the 5G NR connection for UL") because
//! low-band/mid-band LTE has larger coverage and, with FDD, no TDD uplink
//! starvation. The model is a 1 ms-subframe rate process driven by the
//! anchor's own (lower-frequency, better-coverage) channel.

use crate::kpi::{Direction, SlotKpi};
use nr_phy::mcs::Modulation;
use radio_channel::channel::{ChannelConfig, ChannelSimulator};
use radio_channel::geometry::Position;
use serde::{Deserialize, Serialize};

/// Marker value for the `carrier` field of LTE KPI records.
pub const LTE_CARRIER_INDEX: u8 = 200;

/// Static parameters of the LTE anchor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LteConfig {
    /// Carrier bandwidth in PRBs (20 MHz → 100).
    pub n_prb: u16,
    /// Spectral-efficiency cap, bits/symbol (UL 64QAM, power-limited:
    /// ≈ 5.0 is what commercial 20 MHz LTE UL peaks near 70 Mbps implies).
    pub max_se: f64,
    /// Fraction of REs lost to reference signals and control.
    pub overhead: f64,
}

impl Default for LteConfig {
    fn default() -> Self {
        LteConfig { n_prb: 100, max_se: 5.0, overhead: 0.2 }
    }
}

/// The LTE anchor leg: its own channel simulator (lower carrier frequency,
/// hence better propagation) plus the subframe rate model.
#[derive(Debug, Clone)]
pub struct LteAnchor {
    config: LteConfig,
    channel: ChannelSimulator,
    subframe: u64,
}

impl LteAnchor {
    /// Build the anchor from an already-configured channel simulator
    /// (operator profiles pick the anchor band's frequency and layout).
    pub fn new(config: LteConfig, channel: ChannelSimulator) -> Self {
        LteAnchor { config, channel, subframe: 0 }
    }

    /// A default anchor channel config at 1.9 GHz on a layout.
    pub fn default_channel_config() -> ChannelConfig {
        let mut cfg = ChannelConfig::midband_urban(100);
        cfg.pathloss =
            radio_channel::pathloss::PathLossModel::new(radio_channel::Scenario::UmaBlended, 1.9);
        // LTE anchor slots are 1 ms subframes.
        cfg.slot_s = 1e-3;
        cfg.signal.scs_khz = 15;
        cfg.signal.n_rb = 100;
        cfg
    }

    /// Advance one 1 ms subframe and return the UL KPI record.
    pub fn step_ul(&mut self, position: Position, moved_m: f64) -> SlotKpi {
        let subframe = self.subframe;
        self.subframe += 1;
        let time_s = subframe as f64 * 1e-3;
        let ch = self.channel.step_at(position, moved_m);

        // UL power budget penalty, as in the NR UL model.
        let sinr = ch.sinr_db - 6.0;
        let se = (0.75 * (1.0 + 10f64.powf(sinr / 10.0)).log2()).min(self.config.max_se);
        let re = self.config.n_prb as f64 * 12.0 * 14.0 * (1.0 - self.config.overhead);
        let bits = (re * se) as u32;

        SlotKpi {
            slot: subframe,
            time_s,
            carrier: LTE_CARRIER_INDEX,
            direction: Direction::Ul,
            scheduled: true,
            n_prb: self.config.n_prb,
            n_re: re as u32,
            mcs: 0,
            modulation: Modulation::Qam64,
            layers: 1,
            tbs_bits: bits,
            delivered_bits: bits,
            is_retx: false,
            block_error: false,
            cqi: radio_channel::link::sinr_to_cqi(sinr, nr_phy::cqi::CqiTable::Table1).value(),
            sinr_db: sinr,
            rsrp_dbm: ch.measurement.rsrp_dbm,
            rsrq_db: ch.measurement.rsrq_db,
            serving_site: ch.serving_site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_channel::geometry::DeploymentLayout;
    use radio_channel::mobility::MobilityModel;
    use radio_channel::rng::SeedTree;

    fn anchor(distance: f64, seed: u64) -> (LteAnchor, Position) {
        let pos = Position::new(distance, 0.0);
        let channel = ChannelSimulator::new(
            LteAnchor::default_channel_config(),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &SeedTree::new(seed),
        );
        (LteAnchor::new(LteConfig::default(), channel), pos)
    }

    #[test]
    fn good_coverage_ul_near_70mbps() {
        // The paper's Fig. 10 LTE_US panel: 72.6 Mbps at CQI ≥ 12.
        let (mut a, pos) = anchor(80.0, 1);
        let mut bits = 0u64;
        for _ in 0..5000 {
            bits += a.step_ul(pos, 0.0).delivered_bits as u64;
        }
        let mbps = bits as f64 / 5.0 / 1e6;
        assert!(mbps > 45.0 && mbps < 85.0, "LTE UL {mbps} Mbps");
    }

    #[test]
    fn weak_coverage_degrades_but_survives() {
        let good = {
            let (mut a, pos) = anchor(80.0, 2);
            (0..2000).map(|_| a.step_ul(pos, 0.0).delivered_bits as u64).sum::<u64>()
        };
        let weak = {
            let (mut a, pos) = anchor(700.0, 2);
            (0..2000).map(|_| a.step_ul(pos, 0.0).delivered_bits as u64).sum::<u64>()
        };
        assert!(weak < good);
        assert!(weak > 0, "LTE keeps working at range (the paper's coverage point)");
    }

    #[test]
    fn lte_records_are_marked() {
        let (mut a, pos) = anchor(100.0, 3);
        let kpi = a.step_ul(pos, 0.0);
        assert_eq!(kpi.carrier, LTE_CARRIER_INDEX);
        assert_eq!(kpi.direction, Direction::Ul);
    }
}
