//! Slot-level KPI records — the simulator's XCAL equivalent.
//!
//! The paper collects "detailed 5G lower-layer information at the
//! slot-level (the finest time scale possible)". [`SlotKpi`] carries the
//! same fields its analysis dissects: throughput (TBS delivered), MCS,
//! modulation, MIMO layers, RB/RE allocation, CQI, BLER events and signal
//! measurements. [`KpiTrace`] aggregates them into the time series the
//! `analysis` crate resamples.

use nr_phy::mcs::Modulation;
use serde::{Deserialize, Serialize};

/// Link direction of a KPI record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Downlink.
    Dl,
    /// Uplink.
    Ul,
}

/// One slot's record for one carrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotKpi {
    /// Global slot index (at the carrier's numerology).
    pub slot: u64,
    /// Wall-clock time of the slot start, seconds.
    pub time_s: f64,
    /// Carrier index within the aggregate (0 = PCell).
    pub carrier: u8,
    /// Direction this record describes.
    pub direction: Direction,
    /// Whether the slot carried a grant for our UE in this direction.
    pub scheduled: bool,
    /// PRBs allocated (0 when unscheduled).
    pub n_prb: u16,
    /// Data REs allocated (the paper's Fig. 3 quantity).
    pub n_re: u32,
    /// MCS index (table per the carrier config).
    pub mcs: u8,
    /// Modulation order in force.
    pub modulation: Modulation,
    /// MIMO layers used.
    pub layers: u8,
    /// Transport block size of the grant, bits.
    pub tbs_bits: u32,
    /// Bits credited as *delivered* this slot (TBS on decode success for
    /// new data or on a successful retransmission; 0 otherwise).
    pub delivered_bits: u32,
    /// Whether this grant was a HARQ retransmission.
    pub is_retx: bool,
    /// Whether the transport block failed to decode (a BLER event).
    pub block_error: bool,
    /// CQI in force at the gNB when scheduling the slot.
    pub cqi: u8,
    /// Instantaneous post-equalisation SINR, dB.
    pub sinr_db: f64,
    /// RSRP, dBm.
    pub rsrp_dbm: f64,
    /// RSRQ, dB.
    pub rsrq_db: f64,
    /// Serving site id.
    pub serving_site: u32,
}

impl SlotKpi {
    /// An unscheduled (idle) slot record.
    #[allow(clippy::too_many_arguments)] // mirrors the record's field set
    pub fn idle(
        slot: u64,
        time_s: f64,
        carrier: u8,
        direction: Direction,
        cqi: u8,
        sinr_db: f64,
        rsrp_dbm: f64,
        rsrq_db: f64,
        serving_site: u32,
    ) -> Self {
        SlotKpi {
            slot,
            time_s,
            carrier,
            direction,
            scheduled: false,
            n_prb: 0,
            n_re: 0,
            mcs: 0,
            modulation: Modulation::Qpsk,
            layers: 0,
            tbs_bits: 0,
            delivered_bits: 0,
            is_retx: false,
            block_error: false,
            cqi,
            sinr_db,
            rsrp_dbm,
            rsrq_db,
            serving_site,
        }
    }
}

/// A full slot-level trace with aggregation helpers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KpiTrace {
    /// The records, in slot order (possibly interleaved across carriers).
    pub records: Vec<SlotKpi>,
}

impl KpiTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        KpiTrace { records: Vec::new() }
    }

    /// Create an empty trace with room for `capacity` records, so
    /// multi-minute sessions (hundreds of thousands of records) append
    /// without reallocating mid-run.
    pub fn with_capacity(capacity: usize) -> Self {
        KpiTrace { records: Vec::with_capacity(capacity) }
    }

    /// Append a record.
    pub fn push(&mut self, kpi: SlotKpi) {
        self.records.push(kpi);
    }

    /// Records of one direction.
    pub fn direction(&self, direction: Direction) -> impl Iterator<Item = &SlotKpi> {
        self.records.iter().filter(move |r| r.direction == direction)
    }

    /// Total simulated duration, seconds (from the last record's time).
    pub fn duration_s(&self) -> f64 {
        self.records.last().map(|r| r.time_s).unwrap_or(0.0)
    }

    /// Mean goodput in Mbps over the trace for a direction (delivered bits
    /// over wall-clock duration — the iPerf-style number of Figs. 1/9/10).
    pub fn mean_throughput_mbps(&self, direction: Direction) -> f64 {
        let dur = self.duration_s();
        if dur <= 0.0 {
            return 0.0;
        }
        let bits: u64 =
            self.direction(direction).map(|r| r.delivered_bits as u64).sum();
        bits as f64 / dur / 1e6
    }

    /// Throughput time series in Mbps, binned at `bin_s` seconds, for a
    /// direction. Bins cover `[0, duration)`; empty bins yield 0.
    pub fn throughput_series_mbps(&self, direction: Direction, bin_s: f64) -> Vec<f64> {
        let dur = self.duration_s();
        if dur <= 0.0 || bin_s <= 0.0 {
            return Vec::new();
        }
        let n_bins = (dur / bin_s).ceil() as usize;
        let mut bits = vec![0u64; n_bins.max(1)];
        for r in self.direction(direction) {
            let b = ((r.time_s / bin_s) as usize).min(n_bins.saturating_sub(1));
            bits[b] += r.delivered_bits as u64;
        }
        bits.into_iter().map(|b| b as f64 / bin_s / 1e6).collect()
    }

    /// Mean goodput over only the time bins whose mean CQI satisfies
    /// `cqi_at_least` — the paper's "good channel conditions (CQI ≥ 12)"
    /// conditioning of Figs. 2, 9 and 10. Bins of `bin_s` seconds are
    /// classified by their mean CQI; the returned value is total delivered
    /// bits in qualifying bins over their total duration. `None` when no
    /// bin qualifies.
    pub fn mean_throughput_mbps_where_cqi(
        &self,
        direction: Direction,
        bin_s: f64,
        cqi_at_least: u8,
    ) -> Option<f64> {
        let dur = self.duration_s();
        if dur <= 0.0 || bin_s <= 0.0 {
            return None;
        }
        let n_bins = (dur / bin_s).ceil() as usize;
        let mut bits = vec![0u64; n_bins];
        let mut cqi_sum = vec![0f64; n_bins];
        let mut cqi_n = vec![0u64; n_bins];
        for r in &self.records {
            let b = ((r.time_s / bin_s) as usize).min(n_bins - 1);
            cqi_sum[b] += r.cqi as f64;
            cqi_n[b] += 1;
            if r.direction == direction {
                bits[b] += r.delivered_bits as u64;
            }
        }
        let mut total_bits = 0u64;
        let mut total_time = 0.0;
        for b in 0..n_bins {
            if cqi_n[b] == 0 {
                continue;
            }
            if cqi_sum[b] / (cqi_n[b] as f64) >= f64::from(cqi_at_least) {
                total_bits += bits[b];
                total_time += bin_s;
            }
        }
        if total_time > 0.0 {
            Some(total_bits as f64 / total_time / 1e6)
        } else {
            None
        }
    }

    /// Like [`Self::mean_throughput_mbps_where_cqi`] but keeping bins whose
    /// mean CQI is *below* the threshold (Fig. 10's CQI < 10 panel).
    pub fn mean_throughput_mbps_where_cqi_below(
        &self,
        direction: Direction,
        bin_s: f64,
        cqi_below: u8,
    ) -> Option<f64> {
        let dur = self.duration_s();
        if dur <= 0.0 || bin_s <= 0.0 {
            return None;
        }
        let n_bins = (dur / bin_s).ceil() as usize;
        let mut bits = vec![0u64; n_bins];
        let mut cqi_sum = vec![0f64; n_bins];
        let mut cqi_n = vec![0u64; n_bins];
        for r in &self.records {
            let b = ((r.time_s / bin_s) as usize).min(n_bins - 1);
            cqi_sum[b] += r.cqi as f64;
            cqi_n[b] += 1;
            if r.direction == direction {
                bits[b] += r.delivered_bits as u64;
            }
        }
        let mut total_bits = 0u64;
        let mut total_time = 0.0;
        for b in 0..n_bins {
            if cqi_n[b] == 0 {
                continue;
            }
            if cqi_sum[b] / (cqi_n[b] as f64) < f64::from(cqi_below) {
                total_bits += bits[b];
                total_time += bin_s;
            }
        }
        if total_time > 0.0 {
            Some(total_bits as f64 / total_time / 1e6)
        } else {
            None
        }
    }

    /// Per-scheduled-slot series of an arbitrary field, with timestamps.
    pub fn scheduled_series<F: Fn(&SlotKpi) -> f64>(
        &self,
        direction: Direction,
        f: F,
    ) -> Vec<(f64, f64)> {
        self.direction(direction)
            .filter(|r| r.scheduled)
            .map(|r| (r.time_s, f(r)))
            .collect()
    }

    /// Fraction of scheduled slots using each modulation order (the paper's
    /// Fig. 5), as `(modulation, fraction)` over DL grants.
    pub fn modulation_shares(&self) -> Vec<(Modulation, f64)> {
        let grants: Vec<&SlotKpi> = self
            .direction(Direction::Dl)
            .filter(|r| r.scheduled && !r.is_retx)
            .collect();
        if grants.is_empty() {
            return Vec::new();
        }
        let mut counts = std::collections::BTreeMap::new();
        for g in &grants {
            *counts.entry(g.modulation).or_insert(0usize) += 1;
        }
        counts
            .into_iter()
            .map(|(m, c)| (m, c as f64 / grants.len() as f64))
            .collect()
    }

    /// Fraction of scheduled DL slots using each MIMO layer count (the
    /// paper's Fig. 6), indexed `[unused, 1, 2, 3, 4]`.
    pub fn layer_shares(&self) -> [f64; 5] {
        let mut counts = [0usize; 5];
        let mut total = 0usize;
        for r in self.direction(Direction::Dl) {
            if r.scheduled {
                counts[(r.layers as usize).min(4)] += 1;
                total += 1;
            }
        }
        let mut shares = [0.0; 5];
        if total > 0 {
            for (i, c) in counts.iter().enumerate() {
                shares[i] = *c as f64 / total as f64;
            }
        }
        shares
    }

    /// Block-error rate over scheduled DL slots.
    pub fn dl_bler(&self) -> f64 {
        let mut errors = 0usize;
        let mut total = 0usize;
        for r in self.direction(Direction::Dl) {
            if r.scheduled {
                total += 1;
                if r.block_error {
                    errors += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            errors as f64 / total as f64
        }
    }

    /// All RE allocations of scheduled DL slots (Fig. 3's CDF input).
    pub fn dl_re_allocations(&self) -> Vec<u32> {
        self.direction(Direction::Dl).filter(|r| r.scheduled).map(|r| r.n_re).collect()
    }

    /// Maximum PRBs allocated in any scheduled DL slot (Fig. 4).
    pub fn max_dl_prb(&self) -> u16 {
        self.direction(Direction::Dl).map(|r| r.n_prb).max().unwrap_or(0)
    }

    /// Mean CQI over all records.
    pub fn mean_cqi(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.cqi as f64).sum::<f64>() / self.records.len() as f64
    }

    /// Restrict to records with CQI at or above a threshold — the paper's
    /// "good channel conditions (CQI ≥ 12)" filter of Figs. 2/9/10.
    pub fn filter_cqi_at_least(&self, threshold: u8) -> KpiTrace {
        KpiTrace {
            records: self.records.iter().copied().filter(|r| r.cqi >= threshold).collect(),
        }
    }

    /// Restrict to records with CQI strictly below a threshold (Fig. 10's
    /// CQI < 10 panel).
    pub fn filter_cqi_below(&self, threshold: u8) -> KpiTrace {
        KpiTrace {
            records: self.records.iter().copied().filter(|r| r.cqi < threshold).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(slot: u64, time_s: f64, bits: u32, layers: u8, modulation: Modulation) -> SlotKpi {
        SlotKpi {
            slot,
            time_s,
            carrier: 0,
            direction: Direction::Dl,
            scheduled: true,
            n_prb: 245,
            n_re: 245 * 144,
            mcs: 20,
            modulation,
            layers,
            tbs_bits: bits,
            delivered_bits: bits,
            is_retx: false,
            block_error: false,
            cqi: 13,
            sinr_db: 22.0,
            rsrp_dbm: -80.0,
            rsrq_db: -10.0,
            serving_site: 1,
        }
    }

    #[test]
    fn mean_throughput_accounts_delivered_bits_only() {
        let mut t = KpiTrace::new();
        let mut g = grant(0, 0.0005, 500_000, 4, Modulation::Qam256);
        t.push(g);
        g.slot = 1;
        g.time_s = 0.001;
        g.block_error = true;
        g.delivered_bits = 0;
        t.push(g);
        // 500 kbit over 1 ms → 500 Mbps.
        assert!((t.mean_throughput_mbps(Direction::Dl) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn series_binning() {
        let mut t = KpiTrace::new();
        for i in 0..100u64 {
            t.push(grant(i, (i as f64 + 1.0) * 0.0005, 100_000, 4, Modulation::Qam64));
        }
        let series = t.throughput_series_mbps(Direction::Dl, 0.01);
        assert_eq!(series.len(), 5);
        // 20 slots/bin · 100 kbit / 10 ms = 200 Mbps, modulo the one-slot
        // boundary shift from timestamps marking slot *ends*.
        for v in &series {
            assert!((v - 200.0).abs() <= 10.0 + 1e-9, "{v}");
        }
        // Conservation: binned bits equal total bits.
        let total_mbit: f64 = series.iter().map(|v| v * 0.01).sum();
        assert!((total_mbit - 10.0).abs() < 1e-9, "{total_mbit}");
    }

    #[test]
    fn shares_and_filters() {
        let mut t = KpiTrace::new();
        t.push(grant(0, 0.0005, 1000, 4, Modulation::Qam256));
        t.push(grant(1, 0.0010, 1000, 4, Modulation::Qam64));
        t.push(grant(2, 0.0015, 1000, 3, Modulation::Qam64));
        let mut low_cqi = grant(3, 0.0020, 1000, 2, Modulation::Qam16);
        low_cqi.cqi = 7;
        t.push(low_cqi);

        let shares = t.modulation_shares();
        let q64 = shares.iter().find(|(m, _)| *m == Modulation::Qam64).unwrap().1;
        assert!((q64 - 0.5).abs() < 1e-9);

        let layers = t.layer_shares();
        assert!((layers[4] - 0.5).abs() < 1e-9);
        assert!((layers[3] - 0.25).abs() < 1e-9);

        let good = t.filter_cqi_at_least(12);
        assert_eq!(good.records.len(), 3);
        let bad = t.filter_cqi_below(10);
        assert_eq!(bad.records.len(), 1);
    }

    #[test]
    fn cqi_conditioned_throughput() {
        // Two 100 ms phases: good CQI (13) delivering 100 kbit/slot, then
        // poor CQI (6) delivering 20 kbit/slot.
        let mut t = KpiTrace::new();
        for i in 0..400u64 {
            let good = i < 200;
            let mut g = grant(
                i,
                (i as f64 + 1.0) * 0.0005,
                if good { 100_000 } else { 20_000 },
                4,
                Modulation::Qam64,
            );
            g.cqi = if good { 13 } else { 6 };
            t.push(g);
        }
        // Unconditioned mean: (200·100k + 200·20k) / 0.2 s = 120 Mbps.
        assert!((t.mean_throughput_mbps(Direction::Dl) - 120.0).abs() < 1.0);
        // CQI ≥ 12 bins: 100 kbit / 0.5 ms = 200 Mbps.
        let good = t.mean_throughput_mbps_where_cqi(Direction::Dl, 0.01, 12).unwrap();
        assert!((good - 200.0).abs() < 10.0, "good {good}");
        // CQI < 10 bins: 40 Mbps.
        let poor = t.mean_throughput_mbps_where_cqi_below(Direction::Dl, 0.01, 10).unwrap();
        assert!((poor - 40.0).abs() < 5.0, "poor {poor}");
        // A threshold nothing meets returns None.
        assert!(t.mean_throughput_mbps_where_cqi(Direction::Dl, 0.01, 15).is_none());
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = KpiTrace::new();
        assert_eq!(t.mean_throughput_mbps(Direction::Dl), 0.0);
        assert!(t.throughput_series_mbps(Direction::Dl, 0.1).is_empty());
        assert!(t.modulation_shares().is_empty());
        assert_eq!(t.dl_bler(), 0.0);
        assert_eq!(t.max_dl_prb(), 0);
    }
}
