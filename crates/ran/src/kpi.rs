//! Slot-level KPI records — the simulator's XCAL equivalent.
//!
//! The paper collects "detailed 5G lower-layer information at the
//! slot-level (the finest time scale possible)". [`SlotKpi`] carries the
//! same fields its analysis dissects: throughput (TBS delivered), MCS,
//! modulation, MIMO layers, RB/RE allocation, CQI, BLER events and signal
//! measurements. [`KpiTrace`] aggregates them into the time series the
//! `analysis` crate resamples.
//!
//! # Columnar storage
//!
//! A trace is stored **column-wise** (structure-of-arrays), in chunks of
//! [`CHUNK_RECORDS`] records: one parallel vector per scalar field plus
//! bit-packed flag columns for `direction`/`scheduled`/`is_retx`/
//! `block_error`. Aggregations such as [`KpiTrace::throughput_series_mbps`]
//! or [`KpiTrace::modulation_shares`] then touch only the columns they
//! need (a few bytes per record) instead of dragging ~100-byte AoS
//! records through cache. [`SlotKpi`] remains the unit of *exchange*:
//! [`KpiTrace::push`] takes one, iterators yield them by value, and the
//! streaming [`crate::sink::SlotSink`] trait moves them between producers
//! and sinks without materialising a full trace at all.

pub use nr_phy::mcs::Modulation;
use serde::{DeError, Deserialize, Serialize, Value};

/// Link direction of a KPI record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Downlink.
    Dl,
    /// Uplink.
    Ul,
}

/// One slot's record for one carrier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotKpi {
    /// Global slot index (at the carrier's numerology).
    pub slot: u64,
    /// Wall-clock time of the slot start, seconds.
    pub time_s: f64,
    /// Carrier index within the aggregate (0 = PCell).
    pub carrier: u8,
    /// Direction this record describes.
    pub direction: Direction,
    /// Whether the slot carried a grant for our UE in this direction.
    pub scheduled: bool,
    /// PRBs allocated (0 when unscheduled).
    pub n_prb: u16,
    /// Data REs allocated (the paper's Fig. 3 quantity).
    pub n_re: u32,
    /// MCS index (table per the carrier config).
    pub mcs: u8,
    /// Modulation order in force.
    pub modulation: Modulation,
    /// MIMO layers used.
    pub layers: u8,
    /// Transport block size of the grant, bits.
    pub tbs_bits: u32,
    /// Bits credited as *delivered* this slot (TBS on decode success for
    /// new data or on a successful retransmission; 0 otherwise).
    pub delivered_bits: u32,
    /// Whether this grant was a HARQ retransmission.
    pub is_retx: bool,
    /// Whether the transport block failed to decode (a BLER event).
    pub block_error: bool,
    /// CQI in force at the gNB when scheduling the slot.
    pub cqi: u8,
    /// Instantaneous post-equalisation SINR, dB.
    pub sinr_db: f64,
    /// RSRP, dBm.
    pub rsrp_dbm: f64,
    /// RSRQ, dB.
    pub rsrq_db: f64,
    /// Serving site id.
    pub serving_site: u32,
}

impl SlotKpi {
    /// An unscheduled (idle) slot record.
    #[allow(clippy::too_many_arguments)] // mirrors the record's field set
    pub fn idle(
        slot: u64,
        time_s: f64,
        carrier: u8,
        direction: Direction,
        cqi: u8,
        sinr_db: f64,
        rsrp_dbm: f64,
        rsrq_db: f64,
        serving_site: u32,
    ) -> Self {
        SlotKpi {
            slot,
            time_s,
            carrier,
            direction,
            scheduled: false,
            n_prb: 0,
            n_re: 0,
            mcs: 0,
            modulation: Modulation::Qpsk,
            layers: 0,
            tbs_bits: 0,
            delivered_bits: 0,
            is_retx: false,
            block_error: false,
            cqi,
            sinr_db,
            rsrp_dbm,
            rsrq_db,
            serving_site,
        }
    }
}

/// Records per columnar chunk. A power of two and a multiple of 64, so
/// bit-packed flag columns of full chunks concatenate word-exactly and
/// `index / CHUNK_RECORDS` addressing is a shift.
pub const CHUNK_RECORDS: usize = 4096;

/// Stable wire code of a modulation order (the dataset v2 column
/// encoding: one byte per record instead of a variant-name string).
pub fn modulation_code(modulation: Modulation) -> u8 {
    match modulation {
        Modulation::Qpsk => 0,
        Modulation::Qam16 => 1,
        Modulation::Qam64 => 2,
        Modulation::Qam256 => 3,
    }
}

/// Inverse of [`modulation_code`].
pub fn modulation_from_code(code: u8) -> Option<Modulation> {
    match code {
        0 => Some(Modulation::Qpsk),
        1 => Some(Modulation::Qam16),
        2 => Some(Modulation::Qam64),
        3 => Some(Modulation::Qam256),
        _ => None,
    }
}

const MODULATIONS: [Modulation; 4] =
    [Modulation::Qpsk, Modulation::Qam16, Modulation::Qam64, Modulation::Qam256];

fn bit_get(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

fn bit_push(words: &mut Vec<u64>, i: usize, value: bool) {
    if i & 63 == 0 {
        words.push(0);
    }
    if value {
        *words.last_mut().expect("word pushed above") |= 1u64 << (i & 63);
    }
}

/// One fixed-capacity columnar block of up to [`CHUNK_RECORDS`] records.
#[derive(Debug, Clone, Default)]
struct Chunk {
    len: usize,
    slot: Vec<u64>,
    time_s: Vec<f64>,
    carrier: Vec<u8>,
    n_prb: Vec<u16>,
    n_re: Vec<u32>,
    mcs: Vec<u8>,
    modulation: Vec<u8>,
    layers: Vec<u8>,
    tbs_bits: Vec<u32>,
    delivered_bits: Vec<u32>,
    cqi: Vec<u8>,
    sinr_db: Vec<f64>,
    rsrp_dbm: Vec<f64>,
    rsrq_db: Vec<f64>,
    serving_site: Vec<u32>,
    /// Bit-packed flag columns, one bit per record.
    ul: Vec<u64>,
    scheduled: Vec<u64>,
    is_retx: Vec<u64>,
    block_error: Vec<u64>,
}

impl Chunk {
    /// A chunk with every column pre-sized to [`CHUNK_RECORDS`], so pushes
    /// into it never reallocate.
    fn preallocated() -> Chunk {
        Chunk {
            len: 0,
            slot: Vec::with_capacity(CHUNK_RECORDS),
            time_s: Vec::with_capacity(CHUNK_RECORDS),
            carrier: Vec::with_capacity(CHUNK_RECORDS),
            n_prb: Vec::with_capacity(CHUNK_RECORDS),
            n_re: Vec::with_capacity(CHUNK_RECORDS),
            mcs: Vec::with_capacity(CHUNK_RECORDS),
            modulation: Vec::with_capacity(CHUNK_RECORDS),
            layers: Vec::with_capacity(CHUNK_RECORDS),
            tbs_bits: Vec::with_capacity(CHUNK_RECORDS),
            delivered_bits: Vec::with_capacity(CHUNK_RECORDS),
            cqi: Vec::with_capacity(CHUNK_RECORDS),
            sinr_db: Vec::with_capacity(CHUNK_RECORDS),
            rsrp_dbm: Vec::with_capacity(CHUNK_RECORDS),
            rsrq_db: Vec::with_capacity(CHUNK_RECORDS),
            serving_site: Vec::with_capacity(CHUNK_RECORDS),
            ul: Vec::with_capacity(CHUNK_RECORDS / 64),
            scheduled: Vec::with_capacity(CHUNK_RECORDS / 64),
            is_retx: Vec::with_capacity(CHUNK_RECORDS / 64),
            block_error: Vec::with_capacity(CHUNK_RECORDS / 64),
        }
    }

    fn push(&mut self, k: &SlotKpi) {
        let i = self.len;
        debug_assert!(i < CHUNK_RECORDS);
        self.slot.push(k.slot);
        self.time_s.push(k.time_s);
        self.carrier.push(k.carrier);
        self.n_prb.push(k.n_prb);
        self.n_re.push(k.n_re);
        self.mcs.push(k.mcs);
        self.modulation.push(modulation_code(k.modulation));
        self.layers.push(k.layers);
        self.tbs_bits.push(k.tbs_bits);
        self.delivered_bits.push(k.delivered_bits);
        self.cqi.push(k.cqi);
        self.sinr_db.push(k.sinr_db);
        self.rsrp_dbm.push(k.rsrp_dbm);
        self.rsrq_db.push(k.rsrq_db);
        self.serving_site.push(k.serving_site);
        bit_push(&mut self.ul, i, k.direction == Direction::Ul);
        bit_push(&mut self.scheduled, i, k.scheduled);
        bit_push(&mut self.is_retx, i, k.is_retx);
        bit_push(&mut self.block_error, i, k.block_error);
        self.len = i + 1;
    }

    fn direction_at(&self, i: usize) -> Direction {
        if bit_get(&self.ul, i) {
            Direction::Ul
        } else {
            Direction::Dl
        }
    }

    fn get(&self, i: usize) -> SlotKpi {
        debug_assert!(i < self.len);
        SlotKpi {
            slot: self.slot[i],
            time_s: self.time_s[i],
            carrier: self.carrier[i],
            direction: self.direction_at(i),
            scheduled: bit_get(&self.scheduled, i),
            n_prb: self.n_prb[i],
            n_re: self.n_re[i],
            mcs: self.mcs[i],
            modulation: modulation_from_code(self.modulation[i])
                .expect("chunk stores only valid modulation codes"),
            layers: self.layers[i],
            tbs_bits: self.tbs_bits[i],
            delivered_bits: self.delivered_bits[i],
            is_retx: bit_get(&self.is_retx, i),
            block_error: bit_get(&self.block_error, i),
            cqi: self.cqi[i],
            sinr_db: self.sinr_db[i],
            rsrp_dbm: self.rsrp_dbm[i],
            rsrq_db: self.rsrq_db[i],
            serving_site: self.serving_site[i],
        }
    }

    /// Heap bytes held by this chunk's columns (capacity, not length).
    fn heap_bytes(&self) -> usize {
        self.slot.capacity() * 8
            + self.time_s.capacity() * 8
            + self.carrier.capacity()
            + self.n_prb.capacity() * 2
            + self.n_re.capacity() * 4
            + self.mcs.capacity()
            + self.modulation.capacity()
            + self.layers.capacity()
            + self.tbs_bits.capacity() * 4
            + self.delivered_bits.capacity() * 4
            + self.cqi.capacity()
            + self.sinr_db.capacity() * 8
            + self.rsrp_dbm.capacity() * 8
            + self.rsrq_db.capacity() * 8
            + self.serving_site.capacity() * 4
            + (self.ul.capacity()
                + self.scheduled.capacity()
                + self.is_retx.capacity()
                + self.block_error.capacity())
                * 8
    }
}

/// A full slot-level trace with aggregation helpers, stored column-wise
/// (see the module docs for the layout).
#[derive(Debug, Clone, Default)]
pub struct KpiTrace {
    chunks: Vec<Chunk>,
    len: usize,
    /// Largest inferred slot-end time seen so far (`time_s + slot_s`,
    /// with `slot_s` recovered as `time_s / slot` for `slot > 0`).
    max_end_s: f64,
    /// Largest raw `time_s` seen — the duration fallback for degenerate
    /// traces that only ever saw slot 0.
    max_time_s: f64,
}

impl PartialEq for KpiTrace {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl KpiTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        KpiTrace::default()
    }

    /// Create an empty trace with chunk bookkeeping pre-sized for
    /// `capacity` records, so multi-minute sessions (hundreds of
    /// thousands of records) append without growing the chunk table
    /// mid-run. Column storage itself is allocated one fixed-size chunk
    /// at a time.
    pub fn with_capacity(capacity: usize) -> Self {
        KpiTrace {
            chunks: Vec::with_capacity(capacity.div_ceil(CHUNK_RECORDS)),
            len: 0,
            max_end_s: 0.0,
            max_time_s: 0.0,
        }
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a record.
    pub fn push(&mut self, kpi: SlotKpi) {
        // (`is_none_or` would read better but needs Rust 1.82; MSRV is 1.75.)
        let full = match self.chunks.last() {
            Some(c) => c.len == CHUNK_RECORDS,
            None => true,
        };
        if full {
            self.chunks.push(Chunk::preallocated());
        }
        self.chunks.last_mut().expect("chunk pushed above").push(&kpi);
        self.len += 1;
        if kpi.slot > 0 {
            // Slot-start timestamps lie on `slot * slot_s` grids, so the
            // slot duration — and with it the slot's *end* — is
            // recoverable from any record past slot 0.
            let end = kpi.time_s + kpi.time_s / kpi.slot as f64;
            if end > self.max_end_s {
                self.max_end_s = end;
            }
        }
        if kpi.time_s > self.max_time_s {
            self.max_time_s = kpi.time_s;
        }
    }

    /// Drop every record (keeps nothing allocated; the next push starts a
    /// fresh chunk).
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
        self.max_end_s = 0.0;
        self.max_time_s = 0.0;
    }

    /// The record at `index`, materialised from the columns.
    pub fn get(&self, index: usize) -> Option<SlotKpi> {
        if index < self.len {
            Some(self.chunks[index / CHUNK_RECORDS].get(index % CHUNK_RECORDS))
        } else {
            None
        }
    }

    /// The last record, if any.
    pub fn last(&self) -> Option<SlotKpi> {
        self.len.checked_sub(1).and_then(|i| self.get(i))
    }

    /// Iterate over all records in push order, materialised by value.
    pub fn iter(&self) -> Records<'_> {
        self.iter_from(0)
    }

    /// Iterate from `index` to the end — the bounded-memory way to scan
    /// "records appended since the last look" without re-walking the
    /// whole trace.
    pub fn iter_from(&self, index: usize) -> Records<'_> {
        Records { trace: self, next: index.min(self.len) }
    }

    /// Approximate heap footprint of the column storage, bytes. Divide by
    /// [`KpiTrace::len`] for the tracked bytes-per-record figure.
    pub fn heap_bytes(&self) -> usize {
        self.chunks.iter().map(Chunk::heap_bytes).sum()
    }

    /// Records of one direction.
    pub fn direction(&self, direction: Direction) -> impl Iterator<Item = SlotKpi> + '_ {
        self.iter().filter(move |r| r.direction == direction)
    }

    /// Total simulated duration, seconds: the **end** of the latest slot
    /// (slot-start timestamp plus one slot duration), not the start of
    /// the last record — so a one-second, 2000-slot trace reports 1.0 s
    /// and mean throughput is not inflated by a missing slot.
    pub fn duration_s(&self) -> f64 {
        if self.max_end_s > 0.0 {
            self.max_end_s
        } else {
            self.max_time_s
        }
    }

    /// Total bits credited as delivered over the whole trace (both
    /// directions, all legs). Summed in 64-bit before any unit
    /// conversion, so byte totals do not truncate per record.
    pub fn delivered_bits_total(&self) -> u64 {
        self.chunks
            .iter()
            .flat_map(|c| c.delivered_bits.iter())
            .map(|&b| u64::from(b))
            .sum()
    }

    /// Mean goodput in Mbps over the trace for a direction (delivered bits
    /// over wall-clock duration — the iPerf-style number of Figs. 1/9/10).
    pub fn mean_throughput_mbps(&self, direction: Direction) -> f64 {
        let dur = self.duration_s();
        if dur <= 0.0 {
            return 0.0;
        }
        let want_ul = direction == Direction::Ul;
        let mut bits = 0u64;
        for c in &self.chunks {
            for (i, &b) in c.delivered_bits.iter().enumerate() {
                if bit_get(&c.ul, i) == want_ul {
                    bits += u64::from(b);
                }
            }
        }
        bits as f64 / dur / 1e6
    }

    /// Throughput time series in Mbps, binned at `bin_s` seconds, for a
    /// direction. Bins cover `[0, duration)`; empty bins yield 0.
    pub fn throughput_series_mbps(&self, direction: Direction, bin_s: f64) -> Vec<f64> {
        let dur = self.duration_s();
        if dur <= 0.0 || bin_s <= 0.0 {
            return Vec::new();
        }
        let n_bins = ((dur / bin_s).ceil() as usize).max(1);
        let mut bits = vec![0u64; n_bins];
        let want_ul = direction == Direction::Ul;
        for c in &self.chunks {
            for (i, (&t, &b)) in c.time_s.iter().zip(&c.delivered_bits).enumerate() {
                if bit_get(&c.ul, i) == want_ul {
                    let bin = ((t / bin_s) as usize).min(n_bins - 1);
                    bits[bin] += u64::from(b);
                }
            }
        }
        bits.into_iter().map(|b| b as f64 / bin_s / 1e6).collect()
    }

    /// Mean goodput over only the time bins whose mean CQI satisfies the
    /// threshold (`at_least = true`: CQI ≥ threshold; `false`: CQI <
    /// threshold).
    fn throughput_where_cqi(
        &self,
        direction: Direction,
        bin_s: f64,
        threshold: u8,
        at_least: bool,
    ) -> Option<f64> {
        let dur = self.duration_s();
        if dur <= 0.0 || bin_s <= 0.0 {
            return None;
        }
        let n_bins = ((dur / bin_s).ceil() as usize).max(1);
        let mut bits = vec![0u64; n_bins];
        let mut cqi_sum = vec![0u64; n_bins];
        let mut cqi_n = vec![0u64; n_bins];
        let want_ul = direction == Direction::Ul;
        for c in &self.chunks {
            for (i, (&t, &q)) in c.time_s.iter().zip(&c.cqi).enumerate() {
                let bin = ((t / bin_s) as usize).min(n_bins - 1);
                cqi_sum[bin] += u64::from(q);
                cqi_n[bin] += 1;
                if bit_get(&c.ul, i) == want_ul {
                    bits[bin] += u64::from(c.delivered_bits[i]);
                }
            }
        }
        let mut total_bits = 0u64;
        let mut total_time = 0.0;
        for bin in 0..n_bins {
            if cqi_n[bin] == 0 {
                continue;
            }
            let mean_cqi = cqi_sum[bin] as f64 / cqi_n[bin] as f64;
            let qualifies = if at_least {
                mean_cqi >= f64::from(threshold)
            } else {
                mean_cqi < f64::from(threshold)
            };
            if qualifies {
                total_bits += bits[bin];
                total_time += bin_s;
            }
        }
        if total_time > 0.0 {
            Some(total_bits as f64 / total_time / 1e6)
        } else {
            None
        }
    }

    /// Mean goodput over only the time bins whose mean CQI satisfies
    /// `cqi_at_least` — the paper's "good channel conditions (CQI ≥ 12)"
    /// conditioning of Figs. 2, 9 and 10. Bins of `bin_s` seconds are
    /// classified by their mean CQI; the returned value is total delivered
    /// bits in qualifying bins over their total duration. `None` when no
    /// bin qualifies.
    pub fn mean_throughput_mbps_where_cqi(
        &self,
        direction: Direction,
        bin_s: f64,
        cqi_at_least: u8,
    ) -> Option<f64> {
        self.throughput_where_cqi(direction, bin_s, cqi_at_least, true)
    }

    /// Like [`Self::mean_throughput_mbps_where_cqi`] but keeping bins whose
    /// mean CQI is *below* the threshold (Fig. 10's CQI < 10 panel).
    pub fn mean_throughput_mbps_where_cqi_below(
        &self,
        direction: Direction,
        bin_s: f64,
        cqi_below: u8,
    ) -> Option<f64> {
        self.throughput_where_cqi(direction, bin_s, cqi_below, false)
    }

    /// Per-scheduled-slot series of an arbitrary field, with timestamps.
    pub fn scheduled_series<F: Fn(&SlotKpi) -> f64>(
        &self,
        direction: Direction,
        f: F,
    ) -> Vec<(f64, f64)> {
        self.direction(direction)
            .filter(|r| r.scheduled)
            .map(|r| (r.time_s, f(&r)))
            .collect()
    }

    /// Fraction of scheduled slots using each modulation order (the paper's
    /// Fig. 5), as `(modulation, fraction)` over DL grants.
    pub fn modulation_shares(&self) -> Vec<(Modulation, f64)> {
        let mut counts = [0u64; 4];
        let mut grants = 0u64;
        for c in &self.chunks {
            // Word-at-a-time over the flag bitsets: bits past `c.len` are
            // never set, so the tail word needs no special casing.
            let words = c.scheduled.iter().zip(c.ul.iter().zip(&c.is_retx));
            for (w, (&sch, (&ul, &rtx))) in words.enumerate() {
                let mut mask = sch & !ul & !rtx;
                while mask != 0 {
                    let i = w * 64 + mask.trailing_zeros() as usize;
                    counts[c.modulation[i] as usize] += 1;
                    grants += 1;
                    mask &= mask - 1;
                }
            }
        }
        if grants == 0 {
            return Vec::new();
        }
        MODULATIONS
            .iter()
            .zip(counts)
            .filter(|(_, n)| *n > 0)
            .map(|(&m, n)| (m, n as f64 / grants as f64))
            .collect()
    }

    /// Fraction of scheduled DL slots using each MIMO layer count (the
    /// paper's Fig. 6), indexed `[unused, 1, 2, 3, 4]`.
    pub fn layer_shares(&self) -> [f64; 5] {
        let mut counts = [0u64; 5];
        let mut total = 0u64;
        for c in &self.chunks {
            for (w, (&sch, &ul)) in c.scheduled.iter().zip(&c.ul).enumerate() {
                let mut mask = sch & !ul;
                while mask != 0 {
                    let i = w * 64 + mask.trailing_zeros() as usize;
                    counts[(c.layers[i] as usize).min(4)] += 1;
                    total += 1;
                    mask &= mask - 1;
                }
            }
        }
        let mut shares = [0.0; 5];
        if total > 0 {
            for (share, &n) in shares.iter_mut().zip(&counts) {
                *share = n as f64 / total as f64;
            }
        }
        shares
    }

    /// Block-error rate over scheduled DL slots.
    pub fn dl_bler(&self) -> f64 {
        let mut errors = 0u64;
        let mut total = 0u64;
        for c in &self.chunks {
            for i in 0..c.len {
                if !bit_get(&c.ul, i) && bit_get(&c.scheduled, i) {
                    total += 1;
                    if bit_get(&c.block_error, i) {
                        errors += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            errors as f64 / total as f64
        }
    }

    /// All RE allocations of scheduled DL slots (Fig. 3's CDF input).
    pub fn dl_re_allocations(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for c in &self.chunks {
            for (i, &re) in c.n_re.iter().enumerate() {
                if !bit_get(&c.ul, i) && bit_get(&c.scheduled, i) {
                    out.push(re);
                }
            }
        }
        out
    }

    /// Maximum PRBs allocated in any scheduled DL slot (Fig. 4).
    pub fn max_dl_prb(&self) -> u16 {
        let mut max = 0u16;
        for c in &self.chunks {
            for (i, &prb) in c.n_prb.iter().enumerate() {
                if !bit_get(&c.ul, i) && prb > max {
                    max = prb;
                }
            }
        }
        max
    }

    /// Mean CQI over all records.
    pub fn mean_cqi(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .chunks
            .iter()
            .flat_map(|c| c.cqi.iter())
            .map(|&q| u64::from(q))
            .sum();
        sum as f64 / self.len as f64
    }

    /// Restrict to records with CQI at or above a threshold — the paper's
    /// "good channel conditions (CQI ≥ 12)" filter of Figs. 2/9/10.
    /// Returns a borrowed view; no records are cloned.
    pub fn filter_cqi_at_least(&self, threshold: u8) -> CqiFilteredTrace<'_> {
        CqiFilteredTrace { trace: self, threshold, below: false }
    }

    /// Restrict to records with CQI strictly below a threshold (Fig. 10's
    /// CQI < 10 panel). Returns a borrowed view; no records are cloned.
    pub fn filter_cqi_below(&self, threshold: u8) -> CqiFilteredTrace<'_> {
        CqiFilteredTrace { trace: self, threshold, below: true }
    }
}

impl Extend<SlotKpi> for KpiTrace {
    fn extend<I: IntoIterator<Item = SlotKpi>>(&mut self, iter: I) {
        for kpi in iter {
            self.push(kpi);
        }
    }
}

impl FromIterator<SlotKpi> for KpiTrace {
    fn from_iter<I: IntoIterator<Item = SlotKpi>>(iter: I) -> Self {
        let mut trace = KpiTrace::new();
        trace.extend(iter);
        trace
    }
}

/// Iterator over a trace's records, yielding [`SlotKpi`] views by value.
#[derive(Debug, Clone)]
pub struct Records<'a> {
    trace: &'a KpiTrace,
    next: usize,
}

impl Iterator for Records<'_> {
    type Item = SlotKpi;

    fn next(&mut self) -> Option<SlotKpi> {
        let item = self.trace.get(self.next);
        if item.is_some() {
            self.next += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.trace.len - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Records<'_> {}

impl<'a> IntoIterator for &'a KpiTrace {
    type Item = SlotKpi;
    type IntoIter = Records<'a>;

    fn into_iter(self) -> Records<'a> {
        self.iter()
    }
}

/// A borrowed CQI-conditioned view of a trace
/// ([`KpiTrace::filter_cqi_at_least`] / [`KpiTrace::filter_cqi_below`]):
/// records are filtered lazily against the CQI column, never cloned.
#[derive(Debug, Clone, Copy)]
pub struct CqiFilteredTrace<'a> {
    trace: &'a KpiTrace,
    threshold: u8,
    below: bool,
}

impl CqiFilteredTrace<'_> {
    fn matches(&self, cqi: u8) -> bool {
        if self.below {
            cqi < self.threshold
        } else {
            cqi >= self.threshold
        }
    }

    /// Number of matching records (a column-local scan of the CQI column).
    pub fn len(&self) -> usize {
        self.trace
            .chunks
            .iter()
            .flat_map(|c| c.cqi.iter())
            .filter(|&&q| self.matches(q))
            .count()
    }

    /// Whether no record matches.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over the matching records.
    pub fn iter(&self) -> impl Iterator<Item = SlotKpi> + '_ {
        self.trace.iter().filter(move |r| self.matches(r.cqi))
    }

    /// Materialise the view into an owned columnar trace.
    pub fn to_trace(&self) -> KpiTrace {
        self.iter().collect()
    }
}

// ---------------------------------------------------------------------------
// Serialisation: dataset v2 columnar wire format, with v1 fallback.
// ---------------------------------------------------------------------------

/// Concatenate one column across chunks into a JSON array value.
fn concat_column<T: Serialize>(chunks: &[Chunk], col: impl Fn(&Chunk) -> &[T]) -> Value {
    Value::Array(chunks.iter().flat_map(|c| col(c).iter()).map(Serialize::to_value).collect())
}

impl Serialize for KpiTrace {
    /// Dataset v2 wire form: one concatenated array per column, flag
    /// columns as packed `u64` words. Chunk boundaries are not
    /// observable on the wire (chunks are 64-record aligned, so word
    /// arrays of full chunks concatenate exactly), which keeps the
    /// encoding canonical — the byte-stability the determinism harness
    /// relies on.
    fn to_value(&self) -> Value {
        let c = &self.chunks;
        Value::Object(vec![
            ("len".to_string(), self.len.to_value()),
            ("slot".to_string(), concat_column(c, |c| &c.slot)),
            ("time_s".to_string(), concat_column(c, |c| &c.time_s)),
            ("carrier".to_string(), concat_column(c, |c| &c.carrier)),
            ("n_prb".to_string(), concat_column(c, |c| &c.n_prb)),
            ("n_re".to_string(), concat_column(c, |c| &c.n_re)),
            ("mcs".to_string(), concat_column(c, |c| &c.mcs)),
            ("modulation".to_string(), concat_column(c, |c| &c.modulation)),
            ("layers".to_string(), concat_column(c, |c| &c.layers)),
            ("tbs_bits".to_string(), concat_column(c, |c| &c.tbs_bits)),
            ("delivered_bits".to_string(), concat_column(c, |c| &c.delivered_bits)),
            ("cqi".to_string(), concat_column(c, |c| &c.cqi)),
            ("sinr_db".to_string(), concat_column(c, |c| &c.sinr_db)),
            ("rsrp_dbm".to_string(), concat_column(c, |c| &c.rsrp_dbm)),
            ("rsrq_db".to_string(), concat_column(c, |c| &c.rsrq_db)),
            ("serving_site".to_string(), concat_column(c, |c| &c.serving_site)),
            ("ul".to_string(), concat_column(c, |c| &c.ul)),
            ("scheduled".to_string(), concat_column(c, |c| &c.scheduled)),
            ("is_retx".to_string(), concat_column(c, |c| &c.is_retx)),
            ("block_error".to_string(), concat_column(c, |c| &c.block_error)),
        ])
    }
}

fn column_len_check(name: &str, got: usize, want: usize) -> Result<(), DeError> {
    if got == want {
        Ok(())
    } else {
        Err(DeError::msg(format!("KpiTrace.{name}: {got} entries, expected {want}")))
    }
}

impl Deserialize for KpiTrace {
    /// Accepts both wire forms: the columnar v2 object and the legacy v1
    /// `{"records": [...]}` row form, so datasets exported before the
    /// columnar refactor keep loading.
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let fields = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", value, "KpiTrace"))?;
        if fields.iter().any(|(k, _)| k == "records") {
            let records: Vec<SlotKpi> = serde::field(fields, "records", "KpiTrace")?;
            return Ok(records.into_iter().collect());
        }
        let ctx = "KpiTrace";
        let len: usize = serde::field(fields, "len", ctx)?;
        let slot: Vec<u64> = serde::field(fields, "slot", ctx)?;
        let time_s: Vec<f64> = serde::field(fields, "time_s", ctx)?;
        let carrier: Vec<u8> = serde::field(fields, "carrier", ctx)?;
        let n_prb: Vec<u16> = serde::field(fields, "n_prb", ctx)?;
        let n_re: Vec<u32> = serde::field(fields, "n_re", ctx)?;
        let mcs: Vec<u8> = serde::field(fields, "mcs", ctx)?;
        let modulation: Vec<u8> = serde::field(fields, "modulation", ctx)?;
        let layers: Vec<u8> = serde::field(fields, "layers", ctx)?;
        let tbs_bits: Vec<u32> = serde::field(fields, "tbs_bits", ctx)?;
        let delivered_bits: Vec<u32> = serde::field(fields, "delivered_bits", ctx)?;
        let cqi: Vec<u8> = serde::field(fields, "cqi", ctx)?;
        let sinr_db: Vec<f64> = serde::field(fields, "sinr_db", ctx)?;
        let rsrp_dbm: Vec<f64> = serde::field(fields, "rsrp_dbm", ctx)?;
        let rsrq_db: Vec<f64> = serde::field(fields, "rsrq_db", ctx)?;
        let serving_site: Vec<u32> = serde::field(fields, "serving_site", ctx)?;
        let ul: Vec<u64> = serde::field(fields, "ul", ctx)?;
        let scheduled: Vec<u64> = serde::field(fields, "scheduled", ctx)?;
        let is_retx: Vec<u64> = serde::field(fields, "is_retx", ctx)?;
        let block_error: Vec<u64> = serde::field(fields, "block_error", ctx)?;

        for (name, got) in [
            ("slot", slot.len()),
            ("time_s", time_s.len()),
            ("carrier", carrier.len()),
            ("n_prb", n_prb.len()),
            ("n_re", n_re.len()),
            ("mcs", mcs.len()),
            ("modulation", modulation.len()),
            ("layers", layers.len()),
            ("tbs_bits", tbs_bits.len()),
            ("delivered_bits", delivered_bits.len()),
            ("cqi", cqi.len()),
            ("sinr_db", sinr_db.len()),
            ("rsrp_dbm", rsrp_dbm.len()),
            ("rsrq_db", rsrq_db.len()),
            ("serving_site", serving_site.len()),
        ] {
            column_len_check(name, got, len)?;
        }
        let words = len.div_ceil(64);
        for (name, got) in [
            ("ul", ul.len()),
            ("scheduled", scheduled.len()),
            ("is_retx", is_retx.len()),
            ("block_error", block_error.len()),
        ] {
            column_len_check(name, got, words)?;
        }

        let mut trace = KpiTrace::with_capacity(len);
        for i in 0..len {
            trace.push(SlotKpi {
                slot: slot[i],
                time_s: time_s[i],
                carrier: carrier[i],
                direction: if bit_get(&ul, i) { Direction::Ul } else { Direction::Dl },
                scheduled: bit_get(&scheduled, i),
                n_prb: n_prb[i],
                n_re: n_re[i],
                mcs: mcs[i],
                modulation: modulation_from_code(modulation[i]).ok_or_else(|| {
                    DeError::msg(format!(
                        "KpiTrace.modulation[{i}]: unknown code {}",
                        modulation[i]
                    ))
                })?,
                layers: layers[i],
                tbs_bits: tbs_bits[i],
                delivered_bits: delivered_bits[i],
                is_retx: bit_get(&is_retx, i),
                block_error: bit_get(&block_error, i),
                cqi: cqi[i],
                sinr_db: sinr_db[i],
                rsrp_dbm: rsrp_dbm[i],
                rsrq_db: rsrq_db[i],
                serving_site: serving_site[i],
            });
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(slot: u64, time_s: f64, bits: u32, layers: u8, modulation: Modulation) -> SlotKpi {
        SlotKpi {
            slot,
            time_s,
            carrier: 0,
            direction: Direction::Dl,
            scheduled: true,
            n_prb: 245,
            n_re: 245 * 144,
            mcs: 20,
            modulation,
            layers,
            tbs_bits: bits,
            delivered_bits: bits,
            is_retx: false,
            block_error: false,
            cqi: 13,
            sinr_db: 22.0,
            rsrp_dbm: -80.0,
            rsrq_db: -10.0,
            serving_site: 1,
        }
    }

    #[test]
    fn mean_throughput_accounts_delivered_bits_only() {
        let mut t = KpiTrace::new();
        let mut g = grant(0, 0.0, 500_000, 4, Modulation::Qam256);
        t.push(g);
        g.slot = 1;
        g.time_s = 0.0005;
        g.block_error = true;
        g.delivered_bits = 0;
        t.push(g);
        // Two 0.5 ms slots: 500 kbit over 1 ms → 500 Mbps.
        assert!((t.duration_s() - 0.001).abs() < 1e-12);
        assert!((t.mean_throughput_mbps(Direction::Dl) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn duration_extends_to_last_slot_end() {
        let mut t = KpiTrace::new();
        for i in 0..2000u64 {
            t.push(grant(i, i as f64 * 0.0005, 100_000, 4, Modulation::Qam64));
        }
        // 2000 slots of 0.5 ms: a full second, not 999.5 ms.
        assert!((t.duration_s() - 1.0).abs() < 1e-9, "{}", t.duration_s());
    }

    #[test]
    fn series_binning() {
        let mut t = KpiTrace::new();
        for i in 0..100u64 {
            t.push(grant(i, i as f64 * 0.0005, 100_000, 4, Modulation::Qam64));
        }
        let series = t.throughput_series_mbps(Direction::Dl, 0.01);
        assert_eq!(series.len(), 5);
        // 20 slots/bin · 100 kbit / 10 ms = 200 Mbps in every bin.
        for v in &series {
            assert!((v - 200.0).abs() <= 10.0 + 1e-9, "{v}");
        }
        // Conservation: binned bits equal total bits.
        let total_mbit: f64 = series.iter().map(|v| v * 0.01).sum();
        assert!((total_mbit - 10.0).abs() < 1e-9, "{total_mbit}");
    }

    #[test]
    fn shares_and_filters() {
        let mut t = KpiTrace::new();
        t.push(grant(0, 0.0, 1000, 4, Modulation::Qam256));
        t.push(grant(1, 0.0005, 1000, 4, Modulation::Qam64));
        t.push(grant(2, 0.0010, 1000, 3, Modulation::Qam64));
        let mut low_cqi = grant(3, 0.0015, 1000, 2, Modulation::Qam16);
        low_cqi.cqi = 7;
        t.push(low_cqi);

        let shares = t.modulation_shares();
        let q64 = shares.iter().find(|(m, _)| *m == Modulation::Qam64).unwrap().1;
        assert!((q64 - 0.5).abs() < 1e-9);

        let layers = t.layer_shares();
        assert!((layers[4] - 0.5).abs() < 1e-9);
        assert!((layers[3] - 0.25).abs() < 1e-9);

        let good = t.filter_cqi_at_least(12);
        assert_eq!(good.len(), 3);
        let bad = t.filter_cqi_below(10);
        assert_eq!(bad.len(), 1);
        // The views materialise to the same records the lazy iterators see.
        assert_eq!(good.to_trace().len(), 3);
        assert!(bad.iter().all(|r| r.cqi < 10));
    }

    #[test]
    fn cqi_conditioned_throughput() {
        // Two 100 ms phases: good CQI (13) delivering 100 kbit/slot, then
        // poor CQI (6) delivering 20 kbit/slot.
        let mut t = KpiTrace::new();
        for i in 0..400u64 {
            let good = i < 200;
            let mut g = grant(
                i,
                i as f64 * 0.0005,
                if good { 100_000 } else { 20_000 },
                4,
                Modulation::Qam64,
            );
            g.cqi = if good { 13 } else { 6 };
            t.push(g);
        }
        // Unconditioned mean: (200·100k + 200·20k) / 0.2 s = 120 Mbps.
        assert!((t.mean_throughput_mbps(Direction::Dl) - 120.0).abs() < 1.0);
        // CQI ≥ 12 bins: 100 kbit / 0.5 ms = 200 Mbps.
        let good = t.mean_throughput_mbps_where_cqi(Direction::Dl, 0.01, 12).unwrap();
        assert!((good - 200.0).abs() < 10.0, "good {good}");
        // CQI < 10 bins: 40 Mbps.
        let poor = t.mean_throughput_mbps_where_cqi_below(Direction::Dl, 0.01, 10).unwrap();
        assert!((poor - 40.0).abs() < 5.0, "poor {poor}");
        // A threshold nothing meets returns None.
        assert!(t.mean_throughput_mbps_where_cqi(Direction::Dl, 0.01, 15).is_none());
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = KpiTrace::new();
        assert_eq!(t.mean_throughput_mbps(Direction::Dl), 0.0);
        assert!(t.throughput_series_mbps(Direction::Dl, 0.1).is_empty());
        assert!(t.modulation_shares().is_empty());
        assert_eq!(t.dl_bler(), 0.0);
        assert_eq!(t.max_dl_prb(), 0);
        assert!(t.last().is_none());
        assert!(t.get(0).is_none());
    }

    #[test]
    fn push_get_iter_agree_across_chunk_boundaries() {
        let mut t = KpiTrace::new();
        let n = CHUNK_RECORDS * 2 + 137;
        let mut reference = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let mut g = grant(i, i as f64 * 0.0005, (i as u32) * 3 + 1, (i % 5) as u8, Modulation::Qam16);
            g.is_retx = i % 7 == 0;
            g.block_error = i % 11 == 0;
            g.direction = if i % 3 == 0 { Direction::Ul } else { Direction::Dl };
            t.push(g);
            reference.push(g);
        }
        assert_eq!(t.len(), n);
        assert!(t.iter().eq(reference.iter().copied()));
        assert_eq!(t.get(CHUNK_RECORDS), Some(reference[CHUNK_RECORDS]));
        assert_eq!(t.last(), reference.last().copied());
        let tail: Vec<SlotKpi> = t.iter_from(n - 10).collect();
        assert_eq!(tail, reference[n - 10..]);
    }

    #[test]
    fn columnar_serde_roundtrips_exactly() {
        let mut t = KpiTrace::new();
        for i in 0..200u64 {
            let mut g = grant(i, i as f64 * 0.0005, 77_000 + i as u32, 2, Modulation::Qam256);
            g.direction = if i % 4 == 0 { Direction::Ul } else { Direction::Dl };
            g.scheduled = i % 5 != 0;
            t.push(g);
        }
        let back = KpiTrace::from_value(&t.to_value()).expect("columnar decode");
        assert_eq!(t, back);
        assert_eq!(t.duration_s(), back.duration_s());
    }

    #[test]
    fn legacy_row_form_still_decodes() {
        let records = vec![grant(0, 0.0, 1000, 4, Modulation::Qam64), grant(1, 0.0005, 2000, 2, Modulation::Qpsk)];
        let v1 = Value::Object(vec![("records".to_string(), records.to_value())]);
        let t = KpiTrace::from_value(&v1).expect("v1 decode");
        assert_eq!(t.len(), 2);
        assert!(t.iter().eq(records.iter().copied()));
    }
}
