#![warn(missing_docs)]

//! # ran — a slot-driven 5G RAN simulator
//!
//! This crate turns the PHY tables of `nr-phy` and the radio environment of
//! `radio-channel` into a running radio access network, reproducing the
//! adaptation loop of the paper's Fig. 21 every 0.5 ms slot:
//!
//! 1. the UE measures the channel and (periodically) reports CSI —
//!    CQI / RI ([`amc`]);
//! 2. the gNB scheduler allocates RBs and picks DCI format, MCS and MIMO
//!    layers ([`scheduler`], [`amc`]);
//! 3. the transport block decodes or fails per the link-level BLER curve;
//!    failures retransmit through HARQ ([`harq`]);
//! 4. every slot is logged as a KPI record — the XCAL-equivalent trace the
//!    `measure` and `analysis` crates consume ([`kpi`]).
//!
//! On top of the single-carrier loop sit:
//!
//! * [`carrier`] / [`sim`] — the per-UE simulator, including carrier
//!   aggregation across mixed numerologies (T-Mobile's n41+n25 combos,
//!   Appendix 10.5);
//! * [`lte`] + NSA uplink routing ([`config::UplinkRouting`]) — the
//!   EN-DC behaviour behind the paper's §4.2 finding that operators often
//!   push UL traffic to LTE;
//! * [`cell`] — the loaded-cell engine: N UEs (1 → 10k+) contending for
//!   one cell's RB budget under proportional-fair, round-robin, max-CQI
//!   or equal-share scheduling, with structure-of-arrays state and
//!   streaming per-UE sinks (the §5.2 / Fig. 14 mechanism at scale);
//! * [`multiuser`] — the legacy small-N driver kept as the reference the
//!   cell engine's equivalence tests pin against;
//! * [`latency`] — the slot-aligned PHY user-plane latency probe model of
//!   §4.3 (TDD alignment + processing + HARQ);
//! * [`rrc`] — RRC state promotion costs the paper's methodology controls
//!   for (§2 ❺).

pub mod amc;
pub mod carrier;
pub mod cell;
pub mod config;
pub mod harq;
pub mod kpi;
pub mod latency;
pub mod lte;
pub mod multiuser;
pub mod rrc;
pub mod scheduler;
pub mod sim;
pub mod sink;
pub mod traffic;

pub use amc::AmcState;
pub use carrier::Carrier;
pub use cell::{CellParams, CellSim, CellSink, CellTraces, UeSpec};
pub use config::{CellConfig, UplinkRouting};
pub use kpi::{KpiTrace, SlotKpi};
pub use latency::{LatencyProbeConfig, LatencySample};
pub use lte::LteAnchor;
pub use sim::{UeSim, UeSimConfig};
pub use sink::{SlotSink, Tee};
pub use traffic::{TrafficSource, TrafficState};
