//! Several UEs sharing one cell — the original §5.2 / Fig. 14 driver,
//! kept as the **legacy reference** for the cell engine.
//!
//! The study placed UEs at different distances in the same cell and ran
//! iPerf *sequentially* (one at a time) and *simultaneously*, finding that
//! per-UE RB allocations (and hence throughput) roughly halve with two
//! active users while the channel variability at each location is
//! unaffected. [`MultiUeSim`] reproduces that by driving N full
//! [`Carrier`] clones against one shared RB budget with *fractional*
//! shares — simple, but allocating per slot and unable to scale past a
//! handful of UEs.
//!
//! New code should use [`crate::cell::CellSim`], which implements the
//! same scheduling semantics over structure-of-arrays state with integer
//! PRB grants and streams per-UE records through bounded sinks.
//! `MultiUeSim` survives as the independent implementation the
//! equivalence suite (`ran/tests/cell_props.rs`) pins the cell engine
//! against: for N ≤ 4 the two must agree on every KPI (exactly for UE
//! counts that divide the RB budget, within one PRB of rounding slack
//! otherwise).

use crate::carrier::{Carrier, TrafficPattern};
use crate::kpi::KpiTrace;
use crate::scheduler::SchedulerPolicy;
use radio_channel::geometry::Position;

/// One participant of a multi-UE experiment: a carrier (with its own
/// channel at its own position) plus its fixed location.
pub struct MultiUeParticipant {
    /// The per-UE carrier instance (same cell config across participants).
    pub carrier: Carrier,
    /// The UE's (stationary) position.
    pub position: Position,
    /// Whether this UE has active traffic (sequential runs activate one).
    pub active: bool,
}

/// N UEs sharing one cell's RBs.
pub struct MultiUeSim {
    participants: Vec<MultiUeParticipant>,
    policy: SchedulerPolicy,
    /// Long-term average rate per UE (for proportional fair), bits/slot.
    avg_rate: Vec<f64>,
    rr_next: usize,
    slot: u64,
}

impl MultiUeSim {
    /// Assemble the shared-cell simulation.
    pub fn new(participants: Vec<MultiUeParticipant>, policy: SchedulerPolicy) -> Self {
        assert!(!participants.is_empty(), "need at least one UE");
        let n = participants.len();
        MultiUeSim { participants, policy, avg_rate: vec![1.0; n], rr_next: 0, slot: 0 }
    }

    /// Run for `slots` and return one trace per participant.
    pub fn run(&mut self, slots: u64) -> Vec<KpiTrace> {
        let mut traces: Vec<KpiTrace> = (0..self.participants.len()).map(|_| KpiTrace::new()).collect();
        for _ in 0..slots {
            self.step_into(&mut traces);
        }
        traces
    }

    /// One shared slot.
    fn step_into(&mut self, traces: &mut [KpiTrace]) {
        self.slot += 1;
        let active: Vec<usize> = self
            .participants
            .iter()
            .enumerate()
            .filter(|(_, p)| p.active)
            .map(|(i, _)| i)
            .collect();

        // Decide each active UE's share of the slot's RBs.
        let mut shares = vec![0.0f64; self.participants.len()];
        match self.policy {
            SchedulerPolicy::EqualShare => {
                for &i in &active {
                    shares[i] = 1.0 / active.len().max(1) as f64;
                }
            }
            SchedulerPolicy::RoundRobinSlots => {
                if !active.is_empty() {
                    let pick = active[self.rr_next % active.len()];
                    self.rr_next += 1;
                    shares[pick] = 1.0;
                }
            }
            SchedulerPolicy::MaxCqi => {
                // Whole slot to the best reported CQI; first index wins
                // ties (same tie-break as the cell engine).
                let mut best: Option<usize> = None;
                for &i in &active {
                    let cqi = self.participants[i].carrier.current_cqi();
                    if best.is_none_or(|b| cqi > self.participants[b].carrier.current_cqi()) {
                        best = Some(i);
                    }
                }
                if let Some(pick) = best {
                    shares[pick] = 1.0;
                }
            }
            SchedulerPolicy::ProportionalFair => {
                // Metric: instantaneous CQI-implied rate over average rate.
                let best = active.iter().copied().max_by(|&a, &b| {
                    let ma = self.participants[a].carrier.current_cqi() as f64
                        / self.avg_rate[a].max(1e-9);
                    let mb = self.participants[b].carrier.current_cqi() as f64
                        / self.avg_rate[b].max(1e-9);
                    ma.partial_cmp(&mb).expect("metrics are finite")
                });
                if let Some(pick) = best {
                    shares[pick] = 1.0;
                }
            }
        }

        for (i, p) in self.participants.iter_mut().enumerate() {
            let share = shares[i];
            let traffic = if p.active && share > 0.0 {
                TrafficPattern::DL
            } else {
                TrafficPattern { dl: false, ul: false }
            };
            let out = p.carrier.step(p.position, 0.0, traffic, false, share.max(1e-6), 1.0);
            // PF average-rate bookkeeping (EWMA over delivered bits).
            self.avg_rate[i] = 0.999 * self.avg_rate[i] + 0.001 * out.dl.delivered_bits as f64;
            traces[i].push(out.dl);
            if let Some(ul) = out.ul {
                traces[i].push(ul);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CellConfig;
    use crate::kpi::Direction;
    use radio_channel::channel::{ChannelConfig, ChannelSimulator};
    use radio_channel::geometry::DeploymentLayout;
    use radio_channel::link::LinkModel;
    use radio_channel::mobility::MobilityModel;
    use radio_channel::rng::SeedTree;

    fn participant(distance: f64, seed: u64, index: u64, active: bool) -> MultiUeParticipant {
        let cfg = CellConfig::midband(60, "DDDSU");
        let pos = Position::new(distance, 0.0);
        let seeds = SeedTree::new(seed).child_indexed("ue", index);
        let channel = ChannelSimulator::new(
            ChannelConfig::midband_urban(cfg.n_rb),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        MultiUeParticipant {
            carrier: Carrier::new(cfg, 0, channel, LinkModel::midband_qam256(), &seeds),
            position: pos,
            active,
        }
    }

    /// The Fig. 14 experiment: simultaneous activity halves per-UE RBs and
    /// roughly halves throughput, while sequential runs get the full cell.
    #[test]
    fn simultaneous_users_split_rbs_and_throughput() {
        let sequential = {
            let mut sim = MultiUeSim::new(
                vec![participant(45.0, 1, 0, true), participant(117.0, 1, 1, false)],
                SchedulerPolicy::EqualShare,
            );
            let traces = sim.run(20_000);
            traces[0].mean_throughput_mbps(Direction::Dl)
        };
        let (simultaneous, rb_a, rb_b) = {
            let mut sim = MultiUeSim::new(
                vec![participant(45.0, 1, 0, true), participant(117.0, 1, 1, true)],
                SchedulerPolicy::EqualShare,
            );
            let traces = sim.run(20_000);
            let mean_rb = |t: &KpiTrace| {
                let sched: Vec<u16> = t
                    .direction(Direction::Dl)
                    .filter(|r| r.scheduled)
                    .map(|r| r.n_prb)
                    .collect();
                sched.iter().map(|&x| x as f64).sum::<f64>() / sched.len() as f64
            };
            (
                traces[0].mean_throughput_mbps(Direction::Dl),
                mean_rb(&traces[0]),
                mean_rb(&traces[1]),
            )
        };
        assert!(
            simultaneous < sequential * 0.65,
            "simultaneous {simultaneous} vs sequential {sequential}"
        );
        // Both UEs end up near half the 162 RBs of a 60 MHz carrier.
        assert!((rb_a - 81.0).abs() < 3.0, "rb_a {rb_a}");
        assert!((rb_b - 81.0).abs() < 3.0, "rb_b {rb_b}");
    }

    #[test]
    fn round_robin_alternates_full_slots() {
        let mut sim = MultiUeSim::new(
            vec![participant(50.0, 2, 0, true), participant(90.0, 2, 1, true)],
            SchedulerPolicy::RoundRobinSlots,
        );
        let traces = sim.run(4000);
        for t in &traces {
            let scheduled: Vec<u16> = t
                .direction(Direction::Dl)
                .filter(|r| r.scheduled)
                .map(|r| r.n_prb)
                .collect();
            assert!(!scheduled.is_empty());
            // Whole-carrier grants only.
            assert!(scheduled.iter().all(|&n| n == 162));
        }
        let a = traces[0].direction(Direction::Dl).filter(|r| r.scheduled).count();
        let b = traces[1].direction(Direction::Dl).filter(|r| r.scheduled).count();
        assert!((a as i64 - b as i64).abs() <= 1, "fair rotation: {a} vs {b}");
    }

    #[test]
    fn proportional_fair_serves_everyone() {
        // Fig. 14's proven far spot: 117 m keeps the far UE servable (a
        // few CQI) under seed 3's shadowing realisation. At this seed's
        // 200 m the far UE sits ~-23 dB SINR — out of range, where *no*
        // scheduler can serve it and the test would measure outage, not
        // PF fairness.
        let mut sim = MultiUeSim::new(
            vec![participant(40.0, 3, 0, true), participant(117.0, 3, 1, true)],
            SchedulerPolicy::ProportionalFair,
        );
        let traces = sim.run(20_000);
        let near = traces[0].mean_throughput_mbps(Direction::Dl);
        let far = traces[1].mean_throughput_mbps(Direction::Dl);
        assert!(near > 0.0 && far > 0.0, "near {near} far {far}");
        // PF favours the better channel but must not starve the far UE.
        assert!(near > far);
        assert!(far > near * 0.1);
    }
}
