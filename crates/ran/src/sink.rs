//! Streaming consumers of slot-level KPIs.
//!
//! The simulator produces [`SlotKpi`] records slot by slot; a
//! [`SlotSink`] consumes them as they are produced, so campaigns can
//! aggregate online instead of materialising multi-minute traces. A full
//! [`KpiTrace`] is just one sink among several; the
//! `analysis` crate's `OnlineAggregates` is another, and [`Tee`] feeds
//! two at once.
//!
//! # Contract
//!
//! - Records arrive in the producer's emission order (monotone
//!   non-decreasing `time_s` per carrier); sinks may rely on that order.
//! - [`SlotSink::finish`] is called exactly once, after the last record
//!   of the run. Pushing after `finish` is a contract violation and sinks
//!   may panic or produce unspecified aggregates.

use crate::kpi::{KpiTrace, SlotKpi};

/// A streaming consumer of slot-level KPI records.
pub trait SlotSink {
    /// Consume one record. Records arrive in emission order.
    fn push(&mut self, kpi: &SlotKpi);

    /// Signal end of stream. Called exactly once, after the last record;
    /// sinks finalise derived state (padding series, sealing sketches)
    /// here. Defaults to a no-op.
    fn finish(&mut self) {}
}

impl SlotSink for KpiTrace {
    fn push(&mut self, kpi: &SlotKpi) {
        KpiTrace::push(self, *kpi);
    }
}

/// Feeds every record to two sinks in order — e.g. retain a full trace
/// while simultaneously folding online aggregates.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B> {
    /// The first sink; receives each record before `second`.
    pub first: A,
    /// The second sink.
    pub second: B,
}

impl<A: SlotSink, B: SlotSink> Tee<A, B> {
    /// Combine two sinks.
    pub fn new(first: A, second: B) -> Self {
        Tee { first, second }
    }
}

impl<A: SlotSink, B: SlotSink> SlotSink for Tee<A, B> {
    fn push(&mut self, kpi: &SlotKpi) {
        self.first.push(kpi);
        self.second.push(kpi);
    }

    fn finish(&mut self) {
        self.first.finish();
        self.second.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kpi::Direction;

    #[test]
    fn tee_duplicates_the_stream() {
        let mut tee = Tee::new(KpiTrace::new(), KpiTrace::new());
        for i in 0..10u64 {
            let kpi = SlotKpi::idle(i, i as f64 * 0.0005, 0, Direction::Dl, 10, 15.0, -85.0, -11.0, 0);
            tee.push(&kpi);
        }
        tee.finish();
        assert_eq!(tee.first.len(), 10);
        assert_eq!(tee.first, tee.second);
    }
}
