//! The loaded-cell engine: one cell, N contending UEs, one slot loop.
//!
//! [`crate::multiuser::MultiUeSim`] reproduced the paper's §5.2 / Fig. 14
//! two-UE experiments by cloning a full [`Carrier`](crate::carrier::Carrier) per UE and steering
//! fractional shares through it. That shape cannot scale: every clone
//! carries its own allocation table and TBS memo, shares are floats that
//! can over-allocate under rounding, and the per-slot loop materialises a
//! `KpiTrace` per UE. [`CellSim`] rebuilds cell-level simulation as a
//! first-class engine:
//!
//! * **Structure-of-arrays state.** Per-UE columns (CQI, OLLA/AMC, HARQ,
//!   PF average rate, EWMA SINR, channel, traffic, BLER RNG) live in
//!   parallel vectors, so each phase of the slot loop sweeps contiguous
//!   memory across the whole user set — the same batching the columnar
//!   [`crate::kpi::KpiTrace`] applies across slots.
//! * **Integer-PRB scheduling.** The cell holds one RB budget per
//!   direction and hands out integer grants
//!   ([`crate::scheduler::split_prbs`]); the grants of one slot can never
//!   sum past the budget, which audit mode checks as
//!   [`Invariant::RbBudgetConserved`].
//! * **Streaming output.** Records leave through a [`CellSink`] as they
//!   are produced; a 10k-UE campaign folds them into O(UEs) accumulators
//!   instead of holding ~10k traces.
//!
//! # Slot contract
//!
//! Each [`CellSim::step_into`] runs three phases, all in UE index order:
//!
//! 1. **Schedule** on the CSI the gNB holds from previous slots (real
//!    schedulers act on the last report, not on channel truth of the slot
//!    being scheduled): pick the slot's grants per
//!    [`SchedulerPolicy`] over the eligible set (active UEs with queued
//!    traffic as of the previous slot).
//! 2. **Channel + UE side**: advance each UE's channel, traffic arrivals,
//!    SINR filtering and (periodic) CSI reporting.
//! 3. **Transmit**: run the granted UEs' DL/UL leg exactly as the
//!    single-UE [`Carrier`](crate::carrier::Carrier) would — same AMC, HARQ, TBS and BLER-draw
//!    arithmetic, same RNG stream per UE — then update PF average rates
//!    and push one DL record (plus one UL record on UL-capable slots) per
//!    UE into the sink.
//!
//! With one UE, every phase degenerates to the [`Carrier`](crate::carrier::Carrier) path and the
//! emitted records are byte-identical to it (`ran/tests/cell_props.rs`).

use crate::amc::{AmcState, OllaConfig};
use crate::carrier::TrafficPattern;
use crate::config::CellConfig;
use crate::harq::{HarqConfig, HarqEntity};
use crate::kpi::{Direction, KpiTrace, SlotKpi};
use crate::scheduler::{self, SchedulerPolicy};
use crate::traffic::{TrafficSource, TrafficState};
use nr_phy::cqi::Cqi;
use nr_phy::csi::{CsiReport, DEFAULT_CSI_PERIOD_SLOTS};
use nr_phy::tbs::TbsCache;
use obs::audit::{self, Invariant};
use obs::Counter;
use radio_channel::channel::{ChannelConfig, ChannelSimulator, ChannelState};
use radio_channel::geometry::{DeploymentLayout, Position};
use radio_channel::link::LinkModel;
use radio_channel::mobility::MobilityModel;
use radio_channel::rng::SeedTree;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// Everything static about the cell a [`CellSim`] drives: the carrier
/// configuration, the radio environment shared by every UE, and the
/// scheduling/traffic regime.
#[derive(Debug, Clone)]
pub struct CellParams {
    /// Carrier configuration (bandwidth, TDD pattern, MCS policy...).
    pub cell: CellConfig,
    /// Radio environment every UE's channel instantiates.
    pub channel: ChannelConfig,
    /// Site deployment shared by every UE.
    pub layout: DeploymentLayout,
    /// Link-level abstraction (BLER/CQI/rank curves).
    pub link: LinkModel,
    /// How the cell splits RBs among contending UEs.
    pub policy: SchedulerPolicy,
    /// Which directions carry saturating traffic.
    pub traffic: TrafficPattern,
}

impl CellParams {
    /// The calibrated mid-band baseline the figures use: `DDDSU` TDD,
    /// urban-macro channel, single site, 256QAM link — only the bandwidth
    /// and scheduling policy vary per experiment.
    pub fn midband(bandwidth_mhz: u32, policy: SchedulerPolicy) -> Self {
        let cell = CellConfig::midband(bandwidth_mhz, "DDDSU");
        let channel = ChannelConfig::midband_urban(cell.n_rb);
        CellParams {
            cell,
            channel,
            layout: DeploymentLayout::single_site(),
            link: LinkModel::midband_qam256(),
            policy,
            traffic: TrafficPattern::DL,
        }
    }
}

/// One UE of the cell: a fixed position and whether it contends for RBs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UeSpec {
    /// The UE's (stationary) position.
    pub position: Position,
    /// Whether the UE has active traffic (load sweeps activate subsets).
    pub active: bool,
}

impl UeSpec {
    /// An active UE at `(x, y)`.
    pub fn at(x: f64, y: f64) -> Self {
        UeSpec { position: Position::new(x, y), active: true }
    }
}

/// A streaming consumer of per-UE slot records — the cell-level analogue
/// of [`crate::sink::SlotSink`], with the producing UE's index alongside
/// each record so O(UEs) accumulators can bucket without a trace per UE.
///
/// The [`crate::sink::SlotSink`] contract carries over: records arrive in
/// emission order (per slot, UEs in index order, DL before UL), and
/// `finish` is called exactly once after the last record.
pub trait CellSink {
    /// Consume one record produced by UE `ue`.
    fn push(&mut self, ue: u32, kpi: &SlotKpi);

    /// Signal end of stream. Defaults to a no-op.
    fn finish(&mut self) {}
}

/// The materialising sink: one full [`KpiTrace`] per UE. Fine for a
/// handful of UEs (the Fig. 14 experiments); load sweeps use bounded
/// accumulators instead.
#[derive(Debug, Clone, Default)]
pub struct CellTraces {
    traces: Vec<KpiTrace>,
}

impl CellTraces {
    /// Empty traces for `n_ues` UEs.
    pub fn new(n_ues: usize) -> Self {
        CellTraces { traces: (0..n_ues).map(|_| KpiTrace::new()).collect() }
    }

    /// The per-UE traces, indexed by UE.
    pub fn traces(&self) -> &[KpiTrace] {
        &self.traces
    }

    /// Take ownership of the per-UE traces.
    pub fn into_traces(self) -> Vec<KpiTrace> {
        self.traces
    }
}

impl CellSink for CellTraces {
    fn push(&mut self, ue: u32, kpi: &SlotKpi) {
        self.traces[ue as usize].push(*kpi);
    }
}

/// Cached metric handles (same registry names as the single-UE
/// [`Carrier`](crate::carrier::Carrier), so obs totals aggregate across both engines). Per-slot
/// deltas accumulate in locals and flush as one atomic add per counter
/// per slot, keeping the hot path at four atomics regardless of N.
#[derive(Debug, Clone, Copy)]
struct CellMetrics {
    slots: Counter,
    retx: Counter,
    block_errors: Counter,
    delivered_bits: Counter,
}

impl CellMetrics {
    fn new() -> Self {
        let reg = obs::registry();
        CellMetrics {
            slots: reg.counter("ran.slots"),
            retx: reg.counter("ran.retx"),
            block_errors: reg.counter("ran.block_errors"),
            delivered_bits: reg.counter("ran.delivered_bits"),
        }
    }
}

/// Per-slot metric deltas, flushed to the atomic counters once per slot.
#[derive(Debug, Clone, Copy, Default)]
struct MetricDeltas {
    retx: u64,
    block_errors: u64,
    delivered_bits: u64,
}

/// UEs swept per fused phase-2+3 chunk. Phases 2 and 3 are per-UE
/// independent once the slot's grants are fixed, so the sweep fuses them
/// over small chunks: a UE's channel state, traffic queues and AMC column
/// are still cache-resident when its transmit leg runs (sweeping the whole
/// user set in phase 2 before returning to UE 0 evicted all of it at
/// ~10k UEs). The chunk is also the SIMD batch for the CSI-slot CQI
/// evaluation — 8 lanes fill two AVX2 vectors.
const UE_CHUNK: usize = 8;

/// N UEs contending for one cell's RBs, stepped slot by slot.
///
/// State is laid out structure-of-arrays: column `i` of every vector
/// belongs to UE `i`. Steady-state stepping is allocation-free at any N
/// (`ran/tests/alloc_free.rs` pins N=1000): scratch columns are reused,
/// the TBS memo is shared across the whole cell, and records stream out
/// through the sink.
pub struct CellSim {
    params: CellParams,
    csi_period: u64,
    slot: u64,
    rr_next: usize,
    // --- per-UE columns ---
    positions: Vec<Position>,
    active: Vec<bool>,
    channels: Vec<ChannelSimulator>,
    amc: Vec<AmcState>,
    dl_harq: Vec<HarqEntity>,
    ul_harq: Vec<HarqEntity>,
    dl_traffic: Vec<TrafficState>,
    ul_traffic: Vec<TrafficState>,
    bler_rng: Vec<ChaCha12Rng>,
    ewma_sinr_db: Vec<f64>,
    prev_rank: Vec<u8>,
    /// CQI the gNB holds for each UE (last reported; what scheduling
    /// decisions and slot records see).
    gnb_cqi: Vec<u8>,
    /// PF long-term average delivered DL bits per slot (EWMA).
    avg_rate: Vec<f64>,
    /// For each UE, the lowest index sharing its exact position — the UE
    /// whose large-scale channel cache co-located UEs adopt on slot 0.
    spot_leader: Vec<u32>,
    // --- per-slot scratch, reused across slots ---
    ch: Vec<ChannelState>,
    dl_prbs: Vec<u16>,
    ul_prbs: Vec<u16>,
    eligible: Vec<u32>,
    // --- shared across UEs ---
    tbs_cache: TbsCache,
    metrics: CellMetrics,
}

impl CellSim {
    /// Assemble the cell. UE `i` draws every stream from
    /// `seeds.child_indexed("ue", i)` with the same labels the single-UE
    /// [`Carrier`](crate::carrier::Carrier) uses, so a one-UE cell replays a `Carrier` built from
    /// the same subtree byte-for-byte.
    pub fn new(params: CellParams, ues: &[UeSpec], seeds: &SeedTree) -> Self {
        assert!(!ues.is_empty(), "need at least one UE");
        let n = ues.len();
        let mut positions = Vec::with_capacity(n);
        let mut active = Vec::with_capacity(n);
        let mut channels = Vec::with_capacity(n);
        let mut amc = Vec::with_capacity(n);
        let mut dl_harq = Vec::with_capacity(n);
        let mut ul_harq = Vec::with_capacity(n);
        let mut dl_traffic = Vec::with_capacity(n);
        let mut ul_traffic = Vec::with_capacity(n);
        let mut bler_rng = Vec::with_capacity(n);
        let mut spot_leader: Vec<u32> = Vec::with_capacity(n);
        for (i, ue) in ues.iter().enumerate() {
            let ue_seeds = seeds.child_indexed("ue", i as u64);
            positions.push(ue.position);
            active.push(ue.active);
            channels.push(ChannelSimulator::new(
                params.channel,
                params.layout.clone(),
                MobilityModel::Stationary { position: ue.position },
                &ue_seeds,
            ));
            amc.push(AmcState::new(OllaConfig::default()));
            dl_harq.push(HarqEntity::new(HarqConfig::default()));
            ul_harq.push(HarqEntity::new(HarqConfig::default()));
            dl_traffic.push(TrafficState::new(TrafficSource::FullBuffer, &ue_seeds, "dl"));
            ul_traffic.push(TrafficState::new(TrafficSource::FullBuffer, &ue_seeds, "ul"));
            // Matches Carrier index 0's stream label exactly.
            bler_rng.push(ue_seeds.stream_static("carrier0/bler"));
            let leader = positions[..i]
                .iter()
                .position(|&p| p == ue.position)
                .unwrap_or(i) as u32;
            spot_leader.push(leader);
        }
        CellSim {
            csi_period: DEFAULT_CSI_PERIOD_SLOTS,
            slot: 0,
            rr_next: 0,
            positions,
            active,
            channels,
            amc,
            dl_harq,
            ul_harq,
            dl_traffic,
            ul_traffic,
            bler_rng,
            ewma_sinr_db: vec![15.0; n],
            prev_rank: vec![2; n],
            // AmcState::new starts from a mid-range CQI 8 assumption.
            gnb_cqi: vec![8; n],
            avg_rate: vec![1.0; n],
            spot_leader,
            ch: Vec::with_capacity(n),
            dl_prbs: vec![0; n],
            ul_prbs: vec![0; n],
            eligible: Vec::with_capacity(n),
            tbs_cache: TbsCache::new(),
            metrics: CellMetrics::new(),
            params,
        }
    }

    /// Number of UEs in the cell.
    pub fn n_ues(&self) -> usize {
        self.positions.len()
    }

    /// Slots stepped so far.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// (De)activate a UE between steps (sequential-vs-simultaneous
    /// experiments toggle this).
    pub fn set_active(&mut self, ue: usize, active: bool) {
        self.active[ue] = active;
    }

    /// Override the CSI reporting period in slots.
    pub fn set_csi_period(&mut self, slots: u64) {
        self.csi_period = slots.max(1);
    }

    /// Replace UE `ue`'s DL traffic source (default: full buffer).
    /// `seeds` should be the tree the cell was built with.
    pub fn set_dl_traffic(&mut self, ue: usize, source: TrafficSource, seeds: &SeedTree) {
        let ue_seeds = seeds.child_indexed("ue", ue as u64);
        self.dl_traffic[ue] = TrafficState::new(source, &ue_seeds, "dl");
    }

    /// Run `slots` slots, streaming every record into `sink`, and call
    /// its `finish` once at the end.
    pub fn run_into<S: CellSink>(&mut self, slots: u64, sink: &mut S) {
        for _ in 0..slots {
            self.step_into(sink);
        }
        sink.finish();
    }

    /// Run `slots` slots and materialise one trace per UE (small-N
    /// convenience; load sweeps stream into bounded sinks instead).
    pub fn run(&mut self, slots: u64) -> Vec<KpiTrace> {
        let mut traces = CellTraces::new(self.n_ues());
        self.run_into(slots, &mut traces);
        traces.into_traces()
    }

    /// Advance the whole cell one slot (see the module docs for the
    /// three-phase contract).
    pub fn step_into<S: CellSink>(&mut self, sink: &mut S) {
        let slot = self.slot;
        self.slot += 1;
        let slot_s = self.params.cell.slot_s();
        let time_s = slot as f64 * slot_s;
        let n = self.n_ues();
        let auditing = audit::enabled();

        // Phase 1 — schedule on the CSI the gNB already holds.
        self.schedule(slot, auditing);

        // Phases 2 and 3, fused over UE chunks. Given the slot's grants
        // every per-UE column is independent across UEs, so running a
        // chunk's transmit legs right after its channel sweep changes no
        // value, only cache behaviour — and records still leave in UE
        // index order, DL before UL, exactly as the module contract says.
        let csi_slot = slot.is_multiple_of(self.csi_period);
        let ul_capable = self.params.cell.ul_symbols(slot) > 0;
        let mut deltas = MetricDeltas::default();
        let mut cqi_buf = [Cqi::saturating(0); UE_CHUNK];
        let mut start = 0;
        while start < n {
            let end = (start + UE_CHUNK).min(n);

            // Phase 2 — channel evolution and UE-side reporting.
            self.ch.clear();
            for i in start..end {
                if slot == 0 {
                    // Co-located UEs adopt the first occupant's large-scale
                    // cache; later slots hit each UE's own cache.
                    let leader = self.spot_leader[i] as usize;
                    if leader < i {
                        let (head, tail) = self.channels.split_at_mut(i);
                        tail[0].prime_cache_from(&head[leader]);
                    }
                }
                let ch = self.channels[i].step_at(self.positions[i], 0.0);
                self.dl_traffic[i].arrive(slot_s);
                self.ul_traffic[i].arrive(slot_s);
                self.ewma_sinr_db[i] = 0.9 * self.ewma_sinr_db[i] + 0.1 * ch.sinr_db;
                self.ch.push(ch);
            }
            if csi_slot {
                // One SIMD CQI evaluation for the whole chunk (bit-identical
                // to the scalar `AmcState::make_csi` per UE); rank stays
                // scalar — it threads per-UE hysteresis state.
                self.params
                    .link
                    .cqi_batch(&self.ewma_sinr_db[start..end], &mut cqi_buf[..end - start]);
                for i in start..end {
                    let cqi = cqi_buf[i - start];
                    let ri =
                        self.params.link.rank(self.ewma_sinr_db[i], self.prev_rank[i]);
                    let csi = CsiReport::new(ri, 0, cqi, 0);
                    self.prev_rank[i] = ri;
                    self.amc[i].update_csi(csi);
                    self.gnb_cqi[i] = csi.cqi.value();
                }
            }
            if auditing {
                for i in start..end {
                    audit::check(Invariant::CqiRange, self.gnb_cqi[i] <= 15);
                }
            }

            // Phase 3 — transmit per grant, stream records, update PF state.
            for i in start..end {
                let cqi = self.gnb_cqi[i];
                let ch = self.ch[i - start];
                let dl = if self.params.traffic.dl
                    && self.dl_traffic[i].has_data()
                    && self.dl_prbs[i] > 0
                {
                    dl_transmit(
                        &self.params,
                        &mut self.tbs_cache,
                        &mut self.amc[i],
                        &mut self.dl_harq[i],
                        &mut self.dl_traffic[i],
                        &mut self.bler_rng[i],
                        &mut deltas,
                        slot,
                        time_s,
                        cqi,
                        &ch,
                        self.dl_prbs[i],
                        auditing,
                    )
                } else {
                    idle(slot, time_s, Direction::Dl, cqi, &ch)
                };
                sink.push(i as u32, &dl);
                if ul_capable {
                    let ul = if self.params.traffic.ul
                        && self.ul_traffic[i].has_data()
                        && self.ul_prbs[i] > 0
                    {
                        ul_transmit(
                            &self.params,
                            &mut self.tbs_cache,
                            &mut self.amc[i],
                            &mut self.ul_harq[i],
                            &mut self.ul_traffic[i],
                            &mut self.bler_rng[i],
                            &mut deltas,
                            slot,
                            time_s,
                            cqi,
                            &ch,
                            self.ul_prbs[i],
                            auditing,
                        )
                    } else {
                        idle(slot, time_s, Direction::Ul, cqi, &ch)
                    };
                    sink.push(i as u32, &ul);
                }
                // PF bookkeeping: the long-term average tracks delivered DL
                // bits for every UE every slot (idle slots decay it), exactly
                // as the legacy MultiUeSim did.
                self.avg_rate[i] = 0.999 * self.avg_rate[i] + 0.001 * f64::from(dl.delivered_bits);
            }
            start = end;
        }
        self.metrics.slots.add(n as u64);
        self.metrics.retx.add(deltas.retx);
        self.metrics.block_errors.add(deltas.block_errors);
        self.metrics.delivered_bits.add(deltas.delivered_bits);
    }

    /// Fill `dl_prbs`/`ul_prbs` with this slot's integer grants.
    fn schedule(&mut self, slot: u64, auditing: bool) {
        let n = self.n_ues();
        self.dl_prbs[..n].fill(0);
        self.ul_prbs[..n].fill(0);
        self.eligible.clear();
        for i in 0..n {
            if self.active[i]
                && ((self.params.traffic.dl && self.dl_traffic[i].has_data())
                    || (self.params.traffic.ul && self.ul_traffic[i].has_data()))
            {
                self.eligible.push(i as u32);
            }
        }
        if self.eligible.is_empty() {
            return;
        }
        let dl_budget = self.params.cell.n_rb;
        let ul_budget = scheduler::ul_prb_budget(&self.params.cell);
        match self.params.policy {
            SchedulerPolicy::EqualShare => {
                let k = self.eligible.len();
                for (rank, &i) in self.eligible.iter().enumerate() {
                    self.dl_prbs[i as usize] = scheduler::split_prbs(dl_budget, k, rank, slot);
                    self.ul_prbs[i as usize] = scheduler::split_prbs(ul_budget, k, rank, slot);
                }
            }
            SchedulerPolicy::RoundRobinSlots => {
                let pick = self.eligible[self.rr_next % self.eligible.len()] as usize;
                self.rr_next += 1;
                self.dl_prbs[pick] = dl_budget;
                self.ul_prbs[pick] = ul_budget;
            }
            SchedulerPolicy::MaxCqi => {
                // First index wins ties: strict comparison.
                let mut pick = self.eligible[0] as usize;
                for &i in &self.eligible[1..] {
                    if self.gnb_cqi[i as usize] > self.gnb_cqi[pick] {
                        pick = i as usize;
                    }
                }
                self.dl_prbs[pick] = dl_budget;
                self.ul_prbs[pick] = ul_budget;
            }
            SchedulerPolicy::ProportionalFair => {
                // Metric: CQI-implied instantaneous rate over average
                // rate. Last index wins ties (`>=`), preserving the
                // legacy `Iterator::max_by` selection exactly.
                let metric = |i: usize| {
                    f64::from(self.gnb_cqi[i]) / self.avg_rate[i].max(1e-9)
                };
                let mut pick = self.eligible[0] as usize;
                let mut best = metric(pick);
                for &i in &self.eligible[1..] {
                    let m = metric(i as usize);
                    if m >= best {
                        best = m;
                        pick = i as usize;
                    }
                }
                self.dl_prbs[pick] = dl_budget;
                self.ul_prbs[pick] = ul_budget;
            }
        }
        if auditing {
            let dl_sum: u64 = self.eligible.iter().map(|&i| u64::from(self.dl_prbs[i as usize])).sum();
            let ul_sum: u64 = self.eligible.iter().map(|&i| u64::from(self.ul_prbs[i as usize])).sum();
            audit::check(Invariant::RbBudgetConserved, dl_sum <= u64::from(dl_budget));
            audit::check(Invariant::RbBudgetConserved, ul_sum <= u64::from(ul_budget));
        }
    }
}

fn idle(slot: u64, time_s: f64, direction: Direction, cqi: u8, ch: &ChannelState) -> SlotKpi {
    SlotKpi::idle(
        slot,
        time_s,
        0,
        direction,
        cqi,
        ch.sinr_db,
        ch.measurement.rsrp_dbm,
        ch.measurement.rsrq_db,
        ch.serving_site,
    )
}

/// One UE's DL leg for one granted slot. Field-for-field and float-op-for
/// float-op the same computation as `Carrier::dl_step`, with the PRB
/// count already an integer (the carrier derives it from a share).
#[allow(clippy::too_many_arguments)] // mirrors the per-UE column set
fn dl_transmit(
    params: &CellParams,
    tbs_cache: &mut TbsCache,
    amc: &mut AmcState,
    harq: &mut HarqEntity,
    traffic: &mut TrafficState,
    rng: &mut ChaCha12Rng,
    deltas: &mut MetricDeltas,
    slot: u64,
    time_s: f64,
    cqi: u8,
    ch: &ChannelState,
    n_prb: u16,
    auditing: bool,
) -> SlotKpi {
    let cfg = &params.cell;
    let alloc = scheduler::dl_allocation_prbs(cfg, slot, n_prb);
    let (Some(alloc), false) = (alloc, cqi == 0) else {
        return idle(slot, time_s, Direction::Dl, cqi, ch);
    };
    let grant = amc.dl_grant(cfg);
    let table = grant.format.effective_mcs_table(cfg.mcs_table());
    let modulation = table.modulation(grant.mcs).unwrap_or(nr_phy::mcs::Modulation::Qpsk);

    let (tbs_bits, attempts, is_retx) = match harq.pop_ready(slot) {
        Some(tb) => (tb.tbs_bits, tb.attempts + 1, true),
        None => {
            let full = tbs_cache.transport_block_size(&alloc, table, grant.mcs, grant.layers);
            (traffic.consume(full), 1, false)
        }
    };

    let bonus = harq.combining_bonus_db(attempts);
    let p_err = params.link.bler(ch.sinr_db + bonus, table, grant.mcs);
    let failed = rng.gen::<f64>() < p_err;
    if failed {
        harq.record_failure(tbs_bits, attempts, slot);
    }
    amc.harq_feedback(!failed);

    let delivered_bits = if failed { 0 } else { tbs_bits };
    if failed {
        deltas.block_errors += 1;
    }
    if is_retx {
        deltas.retx += 1;
    }
    deltas.delivered_bits += u64::from(delivered_bits);
    if auditing {
        audit::check(Invariant::RbWithinCarrier, alloc.n_prb <= cfg.n_rb);
        audit::check(Invariant::HarqAttemptsWithinMax, attempts <= harq.config().max_attempts);
        audit::check(Invariant::DeliveredWithinTbs, delivered_bits <= tbs_bits);
    }

    SlotKpi {
        slot,
        time_s,
        carrier: 0,
        direction: Direction::Dl,
        scheduled: true,
        n_prb: alloc.n_prb,
        n_re: alloc.total_re(),
        mcs: grant.mcs.0,
        modulation,
        layers: grant.layers,
        tbs_bits,
        delivered_bits,
        is_retx,
        block_error: failed,
        cqi,
        sinr_db: ch.sinr_db,
        rsrp_dbm: ch.measurement.rsrp_dbm,
        rsrq_db: ch.measurement.rsrq_db,
        serving_site: ch.serving_site,
    }
}

/// One UE's UL leg for one granted slot (mirror of `Carrier::ul_step`).
#[allow(clippy::too_many_arguments)] // mirrors the per-UE column set
fn ul_transmit(
    params: &CellParams,
    tbs_cache: &mut TbsCache,
    amc: &mut AmcState,
    harq: &mut HarqEntity,
    traffic: &mut TrafficState,
    rng: &mut ChaCha12Rng,
    deltas: &mut MetricDeltas,
    slot: u64,
    time_s: f64,
    cqi: u8,
    ch: &ChannelState,
    n_prb: u16,
    auditing: bool,
) -> SlotKpi {
    let cfg = &params.cell;
    let alloc = scheduler::ul_allocation_prbs(cfg, slot, n_prb)
        .expect("caller checked ul_symbols > 0 and n_prb > 0");
    if cqi == 0 {
        return idle(slot, time_s, Direction::Ul, cqi, ch);
    }
    let grant = amc.ul_grant(cfg);
    let table = grant.format.effective_mcs_table(cfg.mcs_table());
    let modulation = table.modulation(grant.mcs).unwrap_or(nr_phy::mcs::Modulation::Qpsk);

    let (tbs_bits, attempts, is_retx) = match harq.pop_ready(slot) {
        Some(tb) => (tb.tbs_bits, tb.attempts + 1, true),
        None => {
            let full = tbs_cache.transport_block_size(&alloc, table, grant.mcs, grant.layers);
            (traffic.consume(full), 1, false)
        }
    };

    // Same UE power-budget penalty as the single-UE carrier.
    const UL_SINR_PENALTY_DB: f64 = 6.0;
    let bonus = harq.combining_bonus_db(attempts);
    let p_err = params.link.bler(ch.sinr_db - UL_SINR_PENALTY_DB + bonus, table, grant.mcs);
    let failed = rng.gen::<f64>() < p_err;
    if failed {
        harq.record_failure(tbs_bits, attempts, slot);
    }

    let delivered_bits = if failed { 0 } else { tbs_bits };
    if failed {
        deltas.block_errors += 1;
    }
    if is_retx {
        deltas.retx += 1;
    }
    deltas.delivered_bits += u64::from(delivered_bits);
    if auditing {
        audit::check(Invariant::RbWithinCarrier, alloc.n_prb <= cfg.n_rb);
        audit::check(Invariant::HarqAttemptsWithinMax, attempts <= harq.config().max_attempts);
        audit::check(Invariant::DeliveredWithinTbs, delivered_bits <= tbs_bits);
    }

    SlotKpi {
        slot,
        time_s,
        carrier: 0,
        direction: Direction::Ul,
        scheduled: true,
        n_prb: alloc.n_prb,
        n_re: alloc.total_re(),
        mcs: grant.mcs.0,
        modulation,
        layers: grant.layers,
        tbs_bits,
        delivered_bits,
        is_retx,
        block_error: failed,
        cqi,
        sinr_db: ch.sinr_db,
        rsrp_dbm: ch.measurement.rsrp_dbm,
        rsrq_db: ch.measurement.rsrq_db,
        serving_site: ch.serving_site,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spots(n: usize) -> Vec<UeSpec> {
        const D: [f64; 8] = [45.0, 70.0, 95.0, 117.0, 60.0, 85.0, 110.0, 135.0];
        (0..n).map(|i| UeSpec::at(D[i % D.len()], 0.0)).collect()
    }

    #[test]
    fn two_ues_roughly_halve_per_ue_throughput() {
        // The Fig. 14 mechanism at engine level: the same UE alone vs
        // sharing the cell with a second active UE.
        let run = |ues: Vec<UeSpec>| {
            let mut sim = CellSim::new(
                CellParams::midband(60, SchedulerPolicy::EqualShare),
                &ues,
                &SeedTree::new(14),
            );
            let traces = sim.run(20_000);
            traces[0].mean_throughput_mbps(Direction::Dl)
        };
        let mut alone = spots(2);
        alone[1].active = false;
        let solo = run(alone);
        let shared = run(spots(2));
        assert!(
            shared < solo * 0.65 && shared > solo * 0.3,
            "solo {solo} shared {shared}"
        );
    }

    #[test]
    fn max_cqi_starves_the_weak_ue() {
        let ues = vec![UeSpec::at(45.0, 0.0), UeSpec::at(300.0, 0.0)];
        let mut sim = CellSim::new(
            CellParams::midband(60, SchedulerPolicy::MaxCqi),
            &ues,
            &SeedTree::new(15),
        );
        let traces = sim.run(10_000);
        let strong = traces[0].mean_throughput_mbps(Direction::Dl);
        let weak = traces[1].mean_throughput_mbps(Direction::Dl);
        assert!(strong > 100.0, "strong {strong}");
        // Max-CQI all but starves the cell-edge UE.
        assert!(weak < strong * 0.05, "strong {strong} weak {weak}");
    }

    #[test]
    fn inactive_ues_cost_nothing_but_produce_idle_records() {
        let mut ues = spots(3);
        ues[1].active = false;
        let mut sim = CellSim::new(
            CellParams::midband(60, SchedulerPolicy::EqualShare),
            &ues,
            &SeedTree::new(16),
        );
        let traces = sim.run(2_000);
        assert_eq!(traces.len(), 3);
        // The inactive UE logs slots but never a grant.
        assert!(!traces[1].is_empty());
        assert!(traces[1].iter().all(|r| !r.scheduled));
        // Active UEs split the whole budget (162 RBs at 60 MHz) two ways.
        let mean_rb = |t: &KpiTrace| {
            let s: Vec<f64> = t
                .direction(Direction::Dl)
                .filter(|r| r.scheduled)
                .map(|r| f64::from(r.n_prb))
                .collect();
            s.iter().sum::<f64>() / s.len() as f64
        };
        assert!((mean_rb(&traces[0]) - 81.0).abs() < 1.0);
        assert!((mean_rb(&traces[2]) - 81.0).abs() < 1.0);
    }

    #[test]
    fn more_ues_than_rbs_still_conserves_and_serves() {
        // 200 UEs on a 20 MHz FDD-like budget exercise the k > budget
        // path: zero-PRB "grants" must not schedule, and over enough
        // slots the rotation serves everyone.
        let mut params = CellParams::midband(60, SchedulerPolicy::EqualShare);
        params.cell.n_rb = 51; // shrink the budget below the UE count
        let ues = spots(200);
        let mut sim = CellSim::new(params, &ues, &SeedTree::new(17));
        struct Served(Vec<u64>);
        impl CellSink for Served {
            fn push(&mut self, ue: u32, kpi: &SlotKpi) {
                if kpi.scheduled && kpi.direction == Direction::Dl {
                    self.0[ue as usize] += 1;
                }
            }
        }
        let mut served = Served(vec![0; 200]);
        sim.run_into(2_000, &mut served);
        let never = served.0.iter().filter(|&&n| n == 0).count();
        assert_eq!(never, 0, "{never} UEs never scheduled under rotation");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = CellSim::new(
                CellParams::midband(60, SchedulerPolicy::ProportionalFair),
                &spots(5),
                &SeedTree::new(18),
            );
            sim.run(3_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
        }
    }
}
