//! Adaptive modulation and coding: the gNB side of the Fig. 21 loop.
//!
//! Tracks the most recent CSI report, applies the vendor CQI→MCS policy,
//! runs outer-loop link adaptation (OLLA) on HARQ feedback to hold BLER at
//! its target, and performs rank adaptation. These are precisely the
//! "dynamic parameters" whose variability the paper's §5 quantifies.

use crate::config::CellConfig;
use nr_phy::cqi::Cqi;
use nr_phy::csi::CsiReport;
use nr_phy::dci::DciFormat;
use nr_phy::mcs::McsIndex;
use radio_channel::link::LinkModel;
use serde::{Deserialize, Serialize};

/// OLLA parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OllaConfig {
    /// Target BLER (NR convention: 0.1).
    pub target_bler: f64,
    /// Offset step applied on a NACK, in MCS-index units (the ACK step is
    /// derived as `nack_step · target/(1−target)` so the offset is
    /// stationary at the target BLER).
    pub nack_step: f64,
    /// Upward offset clamp, in MCS-index units (kept tight: over-shooting
    /// the CQI inflates the modulation-order mix beyond what commercial
    /// networks show).
    pub max_up: f64,
    /// Downward offset clamp, in MCS-index units (loose: under poor and
    /// drifting channels the outer loop must be able to back off hard).
    pub max_down: f64,
    /// Whether OLLA is enabled (ablation knob).
    pub enabled: bool,
}

impl Default for OllaConfig {
    fn default() -> Self {
        OllaConfig { target_bler: 0.1, nack_step: 0.5, max_up: 1.5, max_down: 6.0, enabled: true }
    }
}

/// The per-UE AMC state at the gNB.
#[derive(Debug, Clone)]
pub struct AmcState {
    olla: OllaConfig,
    olla_offset: f64,
    latest_csi: CsiReport,
    current_rank: u8,
}

/// The scheduling decision AMC produces for one grant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrantParams {
    /// DCI format used (1_0 fallback under poor channel, else 1_1).
    pub format: DciFormat,
    /// Chosen MCS index.
    pub mcs: McsIndex,
    /// Chosen layer count.
    pub layers: u8,
}

impl AmcState {
    /// Fresh state assuming a mid-range channel until the first CSI.
    pub fn new(olla: OllaConfig) -> Self {
        AmcState {
            olla,
            olla_offset: 0.0,
            latest_csi: CsiReport::new(2, 0, Cqi::saturating(8), 0),
            current_rank: 2,
        }
    }

    /// Ingest a fresh CSI report (UE→gNB, every CSI period).
    pub fn update_csi(&mut self, csi: CsiReport) {
        self.latest_csi = csi;
    }

    /// The most recent CSI.
    pub fn csi(&self) -> CsiReport {
        self.latest_csi
    }

    /// The current OLLA offset (for inspection/ablation).
    pub fn olla_offset(&self) -> f64 {
        self.olla_offset
    }

    /// Apply HARQ feedback to the outer loop.
    pub fn harq_feedback(&mut self, ack: bool) {
        if !self.olla.enabled {
            return;
        }
        let t = self.olla.target_bler;
        if ack {
            self.olla_offset += self.olla.nack_step * t / (1.0 - t);
        } else {
            self.olla_offset -= self.olla.nack_step;
        }
        self.olla_offset = self.olla_offset.clamp(-self.olla.max_down, self.olla.max_up);
    }

    /// Produce grant parameters for a DL grant under the cell config.
    ///
    /// * CQI below 3 (or out-of-range) drops to the fallback DCI 1_0 —
    ///   single layer, 64QAM table — matching the paper's note that
    ///   format 1_0 appears "when the channel conditions worsen";
    /// * otherwise DCI 1_1 with the vendor CQI→MCS mapping plus the OLLA
    ///   offset, and rank = min(RI, cell max).
    pub fn dl_grant(&mut self, cell: &CellConfig) -> GrantParams {
        let csi = self.latest_csi;
        let fallback = csi.cqi.is_out_of_range() || csi.cqi.value() < 3;
        if fallback {
            let format = DciFormat::Dl1_0;
            let table = format.effective_mcs_table(cell.mcs_table());
            // Fallback grants SE-match the reported CQI against the 64QAM
            // table (CQI 0 → MCS 0) and still honour the outer loop, so a
            // drifting channel cannot pin the BLER high.
            let target_se = nr_phy::cqi::CqiTable::Table1.spectral_efficiency(csi.cqi);
            let base = table.highest_index_at_or_below(target_se);
            let adjusted = (base.0 as f64 + self.olla_offset)
                .round()
                .clamp(0.0, table.max_index().0 as f64) as u8;
            self.current_rank = 1;
            return GrantParams { format, mcs: McsIndex(adjusted), layers: 1 };
        }
        let base = cell.mcs_policy.map(csi.cqi);
        let max = cell.mcs_table().max_index().0 as f64;
        let adjusted = (base.0 as f64 + self.olla_offset).round().clamp(0.0, max) as u8;
        self.current_rank = csi.ri.min(cell.max_dl_layers).max(1);
        GrantParams {
            format: DciFormat::Dl1_1,
            mcs: McsIndex(adjusted),
            layers: self.current_rank,
        }
    }

    /// MCS-index backoff applied to UL grants: the UE's power budget puts
    /// the UL ~6 dB below the DL SINR the CQI describes, and one MCS index
    /// spans ~1.5 dB.
    pub const UL_INDEX_BACKOFF: u8 = 4;

    /// Produce grant parameters for a UL grant (capped MCS and layers,
    /// power-budget backoff applied).
    pub fn ul_grant(&mut self, cell: &CellConfig) -> GrantParams {
        let csi = self.latest_csi;
        if csi.cqi.is_out_of_range() {
            return GrantParams { format: DciFormat::Ul0_0, mcs: McsIndex(0), layers: 1 };
        }
        let base = cell.mcs_policy.map(csi.cqi).0.saturating_sub(Self::UL_INDEX_BACKOFF);
        let max = cell.ul_max_mcs.min(cell.mcs_table().max_index().0) as f64;
        let adjusted = (base as f64 + self.olla_offset).round().clamp(0.0, max) as u8;
        GrantParams {
            format: DciFormat::Ul0_1,
            mcs: McsIndex(adjusted),
            layers: csi.ri.min(cell.max_ul_layers).max(1),
        }
    }

    /// Build the CSI report a UE would send for an SINR, given the link
    /// model (used by the simulator's UE side each CSI period).
    pub fn make_csi(link: &LinkModel, sinr_db: f64, previous_rank: u8) -> CsiReport {
        let cqi = link.cqi(sinr_db);
        let ri = link.rank(sinr_db, previous_rank);
        CsiReport::new(ri, 0, cqi, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_phy::cqi::CqiTable;
    use nr_phy::mcs::McsTable;

    fn cell() -> CellConfig {
        CellConfig::midband(90, "DDDSU")
    }

    #[test]
    fn good_csi_uses_full_format() {
        let mut amc = AmcState::new(OllaConfig::default());
        amc.update_csi(CsiReport::new(4, 0, Cqi::new(14).unwrap(), 0));
        let g = amc.dl_grant(&cell());
        assert_eq!(g.format, DciFormat::Dl1_1);
        assert_eq!(g.layers, 4);
        assert!(g.mcs.0 > 20);
    }

    #[test]
    fn poor_csi_falls_back_to_dci_1_0() {
        let mut amc = AmcState::new(OllaConfig::default());
        amc.update_csi(CsiReport::new(4, 0, Cqi::new(2).unwrap(), 0));
        let g = amc.dl_grant(&cell());
        assert_eq!(g.format, DciFormat::Dl1_0);
        assert_eq!(g.layers, 1);
        // Fallback format pins the 64QAM table regardless of cell config.
        assert_eq!(g.format.effective_mcs_table(cell().mcs_table()), McsTable::Qam64);
    }

    #[test]
    fn olla_pushes_mcs_down_on_nacks() {
        let mut amc = AmcState::new(OllaConfig::default());
        amc.update_csi(CsiReport::new(4, 0, Cqi::new(10).unwrap(), 0));
        let before = amc.dl_grant(&cell()).mcs;
        for _ in 0..8 {
            amc.harq_feedback(false);
        }
        let after = amc.dl_grant(&cell()).mcs;
        assert!(after < before, "{} !< {}", after.0, before.0);
    }

    #[test]
    fn olla_is_stationary_at_target_bler() {
        // 1 NACK per 9 ACKs (10% BLER) should keep the offset near zero.
        let mut amc = AmcState::new(OllaConfig::default());
        for _ in 0..500 {
            for _ in 0..9 {
                amc.harq_feedback(true);
            }
            amc.harq_feedback(false);
        }
        assert!(amc.olla_offset().abs() < 1.0, "offset {}", amc.olla_offset());
    }

    #[test]
    fn olla_disabled_is_inert() {
        let mut amc = AmcState::new(OllaConfig { enabled: false, ..OllaConfig::default() });
        for _ in 0..100 {
            amc.harq_feedback(false);
        }
        assert_eq!(amc.olla_offset(), 0.0);
    }

    #[test]
    fn rank_respects_cell_cap() {
        let mut two_layer_cell = cell();
        two_layer_cell.max_dl_layers = 2;
        let mut amc = AmcState::new(OllaConfig::default());
        amc.update_csi(CsiReport::new(4, 0, Cqi::new(15).unwrap(), 0));
        assert_eq!(amc.dl_grant(&two_layer_cell).layers, 2);
    }

    #[test]
    fn ul_grant_caps_mcs_and_layers() {
        let mut amc = AmcState::new(OllaConfig::default());
        amc.update_csi(CsiReport::new(4, 0, Cqi::new(15).unwrap(), 0));
        let c = cell();
        let g = amc.ul_grant(&c);
        assert!(g.mcs.0 <= c.ul_max_mcs);
        assert_eq!(g.layers, c.max_ul_layers);
    }

    #[test]
    fn make_csi_tracks_link_model() {
        let link = LinkModel::midband_qam256();
        let good = AmcState::make_csi(&link, 28.0, 1);
        let bad = AmcState::make_csi(&link, 2.0, 4);
        assert!(good.cqi > bad.cqi);
        assert!(good.ri > bad.ri);
        // CQI table consistency: strong channel reaches the 256QAM rows.
        assert!(CqiTable::Table2.modulation(good.cqi).unwrap() >= nr_phy::mcs::Modulation::Qam64);
    }
}
