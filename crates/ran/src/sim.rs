//! The per-UE simulator: mobility + component carriers + NSA uplink
//! routing, emitting one merged KPI trace.
//!
//! [`UeSim`] advances a single clock at the finest slot duration among its
//! carriers; carriers with slower numerologies (T-Mobile's 15 kHz n25 FDD
//! legs, with 1 ms slots against n41's 0.5 ms) step every 2^k ticks. This
//! is how the paper's Table 3 mixed-numerology CA combos (Appendix 10.5)
//! are simulated without fractional-slot bookkeeping.

use crate::carrier::{Carrier, TrafficPattern};
use crate::config::UplinkRouting;
use crate::kpi::KpiTrace;
use crate::lte::LteAnchor;
use crate::sink::SlotSink;
use obs::audit::{self, Invariant};
use obs::{Counter, Histogram};
use radio_channel::mobility::{MobilityModel, MobilityState};
use radio_channel::rng::SeedTree;

/// Configuration of a UE-level simulation run.
#[derive(Debug, Clone)]
pub struct UeSimConfig {
    /// Saturating traffic directions.
    pub traffic: TrafficPattern,
    /// NSA uplink routing policy.
    pub routing: UplinkRouting,
}

impl Default for UeSimConfig {
    fn default() -> Self {
        UeSimConfig {
            traffic: TrafficPattern::BOTH,
            routing: UplinkRouting::NrAboveCqi { threshold: 6 },
        }
    }
}

/// A complete single-UE simulation: mobility, NR carriers (PCell +
/// optional SCells), optional LTE anchor.
pub struct UeSim {
    mobility: MobilityState,
    carriers: Vec<Carrier>,
    /// Tick divider per carrier: the carrier steps when
    /// `tick % divider == 0`.
    dividers: Vec<u64>,
    /// Metres moved since each carrier's last step.
    pending_move: Vec<f64>,
    lte: Option<LteAnchor>,
    lte_divider: u64,
    lte_pending_move: f64,
    config: UeSimConfig,
    base_slot_s: f64,
    tick: u64,
    /// Cached metric handles (resolved once; per-tick updates are atomic).
    m_ticks: Counter,
    m_tick_span: Histogram,
    /// Last emitted `time_s` per carrier / for the LTE leg — timestamps
    /// are only non-decreasing *within* a carrier (mixed-numerology CA
    /// interleaves across carriers), so the monotone-time audit tracks
    /// each leg separately.
    last_time: Vec<f64>,
    lte_last_time: f64,
}

impl UeSim {
    /// Assemble a simulation. Carrier 0 is the PCell (it carries the UL
    /// leg and its CQI drives the NSA routing decision).
    pub fn new(
        carriers: Vec<Carrier>,
        lte: Option<LteAnchor>,
        mobility: MobilityModel,
        config: UeSimConfig,
        seeds: &SeedTree,
    ) -> Self {
        assert!(!carriers.is_empty(), "a UE needs at least one carrier");
        let base_slot_s =
            carriers.iter().map(|c| c.slot_s()).fold(f64::INFINITY, f64::min);
        let dividers: Vec<u64> = carriers
            .iter()
            .map(|c| (c.slot_s() / base_slot_s).round() as u64)
            .collect();
        let lte_divider = (1e-3 / base_slot_s).round() as u64;
        let n = carriers.len();
        UeSim {
            mobility: mobility.into_state(seeds),
            carriers,
            dividers,
            pending_move: vec![0.0; n],
            lte,
            lte_divider: lte_divider.max(1),
            lte_pending_move: 0.0,
            config,
            base_slot_s,
            tick: 0,
            m_ticks: obs::registry().counter("sim.ticks"),
            m_tick_span: obs::registry().span_histogram("sim.tick"),
            last_time: vec![f64::NEG_INFINITY; n],
            lte_last_time: f64::NEG_INFINITY,
        }
    }

    /// The base tick duration, seconds.
    pub fn base_slot_s(&self) -> f64 {
        self.base_slot_s
    }

    /// Borrow the carriers (inspection / ablation configuration).
    pub fn carriers_mut(&mut self) -> &mut [Carrier] {
        &mut self.carriers
    }

    /// Run for a duration and return the merged KPI trace (NR carriers and,
    /// when routed, the LTE UL leg, distinguished by the `carrier` field).
    pub fn run(&mut self, duration_s: f64) -> KpiTrace {
        let ticks = (duration_s / self.base_slot_s).round() as u64;
        // Preallocate for the worst case: every stepping carrier emits a DL
        // and a UL record each step, plus the LTE leg. A slight
        // over-estimate (idle UL slots emit nothing) buys a run that never
        // grows the chunk table.
        let records: u64 = self
            .dividers
            .iter()
            .map(|&d| 2 * ticks.div_ceil(d.max(1)))
            .sum::<u64>()
            + if self.lte.is_some() { ticks.div_ceil(self.lte_divider) } else { 0 };
        let mut trace = KpiTrace::with_capacity(records as usize);
        for _ in 0..ticks {
            self.step_into(&mut trace);
        }
        trace.finish();
        trace
    }

    /// Run for a duration, streaming every record into `sink` instead of
    /// materialising a trace; calls [`SlotSink::finish`] at the end. This
    /// is the bounded-memory entry point — a sink that aggregates online
    /// keeps campaign memory independent of session duration.
    pub fn run_into<S: SlotSink>(&mut self, duration_s: f64, sink: &mut S) {
        let ticks = (duration_s / self.base_slot_s).round() as u64;
        for _ in 0..ticks {
            self.step_into(sink);
        }
        sink.finish();
    }

    /// Advance one base tick, pushing records into `sink` (without calling
    /// `finish` — drivers that tick manually own the end-of-stream signal).
    pub fn step_into<S: SlotSink>(&mut self, sink: &mut S) {
        let tick = self.tick;
        self.tick += 1;
        self.m_ticks.inc();
        // Sample 1-in-64 ticks: enough resolution for the slot-stepping
        // span histogram without paying two clock reads per slot.
        // (Masking, not `is_multiple_of`: the workspace MSRV is 1.75.)
        let timed = tick & 63 == 0;
        let started = if timed { Some(std::time::Instant::now()) } else { None };

        let moved = self.mobility.advance(self.base_slot_s);
        let position = self.mobility.position();
        for m in &mut self.pending_move {
            *m += moved;
        }
        self.lte_pending_move += moved;

        // NSA routing decision from the PCell's current CQI.
        let ul_on_nr = match self.config.routing {
            UplinkRouting::NrOnly => true,
            UplinkRouting::LteOnly => false,
            UplinkRouting::NrAboveCqi { threshold } => {
                self.carriers[0].current_cqi() >= threshold
            }
        };

        for (i, carrier) in self.carriers.iter_mut().enumerate() {
            if !tick.is_multiple_of(self.dividers[i]) {
                continue;
            }
            let mv = std::mem::take(&mut self.pending_move[i]);
            // Only the PCell carries NR UL; SCells are DL-only (commercial
            // mid-band CA is DL-only, as the paper's footnote 4 records).
            let traffic = if i == 0 {
                self.config.traffic
            } else {
                TrafficPattern { dl: self.config.traffic.dl, ul: false }
            };
            let out = carrier.step(position, mv, traffic, ul_on_nr, 1.0, 1.0);
            if audit::enabled() {
                audit::check(Invariant::TimeMonotone, out.dl.time_s >= self.last_time[i]);
                self.last_time[i] = out.dl.time_s;
            }
            sink.push(&out.dl);
            if let Some(ul) = out.ul {
                sink.push(&ul);
            }
        }

        // LTE UL leg accrues whenever the UL is not on NR.
        if self.config.traffic.ul && !ul_on_nr && tick.is_multiple_of(self.lte_divider) {
            if let Some(lte) = &mut self.lte {
                let mv = std::mem::take(&mut self.lte_pending_move);
                let rec = lte.step_ul(position, mv);
                if audit::enabled() {
                    audit::check(Invariant::TimeMonotone, rec.time_s >= self.lte_last_time);
                    self.lte_last_time = rec.time_s;
                }
                sink.push(&rec);
            }
        }

        if let Some(started) = started {
            self.m_tick_span.record_duration(started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CellConfig;
    use crate::kpi::Direction;
    use crate::lte::{LteConfig, LTE_CARRIER_INDEX};
    use nr_phy::band::Band;
    use nr_phy::numerology::Numerology;
    use radio_channel::channel::{ChannelConfig, ChannelSimulator};
    use radio_channel::geometry::{DeploymentLayout, Position};
    use radio_channel::link::LinkModel;

    fn mk_carrier(cfg: CellConfig, index: u8, pos: Position, seed: u64) -> Carrier {
        let seeds = SeedTree::new(seed).child_indexed("cc", index as u64);
        let channel = ChannelSimulator::new(
            ChannelConfig::midband_urban(cfg.n_rb),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        Carrier::new(cfg, index, channel, LinkModel::midband_qam256(), &seeds)
    }

    fn mk_lte(pos: Position, seed: u64) -> LteAnchor {
        let seeds = SeedTree::new(seed).child("lte");
        let channel = ChannelSimulator::new(
            LteAnchor::default_channel_config(),
            DeploymentLayout::single_site(),
            MobilityModel::Stationary { position: pos },
            &seeds,
        );
        LteAnchor::new(LteConfig::default(), channel)
    }

    #[test]
    fn carrier_aggregation_adds_throughput() {
        let pos = Position::new(80.0, 0.0);
        let single = {
            let c = mk_carrier(CellConfig::midband(100, "DDDSU"), 0, pos, 1);
            let mut sim = UeSim::new(
                vec![c],
                None,
                MobilityModel::Stationary { position: pos },
                UeSimConfig::default(),
                &SeedTree::new(1),
            );
            sim.run(5.0).mean_throughput_mbps(Direction::Dl)
        };
        let aggregated = {
            let c0 = mk_carrier(CellConfig::midband(100, "DDDSU"), 0, pos, 1);
            let c1 = mk_carrier(CellConfig::midband(40, "DDDSU"), 1, pos, 1);
            let mut sim = UeSim::new(
                vec![c0, c1],
                None,
                MobilityModel::Stationary { position: pos },
                UeSimConfig::default(),
                &SeedTree::new(1),
            );
            sim.run(5.0).mean_throughput_mbps(Direction::Dl)
        };
        assert!(
            aggregated > single * 1.2,
            "CA {aggregated} should beat single carrier {single}"
        );
    }

    #[test]
    fn mixed_numerology_ca_ticks_correctly() {
        let pos = Position::new(80.0, 0.0);
        let n41 = mk_carrier(CellConfig::midband(100, "DDDSU"), 0, pos, 2);
        let mut n25_cfg = CellConfig::fdd(Band::N25, 20, Numerology::Mu0);
        n25_cfg.band = Band::N25;
        let n25 = mk_carrier(n25_cfg, 1, pos, 2);
        let mut sim = UeSim::new(
            vec![n41, n25],
            None,
            MobilityModel::Stationary { position: pos },
            UeSimConfig::default(),
            &SeedTree::new(2),
        );
        let trace = sim.run(1.0);
        let cc0_slots = trace.iter().filter(|r| r.carrier == 0).count();
        let cc1_slots = trace.iter().filter(|r| r.carrier == 1).count();
        // n41 runs 2000 slots/s (DL records every slot + UL records on U
        // slots); n25 runs 1000 slots/s with DL+UL records each (FDD).
        assert!(cc0_slots > cc1_slots, "cc0 {cc0_slots} cc1 {cc1_slots}");
        let cc1_dl = trace
            .iter()
            .filter(|r| r.carrier == 1 && r.direction == Direction::Dl)
            .count();
        assert_eq!(cc1_dl, 1000);
    }

    #[test]
    fn lte_only_routing_puts_ul_on_lte() {
        let pos = Position::new(80.0, 0.0);
        let c = mk_carrier(CellConfig::midband(100, "DDDSU"), 0, pos, 3);
        let mut sim = UeSim::new(
            vec![c],
            Some(mk_lte(pos, 3)),
            MobilityModel::Stationary { position: pos },
            UeSimConfig { traffic: TrafficPattern::BOTH, routing: UplinkRouting::LteOnly },
            &SeedTree::new(3),
        );
        let trace = sim.run(2.0);
        let nr_ul_bits: u64 = trace
            .iter()
            .filter(|r| r.direction == Direction::Ul && r.carrier != LTE_CARRIER_INDEX)
            .map(|r| r.delivered_bits as u64)
            .sum();
        let lte_ul_bits: u64 = trace
            .iter()
            .filter(|r| r.carrier == LTE_CARRIER_INDEX)
            .map(|r| r.delivered_bits as u64)
            .sum();
        assert_eq!(nr_ul_bits, 0, "no NR UL under LteOnly");
        assert!(lte_ul_bits > 0, "LTE UL carries the traffic");
    }

    #[test]
    fn nr_only_routing_never_uses_lte() {
        let pos = Position::new(80.0, 0.0);
        let c = mk_carrier(CellConfig::midband(90, "DDDSU"), 0, pos, 4);
        let mut sim = UeSim::new(
            vec![c],
            Some(mk_lte(pos, 4)),
            MobilityModel::Stationary { position: pos },
            UeSimConfig { traffic: TrafficPattern::BOTH, routing: UplinkRouting::NrOnly },
            &SeedTree::new(4),
        );
        let trace = sim.run(1.0);
        assert!(trace.iter().all(|r| r.carrier != LTE_CARRIER_INDEX));
        assert!(trace.mean_throughput_mbps(Direction::Ul) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one carrier")]
    fn empty_carrier_list_panics() {
        UeSim::new(
            vec![],
            None,
            MobilityModel::Stationary { position: Position::ORIGIN },
            UeSimConfig::default(),
            &SeedTree::new(0),
        );
    }
}
