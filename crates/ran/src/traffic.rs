//! Traffic sources: what the UE/gNB actually has to send.
//!
//! The paper's measurements saturate the link (iPerf full-buffer), but a
//! production simulator must also model finite and rate-limited demand —
//! video streams, file downloads, background traffic. A [`TrafficSource`]
//! describes the offered load; [`TrafficState`] tracks the backlog the
//! scheduler drains. Full-buffer sources are the default everywhere and
//! preserve the calibrated figure behaviour exactly.

use radio_channel::rng::SeedTree;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Offered-load models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficSource {
    /// Infinite backlog (iPerf-style saturation) — the paper's workload.
    FullBuffer,
    /// Constant bitrate: `rate_mbps` arrives smoothly.
    Cbr {
        /// Offered rate, Mbps.
        rate_mbps: f64,
    },
    /// Poisson packet arrivals with exponential sizes: bursty web-like
    /// traffic averaging `mean_rate_mbps`.
    Poisson {
        /// Mean offered rate, Mbps.
        mean_rate_mbps: f64,
        /// Mean burst size, kilobits (sets arrival granularity).
        mean_burst_kbit: f64,
    },
    /// A finite transfer: `total_megabits` arrive at t = 0, then nothing
    /// (file download).
    Finite {
        /// Transfer size, megabits.
        total_megabits: f64,
    },
}

/// The evolving backlog of one traffic source.
#[derive(Debug, Clone)]
pub struct TrafficState {
    source: TrafficSource,
    backlog_bits: f64,
    offered_bits: f64,
    delivered_bits: f64,
    rng: ChaCha12Rng,
}

impl TrafficState {
    /// Instantiate a source. Finite transfers enqueue immediately.
    pub fn new(source: TrafficSource, seeds: &SeedTree, label: &str) -> Self {
        let backlog = match source {
            TrafficSource::Finite { total_megabits } => total_megabits * 1e6,
            _ => 0.0,
        };
        TrafficState {
            source,
            backlog_bits: backlog,
            offered_bits: backlog,
            delivered_bits: 0.0,
            // The two labels every carrier opens are static; keep the byte
            // layout of the formatted form for any other caller.
            rng: match label {
                "dl" => seeds.stream_static("traffic/dl"),
                "ul" => seeds.stream_static("traffic/ul"),
                _ => seeds.stream(&format!("traffic/{label}")),
            },
        }
    }

    /// The source description.
    pub fn source(&self) -> TrafficSource {
        self.source
    }

    /// Bits currently queued (∞-semantics for full buffer: `f64::INFINITY`).
    pub fn backlog_bits(&self) -> f64 {
        match self.source {
            TrafficSource::FullBuffer => f64::INFINITY,
            _ => self.backlog_bits,
        }
    }

    /// Total bits that have arrived so far (excluding full-buffer).
    pub fn offered_bits(&self) -> f64 {
        self.offered_bits
    }

    /// Total bits drained by the scheduler.
    pub fn delivered_bits(&self) -> f64 {
        self.delivered_bits
    }

    /// Whether the scheduler has anything to send.
    pub fn has_data(&self) -> bool {
        match self.source {
            TrafficSource::FullBuffer => true,
            _ => self.backlog_bits > 0.0,
        }
    }

    /// Advance arrivals by `dt_s` seconds.
    pub fn arrive(&mut self, dt_s: f64) {
        match self.source {
            TrafficSource::FullBuffer | TrafficSource::Finite { .. } => {}
            TrafficSource::Cbr { rate_mbps } => {
                let bits = rate_mbps * 1e6 * dt_s;
                self.backlog_bits += bits;
                self.offered_bits += bits;
            }
            TrafficSource::Poisson { mean_rate_mbps, mean_burst_kbit } => {
                // Burst arrivals at rate λ = rate / burst_size; the number
                // of bursts in the step is Poisson(λ·dt) (Knuth sampler —
                // λ·dt is small at slot granularity).
                let burst_bits = (mean_burst_kbit * 1e3).max(1.0);
                let lambda_dt = mean_rate_mbps * 1e6 / burst_bits * dt_s;
                let threshold = (-lambda_dt).exp();
                let mut k = 0u32;
                let mut product: f64 = self.rng.gen();
                while product > threshold && k < 1000 {
                    k += 1;
                    product *= self.rng.gen::<f64>();
                }
                for _ in 0..k {
                    let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    let bits = -burst_bits * u.ln();
                    self.backlog_bits += bits;
                    self.offered_bits += bits;
                }
            }
        }
    }

    /// The scheduler drains up to `tbs_bits` this slot; returns the bits
    /// actually taken (≤ backlog for finite sources).
    pub fn consume(&mut self, tbs_bits: u32) -> u32 {
        match self.source {
            TrafficSource::FullBuffer => {
                self.delivered_bits += f64::from(tbs_bits);
                tbs_bits
            }
            _ => {
                let take = f64::from(tbs_bits).min(self.backlog_bits).max(0.0);
                self.backlog_bits -= take;
                self.delivered_bits += take;
                take as u32
            }
        }
    }

    /// Fraction of the full carrier this backlog justifies allocating,
    /// given the transport block a full allocation would carry. Keeps
    /// lightly-loaded UEs from occupying the whole carrier with padding.
    pub fn demand_share(&self, full_tbs_bits: u32) -> f64 {
        match self.source {
            TrafficSource::FullBuffer => 1.0,
            _ => {
                if full_tbs_bits == 0 {
                    return 0.0;
                }
                (self.backlog_bits / f64::from(full_tbs_bits)).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds() -> SeedTree {
        SeedTree::new(7)
    }

    #[test]
    fn full_buffer_never_empties() {
        let mut t = TrafficState::new(TrafficSource::FullBuffer, &seeds(), "dl");
        assert!(t.has_data());
        assert_eq!(t.consume(1_000_000), 1_000_000);
        assert!(t.has_data());
        assert_eq!(t.backlog_bits(), f64::INFINITY);
        assert_eq!(t.demand_share(500_000), 1.0);
    }

    #[test]
    fn cbr_accumulates_at_rate() {
        let mut t = TrafficState::new(TrafficSource::Cbr { rate_mbps: 100.0 }, &seeds(), "dl");
        assert!(!t.has_data());
        t.arrive(0.01); // 10 ms at 100 Mbps = 1 Mbit
        assert!((t.backlog_bits() - 1e6).abs() < 1.0);
        // Draining more than the backlog takes only the backlog.
        let taken = t.consume(2_000_000);
        assert!((f64::from(taken) - 1e6).abs() < 2.0);
        assert!(!t.has_data());
    }

    #[test]
    fn finite_transfer_completes() {
        let mut t =
            TrafficState::new(TrafficSource::Finite { total_megabits: 1.0 }, &seeds(), "dl");
        assert!(t.has_data());
        let mut drained = 0u64;
        while t.has_data() {
            drained += u64::from(t.consume(123_456));
        }
        assert_eq!(drained, 1_000_000);
        assert_eq!(t.delivered_bits(), 1e6);
    }

    #[test]
    fn poisson_long_run_rate_matches() {
        let mut t = TrafficState::new(
            TrafficSource::Poisson { mean_rate_mbps: 50.0, mean_burst_kbit: 100.0 },
            &seeds(),
            "dl",
        );
        let dt = 0.5e-3;
        for _ in 0..2_000_000 {
            t.arrive(dt);
            t.consume(u32::MAX); // drain instantly; we only test arrivals
        }
        let rate_mbps = t.offered_bits() / (2_000_000.0 * dt) / 1e6;
        assert!((rate_mbps - 50.0).abs() < 5.0, "rate {rate_mbps}");
    }

    #[test]
    fn demand_share_scales_allocation() {
        let mut t = TrafficState::new(TrafficSource::Cbr { rate_mbps: 10.0 }, &seeds(), "dl");
        t.arrive(0.01); // 100 kbit queued
        // With a 400 kbit full TB, demand justifies a quarter allocation.
        assert!((t.demand_share(400_000) - 0.25).abs() < 0.01);
        assert_eq!(t.demand_share(0), 0.0);
    }
}
