//! Cell and simulation configuration types.
//!
//! A [`CellConfig`] captures everything the paper's Tables 2–3 record about
//! one carrier — band, bandwidth/N_RB, SCS, duplexing/TDD pattern — plus
//! the dynamic-behaviour knobs its §4 analysis dissects: maximum modulation
//! (MCS table), the vendor CQI→MCS mapping, and the maximum MIMO rank.

use nr_phy::band::{Band, DuplexMode};
use nr_phy::bandwidth::{max_transmission_bandwidth, ChannelBandwidth};
use nr_phy::cqi::{CqiTable, CqiToMcsPolicy};
use nr_phy::mcs::McsTable;
use nr_phy::numerology::Numerology;
use nr_phy::tdd::{SpecialSlotConfig, TddPattern};
use serde::{Deserialize, Serialize};

/// Static configuration of one carrier (component carrier, in CA terms).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// NR operating band.
    pub band: Band,
    /// Channel bandwidth.
    pub bandwidth: ChannelBandwidth,
    /// Numerology (SCS).
    pub numerology: Numerology,
    /// Maximum transmission bandwidth N_RB (derivable from bandwidth+SCS;
    /// stored so a config is self-contained and printable like Table 2/3).
    pub n_rb: u16,
    /// TDD pattern; `None` for FDD carriers.
    pub tdd: Option<TddPattern>,
    /// The vendor CQI→MCS mapping (encodes the max-modulation cap: a
    /// 64QAM-limited cell maps onto [`McsTable::Qam64`]).
    pub mcs_policy: CqiToMcsPolicy,
    /// Maximum DL MIMO layers the cell configures (≤ 4 in the study).
    pub max_dl_layers: u8,
    /// Maximum UL layers (commercial mid-band: 1–2).
    pub max_ul_layers: u8,
    /// Fraction of the carrier's RBs schedulable for our UE's UL (operators
    /// often reserve UL RBs for control/other users even when one UE
    /// saturates the DL).
    pub ul_rb_fraction: f64,
    /// MCS cap for UL transmissions (UL power budgets rarely sustain the
    /// top indices; typical commercial caps land near index 22–26).
    pub ul_max_mcs: u8,
}

impl CellConfig {
    /// A mid-band TDD carrier with 256QAM, 4×4 MIMO and a `DDDSU` pattern —
    /// the baseline the EU operator profiles specialise.
    pub fn midband(bandwidth_mhz: u32, pattern: &str) -> Self {
        let bandwidth = ChannelBandwidth::from_mhz(bandwidth_mhz);
        let numerology = Numerology::Mu1;
        let n_rb = max_transmission_bandwidth(bandwidth, numerology)
            .expect("mid-band bandwidths are all defined at 30 kHz");
        CellConfig {
            band: Band::N78,
            bandwidth,
            numerology,
            n_rb,
            tdd: Some(
                TddPattern::parse(pattern, SpecialSlotConfig::DL_HEAVY)
                    .expect("caller passes a valid pattern"),
            ),
            mcs_policy: CqiToMcsPolicy::neutral(CqiTable::Table2),
            max_dl_layers: 4,
            max_ul_layers: 1,
            ul_rb_fraction: 1.0,
            ul_max_mcs: 24,
        }
    }

    /// An FDD carrier (e.g. T-Mobile n25): DL and UL both always available.
    pub fn fdd(band: Band, bandwidth_mhz: u32, numerology: Numerology) -> Self {
        let bandwidth = ChannelBandwidth::from_mhz(bandwidth_mhz);
        let n_rb = max_transmission_bandwidth(bandwidth, numerology)
            .expect("FDD bandwidths defined for the chosen SCS");
        CellConfig {
            band,
            bandwidth,
            numerology,
            n_rb,
            tdd: None,
            mcs_policy: CqiToMcsPolicy::neutral(CqiTable::Table2),
            max_dl_layers: 4,
            max_ul_layers: 1,
            ul_rb_fraction: 1.0,
            ul_max_mcs: 24,
        }
    }

    /// Duplexing mode implied by the TDD field.
    pub fn duplex_mode(&self) -> DuplexMode {
        if self.tdd.is_some() {
            DuplexMode::Tdd
        } else {
            DuplexMode::Fdd
        }
    }

    /// The MCS table in force (encodes the operator's max modulation).
    pub fn mcs_table(&self) -> McsTable {
        self.mcs_policy.mcs_table
    }

    /// Slot duration in seconds.
    pub fn slot_s(&self) -> f64 {
        self.numerology.slot_duration_ms() * 1e-3
    }

    /// DL symbols available in a given slot (14 for FDD).
    pub fn dl_symbols(&self, slot: u64) -> u8 {
        match &self.tdd {
            Some(p) => p.dl_symbols(slot),
            None => nr_phy::tdd::SYMBOLS_PER_SLOT,
        }
    }

    /// UL symbols available in a given slot (14 for FDD DL+UL pair).
    pub fn ul_symbols(&self, slot: u64) -> u8 {
        match &self.tdd {
            Some(p) => p.ul_symbols(slot),
            None => nr_phy::tdd::SYMBOLS_PER_SLOT,
        }
    }
}

/// How an NSA deployment routes uplink traffic between the 5G NR leg and
/// the 4G LTE anchor (paper §4.2: "most operators … opt to combine both
/// 5G NR and 4G LTE (and in some cases, use 4G LTE only) for UL").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UplinkRouting {
    /// Always use the NR UL (SA-like behaviour).
    NrOnly,
    /// Always use the LTE anchor (T-Mobile's observed preference).
    LteOnly,
    /// Use NR while its reported CQI is at or above the threshold,
    /// otherwise fall back to LTE — the dual-connectivity split most EU
    /// operators exhibit.
    NrAboveCqi {
        /// Minimum NR CQI to stay on the NR leg.
        threshold: u8,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midband_carrier_derives_nrb() {
        let c = CellConfig::midband(90, "DDDSU");
        assert_eq!(c.n_rb, 245);
        assert_eq!(c.duplex_mode(), DuplexMode::Tdd);
        assert_eq!(c.slot_s(), 0.5e-3);
    }

    #[test]
    fn fdd_carrier_always_has_both_directions() {
        let c = CellConfig::fdd(Band::N25, 20, Numerology::Mu0);
        assert_eq!(c.n_rb, 106);
        for slot in 0..20 {
            assert_eq!(c.dl_symbols(slot), 14);
            assert_eq!(c.ul_symbols(slot), 14);
        }
    }

    #[test]
    fn tdd_carrier_follows_pattern() {
        let c = CellConfig::midband(80, "DDDSU");
        assert_eq!(c.dl_symbols(0), 14);
        assert_eq!(c.ul_symbols(0), 0);
        assert_eq!(c.ul_symbols(4), 14);
        assert_eq!(c.dl_symbols(3), 10); // special slot, DL_HEAVY split
    }
}
