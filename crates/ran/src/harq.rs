//! The HARQ entity: retransmission queueing with TDD-aware round trips.
//!
//! When a transport block fails its BLER draw the gNB learns about it one
//! HARQ round trip later (UE decode + ACK/NACK on a UL opportunity + gNB
//! processing) and then spends a future slot retransmitting — capacity the
//! scheduler cannot give to new data. Retransmissions benefit from
//! incremental-redundancy combining, modelled as an SINR bonus per extra
//! attempt.

use obs::audit::{self, Invariant};
use obs::Counter;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// HARQ behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarqConfig {
    /// Slots between a transmission and the earliest retransmission
    /// opportunity (ACK decode + feedback + scheduling; ≈ 8 slots / 4 ms
    /// at µ=1 in commercial mid-band systems).
    pub rtt_slots: u64,
    /// Maximum transmission attempts (initial + retransmissions).
    pub max_attempts: u8,
    /// SINR combining gain per additional attempt, dB (Chase/IR ≈ 2–3).
    pub combining_gain_db: f64,
}

impl Default for HarqConfig {
    fn default() -> Self {
        HarqConfig { rtt_slots: 8, max_attempts: 4, combining_gain_db: 2.5 }
    }
}

/// A transport block awaiting retransmission.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PendingTb {
    /// Size of the block, bits.
    pub tbs_bits: u32,
    /// Attempts already made (≥ 1).
    pub attempts: u8,
    /// Earliest slot the retransmission may be scheduled.
    pub ready_slot: u64,
}

/// The per-direction HARQ entity of one UE on one carrier.
#[derive(Debug, Clone)]
pub struct HarqEntity {
    config: HarqConfig,
    pending: VecDeque<PendingTb>,
    /// Blocks dropped after exhausting attempts (residual BLER counter).
    dropped: u64,
    /// Cached metric handles so the per-slot path stays allocation-free.
    m_failures: Counter,
    m_drops: Counter,
}

impl Default for HarqEntity {
    fn default() -> Self {
        HarqEntity::new(HarqConfig::default())
    }
}

impl HarqEntity {
    /// New entity. The pending queue is bounded in practice by the number
    /// of failures inside one HARQ round trip (at most one grant fails per
    /// slot, and each retransmission opportunity drains one), so reserving
    /// a small capacity up front keeps the per-slot path allocation-free.
    pub fn new(config: HarqConfig) -> Self {
        let capacity = (config.rtt_slots as usize * 2).clamp(16, 256);
        let reg = obs::registry();
        HarqEntity {
            config,
            pending: VecDeque::with_capacity(capacity),
            dropped: 0,
            m_failures: reg.counter("harq.failures"),
            m_drops: reg.counter("harq.drops"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> HarqConfig {
        self.config
    }

    /// Number of blocks dropped after max attempts so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of blocks currently awaiting retransmission.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Record a failed (re)transmission of a block that has now consumed
    /// `attempts` attempts. Queues it for retransmission or drops it.
    pub fn record_failure(&mut self, tbs_bits: u32, attempts: u8, slot: u64) {
        self.m_failures.inc();
        if audit::enabled() {
            audit::check(Invariant::HarqAttemptsWithinMax, attempts <= self.config.max_attempts);
        }
        if attempts >= self.config.max_attempts {
            self.dropped += 1;
            self.m_drops.inc();
            return;
        }
        self.pending.push_back(PendingTb {
            tbs_bits,
            attempts,
            ready_slot: slot + self.config.rtt_slots,
        });
    }

    /// Pop the oldest block whose retransmission window has opened.
    pub fn pop_ready(&mut self, slot: u64) -> Option<PendingTb> {
        match self.pending.front() {
            Some(tb) if tb.ready_slot <= slot => self.pending.pop_front(),
            _ => None,
        }
    }

    /// SINR bonus for a block on its `attempts`-th transmission (1-based):
    /// `(attempts − 1) · combining_gain_db`.
    pub fn combining_bonus_db(&self, attempts: u8) -> f64 {
        (attempts.saturating_sub(1)) as f64 * self.config.combining_gain_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retx_waits_for_rtt() {
        let mut h = HarqEntity::new(HarqConfig::default());
        h.record_failure(1000, 1, 100);
        assert!(h.pop_ready(105).is_none());
        let tb = h.pop_ready(108).expect("ready after rtt");
        assert_eq!(tb.tbs_bits, 1000);
        assert_eq!(tb.attempts, 1);
        assert!(h.pop_ready(120).is_none(), "queue drained");
    }

    #[test]
    fn fifo_order() {
        let mut h = HarqEntity::new(HarqConfig::default());
        h.record_failure(1, 1, 0);
        h.record_failure(2, 1, 1);
        assert_eq!(h.pop_ready(50).unwrap().tbs_bits, 1);
        assert_eq!(h.pop_ready(50).unwrap().tbs_bits, 2);
    }

    #[test]
    fn drops_after_max_attempts() {
        let mut h = HarqEntity::new(HarqConfig { max_attempts: 2, ..Default::default() });
        h.record_failure(1000, 1, 0); // attempt 1 failed → queued
        let tb = h.pop_ready(100).unwrap();
        h.record_failure(tb.tbs_bits, tb.attempts + 1, 100); // attempt 2 failed → dropped
        assert_eq!(h.dropped(), 1);
        assert_eq!(h.backlog(), 0);
    }

    #[test]
    fn combining_gain_grows_with_attempts() {
        let h = HarqEntity::new(HarqConfig::default());
        assert_eq!(h.combining_bonus_db(1), 0.0);
        assert_eq!(h.combining_bonus_db(2), 2.5);
        assert_eq!(h.combining_bonus_db(4), 7.5);
    }
}
