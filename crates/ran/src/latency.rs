//! PHY user-plane latency probes (paper §4.3, Fig. 11).
//!
//! The paper defines user-plane delay as "PHY DL plus UL latency" and
//! measures it per operator, split into BLER = 0 (no retransmission) and
//! BLER > 0 (≥ 1 retransmission). Channel bandwidth has no bearing; the
//! TDD frame structure dominates: a packet must wait for the next slot of
//! its direction, and a retransmission costs a full HARQ exchange whose
//! legs are themselves slot-aligned.
//!
//! The model: probes arrive uniformly in the pattern period. Each leg's
//! latency is the sum of:
//!
//! * alignment to the next opportunity of its direction,
//! * air time and processing,
//! * on a retransmission: feedback alignment (the NACK rides the opposite
//!   direction), processing, and re-alignment.

use nr_phy::tdd::{SlotType, TddPattern};
use radio_channel::rng::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Probe model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyProbeConfig {
    /// Slot duration, ms (0.5 at µ=1).
    pub slot_ms: f64,
    /// UE-side processing per hop, ms (decode + prepare).
    pub ue_proc_ms: f64,
    /// gNB-side processing per hop, ms.
    pub gnb_proc_ms: f64,
    /// OFDM symbols a small probe occupies on air.
    pub probe_symbols: u8,
    /// Probability a leg's first transmission fails (drives the BLER > 0
    /// conditioning).
    pub p_block_error: f64,
}

impl Default for LatencyProbeConfig {
    fn default() -> Self {
        LatencyProbeConfig {
            slot_ms: 0.5,
            ue_proc_ms: 0.25,
            gnb_proc_ms: 0.25,
            probe_symbols: 4,
            p_block_error: 0.1,
        }
    }
}

/// One probe's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySample {
    /// Downlink leg latency, ms.
    pub dl_ms: f64,
    /// Uplink leg latency, ms.
    pub ul_ms: f64,
    /// Whether any leg needed a retransmission.
    pub had_retx: bool,
}

impl LatencySample {
    /// Total user-plane delay (DL + UL), ms.
    pub fn total_ms(&self) -> f64 {
        self.dl_ms + self.ul_ms
    }
}

/// Direction of a leg, for the alignment search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    Dl,
    Ul,
}

/// Continuous-time start of the next opportunity of `leg` at or after
/// `t_ms`, given the pattern. DL opportunities open at the start of any
/// slot with DL symbols; UL opportunities open where the UL symbols begin
/// (end of a special slot, start of a U slot).
fn next_opportunity_ms(pattern: &TddPattern, cfg: &LatencyProbeConfig, t_ms: f64, leg: Leg) -> f64 {
    let slot_ms = cfg.slot_ms;
    let first_slot = (t_ms / slot_ms).floor() as u64;
    // Search a bounded horizon: patterns repeat within their own length.
    for slot in first_slot..first_slot + 2 * pattern.len() as u64 + 2 {
        let start = slot as f64 * slot_ms;
        let open_at = match (leg, pattern.slot_type(slot)) {
            (Leg::Dl, SlotType::Downlink) => Some(start),
            (Leg::Dl, SlotType::Special) if pattern.special_config().dl_symbols > 0 => {
                Some(start)
            }
            (Leg::Ul, SlotType::Uplink) => Some(start),
            (Leg::Ul, SlotType::Special) if pattern.special_config().ul_symbols > 0 => {
                // UL symbols sit at the tail of the special slot.
                let offset =
                    (14 - pattern.special_config().ul_symbols) as f64 / 14.0 * slot_ms;
                Some(start + offset)
            }
            _ => None,
        };
        if let Some(at) = open_at {
            if at >= t_ms {
                return at;
            }
        }
    }
    unreachable!("valid TDD patterns contain both directions");
}

/// Air time of the probe, ms.
fn probe_air_ms(cfg: &LatencyProbeConfig) -> f64 {
    cfg.probe_symbols as f64 / 14.0 * cfg.slot_ms
}

/// Simulate one leg starting at absolute time `t_ms`: returns
/// `(completion time, had_retx)`.
fn leg_latency(
    pattern: &TddPattern,
    cfg: &LatencyProbeConfig,
    t_ms: f64,
    leg: Leg,
    force_error: Option<bool>,
    rng: &mut impl Rng,
) -> (f64, bool) {
    let tx_start = next_opportunity_ms(pattern, cfg, t_ms, leg);
    let rx_proc = match leg {
        Leg::Dl => cfg.ue_proc_ms,
        Leg::Ul => cfg.gnb_proc_ms,
    };
    let mut done = tx_start + probe_air_ms(cfg) + rx_proc;
    let failed = force_error.unwrap_or_else(|| rng.gen::<f64>() < cfg.p_block_error);
    if failed {
        // NACK rides the opposite direction, then the sender re-aligns.
        let feedback_dir = match leg {
            Leg::Dl => Leg::Ul,
            Leg::Ul => Leg::Dl,
        };
        let nack_at = next_opportunity_ms(pattern, cfg, done, feedback_dir)
            + probe_air_ms(cfg)
            + match leg {
                Leg::Dl => cfg.gnb_proc_ms, // gNB digests the NACK
                Leg::Ul => cfg.ue_proc_ms,
            };
        let retx_start = next_opportunity_ms(pattern, cfg, nack_at, leg);
        done = retx_start + probe_air_ms(cfg) + rx_proc;
    }
    (done, failed)
}

/// Run `n` probes with arrivals uniform over the pattern period.
///
/// `force_retx`: `Some(false)` conditions on BLER = 0 (no leg fails),
/// `Some(true)` forces exactly the UL leg to fail once (the dominant
/// BLER > 0 case — UL runs at lower SINR), `None` draws failures from
/// `p_block_error`.
pub fn run_probes(
    pattern: &TddPattern,
    cfg: &LatencyProbeConfig,
    n: usize,
    force_retx: Option<bool>,
    seeds: &SeedTree,
) -> Vec<LatencySample> {
    let mut rng = seeds.stream("latency-probes");
    let period_ms = pattern.len() as f64 * cfg.slot_ms;
    (0..n)
        .map(|_| {
            let arrival = rng.gen::<f64>() * period_ms;
            let (dl_force, ul_force) = match force_retx {
                Some(false) => (Some(false), Some(false)),
                Some(true) => (Some(false), Some(true)),
                None => (None, None),
            };
            let (dl_done, dl_err) =
                leg_latency(pattern, cfg, arrival, Leg::Dl, dl_force, &mut rng);
            let dl_ms = dl_done - arrival;
            // The UL leg starts fresh (the paper sums two one-way latencies).
            let ul_arrival = rng.gen::<f64>() * period_ms;
            let (ul_done, ul_err) =
                leg_latency(pattern, cfg, ul_arrival, Leg::Ul, ul_force, &mut rng);
            let ul_ms = ul_done - ul_arrival;
            LatencySample { dl_ms, ul_ms, had_retx: dl_err || ul_err }
        })
        .collect()
}

/// Mean total latency of a set of samples, ms.
pub fn mean_total_ms(samples: &[LatencySample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.total_ms()).sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use nr_phy::tdd::SpecialSlotConfig;

    fn pattern(p: &str, s: SpecialSlotConfig) -> TddPattern {
        TddPattern::parse(p, s).unwrap()
    }

    #[test]
    fn dddsu_bler0_near_two_ms() {
        // V_Ge's DDDSU measured 2.13 ms at BLER = 0.
        let p = pattern("DDDSU", SpecialSlotConfig::BALANCED);
        let samples =
            run_probes(&p, &LatencyProbeConfig::default(), 20_000, Some(false), &SeedTree::new(1));
        let mean = mean_total_ms(&samples);
        assert!(mean > 1.4 && mean < 3.0, "DDDSU mean {mean} ms");
    }

    #[test]
    fn dl_heavy_10slot_pattern_much_slower() {
        // V_It's DDDDDDDSUU (UL only at the tail) measured 6.93 ms — the
        // §4.3 root cause. Expect a clear multiple of DDDSU.
        let short = mean_total_ms(&run_probes(
            &pattern("DDDSU", SpecialSlotConfig::BALANCED),
            &LatencyProbeConfig::default(),
            20_000,
            Some(false),
            &SeedTree::new(2),
        ));
        let no_ul_special =
            SpecialSlotConfig { dl_symbols: 12, guard_symbols: 2, ul_symbols: 0 };
        let long = mean_total_ms(&run_probes(
            &pattern("DDDDDDDSUU", no_ul_special),
            &LatencyProbeConfig::default(),
            20_000,
            Some(false),
            &SeedTree::new(2),
        ));
        // The alignment-only model preserves the direction but compresses
        // the paper's 3.3× gap (6.93/2.13) to ≈1.4–1.6×; EXPERIMENTS.md
        // discusses the residual (multi-cycle grant/CSI effects we omit).
        assert!(long > short * 1.3, "long {long} vs short {short}");
    }

    #[test]
    fn retx_increases_latency() {
        let p = pattern("DDDSU", SpecialSlotConfig::BALANCED);
        let cfg = LatencyProbeConfig::default();
        let clean = mean_total_ms(&run_probes(&p, &cfg, 10_000, Some(false), &SeedTree::new(3)));
        let retx = mean_total_ms(&run_probes(&p, &cfg, 10_000, Some(true), &SeedTree::new(3)));
        assert!(retx > clean + 0.2, "retx {retx} vs clean {clean}");
        // The increment is sub-pattern-period scale, as Fig. 11's modest
        // BLER>0 increases show.
        assert!(retx < clean + 5.0);
    }

    #[test]
    fn unforced_probes_mix_both_cases() {
        let p = pattern("DDDSU", SpecialSlotConfig::BALANCED);
        let samples = run_probes(
            &p,
            &LatencyProbeConfig::default(),
            5_000,
            None,
            &SeedTree::new(4),
        );
        let with_retx = samples.iter().filter(|s| s.had_retx).count();
        assert!(with_retx > 100, "some probes retransmit: {with_retx}");
        assert!(with_retx < 2500, "most probes do not: {with_retx}");
    }

    #[test]
    fn ul_alignment_dominates_over_dl() {
        let p = pattern("DDDDDDDSUU", SpecialSlotConfig::DL_HEAVY);
        let samples = run_probes(
            &p,
            &LatencyProbeConfig::default(),
            10_000,
            Some(false),
            &SeedTree::new(5),
        );
        let dl: f64 = samples.iter().map(|s| s.dl_ms).sum::<f64>() / samples.len() as f64;
        let ul: f64 = samples.iter().map(|s| s.ul_ms).sum::<f64>() / samples.len() as f64;
        assert!(ul > dl, "UL {ul} should exceed DL {dl} on DL-heavy patterns");
    }

    #[test]
    fn opportunity_search_is_consistent() {
        let p = pattern("DDDSU", SpecialSlotConfig::DL_HEAVY);
        let cfg = LatencyProbeConfig::default();
        // From t=0 (a D slot) the next DL opportunity is immediate.
        assert_eq!(next_opportunity_ms(&p, &cfg, 0.0, Leg::Dl), 0.0);
        // The next UL opportunity is the tail of the S slot:
        // slot 3 starts at 1.5 ms; 12 of 14 symbols in, UL begins.
        let expect = 1.5 + 12.0 / 14.0 * 0.5;
        assert!((next_opportunity_ms(&p, &cfg, 0.0, Leg::Ul) - expect).abs() < 1e-9);
        // From inside the U slot, UL is immediate.
        assert_eq!(next_opportunity_ms(&p, &cfg, 2.0, Leg::Ul), 2.0);
    }
}
