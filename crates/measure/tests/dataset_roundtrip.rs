//! Dataset export → import round-trip at campaign scale: the re-imported
//! sessions must reproduce the original [`CampaignTotals`] and the exact
//! KPI traces, so every figure recomputed from an exported artifact
//! matches one computed live. The campaign runs through the parallel
//! executor, making this also an end-to-end check that the parallel path
//! feeds the artifact pipeline unchanged.

use measure::campaign::{Campaign, CampaignTotals};
use measure::dataset::Dataset;
use measure::session::SessionResult;
use operators::Operator;
use ran::kpi::Direction;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("midband5g-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn totals_of(results: &[SessionResult]) -> CampaignTotals {
    let mut totals = CampaignTotals::default();
    for r in results {
        totals.add(r);
    }
    totals
}

#[test]
fn export_import_reproduces_totals_and_traces() {
    let mut all = Vec::new();
    for (i, op) in [Operator::VodafoneItaly, Operator::VerizonUs].into_iter().enumerate() {
        let campaign =
            Campaign { operator: op, sessions: 3, session_duration_s: 1.0, base_seed: 400 + i as u64 * 100 };
        all.extend(campaign.run_parallel(2));
    }
    let before = totals_of(&all);

    let ds = Dataset::at(tmpdir("totals"));
    let manifest = ds.export("round-trip campaign", &all).unwrap();
    assert_eq!(manifest.sessions.len(), all.len());
    assert_eq!(
        manifest.total_records,
        all.iter().map(|r| r.trace.len() as u64).sum::<u64>()
    );

    let loaded = ds.load_all().unwrap();
    assert_eq!(loaded.len(), all.len());

    // Identical traces record-for-record …
    for (orig, back) in all.iter().zip(&loaded) {
        assert_eq!(orig.spec, back.spec);
        assert_eq!(orig.trace, back.trace, "trace changed across export/import");
    }

    // … and identical Table 1 aggregates and KPI series.
    let reloaded: Vec<SessionResult> =
        loaded.into_iter().map(|rec| SessionResult { spec: rec.spec, trace: rec.trace }).collect();
    let after = totals_of(&reloaded);
    assert_eq!(before, after, "CampaignTotals changed across export/import");
    for (orig, back) in all.iter().zip(&reloaded) {
        assert_eq!(
            orig.trace.throughput_series_mbps(Direction::Dl, 1.0),
            back.trace.throughput_series_mbps(Direction::Dl, 1.0)
        );
        assert_eq!(
            orig.trace.throughput_series_mbps(Direction::Ul, 1.0),
            back.trace.throughput_series_mbps(Direction::Ul, 1.0)
        );
    }

    std::fs::remove_dir_all(ds.root()).unwrap();
}

#[test]
fn manifest_order_is_export_order() {
    let campaign = Campaign {
        operator: Operator::TelekomGermany,
        sessions: 4,
        session_duration_s: 0.5,
        base_seed: 7,
    };
    let results = campaign.run_parallel(2);
    let ds = Dataset::at(tmpdir("order"));
    let manifest = ds.export("ordering", &results).unwrap();
    // File names embed the seed; manifest order must follow spec order.
    for (name, r) in manifest.sessions.iter().zip(&results) {
        assert!(
            name.contains(&format!("seed{}", r.spec.seed)),
            "manifest entry {name} out of order (expected seed {})",
            r.spec.seed
        );
    }
    let loaded = ds.load_all().unwrap();
    let seeds: Vec<u64> = loaded.iter().map(|r| r.spec.seed).collect();
    assert_eq!(seeds, vec![7, 8, 9, 10]);
    std::fs::remove_dir_all(ds.root()).unwrap();
}
