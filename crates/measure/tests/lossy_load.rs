//! Lossy dataset salvage over committed corrupt fixtures.
//!
//! `corrupt_dataset/` mimics a real capture directory after a bad run:
//! a healthy session, a truncated file (the collector died mid-write),
//! and a manifest entry whose file was never flushed. `future_dataset/`
//! declares a format version newer than this build. `load_all` refuses
//! both wholesale; `load_all_lossy` salvages every healthy session and
//! names each loss with a typed [`LoadError`].

use measure::dataset::{Dataset, LoadError, DATASET_VERSION};
use std::path::PathBuf;

fn fixture(name: &str) -> Dataset {
    Dataset::at(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name))
}

#[test]
fn corrupt_dataset_salvages_the_healthy_session() {
    let ds = fixture("corrupt_dataset");
    // The strict loader refuses the whole directory.
    assert!(ds.load_all().is_err());

    let (records, errors) = ds.load_all_lossy();
    assert_eq!(records.len(), 1, "exactly the healthy session survives");
    assert_eq!(records[0].spec.seed, 1);
    assert_eq!(records[0].trace.len(), 3);

    assert_eq!(errors.len(), 2, "one loss per broken entry: {errors:?}");
    match &errors[0] {
        LoadError::MalformedSession { name, detail } => {
            assert_eq!(name, "001_truncated_seed2.json");
            assert!(!detail.is_empty());
        }
        other => panic!("expected MalformedSession for the truncated file, got {other:?}"),
    }
    assert_eq!(
        errors[1],
        LoadError::MissingSession { name: "002_never_flushed_seed3.json".to_string() }
    );
}

#[test]
fn future_version_is_noted_but_salvage_continues() {
    let ds = fixture("future_dataset");
    let (records, errors) = ds.load_all_lossy();
    assert_eq!(records.len(), 1, "per-session sniffing still understands the files");
    assert_eq!(records[0].spec.seed, 9);
    assert_eq!(errors, vec![LoadError::UnknownVersion { found: 99, supported: DATASET_VERSION }]);
}

#[test]
fn missing_manifest_is_terminal() {
    let ds = Dataset::at(std::env::temp_dir().join(format!(
        "midband5g-lossy-nowhere-{}",
        std::process::id()
    )));
    let (records, errors) = ds.load_all_lossy();
    assert!(records.is_empty());
    assert_eq!(errors.len(), 1);
    assert!(
        matches!(&errors[0], LoadError::MissingManifest { .. }),
        "expected MissingManifest, got {errors:?}"
    );
}

#[test]
fn malformed_manifest_is_terminal() {
    let root =
        std::env::temp_dir().join(format!("midband5g-lossy-badmanifest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("manifest.json"), "{ not json").unwrap();
    let (records, errors) = Dataset::at(&root).load_all_lossy();
    assert!(records.is_empty());
    assert_eq!(errors.len(), 1);
    assert!(
        matches!(&errors[0], LoadError::MalformedManifest { .. }),
        "expected MalformedManifest, got {errors:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Every load error renders a human-readable message naming the culprit.
#[test]
fn load_errors_display_their_cause() {
    let (_, errors) = fixture("corrupt_dataset").load_all_lossy();
    let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
    assert!(rendered[0].contains("001_truncated_seed2.json"));
    assert!(rendered[1].contains("002_never_flushed_seed3.json"));
    let (_, errors) = fixture("future_dataset").load_all_lossy();
    assert!(errors[0].to_string().contains("99"));
}
