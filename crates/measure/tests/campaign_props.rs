//! Property tests of campaign spec generation — the invariants the
//! parallel executor relies on: one spec per session, pairwise-distinct
//! seeds (so no two sessions share a random stream), overflow-safe
//! derivation, and specs that are pure data (rebuilding them yields the
//! same batch).

use measure::campaign::Campaign;
use operators::Operator;
use proptest::prelude::*;

proptest! {
    #[test]
    fn specs_len_matches_sessions(
        sessions in 0u64..200,
        base_seed in 0u64..u64::MAX,
        duration in 0.1f64..30.0,
    ) {
        let c = Campaign {
            operator: Operator::VodafoneItaly,
            sessions,
            session_duration_s: duration,
            base_seed,
        };
        prop_assert_eq!(c.specs().len() as u64, sessions);
    }

    #[test]
    fn seeds_are_unique_and_sequential(sessions in 1u64..200, base_seed in 0u64..u64::MAX / 2) {
        let c = Campaign {
            operator: Operator::OrangeSpain100,
            sessions,
            session_duration_s: 1.0,
            base_seed,
        };
        let seeds: Vec<u64> = c.specs().iter().map(|s| s.seed).collect();
        for (i, &seed) in seeds.iter().enumerate() {
            prop_assert_eq!(seed, base_seed + i as u64);
        }
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), seeds.len(), "seed collision within a campaign");
    }

    #[test]
    fn seeds_survive_base_seed_overflow(offset in 0u64..100, sessions in 1u64..200) {
        // base_seed within `sessions` of u64::MAX: derivation must wrap,
        // not panic, and the wrapped seeds stay pairwise distinct.
        let c = Campaign {
            operator: Operator::SfrFrance,
            sessions,
            session_duration_s: 1.0,
            base_seed: u64::MAX - offset,
        };
        let specs = c.specs();
        prop_assert_eq!(specs.len() as u64, sessions);
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        prop_assert_eq!(seeds.len() as u64, sessions, "wrapping produced a collision");
    }

    #[test]
    fn specs_are_pure_data(sessions in 1u64..50, base_seed in 0u64..u64::MAX) {
        let c = Campaign {
            operator: Operator::TelekomGermany,
            sessions,
            session_duration_s: 2.5,
            base_seed,
        };
        prop_assert_eq!(c.specs(), c.specs(), "specs() is not deterministic");
        for (i, spec) in c.specs().iter().enumerate() {
            prop_assert!(spec.dl && spec.ul, "standard campaign saturates both directions");
            prop_assert_eq!(spec.duration_s, 2.5);
            prop_assert_eq!(spec.operator, Operator::TelekomGermany);
            prop_assert!(
                matches!(spec.mobility, measure::session::MobilityKind::Stationary { spot } if spot == i),
                "session {i} does not rotate onto spot {i}"
            );
        }
    }
}
