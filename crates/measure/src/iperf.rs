//! iPerf-style saturating transfer tests (paper §2 "bulk data transfer
//! using iPerf3").

use crate::session::{MobilityKind, SessionResult, SessionSpec};
use operators::Operator;
use ran::kpi::KpiTrace;
use ran::lte::LTE_CARRIER_INDEX;

// (`transfer_completion_s` below drives the simulator tick-by-tick, so it
// needs the UeSim API rather than the one-shot SessionResult.)

/// Run one saturating transfer. `dl`/`ul` select the directions (iPerf
/// forward, reverse, or bidirectional).
pub fn run_iperf(
    operator: Operator,
    mobility: MobilityKind,
    dl: bool,
    ul: bool,
    duration_s: f64,
    seed: u64,
) -> SessionResult {
    SessionResult::run(SessionSpec { operator, mobility, dl, ul, duration_s, seed })
}

/// Strip the LTE UL leg from a trace, leaving NR-only records — what the
/// paper's per-channel UL analysis (Figs. 9/10) isolates.
pub fn nr_only(trace: &KpiTrace) -> KpiTrace {
    trace.iter().filter(|r| r.carrier != LTE_CARRIER_INDEX).collect()
}

/// Completion time of a finite DL transfer of `megabits` over an
/// operator's channel (the "file download" workload of the paper's §2),
/// excluding RRC promotion (apply [`ran::rrc`] costs separately when
/// modelling cold starts). Runs the channel until the bits are delivered
/// and returns seconds; `None` if `max_duration_s` elapses first.
pub fn transfer_completion_s(
    operator: Operator,
    mobility: MobilityKind,
    megabits: f64,
    max_duration_s: f64,
    seed: u64,
) -> Option<f64> {
    let spec = SessionSpec { operator, mobility, dl: true, ul: false, duration_s: max_duration_s, seed };
    let profile = operator.profile();
    let mut sim = profile.build_ue_sim(
        spec.mobility_model(),
        ran::sim::UeSimConfig {
            traffic: ran::carrier::TrafficPattern::DL,
            routing: profile.routing,
        },
        &spec.seeds(),
    );
    let target_bits = megabits * 1e6;
    let mut delivered = 0.0f64;
    let mut trace = KpiTrace::new();
    let ticks = (max_duration_s / sim.base_slot_s()).round() as u64;
    for _ in 0..ticks {
        let before = trace.len();
        sim.step_into(&mut trace);
        for r in trace.iter_from(before) {
            delivered += f64::from(r.delivered_bits);
            if delivered >= target_bits {
                // Return the time of the record that crossed the target:
                // a carrier-aggregated tick emits several records, and
                // the crossing one need not be the tick's last.
                return Some(r.time_s);
            }
        }
        // Keep memory bounded: each record carries its own absolute
        // timestamp, so earlier records can be dropped freely.
        if trace.len() > 50_000 {
            trace.clear();
        }
    }
    None
}

/// Only the LTE UL leg (Fig. 10's `LTE_US` box).
pub fn lte_only(trace: &KpiTrace) -> KpiTrace {
    trace.iter().filter(|r| r.carrier == LTE_CARRIER_INDEX).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ran::kpi::Direction;

    #[test]
    fn dl_only_test_has_no_ul_bits() {
        let r = run_iperf(Operator::VodafoneGermany, MobilityKind::Stationary { spot: 0 }, true, false, 1.0, 3);
        assert!(r.trace.mean_throughput_mbps(Direction::Dl) > 0.0);
        let ul_bits: u64 = r
            .trace
            .iter()
            .filter(|x| x.direction == Direction::Ul)
            .map(|x| u64::from(x.delivered_bits))
            .sum();
        assert_eq!(ul_bits, 0);
    }

    #[test]
    fn finite_transfer_completion_scales_with_size() {
        let done_small = transfer_completion_s(
            Operator::VodafoneSpain,
            MobilityKind::Stationary { spot: 0 },
            50.0,
            20.0,
            5,
        )
        .expect("50 Mb completes quickly");
        let done_large = transfer_completion_s(
            Operator::VodafoneSpain,
            MobilityKind::Stationary { spot: 0 },
            2000.0,
            60.0,
            5,
        )
        .expect("2 Gb completes within a minute");
        assert!(done_small < done_large, "{done_small} vs {done_large}");
        // 2 Gb at a few hundred Mbps: single-digit seconds.
        assert!(done_large > 1.0 && done_large < 40.0, "{done_large}");
        // An impossible deadline returns None.
        assert!(transfer_completion_s(
            Operator::VodafoneSpain,
            MobilityKind::Stationary { spot: 0 },
            1e7,
            1.0,
            5,
        )
        .is_none());
    }

    #[test]
    fn completion_time_is_the_crossing_records_time() {
        // T-Mobile aggregates n41 (0.5 ms slots) with n25 (1 ms slots),
        // so one carrier-aggregated tick emits several records; the
        // completion time must come from the record that crossed the
        // target, not from whatever the tick emitted last. (Records in
        // one tick share their slot-START timestamp, so the check is on
        // record identity, not on the times diverging.)
        let operator = Operator::TMobileUs;
        let mobility = MobilityKind::Stationary { spot: 0 };
        let megabits = 80.0;
        let max_duration_s = 30.0;

        // Scan seeds for a run where the crossing record is *not* the
        // tick's last record — the case where an early-exit scan and a
        // whole-tick scan actually see different records.
        let mut checked_non_degenerate = false;
        for seed in 0..32u64 {
            // Replay the identical simulation and locate the record
            // whose delivered bits actually crossed the target.
            let spec = SessionSpec {
                operator,
                mobility,
                dl: true,
                ul: false,
                duration_s: max_duration_s,
                seed,
            };
            let profile = operator.profile();
            let mut sim = profile.build_ue_sim(
                spec.mobility_model(),
                ran::sim::UeSimConfig {
                    traffic: ran::carrier::TrafficPattern::DL,
                    routing: profile.routing,
                },
                &spec.seeds(),
            );
            let target_bits = megabits * 1e6;
            let mut delivered = 0.0f64;
            let mut trace = KpiTrace::new();
            let ticks = (max_duration_s / sim.base_slot_s()).round() as u64;
            let mut crossing = None;
            'ticks: for _ in 0..ticks {
                let before = trace.len();
                sim.step_into(&mut trace);
                for i in before..trace.len() {
                    delivered += f64::from(trace.get(i).unwrap().delivered_bits);
                    if delivered >= target_bits {
                        crossing = Some((trace.get(i).unwrap(), trace.last().unwrap()));
                        break 'ticks;
                    }
                }
            }
            let (crossing, tick_last) = crossing.expect("replay crosses the target");
            let got = transfer_completion_s(operator, mobility, megabits, max_duration_s, seed)
                .expect("80 Mb completes well within 30 s");
            assert_eq!(got, crossing.time_s, "seed {seed}");
            if crossing != tick_last {
                checked_non_degenerate = true;
                break;
            }
        }
        assert!(
            checked_non_degenerate,
            "no seed in 0..32 crossed mid-tick; the regression check never engaged"
        );
    }

    #[test]
    fn lte_and_nr_partition_the_trace() {
        let r = run_iperf(Operator::TMobileUs, MobilityKind::Stationary { spot: 0 }, true, true, 1.0, 4);
        let nr = nr_only(&r.trace);
        let lte = lte_only(&r.trace);
        assert_eq!(nr.len() + lte.len(), r.trace.len());
        assert!(!lte.is_empty(), "T-Mobile routes UL to LTE");
    }
}
