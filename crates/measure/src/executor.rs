//! Deterministic parallel execution of independent sessions.
//!
//! The study's 5600+ minutes of campaigns replay here as seeded
//! simulations, and every session derives all of its randomness from its
//! own `SessionSpec::seed` sub-stream (DESIGN.md §5) — sessions share no
//! mutable state, so a campaign is embarrassingly parallel *by
//! construction*. [`Executor`] cashes that in: a scoped thread pool pulls
//! specs off a shared atomic work queue (self-balancing, so a slow
//! driving session doesn't stall a fast stationary one) and results are
//! reassembled in **spec order**, making the parallel output
//! byte-identical to the sequential path. `tests/determinism.rs` is the
//! contract: the JSON encoding of `run_parallel(n)` equals the
//! sequential encoding for every operator profile and thread count.
//!
//! Thread count selection: [`Executor::from_env`] honours
//! `MIDBAND5G_THREADS` (0 or unset ⇒ all available cores), which the
//! figure/`repro_all` binaries route through `experiments::run_campaign`.

use crate::session::{SessionResult, SessionSpec};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable selecting the campaign thread count.
/// Unset or `0` means "all available cores"; `1` forces sequential.
pub const THREADS_ENV: &str = "MIDBAND5G_THREADS";

/// A deterministic parallel map over independent work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: NonZeroUsize,
}

impl Executor {
    /// An executor with an explicit thread count (0 is clamped to 1).
    pub fn new(threads: usize) -> Executor {
        Executor { threads: NonZeroUsize::new(threads.max(1)).unwrap() }
    }

    /// The sequential executor.
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// Thread count from [`THREADS_ENV`], defaulting to available
    /// parallelism. An unparsable value falls back to the default rather
    /// than panicking mid-campaign.
    pub fn from_env() -> Executor {
        let available =
            || std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) | Err(_) => available(),
                Ok(n) => n,
            },
            Err(_) => available(),
        };
        Executor::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Apply `work` to every item, returning outputs in **input order**
    /// regardless of which worker finished first.
    ///
    /// Workers claim items from a shared atomic cursor — the
    /// channel-of-indexed-results pattern of work-stealing pools, with the
    /// queue itself lock-free. With one worker (or ≤1 item) this runs
    /// inline on the caller's thread with zero scheduling overhead, which
    /// also makes `Executor::sequential()` trivially identical to a plain
    /// `iter().map()`.
    ///
    /// Panics in `work` propagate to the caller once the scope joins.
    pub fn map<T, O, F>(&self, items: &[T], work: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        let n = items.len();
        let workers = self.threads().min(n);
        if workers <= 1 {
            return items.iter().map(work).collect();
        }

        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, O)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    // The receiver outlives the scope; a send can only
                    // fail if the main thread is already unwinding.
                    if tx.send((index, work(&items[index]))).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);

        let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
        for (index, output) in rx {
            debug_assert!(slots[index].is_none(), "index {index} delivered twice");
            slots[index] = Some(output);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index claimed exactly once"))
            .collect()
    }

    /// Run a batch of session specs, results in spec order.
    pub fn run_sessions(&self, specs: &[SessionSpec]) -> Vec<SessionResult> {
        self.map(specs, |spec| SessionResult::run(*spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = Executor::new(8).map(&items, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(Executor::new(threads).map(&items, |x| x * x + 1), expect);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        Executor::new(4).map(&counters, |c| c.fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(Executor::new(4).map(&none, |x| *x).is_empty());
        assert_eq!(Executor::new(4).map(&[7u8], |x| *x), vec![7]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::sequential().threads(), 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        Executor::new(4).map(&items, |x| {
            assert!(*x < 8, "boom");
            *x
        });
    }
}
