//! Deterministic parallel execution of independent sessions.
//!
//! The study's 5600+ minutes of campaigns replay here as seeded
//! simulations, and every session derives all of its randomness from its
//! own `SessionSpec::seed` sub-stream (DESIGN.md §5) — sessions share no
//! mutable state, so a campaign is embarrassingly parallel *by
//! construction*. [`Executor`] cashes that in: a scoped thread pool pulls
//! specs off a shared atomic work queue (self-balancing, so a slow
//! driving session doesn't stall a fast stationary one) and results are
//! reassembled in **spec order**, making the parallel output
//! byte-identical to the sequential path. `tests/determinism.rs` is the
//! contract: the JSON encoding of `run_parallel(n)` equals the
//! sequential encoding for every operator profile and thread count.
//!
//! Thread count selection: [`Executor::from_env`] honours
//! `MIDBAND5G_THREADS` (0 or unset ⇒ all available cores), which the
//! figure/`repro_all` binaries route through `experiments::run_campaign`.

use crate::session::{SessionResult, SessionSpec};
use obs::audit::{self, Invariant};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A delivery-accounting failure while reassembling parallel results.
///
/// These conditions previously hid behind a `debug_assert!` and a bare
/// `expect` — invisible in release builds, nameless in debug ones. They
/// indicate a broken executor (or a `work` closure that unwound without
/// the scope propagating it), never bad input data — except
/// [`ExecutorError::WorkerPanic`], which [`Executor::map_resilient`]
/// produces when a caught panic exhausts its retry budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutorError {
    /// A worker delivered an output for the same index twice.
    DuplicateDelivery {
        /// The index delivered more than once.
        index: usize,
        /// Total number of work items in the batch.
        total: usize,
    },
    /// A worker delivered an output for an index outside the batch.
    IndexOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// Total number of work items in the batch.
        total: usize,
    },
    /// No output was ever delivered for an index.
    MissingDelivery {
        /// The first index with no delivery.
        index: usize,
        /// How many deliveries were received in total.
        received: usize,
        /// Total number of work items in the batch.
        total: usize,
    },
    /// A worker panicked while processing an item. Produced by
    /// [`Executor::map_resilient`] after the retry budget is exhausted;
    /// `payload` is the panic message (stringified, `"<non-string panic
    /// payload>"` when the payload was neither `&str` nor `String`).
    WorkerPanic {
        /// The index of the item whose worker panicked.
        index: usize,
        /// The panic payload of the *last* failing attempt.
        payload: String,
    },
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ExecutorError::DuplicateDelivery { index, total } => {
                write!(f, "index {index} of {total} delivered twice")
            }
            ExecutorError::IndexOutOfRange { index, total } => {
                write!(f, "delivery for index {index} outside batch of {total}")
            }
            ExecutorError::MissingDelivery { index, received, total } => {
                write!(
                    f,
                    "no delivery for index {index}: received {received} of {total} outputs"
                )
            }
            ExecutorError::WorkerPanic { index, ref payload } => {
                write!(f, "worker panicked on item {index}: {payload}")
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Environment variable selecting the campaign thread count.
/// Unset or `0` means "all available cores"; `1` forces sequential.
pub const THREADS_ENV: &str = "MIDBAND5G_THREADS";

/// A deterministic parallel map over independent work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: NonZeroUsize,
}

impl Executor {
    /// An executor with an explicit thread count (0 is clamped to 1).
    pub fn new(threads: usize) -> Executor {
        // Infallible: `.max(1)` guarantees the value is nonzero.
        Executor { threads: NonZeroUsize::new(threads.max(1)).expect("max(1) is nonzero") }
    }

    /// The sequential executor.
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// Thread count from [`THREADS_ENV`], defaulting to available
    /// parallelism. An unparsable value falls back to the default rather
    /// than panicking mid-campaign.
    pub fn from_env() -> Executor {
        let available =
            || std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) | Err(_) => available(),
                Ok(n) => n,
            },
            Err(_) => available(),
        };
        Executor::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Apply `work` to every item, returning outputs in **input order**
    /// regardless of which worker finished first.
    ///
    /// Workers claim items from a shared atomic cursor — the
    /// channel-of-indexed-results pattern of work-stealing pools, with the
    /// queue itself lock-free. With one worker (or ≤1 item) this runs
    /// inline on the caller's thread with zero scheduling overhead, which
    /// also makes `Executor::sequential()` trivially identical to a plain
    /// `iter().map()`.
    ///
    /// Panics in `work` propagate to the caller once the scope joins.
    /// Delivery-accounting failures panic with the [`ExecutorError`]
    /// message; use [`Executor::try_map`] to handle them instead.
    pub fn map<T, O, F>(&self, items: &[T], work: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        match self.try_map(items, work) {
            Ok(outputs) => outputs,
            Err(e) => panic!("executor delivery invariant broken: {e}"),
        }
    }

    /// [`Executor::map`], surfacing delivery-accounting failures as
    /// [`ExecutorError`] instead of panicking. Failures are also counted
    /// on the `executor.delivery_errors` metric and the
    /// `executor_delivery` audit invariant.
    pub fn try_map<T, O, F>(&self, items: &[T], work: F) -> Result<Vec<O>, ExecutorError>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        let n = items.len();
        let _span = obs::span("executor.map");
        let reg = obs::registry();
        reg.counter("executor.items").add(n as u64);
        let workers = self.threads().min(n);
        reg.gauge("executor.workers").set(workers.max(1) as i64);
        let per_worker = reg.histogram("executor.items_per_worker", obs::COUNT_BOUNDS);
        let queue_depth = reg.histogram("executor.queue_depth", obs::COUNT_BOUNDS);
        if workers <= 1 {
            per_worker.record(n as u64);
            reg.gauge("executor.imbalance").set(0);
            return Ok(items.iter().map(work).collect());
        }

        let cursor = AtomicUsize::new(0);
        let claims: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        let (tx, rx) = mpsc::channel::<(usize, O)>();
        std::thread::scope(|scope| {
            for my_claims in &claims {
                let tx = tx.clone();
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    my_claims.fetch_add(1, Ordering::Relaxed);
                    queue_depth.record((n - index - 1) as u64);
                    // The receiver outlives the scope; a send can only
                    // fail if the main thread is already unwinding.
                    if tx.send((index, work(&items[index]))).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);

        let counts: Vec<u64> = claims.iter().map(|c| c.load(Ordering::Relaxed) as u64).collect();
        for &c in &counts {
            per_worker.record(c);
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        reg.gauge("executor.imbalance").set((max - min) as i64);

        let assembled = assemble(n, rx);
        if assembled.is_err() {
            reg.counter("executor.delivery_errors").inc();
            audit::violation(Invariant::ExecutorDelivery);
        }
        assembled
    }

    /// Run a batch of session specs, results in spec order.
    pub fn run_sessions(&self, specs: &[SessionSpec]) -> Vec<SessionResult> {
        self.map(specs, |spec| SessionResult::run(*spec))
    }

    /// [`Executor::map`] with panic isolation and bounded retries.
    ///
    /// Each work item runs under [`std::panic::catch_unwind`]; a panic is
    /// converted into [`ExecutorError::WorkerPanic`] instead of tearing
    /// down the campaign. Failed items are then retried **in spec order
    /// on the caller's thread**, up to `retry_budget` further attempts
    /// each, with `work` receiving the attempt number (0 = first try).
    /// Because retries are sequential and ordered, the outcome is a pure
    /// function of `(items, work)` — byte-identical across thread counts,
    /// the same contract as [`Executor::map`] (`tests/chaos.rs`).
    ///
    /// Accounting lands on the `executor.worker_panics`,
    /// `executor.retries` and `executor.abandoned` obs counters, and —
    /// under `MIDBAND5G_AUDIT` — on the `worker_panic` /
    /// `executor_abandoned` audit invariants (the two counters chaos
    /// gating jobs deliberately allow).
    ///
    /// `work` must be effectively pure per `(item, attempt)`: a panic
    /// may leave shared state poisoned, which is why session work
    /// closures derive everything from the spec's seed.
    pub fn map_resilient<T, O, F>(
        &self,
        items: &[T],
        retry_budget: u32,
        work: F,
    ) -> ResilientOutcome<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T, u32) -> O + Sync,
    {
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let _span = obs::span("executor.map_resilient");
        let reg = obs::registry();
        let attempt_item = |item: &T, attempt: u32| -> Result<O, String> {
            catch_unwind(AssertUnwindSafe(|| work(item, attempt))).map_err(|payload| {
                reg.counter("executor.worker_panics").inc();
                if audit::enabled() {
                    audit::violation(Invariant::WorkerPanic);
                }
                payload_string(payload.as_ref())
            })
        };

        // Main pass: full parallel fan-out, panics caught per item.
        let first: Vec<Result<O, String>> = self.map(items, |item| attempt_item(item, 0));

        // Retry pass: failed items re-run sequentially in spec order so
        // the retry accounting (and any attempt-dependent behaviour in
        // `work`) is independent of which worker failed first.
        let mut outputs: Vec<Result<O, ItemFailure>> = Vec::with_capacity(items.len());
        let mut worker_panics = 0u64;
        let mut retries = 0u64;
        let mut abandoned = 0u64;
        for (index, outcome) in first.into_iter().enumerate() {
            match outcome {
                Ok(output) => outputs.push(Ok(output)),
                Err(mut payload) => {
                    worker_panics += 1;
                    let mut attempts = 1u32;
                    let mut recovered = None;
                    for attempt in 1..=retry_budget {
                        retries += 1;
                        reg.counter("executor.retries").inc();
                        attempts += 1;
                        match attempt_item(&items[index], attempt) {
                            Ok(output) => {
                                recovered = Some(output);
                                break;
                            }
                            Err(p) => {
                                worker_panics += 1;
                                payload = p;
                            }
                        }
                    }
                    match recovered {
                        Some(output) => outputs.push(Ok(output)),
                        None => {
                            abandoned += 1;
                            reg.counter("executor.abandoned").inc();
                            if audit::enabled() {
                                audit::violation(Invariant::ExecutorAbandoned);
                            }
                            outputs.push(Err(ItemFailure {
                                index,
                                attempts,
                                error: ExecutorError::WorkerPanic { index, payload },
                            }));
                        }
                    }
                }
            }
        }
        ResilientOutcome { outputs, worker_panics, retries, abandoned }
    }
}

/// Stringify a caught panic payload (the two shapes `panic!` produces).
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A work item that exhausted its retry budget in
/// [`Executor::map_resilient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemFailure {
    /// Index of the failed item in the input batch.
    pub index: usize,
    /// Total attempts made (1 initial + retries).
    pub attempts: u32,
    /// The terminal error — [`ExecutorError::WorkerPanic`] carrying the
    /// last panic payload.
    pub error: ExecutorError,
}

impl std::fmt::Display for ItemFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item {} abandoned after {} attempts: {}", self.index, self.attempts, self.error)
    }
}

impl std::error::Error for ItemFailure {}

/// The result of [`Executor::map_resilient`]: per-item outcomes in input
/// order plus the failure accounting.
#[derive(Debug)]
pub struct ResilientOutcome<O> {
    /// One entry per input item, in input order: the output, or the
    /// failure that abandoned it.
    pub outputs: Vec<Result<O, ItemFailure>>,
    /// Panics caught across all attempts.
    pub worker_panics: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Items abandoned after the retry budget.
    pub abandoned: u64,
}

impl<O> ResilientOutcome<O> {
    /// Number of items that ultimately succeeded.
    pub fn succeeded(&self) -> usize {
        self.outputs.iter().filter(|o| o.is_ok()).count()
    }

    /// The failures, in input order.
    pub fn failures(&self) -> impl Iterator<Item = &ItemFailure> {
        self.outputs.iter().filter_map(|o| o.as_ref().err())
    }
}

/// Reassemble indexed deliveries into input order, verifying that every
/// index in `0..n` arrived exactly once.
fn assemble<O>(
    n: usize,
    deliveries: impl IntoIterator<Item = (usize, O)>,
) -> Result<Vec<O>, ExecutorError> {
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let mut received = 0usize;
    for (index, output) in deliveries {
        let Some(slot) = slots.get_mut(index) else {
            return Err(ExecutorError::IndexOutOfRange { index, total: n });
        };
        if slot.is_some() {
            return Err(ExecutorError::DuplicateDelivery { index, total: n });
        }
        *slot = Some(output);
        received += 1;
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.ok_or(ExecutorError::MissingDelivery { index, received, total: n })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = Executor::new(8).map(&items, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(Executor::new(threads).map(&items, |x| x * x + 1), expect);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        Executor::new(4).map(&counters, |c| c.fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(Executor::new(4).map(&none, |x| *x).is_empty());
        assert_eq!(Executor::new(4).map(&[7u8], |x| *x), vec![7]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::sequential().threads(), 1);
    }

    #[test]
    fn try_map_matches_map() {
        let items: Vec<u64> = (0..40).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(Executor::new(4).try_map(&items, |x| x + 1), Ok(expect));
    }

    #[test]
    fn assemble_accepts_complete_out_of_order_delivery() {
        let deliveries = vec![(2, 'c'), (0, 'a'), (1, 'b')];
        assert_eq!(assemble(3, deliveries), Ok(vec!['a', 'b', 'c']));
    }

    #[test]
    fn assemble_names_duplicate_index() {
        let err = assemble(3, vec![(1, 'x'), (1, 'y')]).unwrap_err();
        assert_eq!(err, ExecutorError::DuplicateDelivery { index: 1, total: 3 });
        assert_eq!(err.to_string(), "index 1 of 3 delivered twice");
    }

    #[test]
    fn assemble_names_missing_index_and_received_count() {
        let err = assemble(3, vec![(0, 'a'), (2, 'c')]).unwrap_err();
        assert_eq!(err, ExecutorError::MissingDelivery { index: 1, received: 2, total: 3 });
        assert_eq!(err.to_string(), "no delivery for index 1: received 2 of 3 outputs");
    }

    #[test]
    fn assemble_rejects_out_of_range_index() {
        let err = assemble(2, vec![(5, 'z')]).unwrap_err();
        assert_eq!(err, ExecutorError::IndexOutOfRange { index: 5, total: 2 });
        assert_eq!(err.to_string(), "delivery for index 5 outside batch of 2");
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        Executor::new(4).map(&items, |x| {
            assert!(*x < 8, "boom");
            *x
        });
    }

    /// Work that panics on attempts `0..n` for item `x = n`, succeeds
    /// after — the same attempt-counted shape `measure::fault` injects.
    fn flaky(x: &u32, attempt: u32) -> u32 {
        assert!(attempt >= *x, "flaky item {x} panics on attempt {attempt}");
        *x * 10
    }

    #[test]
    fn map_resilient_catches_retries_and_heals() {
        // Items 0..=2 need 0/1/2 retries; budget 2 heals everything.
        let items: Vec<u32> = vec![0, 1, 2, 0, 1];
        let outcome = Executor::new(4).map_resilient(&items, 2, flaky);
        assert_eq!(outcome.abandoned, 0);
        assert_eq!(outcome.succeeded(), 5);
        let outputs: Vec<u32> = outcome.outputs.into_iter().map(Result::unwrap).collect();
        assert_eq!(outputs, vec![0, 10, 20, 0, 10]);
        // 0-items never panic; 1-items panic once, 2-items twice.
        assert_eq!(outcome.worker_panics, 1 + 2 + 1);
        assert_eq!(outcome.retries, 1 + 2 + 1);
    }

    #[test]
    fn map_resilient_abandons_past_budget_with_named_failure() {
        let items: Vec<u32> = vec![0, 5, 1];
        let outcome = Executor::new(2).map_resilient(&items, 1, flaky);
        assert_eq!(outcome.abandoned, 1);
        assert_eq!(outcome.succeeded(), 2);
        let failure = outcome.outputs[1].as_ref().unwrap_err();
        assert_eq!(failure.index, 1);
        assert_eq!(failure.attempts, 2);
        match &failure.error {
            ExecutorError::WorkerPanic { index, payload } => {
                assert_eq!(*index, 1);
                assert!(payload.contains("flaky item 5"), "payload: {payload}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn map_resilient_is_deterministic_across_thread_counts() {
        let items: Vec<u32> = vec![1, 0, 2, 3, 0, 1, 2];
        let describe = |outcome: ResilientOutcome<u32>| -> Vec<Result<u32, String>> {
            (outcome.outputs.into_iter())
                .map(|o| o.map_err(|f| f.to_string()))
                .collect()
        };
        let reference = describe(Executor::sequential().map_resilient(&items, 2, flaky));
        for threads in [2, 4, 8] {
            let parallel = describe(Executor::new(threads).map_resilient(&items, 2, flaky));
            assert_eq!(reference, parallel, "{threads} threads diverged");
        }
    }

    #[test]
    fn map_resilient_without_panics_matches_map() {
        let items: Vec<u64> = (0..32).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        let outcome = Executor::new(4).map_resilient(&items, 2, |x, _attempt| x * 3);
        assert_eq!(outcome.worker_panics, 0);
        assert_eq!(outcome.retries, 0);
        let outputs: Vec<u64> = outcome.outputs.into_iter().map(Result::unwrap).collect();
        assert_eq!(outputs, expect);
    }
}
