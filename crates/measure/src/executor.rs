//! Deterministic parallel execution of independent sessions.
//!
//! The study's 5600+ minutes of campaigns replay here as seeded
//! simulations, and every session derives all of its randomness from its
//! own `SessionSpec::seed` sub-stream (DESIGN.md §5) — sessions share no
//! mutable state, so a campaign is embarrassingly parallel *by
//! construction*. [`Executor`] cashes that in: a scoped thread pool pulls
//! specs off a shared atomic work queue (self-balancing, so a slow
//! driving session doesn't stall a fast stationary one) and results are
//! reassembled in **spec order**, making the parallel output
//! byte-identical to the sequential path. `tests/determinism.rs` is the
//! contract: the JSON encoding of `run_parallel(n)` equals the
//! sequential encoding for every operator profile and thread count.
//!
//! Thread count selection: [`Executor::from_env`] honours
//! `MIDBAND5G_THREADS` (0 or unset ⇒ all available cores), which the
//! figure/`repro_all` binaries route through `experiments::run_campaign`.

use crate::session::{SessionResult, SessionSpec};
use obs::audit::{self, Invariant};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A delivery-accounting failure while reassembling parallel results.
///
/// These conditions previously hid behind a `debug_assert!` and a bare
/// `expect` — invisible in release builds, nameless in debug ones. They
/// indicate a broken executor (or a `work` closure that unwound without
/// the scope propagating it), never bad input data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorError {
    /// A worker delivered an output for the same index twice.
    DuplicateDelivery {
        /// The index delivered more than once.
        index: usize,
        /// Total number of work items in the batch.
        total: usize,
    },
    /// A worker delivered an output for an index outside the batch.
    IndexOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// Total number of work items in the batch.
        total: usize,
    },
    /// No output was ever delivered for an index.
    MissingDelivery {
        /// The first index with no delivery.
        index: usize,
        /// How many deliveries were received in total.
        received: usize,
        /// Total number of work items in the batch.
        total: usize,
    },
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ExecutorError::DuplicateDelivery { index, total } => {
                write!(f, "index {index} of {total} delivered twice")
            }
            ExecutorError::IndexOutOfRange { index, total } => {
                write!(f, "delivery for index {index} outside batch of {total}")
            }
            ExecutorError::MissingDelivery { index, received, total } => {
                write!(
                    f,
                    "no delivery for index {index}: received {received} of {total} outputs"
                )
            }
        }
    }
}

impl std::error::Error for ExecutorError {}

/// Environment variable selecting the campaign thread count.
/// Unset or `0` means "all available cores"; `1` forces sequential.
pub const THREADS_ENV: &str = "MIDBAND5G_THREADS";

/// A deterministic parallel map over independent work items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: NonZeroUsize,
}

impl Executor {
    /// An executor with an explicit thread count (0 is clamped to 1).
    pub fn new(threads: usize) -> Executor {
        Executor { threads: NonZeroUsize::new(threads.max(1)).unwrap() }
    }

    /// The sequential executor.
    pub fn sequential() -> Executor {
        Executor::new(1)
    }

    /// Thread count from [`THREADS_ENV`], defaulting to available
    /// parallelism. An unparsable value falls back to the default rather
    /// than panicking mid-campaign.
    pub fn from_env() -> Executor {
        let available =
            || std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        let threads = match std::env::var(THREADS_ENV) {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(0) | Err(_) => available(),
                Ok(n) => n,
            },
            Err(_) => available(),
        };
        Executor::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Apply `work` to every item, returning outputs in **input order**
    /// regardless of which worker finished first.
    ///
    /// Workers claim items from a shared atomic cursor — the
    /// channel-of-indexed-results pattern of work-stealing pools, with the
    /// queue itself lock-free. With one worker (or ≤1 item) this runs
    /// inline on the caller's thread with zero scheduling overhead, which
    /// also makes `Executor::sequential()` trivially identical to a plain
    /// `iter().map()`.
    ///
    /// Panics in `work` propagate to the caller once the scope joins.
    /// Delivery-accounting failures panic with the [`ExecutorError`]
    /// message; use [`Executor::try_map`] to handle them instead.
    pub fn map<T, O, F>(&self, items: &[T], work: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        match self.try_map(items, work) {
            Ok(outputs) => outputs,
            Err(e) => panic!("executor delivery invariant broken: {e}"),
        }
    }

    /// [`Executor::map`], surfacing delivery-accounting failures as
    /// [`ExecutorError`] instead of panicking. Failures are also counted
    /// on the `executor.delivery_errors` metric and the
    /// `executor_delivery` audit invariant.
    pub fn try_map<T, O, F>(&self, items: &[T], work: F) -> Result<Vec<O>, ExecutorError>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        let n = items.len();
        let _span = obs::span("executor.map");
        let reg = obs::registry();
        reg.counter("executor.items").add(n as u64);
        let workers = self.threads().min(n);
        reg.gauge("executor.workers").set(workers.max(1) as i64);
        let per_worker = reg.histogram("executor.items_per_worker", obs::COUNT_BOUNDS);
        let queue_depth = reg.histogram("executor.queue_depth", obs::COUNT_BOUNDS);
        if workers <= 1 {
            per_worker.record(n as u64);
            reg.gauge("executor.imbalance").set(0);
            return Ok(items.iter().map(work).collect());
        }

        let cursor = AtomicUsize::new(0);
        let claims: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        let (tx, rx) = mpsc::channel::<(usize, O)>();
        std::thread::scope(|scope| {
            for my_claims in &claims {
                let tx = tx.clone();
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    my_claims.fetch_add(1, Ordering::Relaxed);
                    queue_depth.record((n - index - 1) as u64);
                    // The receiver outlives the scope; a send can only
                    // fail if the main thread is already unwinding.
                    if tx.send((index, work(&items[index]))).is_err() {
                        break;
                    }
                });
            }
        });
        drop(tx);

        let counts: Vec<u64> = claims.iter().map(|c| c.load(Ordering::Relaxed) as u64).collect();
        for &c in &counts {
            per_worker.record(c);
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        reg.gauge("executor.imbalance").set((max - min) as i64);

        let assembled = assemble(n, rx);
        if assembled.is_err() {
            reg.counter("executor.delivery_errors").inc();
            audit::violation(Invariant::ExecutorDelivery);
        }
        assembled
    }

    /// Run a batch of session specs, results in spec order.
    pub fn run_sessions(&self, specs: &[SessionSpec]) -> Vec<SessionResult> {
        self.map(specs, |spec| SessionResult::run(*spec))
    }
}

/// Reassemble indexed deliveries into input order, verifying that every
/// index in `0..n` arrived exactly once.
fn assemble<O>(
    n: usize,
    deliveries: impl IntoIterator<Item = (usize, O)>,
) -> Result<Vec<O>, ExecutorError> {
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let mut received = 0usize;
    for (index, output) in deliveries {
        let Some(slot) = slots.get_mut(index) else {
            return Err(ExecutorError::IndexOutOfRange { index, total: n });
        };
        if slot.is_some() {
            return Err(ExecutorError::DuplicateDelivery { index, total: n });
        }
        *slot = Some(output);
        received += 1;
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.ok_or(ExecutorError::MissingDelivery { index, received, total: n })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = Executor::new(8).map(&items, |x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(Executor::new(threads).map(&items, |x| x * x + 1), expect);
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        Executor::new(4).map(&counters, |c| c.fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(Executor::new(4).map(&none, |x| *x).is_empty());
        assert_eq!(Executor::new(4).map(&[7u8], |x| *x), vec![7]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
        assert_eq!(Executor::sequential().threads(), 1);
    }

    #[test]
    fn try_map_matches_map() {
        let items: Vec<u64> = (0..40).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(Executor::new(4).try_map(&items, |x| x + 1), Ok(expect));
    }

    #[test]
    fn assemble_accepts_complete_out_of_order_delivery() {
        let deliveries = vec![(2, 'c'), (0, 'a'), (1, 'b')];
        assert_eq!(assemble(3, deliveries), Ok(vec!['a', 'b', 'c']));
    }

    #[test]
    fn assemble_names_duplicate_index() {
        let err = assemble(3, vec![(1, 'x'), (1, 'y')]).unwrap_err();
        assert_eq!(err, ExecutorError::DuplicateDelivery { index: 1, total: 3 });
        assert_eq!(err.to_string(), "index 1 of 3 delivered twice");
    }

    #[test]
    fn assemble_names_missing_index_and_received_count() {
        let err = assemble(3, vec![(0, 'a'), (2, 'c')]).unwrap_err();
        assert_eq!(err, ExecutorError::MissingDelivery { index: 1, received: 2, total: 3 });
        assert_eq!(err.to_string(), "no delivery for index 1: received 2 of 3 outputs");
    }

    #[test]
    fn assemble_rejects_out_of_range_index() {
        let err = assemble(2, vec![(5, 'z')]).unwrap_err();
        assert_eq!(err, ExecutorError::IndexOutOfRange { index: 5, total: 2 });
        assert_eq!(err.to_string(), "delivery for index 5 outside batch of 2");
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        Executor::new(4).map(&items, |x| {
            assert!(*x < 8, "boom");
            *x
        });
    }
}
