//! Deterministic fault injection — the chaos layer of the campaign
//! engine.
//!
//! The paper's measurement pipeline lived with failure as a constant:
//! XCAL drive-test logs have collector gaps where the diag pipe stalled,
//! sessions abort mid-capture on RRC re-establishment or tool crashes,
//! and captured files arrive truncated. The authors analyse what
//! survived, not a perfect record. This module reproduces those failure
//! modes *deterministically*: a [`FaultPlan`] is a pure function of the
//! session seed and the [`FaultConfig`] rates, derived through the same
//! labelled [`SeedTree`] that drives every other random stream — so a
//! chaotic campaign is byte-reproducible across thread counts exactly
//! like a healthy one (`tests/chaos.rs` enforces this).
//!
//! Four paper-realistic faults are injectable:
//!
//! * **Collector gap** — a contiguous time span of slot records is
//!   dropped, as XCAL does when its diag pipe stalls.
//! * **Session abort** — the session terminates early, leaving a partial
//!   trace (RRC re-establishment, tool crash).
//! * **Record corruption** — measurement-quality fields (`sinr_db`,
//!   `rsrp_dbm`, `rsrq_db`) of injected records become NaN, the way a
//!   torn capture decodes into garbage. Downstream `analysis::stats`
//!   helpers are NaN-safe, so corrupted records degrade coverage instead
//!   of poisoning figures.
//! * **Worker panic** — the session's run deliberately panics mid-slot.
//!   [`crate::executor::Executor::map_resilient`] catches it, retries
//!   within budget, and abandons only sessions whose plan out-panics the
//!   budget.
//!
//! [`FaultConfig::default`] is all-zero: every existing test, bench and
//! determinism harness runs through a quiet plan that injects nothing,
//! so the chaos layer is provably free when disabled.

use crate::session::{SessionResult, SessionSpec};
use radio_channel::rng::SeedTree;
use ran::kpi::{KpiTrace, SlotKpi};
use ran::sink::SlotSink;
use rand::RngCore;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Per-session fault rates, each a probability in `[0, 1]`.
///
/// The default is all-zero — no faults, byte-identical behaviour to the
/// fault-free code path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a session loses a contiguous span of records
    /// (collector gap).
    pub gap_rate: f64,
    /// Probability that a session terminates early with a partial trace.
    pub abort_rate: f64,
    /// Per-record probability of NaN-corrupted measurement fields.
    pub corrupt_rate: f64,
    /// Probability that a session's run panics (and, at compounded odds,
    /// keeps panicking on retries — see [`FaultPlan::for_spec`]).
    pub panic_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { gap_rate: 0.0, abort_rate: 0.0, corrupt_rate: 0.0, panic_rate: 0.0 }
    }
}

impl FaultConfig {
    /// True when every rate is zero — the plan derived from this config
    /// injects nothing.
    pub fn is_quiet(&self) -> bool {
        self.gap_rate == 0.0
            && self.abort_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.panic_rate == 0.0
    }
}

/// The deliberate-panic part of a plan: the session panics at the first
/// record at or after `at_s`, on attempts `0..attempts`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PanicPlan {
    /// Session time at which the panic fires, seconds.
    pub at_s: f64,
    /// Number of *initial attempts* that panic; attempt `attempts` (and
    /// later) succeed. A plan whose `attempts` exceeds the executor's
    /// retry budget produces an abandoned session.
    pub attempts: u32,
}

/// A session's deterministic fault schedule — a pure function of
/// `(session seed, FaultConfig)`, independent of thread count, executor
/// or wall clock. See [`FaultPlan::for_spec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Collector gap: records with `time_s` in `[start, end)` are
    /// dropped.
    pub gap_s: Option<(f64, f64)>,
    /// Session abort: the first record at or after this time latches the
    /// abort and every subsequent record is dropped.
    pub abort_s: Option<f64>,
    /// Deliberate worker panic.
    pub panic: Option<PanicPlan>,
    /// Per-record corruption probability (0 disables the corruption
    /// stream entirely).
    pub corrupt_rate: f64,
    /// Seed of the per-record corruption stream.
    corrupt_seed: u64,
}

/// Map a raw `u64` draw onto `[0, 1)` with 53 bits of precision.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultPlan {
    /// The no-fault plan.
    pub fn quiet() -> FaultPlan {
        FaultPlan { gap_s: None, abort_s: None, panic: None, corrupt_rate: 0.0, corrupt_seed: 0 }
    }

    /// Derive the schedule for one session spec.
    ///
    /// All randomness comes from the `"fault"` child of the session's
    /// seed tree (keyed by the raw session seed, *not* the city, so two
    /// operators sharing an environment still fault independently). A
    /// fixed number of uniforms is drawn in a fixed order regardless of
    /// which rates are zero, so raising one rate never perturbs the
    /// schedule another rate would produce.
    ///
    /// Panic persistence across retries: when the panic fault fires, a
    /// second uniform `u` picks how many initial attempts panic —
    /// 3 if `u < panic_rate` (usually beyond a small retry budget ⇒
    /// abandoned), 2 if `u < 0.5`, else 1. With a budget of ≥ 2 retries
    /// most panicking sessions therefore self-heal, and a deterministic
    /// minority surfaces in `CampaignOutcome::failures`.
    pub fn for_spec(spec: &SessionSpec, config: &FaultConfig) -> FaultPlan {
        if config.is_quiet() {
            return FaultPlan::quiet();
        }
        let seeds = SeedTree::new(spec.seed).child("fault");
        let mut rng = seeds.stream("plan");
        let draws: [f64; 8] = {
            let mut d = [0.0; 8];
            for slot in d.iter_mut() {
                *slot = unit(rng.next_u64());
            }
            d
        };
        let d = spec.duration_s.max(0.0);

        let gap_s = (draws[0] < config.gap_rate).then(|| {
            let start = draws[1] * 0.9 * d;
            let len = (0.05 + 0.25 * draws[2]) * d;
            (start, (start + len).min(d))
        });
        let abort_s = (draws[3] < config.abort_rate).then(|| (0.1 + 0.85 * draws[4]) * d);
        let panic = (draws[5] < config.panic_rate).then(|| PanicPlan {
            at_s: draws[6] * d,
            attempts: if draws[7] < config.panic_rate {
                3
            } else if draws[7] < 0.5 {
                2
            } else {
                1
            },
        });
        FaultPlan {
            gap_s,
            abort_s,
            panic,
            corrupt_rate: config.corrupt_rate,
            corrupt_seed: seeds.child("corrupt").root(),
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_quiet(&self) -> bool {
        self.gap_s.is_none()
            && self.abort_s.is_none()
            && self.panic.is_none()
            && self.corrupt_rate == 0.0
    }
}

/// What a [`FaultInjector`] did to one session attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Records the simulator emitted.
    pub seen: u64,
    /// Records forwarded to the inner sink.
    pub forwarded: u64,
    /// Records dropped inside a collector gap.
    pub dropped_gap: u64,
    /// Records dropped after a session abort.
    pub dropped_abort: u64,
    /// Records whose measurement fields were NaN-corrupted.
    pub corrupted: u64,
}

impl FaultStats {
    /// Fraction of emitted records that survived into the sink
    /// (`1.0` for an empty session).
    pub fn coverage(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            self.forwarded as f64 / self.seen as f64
        }
    }
}

/// A [`SlotSink`] adapter that applies a [`FaultPlan`] to the record
/// stream on its way into `inner`: drops gap/abort spans, corrupts
/// injected records, and panics where the plan says a worker dies.
///
/// The injector sits *outside* the simulator, so the simulated radio
/// stays untouched — faults corrupt the *measurement* of the session,
/// exactly like the paper's collector failures.
pub struct FaultInjector<'a, S: SlotSink> {
    inner: &'a mut S,
    plan: &'a FaultPlan,
    /// Which attempt at this session this is (0 = first try).
    attempt: u32,
    corrupt_rng: Option<ChaCha12Rng>,
    aborted: bool,
    stats: FaultStats,
}

impl<'a, S: SlotSink> FaultInjector<'a, S> {
    /// Wrap `inner` for one attempt at a session.
    pub fn new(inner: &'a mut S, plan: &'a FaultPlan, attempt: u32) -> Self {
        let corrupt_rng = (plan.corrupt_rate > 0.0)
            .then(|| SeedTree::new(plan.corrupt_seed).stream("records"));
        FaultInjector { inner, plan, attempt, corrupt_rng, aborted: false, stats: FaultStats::default() }
    }

    /// What was injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

impl<S: SlotSink> SlotSink for FaultInjector<'_, S> {
    fn push(&mut self, kpi: &SlotKpi) {
        self.stats.seen += 1;

        if let Some(p) = self.plan.panic {
            if self.attempt < p.attempts && kpi.time_s >= p.at_s {
                obs::registry().counter("fault.injected_panics").inc();
                panic!(
                    "injected worker panic at t={:.4}s (attempt {} of {} planned)",
                    kpi.time_s, self.attempt, p.attempts
                );
            }
        }
        if let Some(abort_s) = self.plan.abort_s {
            if self.aborted || kpi.time_s >= abort_s {
                if !self.aborted {
                    self.aborted = true;
                    obs::registry().counter("fault.aborted_sessions").inc();
                }
                self.stats.dropped_abort += 1;
                return;
            }
        }
        if let Some((start, end)) = self.plan.gap_s {
            if kpi.time_s >= start && kpi.time_s < end {
                self.stats.dropped_gap += 1;
                obs::registry().counter("fault.gap_records").inc();
                return;
            }
        }
        if let Some(rng) = self.corrupt_rng.as_mut() {
            if unit(rng.next_u64()) < self.plan.corrupt_rate {
                let mut corrupted = *kpi;
                corrupted.sinr_db = f64::NAN;
                corrupted.rsrp_dbm = f64::NAN;
                corrupted.rsrq_db = f64::NAN;
                self.stats.corrupted += 1;
                self.stats.forwarded += 1;
                obs::registry().counter("fault.corrupted_records").inc();
                self.inner.push(&corrupted);
                return;
            }
        }
        self.stats.forwarded += 1;
        self.inner.push(kpi);
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

/// One attempt at a session under a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSessionRun {
    /// The (possibly gapped, aborted or corrupted) session result.
    pub result: SessionResult,
    /// What the injector did to the record stream.
    pub stats: FaultStats,
}

/// Run one session attempt under `config`, materialising the surviving
/// trace. Panics when the plan's [`PanicPlan`] covers `attempt` — callers
/// go through [`crate::executor::Executor::map_resilient`], which catches
/// and retries.
pub fn run_session_with_faults(
    spec: SessionSpec,
    config: &FaultConfig,
    attempt: u32,
) -> FaultSessionRun {
    let plan = FaultPlan::for_spec(&spec, config);
    let mut trace = KpiTrace::new();
    let stats = {
        let mut injector = FaultInjector::new(&mut trace, &plan, attempt);
        SessionResult::run_with_sink(spec, &mut injector);
        injector.stats()
    };
    FaultSessionRun { result: SessionResult { spec, trace }, stats }
}

/// Run one session attempt under `config`, streaming survivors into
/// `sink` (the bounded-memory path). Returns the injector's stats.
pub fn run_session_with_faults_into<S: SlotSink>(
    spec: SessionSpec,
    config: &FaultConfig,
    attempt: u32,
    sink: &mut S,
) -> FaultStats {
    let plan = FaultPlan::for_spec(&spec, config);
    let mut injector = FaultInjector::new(sink, &plan, attempt);
    SessionResult::run_with_sink(spec, &mut injector);
    injector.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use operators::Operator;
    use ran::kpi::Direction;

    fn spec(seed: u64) -> SessionSpec {
        SessionSpec::stationary(Operator::VodafoneSpain, 0, 1.0, seed)
    }

    const CHAOS: FaultConfig =
        FaultConfig { gap_rate: 0.5, abort_rate: 0.3, corrupt_rate: 0.02, panic_rate: 0.3 };

    #[test]
    fn quiet_config_yields_quiet_plan() {
        let plan = FaultPlan::for_spec(&spec(1), &FaultConfig::default());
        assert!(plan.is_quiet());
        assert_eq!(plan, FaultPlan::quiet());
    }

    #[test]
    fn plans_are_pure_functions_of_seed_and_config() {
        for seed in 0..64 {
            let a = FaultPlan::for_spec(&spec(seed), &CHAOS);
            let b = FaultPlan::for_spec(&spec(seed), &CHAOS);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn rates_gate_their_own_fault_only() {
        // Enabling the gap must not move the abort/panic draws: the same
        // seed with gap_rate raised produces the identical abort/panic
        // sub-plan.
        for seed in 0..64 {
            let gaps_only = FaultConfig { gap_rate: 1.0, ..FaultConfig::default() };
            let everything = FaultConfig { gap_rate: 1.0, ..CHAOS };
            let a = FaultPlan::for_spec(&spec(seed), &gaps_only);
            let b = FaultPlan::for_spec(&spec(seed), &everything);
            assert_eq!(a.gap_s, b.gap_s, "seed {seed}: abort/panic rates moved the gap span");
        }
    }

    #[test]
    fn quiet_injection_is_a_no_op() {
        let healthy = SessionResult::run(spec(7));
        let run = run_session_with_faults(spec(7), &FaultConfig::default(), 0);
        assert_eq!(run.result, healthy);
        assert_eq!(run.stats.seen, run.stats.forwarded);
        assert_eq!(run.stats.coverage(), 1.0);
    }

    #[test]
    fn gap_drops_a_contiguous_span() {
        let config = FaultConfig { gap_rate: 1.0, ..FaultConfig::default() };
        let healthy = SessionResult::run(spec(3));
        let run = run_session_with_faults(spec(3), &config, 0);
        assert!(run.stats.dropped_gap > 0, "gap_rate=1 must drop records");
        assert_eq!(run.stats.forwarded as usize, run.result.trace.len());
        assert!(run.result.trace.len() < healthy.trace.len());
        // The dropped records form one time span: no surviving record
        // falls inside the planned gap.
        let plan = FaultPlan::for_spec(&spec(3), &config);
        let (start, end) = plan.gap_s.expect("gap planned");
        assert!(run.result.trace.iter().all(|r| r.time_s < start || r.time_s >= end));
    }

    #[test]
    fn abort_truncates_the_trace() {
        let config = FaultConfig { abort_rate: 1.0, ..FaultConfig::default() };
        let run = run_session_with_faults(spec(5), &config, 0);
        let plan = FaultPlan::for_spec(&spec(5), &config);
        let abort_s = plan.abort_s.expect("abort planned");
        assert!(run.stats.dropped_abort > 0);
        assert!(run.result.trace.iter().all(|r| r.time_s < abort_s));
        assert!(run.stats.coverage() < 1.0);
    }

    #[test]
    fn corruption_nans_measurement_fields_only() {
        let config = FaultConfig { corrupt_rate: 0.1, ..FaultConfig::default() };
        let healthy = SessionResult::run(spec(11));
        let run = run_session_with_faults(spec(11), &config, 0);
        assert!(run.stats.corrupted > 0, "10% corruption over a 1 s session must hit");
        assert_eq!(run.result.trace.len(), healthy.trace.len(), "corruption never drops records");
        let nan_records = run.result.trace.iter().filter(|r| r.sinr_db.is_nan()).count();
        assert_eq!(nan_records as u64, run.stats.corrupted);
        // Payload fields are untouched: throughput is unchanged.
        assert_eq!(
            run.result.trace.mean_throughput_mbps(Direction::Dl),
            healthy.trace.mean_throughput_mbps(Direction::Dl)
        );
    }

    #[test]
    fn planned_panic_fires_then_heals() {
        let config = FaultConfig { panic_rate: 1.0, ..FaultConfig::default() };
        let plan = FaultPlan::for_spec(&spec(2), &config);
        let p = plan.panic.expect("panic planned");
        let panicked = std::panic::catch_unwind(|| run_session_with_faults(spec(2), &config, 0));
        assert!(panicked.is_err(), "attempt 0 must panic");
        // The attempt past the planned count completes.
        let healed = run_session_with_faults(spec(2), &config, p.attempts);
        assert!(!healed.result.trace.is_empty());
    }

    #[test]
    fn injected_panics_are_deterministic_across_attempt_replays() {
        let config = FaultConfig { panic_rate: 1.0, ..FaultConfig::default() };
        let a = std::panic::catch_unwind(|| run_session_with_faults(spec(2), &config, 0))
            .expect_err("attempt 0 panics");
        let b = std::panic::catch_unwind(|| run_session_with_faults(spec(2), &config, 0))
            .expect_err("replay panics identically");
        let msg = |p: Box<dyn std::any::Any + Send>| {
            p.downcast_ref::<String>().cloned().unwrap_or_default()
        };
        assert_eq!(msg(a), msg(b));
    }
}
