//! Cell-load sweeps: throughput and fairness versus the number of
//! contending UEs (the §5.2 / Fig. 14 mechanism pushed from 2 users to
//! 10k+).
//!
//! The paper demonstrates the *two*-user case empirically — simultaneous
//! iPerf runs roughly halve per-UE throughput because the scheduler
//! splits the cell's RBs. [`CellLoadSweep`] generalises that experiment:
//! one [`ran::cell::CellSim`] per load point, N full-buffer UEs cycling
//! through a fixed ring of distances, KPIs reduced *during* the run by an
//! O(1)-per-record sink so memory stays bounded at any N. Each point
//! derives its seeds from `base_seed → ("load", index)`, so a sweep is a
//! pure function of its spec — byte-identical across
//! [`Executor`] thread counts (`tests/determinism.rs`).
//!
//! Outputs per point: aggregate cell DL throughput, per-UE mean / min /
//! max, and Jain's fairness index over per-UE throughputs — the
//! throughput-vs-load and fairness-vs-load curves of EXPERIMENTS.md.

use crate::executor::Executor;
use radio_channel::rng::SeedTree;
use ran::cell::{CellParams, CellSim, CellSink, UeSpec};
use ran::kpi::{Direction, SlotKpi};
use ran::scheduler::SchedulerPolicy;
use serde::{Deserialize, Serialize};

/// The ring of UE distances (metres) a load point cycles through — the
/// same serviceable spots the cell engine's own tests use, spanning
/// near-cell to cell-edge conditions.
pub const SPOT_DISTANCES_M: [f64; 8] = [45.0, 70.0, 95.0, 117.0, 60.0, 85.0, 110.0, 135.0];

/// Specification of a cell-load sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellLoadSweep {
    /// UE counts to sweep (one simulated cell per entry).
    pub ue_counts: Vec<usize>,
    /// Slots per load point (0.5 ms each at the mid-band numerology).
    pub slots: u64,
    /// Scheduling policy under test.
    pub policy: SchedulerPolicy,
    /// Carrier bandwidth in MHz (60 → 162 RBs, 90 → 245 RBs).
    pub bandwidth_mhz: u32,
    /// Root seed; point `i` uses the `("load", i)` subtree.
    pub base_seed: u64,
}

impl CellLoadSweep {
    /// The EXPERIMENTS.md configuration: proportional fair on a 90 MHz
    /// carrier, 1 → 10 240 UEs doubling per point, 4 000 slots (2 s).
    pub fn paper_default(base_seed: u64) -> CellLoadSweep {
        CellLoadSweep {
            ue_counts: vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 10_240],
            slots: 4_000,
            policy: SchedulerPolicy::ProportionalFair,
            bandwidth_mhz: 90,
            base_seed,
        }
    }

    /// Run every load point, parallelised over points. Results are in
    /// `ue_counts` order and independent of the thread count: each point
    /// is a self-seeded, self-contained simulation.
    pub fn run(&self, executor: &Executor) -> Vec<CellLoadPoint> {
        let indexed: Vec<(usize, usize)> = self.ue_counts.iter().copied().enumerate().collect();
        executor.map(&indexed, |&(index, n_ues)| self.run_point(index, n_ues))
    }

    /// Run the single load point `index` with `n_ues` UEs.
    pub fn run_point(&self, index: usize, n_ues: usize) -> CellLoadPoint {
        let params = CellParams::midband(self.bandwidth_mhz, self.policy);
        let duration_s = self.slots as f64 * params.cell.slot_s();
        let ues: Vec<UeSpec> = (0..n_ues)
            .map(|i| UeSpec::at(SPOT_DISTANCES_M[i % SPOT_DISTANCES_M.len()], 0.0))
            .collect();
        let seeds = SeedTree::new(self.base_seed).child_indexed("load", index as u64);
        let mut sim = CellSim::new(params, &ues, &seeds);
        let mut stats = CellLoadStats::new(n_ues);
        sim.run_into(self.slots, &mut stats);
        stats.into_point(n_ues, duration_s)
    }
}

/// Streaming per-UE reduction: O(1) work per KPI record, O(N) memory —
/// no trace is ever materialised, which is what keeps a 10k-UE point
/// inside a fixed footprint.
struct CellLoadStats {
    dl_bits: Vec<u64>,
    dl_scheduled: Vec<u64>,
    dl_prb: u64,
    dl_records: u64,
}

impl CellLoadStats {
    fn new(n_ues: usize) -> CellLoadStats {
        CellLoadStats {
            dl_bits: vec![0; n_ues],
            dl_scheduled: vec![0; n_ues],
            dl_prb: 0,
            dl_records: 0,
        }
    }

    fn into_point(self, n_ues: usize, duration_s: f64) -> CellLoadPoint {
        let per_ue_mbps: Vec<f64> =
            self.dl_bits.iter().map(|&b| b as f64 / duration_s / 1e6).collect();
        let cell = per_ue_mbps.iter().sum::<f64>();
        let min = per_ue_mbps.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_ue_mbps.iter().copied().fold(0.0f64, f64::max);
        CellLoadPoint {
            ues: n_ues,
            cell_dl_mbps: cell,
            mean_ue_dl_mbps: cell / n_ues as f64,
            min_ue_dl_mbps: if min.is_finite() { min } else { 0.0 },
            max_ue_dl_mbps: max,
            jain_fairness: analysis::jain_fairness(&per_ue_mbps),
            served_ues: self.dl_scheduled.iter().filter(|&&n| n > 0).count(),
            mean_prb_per_dl_slot: self.dl_prb as f64 / self.dl_records.max(1) as f64,
        }
    }
}

impl CellSink for CellLoadStats {
    fn push(&mut self, ue: u32, kpi: &SlotKpi) {
        if kpi.direction == Direction::Dl {
            let ue = ue as usize;
            self.dl_bits[ue] += u64::from(kpi.delivered_bits);
            if kpi.scheduled {
                self.dl_scheduled[ue] += 1;
                self.dl_prb += u64::from(kpi.n_prb);
            }
            self.dl_records += 1;
        }
    }
}

/// One point of the throughput/fairness-vs-load curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellLoadPoint {
    /// Number of contending UEs.
    pub ues: usize,
    /// Aggregate DL goodput of the cell, Mbps.
    pub cell_dl_mbps: f64,
    /// Mean per-UE DL goodput, Mbps.
    pub mean_ue_dl_mbps: f64,
    /// Worst single UE, Mbps.
    pub min_ue_dl_mbps: f64,
    /// Best single UE, Mbps.
    pub max_ue_dl_mbps: f64,
    /// Jain's fairness index over per-UE goodputs (1 = perfectly even).
    pub jain_fairness: f64,
    /// UEs scheduled at least once during the run.
    pub served_ues: usize,
    /// Mean PRBs granted per scheduled-or-not DL record — tracks how
    /// thin the per-UE slices get as load grows.
    pub mean_prb_per_dl_slot: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(ue_counts: Vec<usize>, policy: SchedulerPolicy) -> CellLoadSweep {
        CellLoadSweep { ue_counts, slots: 3_000, policy, bandwidth_mhz: 60, base_seed: 19 }
    }

    /// The Fig. 14 finding at sweep level: going 1 → 2 UEs roughly halves
    /// per-UE throughput, and the cell aggregate stays in the same band
    /// (the cell was already saturated by one full-buffer UE).
    #[test]
    fn two_ues_halve_per_ue_throughput() {
        let points =
            sweep(vec![1, 2], SchedulerPolicy::EqualShare).run(&Executor::sequential());
        let solo = points[0].mean_ue_dl_mbps;
        let shared = points[1].mean_ue_dl_mbps;
        assert!(shared < solo * 0.65, "shared {shared} vs solo {solo}");
        assert!(shared > solo * 0.30, "shared {shared} vs solo {solo}");
        assert!(points[1].cell_dl_mbps > solo * 0.6, "aggregate collapsed");
    }

    #[test]
    fn mean_per_ue_throughput_decreases_with_load() {
        let points = sweep(vec![1, 4, 16, 64], SchedulerPolicy::ProportionalFair)
            .run(&Executor::sequential());
        for pair in points.windows(2) {
            assert!(
                pair[1].mean_ue_dl_mbps < pair[0].mean_ue_dl_mbps,
                "per-UE rate must fall with load: {:?} -> {:?}",
                pair[0],
                pair[1]
            );
        }
        // All points serve everyone (every spot in the ring is covered).
        for p in &points {
            assert_eq!(p.served_ues, p.ues, "{} UEs, {} served", p.ues, p.served_ues);
        }
    }

    #[test]
    fn proportional_fair_beats_max_cqi_on_jain_index() {
        let n = vec![8];
        let pf = sweep(n.clone(), SchedulerPolicy::ProportionalFair)
            .run(&Executor::sequential());
        let greedy = sweep(n, SchedulerPolicy::MaxCqi).run(&Executor::sequential());
        assert!(
            pf[0].jain_fairness > greedy[0].jain_fairness + 0.2,
            "PF {} vs max-CQI {}",
            pf[0].jain_fairness,
            greedy[0].jain_fairness
        );
        assert!(pf[0].jain_fairness > 0.5, "PF Jain {}", pf[0].jain_fairness);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let spec = sweep(vec![1, 2, 5, 9], SchedulerPolicy::ProportionalFair);
        let sequential = spec.run(&Executor::sequential());
        let parallel = spec.run(&Executor::new(4));
        let a = serde_json::to_string(&sequential).unwrap();
        let b = serde_json::to_string(&parallel).unwrap();
        assert_eq!(a, b);
    }
}
