#![warn(missing_docs)]

//! # measure — the measurement-campaign framework (paper §2)
//!
//! Orchestrates the simulated equivalent of the paper's 5600+ minutes of
//! experiments: sessions ([`session`]) bind an operator profile to a
//! mobility pattern, a city spot, a traffic workload and a seed;
//! [`iperf`] provides the saturating DL/UL transfer tests; [`latency`]
//! the §4.3 user-plane latency probes; [`campaign`] batches sessions the
//! way the study did (multiple spots, repeated time slots) and produces
//! the Table 1 bookkeeping; [`loadsweep`] sweeps one loaded cell from 1
//! to 10k+ contending UEs for the throughput/fairness-vs-load curves.
//!
//! Every result is bit-reproducible from `(operator, session spec, seed)`.

pub mod campaign;
pub mod dataset;
pub mod executor;
pub mod fault;
pub mod iperf;
pub mod latency;
pub mod loadsweep;
pub mod session;

pub use campaign::{
    Campaign, CampaignOutcome, CampaignTotals, SessionCoverage, SessionFailure, StreamingOutcome,
    DEFAULT_RETRY_BUDGET,
};
pub use dataset::{trace_to_csv, Dataset, DatasetManifest, LoadError, SessionRecord};
pub use executor::{Executor, ExecutorError, ItemFailure, ResilientOutcome, THREADS_ENV};
pub use fault::{FaultConfig, FaultPlan, FaultStats};
pub use iperf::{nr_only, run_iperf};
pub use latency::{measure_latency, LatencyError, LatencyResult};
pub use loadsweep::{CellLoadPoint, CellLoadSweep, SPOT_DISTANCES_M};
pub use session::{MobilityKind, SessionResult, SessionSpec};
