#![warn(missing_docs)]

//! # measure — the measurement-campaign framework (paper §2)
//!
//! Orchestrates the simulated equivalent of the paper's 5600+ minutes of
//! experiments: sessions ([`session`]) bind an operator profile to a
//! mobility pattern, a city spot, a traffic workload and a seed;
//! [`iperf`] provides the saturating DL/UL transfer tests; [`latency`]
//! the §4.3 user-plane latency probes; [`campaign`] batches sessions the
//! way the study did (multiple spots, repeated time slots) and produces
//! the Table 1 bookkeeping.
//!
//! Every result is bit-reproducible from `(operator, session spec, seed)`.

pub mod campaign;
pub mod dataset;
pub mod executor;
pub mod iperf;
pub mod latency;
pub mod session;

pub use campaign::{Campaign, CampaignTotals};
pub use dataset::{trace_to_csv, Dataset, DatasetManifest};
pub use executor::{Executor, ExecutorError, THREADS_ENV};
pub use iperf::{nr_only, run_iperf};
pub use session::{MobilityKind, SessionResult, SessionSpec};
