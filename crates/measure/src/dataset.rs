//! Dataset export/import — the simulated counterpart of the paper's
//! artifact release ("we make our dataset, artifacts, source code,
//! processing scripts, plots and results publicly available").
//!
//! A [`Dataset`] is a directory of JSON files: one `manifest.json`
//! describing the campaign, plus one `sessions/<name>.json` per session
//! holding the spec and the full slot-level KPI trace. Every figure can
//! be recomputed from an exported dataset without re-running the
//! simulator — exactly how the paper's artifact consumers work with its
//! released captures.

use crate::session::{SessionResult, SessionSpec};
use ran::kpi::{KpiTrace, CHUNK_RECORDS};
use serde::{Deserialize, Serialize, Value};
use std::io;
use std::path::{Path, PathBuf};

/// Manifest of an exported dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatasetManifest {
    /// Free-text description of the campaign.
    pub description: String,
    /// Session file names (relative to `sessions/`), in export order.
    pub sessions: Vec<String>,
    /// Total records across all sessions.
    pub total_records: u64,
    /// Format version, for forward compatibility.
    pub version: u32,
}

/// One exported session: the spec that produced it plus its trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRecord {
    /// The session specification (operator, mobility, seed, …).
    pub spec: SessionSpec,
    /// The slot-level KPI trace.
    pub trace: KpiTrace,
}

/// A dataset rooted at a directory.
#[derive(Debug, Clone)]
pub struct Dataset {
    root: PathBuf,
}

/// One named, typed reason a dataset load lost data — the currency of
/// [`Dataset::load_all_lossy`]. The paper's artifact pipeline faced all
/// of these in the raw XCAL captures (truncated files, collector
/// versions newer than the parser, files listed but never flushed) and
/// salvaged what it could; so does ours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// `manifest.json` is absent (or unreadable at the I/O level).
    MissingManifest {
        /// The manifest path that could not be read.
        path: PathBuf,
        /// The underlying I/O error.
        detail: String,
    },
    /// `manifest.json` exists but does not parse as a manifest.
    MalformedManifest {
        /// The parse error.
        detail: String,
    },
    /// The manifest declares a format version newer than this build
    /// understands. Sessions are still attempted best-effort.
    UnknownVersion {
        /// The version the manifest declares.
        found: u32,
        /// The newest version this build writes.
        supported: u32,
    },
    /// A session file named by the manifest is missing on disk.
    MissingSession {
        /// The manifest entry.
        name: String,
    },
    /// A session file exists but does not parse — truncation lands here.
    MalformedSession {
        /// The manifest entry.
        name: String,
        /// The parse error.
        detail: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::MissingManifest { path, detail } => {
                write!(f, "manifest {} unreadable: {detail}", path.display())
            }
            LoadError::MalformedManifest { detail } => {
                write!(f, "manifest does not parse: {detail}")
            }
            LoadError::UnknownVersion { found, supported } => {
                write!(f, "dataset version {found} is newer than supported {supported}")
            }
            LoadError::MissingSession { name } => {
                write!(f, "session file {name} named by the manifest is missing")
            }
            LoadError::MalformedSession { name, detail } => {
                write!(f, "session file {name} does not parse: {detail}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Current manifest format version. Version 2 stores session traces in
/// the columnar wire form (one concatenated array per KPI column, flag
/// columns bit-packed into `u64` words); version 1 stored an array of row
/// objects. [`Dataset::load_session`] reads both.
pub const DATASET_VERSION: u32 = 2;

impl Dataset {
    /// Open (or designate) a dataset directory.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        Dataset { root: root.into() }
    }

    /// The dataset root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn sessions_dir(&self) -> PathBuf {
        self.root.join("sessions")
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// The canonical session file name: export index, operator acronym,
    /// seed.
    pub fn session_file_name(index: usize, result: &SessionResult) -> String {
        format!(
            "{:03}_{}_seed{}.json",
            index,
            result.spec.operator.acronym().replace(['[', ']'], ""),
            result.spec.seed
        )
    }

    /// Canonical JSON encoding of one session record. Serialises straight
    /// from the borrowed result — the columnar trace is encoded column by
    /// column, never cloned.
    fn encode_session(result: &SessionResult) -> io::Result<String> {
        let record = Value::Object(vec![
            ("spec".to_string(), result.spec.to_value()),
            ("trace".to_string(), result.trace.to_value()),
        ]);
        serde_json::to_string(&record).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// A sibling of `root` carrying the given suffix — staging and
    /// tombstone directories live next to the dataset, never inside it.
    fn sibling(&self, suffix: &str) -> PathBuf {
        let mut s = self.root.clone().into_os_string();
        s.push(suffix);
        PathBuf::from(s)
    }

    /// Export a batch of session results, writing the manifest and one
    /// JSON file per session. Returns the manifest.
    ///
    /// The export is **atomic at the directory level**: everything is
    /// staged into a `<root>.partial-<pid>` sibling first and swapped
    /// into place only once the manifest is on disk. A failure mid-export
    /// (full disk, killed process) leaves the previous dataset — or
    /// nothing — at `root`, never a torn half-export that `load_all`
    /// would trip over; a previous export at `root` is replaced
    /// wholesale, so stale session files from an older, larger campaign
    /// cannot shadow the new manifest.
    pub fn export(
        &self,
        description: &str,
        results: &[SessionResult],
    ) -> io::Result<DatasetManifest> {
        let _span = obs::span("dataset.export");
        let staging = self.sibling(&format!(".partial-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&staging);
        let staged = Dataset::at(&staging);
        let manifest = (|| -> io::Result<DatasetManifest> {
            std::fs::create_dir_all(staged.sessions_dir())?;
            let mut manifest = DatasetManifest {
                description: description.to_string(),
                sessions: Vec::new(),
                total_records: 0,
                version: DATASET_VERSION,
            };
            for (i, r) in results.iter().enumerate() {
                let name = Dataset::session_file_name(i, r);
                std::fs::write(staged.sessions_dir().join(&name), Dataset::encode_session(r)?)?;
                manifest.total_records += r.trace.len() as u64;
                manifest.sessions.push(name);
            }
            let json = serde_json::to_string_pretty(&manifest)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            std::fs::write(staged.manifest_path(), json)?;
            Ok(manifest)
        })()
        .inspect_err(|_| {
            let _ = std::fs::remove_dir_all(&staging);
        })?;

        // Swap the finished staging directory into place. An existing
        // dataset moves aside first so the rename into `root` cannot
        // collide; the tombstone is deleted once the swap lands.
        let stale = self.sibling(&format!(".stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&stale);
        let swap = (|| -> io::Result<()> {
            if self.root.symlink_metadata().is_ok() {
                std::fs::rename(&self.root, &stale)?;
            }
            std::fs::rename(&staging, &self.root)
        })()
        .inspect_err(|_| {
            let _ = std::fs::remove_dir_all(&staging);
        });
        swap?;
        let _ = std::fs::remove_dir_all(&stale);

        let reg = obs::registry();
        reg.counter("dataset.exports").inc();
        reg.counter("dataset.exported_records").add(manifest.total_records);
        Ok(manifest)
    }

    /// Write one session into `sessions/` **incrementally** (no manifest
    /// involved) — the checkpoint path. The file is written to a `.tmp`
    /// sibling and renamed into place, so a kill mid-write never leaves a
    /// torn session file under its final name. Returns the file name.
    pub fn write_session(&self, index: usize, result: &SessionResult) -> io::Result<String> {
        std::fs::create_dir_all(self.sessions_dir())?;
        let name = Dataset::session_file_name(index, result);
        let tmp = self.sessions_dir().join(format!("{name}.tmp"));
        std::fs::write(&tmp, Dataset::encode_session(result)?)?;
        std::fs::rename(&tmp, self.sessions_dir().join(&name))?;
        obs::registry().counter("dataset.checkpointed_sessions").inc();
        Ok(name)
    }

    /// Read the manifest.
    pub fn manifest(&self) -> io::Result<DatasetManifest> {
        let json = std::fs::read_to_string(self.manifest_path())?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Load one session by its manifest name.
    pub fn load_session(&self, name: &str) -> io::Result<SessionRecord> {
        let json = std::fs::read_to_string(self.sessions_dir().join(name))?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Load every session in manifest order.
    pub fn load_all(&self) -> io::Result<Vec<SessionRecord>> {
        self.manifest()?.sessions.iter().map(|n| self.load_session(n)).collect()
    }

    /// Load everything salvageable, in manifest order, with one typed
    /// [`LoadError`] per piece of data that could not be recovered.
    ///
    /// Unlike the all-or-nothing [`Dataset::load_all`], a truncated
    /// session file, a manifest entry whose file vanished, or a manifest
    /// from a newer format version each cost only what they name — every
    /// healthy session still loads. An unreadable or unparsable manifest
    /// is terminal (there is nothing to walk) and yields a single error.
    pub fn load_all_lossy(&self) -> (Vec<SessionRecord>, Vec<LoadError>) {
        let _span = obs::span("dataset.load_lossy");
        let mut errors = Vec::new();
        let manifest = match std::fs::read_to_string(self.manifest_path()) {
            Ok(json) => match serde_json::from_str::<DatasetManifest>(&json) {
                Ok(m) => m,
                Err(e) => {
                    errors.push(LoadError::MalformedManifest { detail: e.to_string() });
                    return (Vec::new(), errors);
                }
            },
            Err(e) => {
                errors.push(LoadError::MissingManifest {
                    path: self.manifest_path(),
                    detail: e.to_string(),
                });
                return (Vec::new(), errors);
            }
        };
        if manifest.version > DATASET_VERSION {
            // Newer collector than parser: note it, then salvage
            // best-effort — per-session sniffing may still understand
            // the files.
            errors.push(LoadError::UnknownVersion {
                found: manifest.version,
                supported: DATASET_VERSION,
            });
        }
        let mut records = Vec::with_capacity(manifest.sessions.len());
        for name in &manifest.sessions {
            match std::fs::read_to_string(self.sessions_dir().join(name)) {
                Ok(json) => match serde_json::from_str::<SessionRecord>(&json) {
                    Ok(record) => records.push(record),
                    Err(e) => errors.push(LoadError::MalformedSession {
                        name: name.clone(),
                        detail: e.to_string(),
                    }),
                },
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    errors.push(LoadError::MissingSession { name: name.clone() });
                }
                Err(e) => errors.push(LoadError::MalformedSession {
                    name: name.clone(),
                    detail: e.to_string(),
                }),
            }
        }
        let reg = obs::registry();
        reg.counter("dataset.salvaged_sessions").add(records.len() as u64);
        reg.counter("dataset.load_errors").add(errors.len() as u64);
        (records, errors)
    }
}

/// Stream a KPI trace as CSV into a writer, one columnar chunk at a time:
/// rows are formatted into a buffer that is flushed every
/// [`CHUNK_RECORDS`] records, so exporting a multi-minute trace never
/// holds more than one chunk's worth of text in memory.
pub fn write_csv<W: io::Write>(trace: &KpiTrace, writer: &mut W) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::with_capacity(CHUNK_RECORDS * 96 + 128);
    buf.push_str(
        "slot,time_s,carrier,direction,scheduled,n_prb,n_re,mcs,modulation,layers,\
         tbs_bits,delivered_bits,is_retx,block_error,cqi,sinr_db,rsrp_dbm,rsrq_db,serving_site\n",
    );
    for (i, r) in trace.iter().enumerate() {
        let _ = writeln!(
            buf,
            "{},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{}",
            r.slot,
            r.time_s,
            r.carrier,
            match r.direction {
                ran::kpi::Direction::Dl => "DL",
                ran::kpi::Direction::Ul => "UL",
            },
            r.scheduled,
            r.n_prb,
            r.n_re,
            r.mcs,
            r.modulation,
            r.layers,
            r.tbs_bits,
            r.delivered_bits,
            r.is_retx,
            r.block_error,
            r.cqi,
            r.sinr_db,
            r.rsrp_dbm,
            r.rsrq_db,
            r.serving_site,
        );
        if (i + 1) % CHUNK_RECORDS == 0 {
            writer.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    writer.write_all(buf.as_bytes())?;
    writer.flush()
}

/// Render a KPI trace as CSV (one row per slot record) — the
/// spreadsheet-friendly form the paper's artifact repository ships next
/// to its raw captures. Convenience wrapper over [`write_csv`].
pub fn trace_to_csv(trace: &KpiTrace) -> String {
    let mut out = Vec::with_capacity(trace.len() * 96 + 128);
    write_csv(trace, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("CSV rows are ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use operators::Operator;
    use ran::kpi::Direction;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("midband5g-dataset-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_traces_exactly() {
        let results: Vec<SessionResult> = (0..2)
            .map(|i| {
                SessionResult::run(SessionSpec::stationary(Operator::VodafoneGermany, i, 1.0, 60 + i as u64))
            })
            .collect();
        let ds = Dataset::at(tmpdir("roundtrip"));
        let manifest = ds.export("test campaign", &results).unwrap();
        assert_eq!(manifest.sessions.len(), 2);
        assert_eq!(manifest.version, DATASET_VERSION);

        let loaded = ds.load_all().unwrap();
        assert_eq!(loaded.len(), 2);
        for (orig, back) in results.iter().zip(&loaded) {
            assert_eq!(orig.spec.seed, back.spec.seed);
            assert_eq!(orig.trace.len(), back.trace.len());
            // Figures recompute identically from the export.
            assert_eq!(
                orig.trace.mean_throughput_mbps(Direction::Dl),
                back.trace.mean_throughput_mbps(Direction::Dl)
            );
            assert_eq!(orig.trace.layer_shares(), back.trace.layer_shares());
        }
        std::fs::remove_dir_all(ds.root()).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let ds = Dataset::at(tmpdir("missing"));
        assert!(ds.manifest().is_err());
        assert!(ds.load_session("nope.json").is_err());
    }

    #[test]
    fn csv_export_shape() {
        let r = SessionResult::run(SessionSpec::stationary(Operator::VodafoneGermany, 0, 0.2, 4));
        let csv = trace_to_csv(&r.trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), r.trace.len() + 1, "header + one row per record");
        assert!(lines[0].starts_with("slot,time_s,carrier,direction"));
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        // Directions render as DL/UL.
        assert!(lines[1..].iter().all(|l| l.contains(",DL,") || l.contains(",UL,")));
    }

    #[test]
    fn record_counts_accumulate() {
        let results = vec![SessionResult::run(SessionSpec::stationary(
            Operator::AttUs,
            0,
            0.5,
            3,
        ))];
        let ds = Dataset::at(tmpdir("counts"));
        let manifest = ds.export("one", &results).unwrap();
        assert_eq!(manifest.total_records, results[0].trace.len() as u64);
        std::fs::remove_dir_all(ds.root()).unwrap();
    }

    #[test]
    fn v1_fixture_still_loads() {
        // A committed dataset exported before the columnar refactor:
        // row-object traces, version 1 manifest.
        let ds = Dataset::at(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1_dataset"));
        let manifest = ds.manifest().unwrap();
        assert_eq!(manifest.version, 1);
        let record = ds.load_session(&manifest.sessions[0]).unwrap();
        assert_eq!(record.trace.len(), 3);
        let first = record.trace.get(0).unwrap();
        assert_eq!(first.slot, 0);
        assert_eq!(first.modulation, ran::kpi::Modulation::Qam256);
        assert!(first.scheduled);
        assert_eq!(record.trace.iter().filter(|r| r.direction == Direction::Ul).count(), 1);
        // load_all follows the manifest the same way.
        assert_eq!(ds.load_all().unwrap().len(), manifest.sessions.len());
    }
}
