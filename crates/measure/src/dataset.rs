//! Dataset export/import — the simulated counterpart of the paper's
//! artifact release ("we make our dataset, artifacts, source code,
//! processing scripts, plots and results publicly available").
//!
//! A [`Dataset`] is a directory of JSON files: one `manifest.json`
//! describing the campaign, plus one `sessions/<name>.json` per session
//! holding the spec and the full slot-level KPI trace. Every figure can
//! be recomputed from an exported dataset without re-running the
//! simulator — exactly how the paper's artifact consumers work with its
//! released captures.

use crate::session::{SessionResult, SessionSpec};
use ran::kpi::{KpiTrace, CHUNK_RECORDS};
use serde::{Deserialize, Serialize, Value};
use std::io;
use std::path::{Path, PathBuf};

/// Manifest of an exported dataset.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DatasetManifest {
    /// Free-text description of the campaign.
    pub description: String,
    /// Session file names (relative to `sessions/`), in export order.
    pub sessions: Vec<String>,
    /// Total records across all sessions.
    pub total_records: u64,
    /// Format version, for forward compatibility.
    pub version: u32,
}

/// One exported session: the spec that produced it plus its trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRecord {
    /// The session specification (operator, mobility, seed, …).
    pub spec: SessionSpec,
    /// The slot-level KPI trace.
    pub trace: KpiTrace,
}

/// A dataset rooted at a directory.
#[derive(Debug, Clone)]
pub struct Dataset {
    root: PathBuf,
}

/// Current manifest format version. Version 2 stores session traces in
/// the columnar wire form (one concatenated array per KPI column, flag
/// columns bit-packed into `u64` words); version 1 stored an array of row
/// objects. [`Dataset::load_session`] reads both.
pub const DATASET_VERSION: u32 = 2;

impl Dataset {
    /// Open (or designate) a dataset directory.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        Dataset { root: root.into() }
    }

    /// The dataset root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn sessions_dir(&self) -> PathBuf {
        self.root.join("sessions")
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// Export a batch of session results, writing the manifest and one
    /// JSON file per session. Returns the manifest.
    pub fn export(
        &self,
        description: &str,
        results: &[SessionResult],
    ) -> io::Result<DatasetManifest> {
        let _span = obs::span("dataset.export");
        std::fs::create_dir_all(self.sessions_dir())?;
        let mut manifest = DatasetManifest {
            description: description.to_string(),
            sessions: Vec::new(),
            total_records: 0,
            version: DATASET_VERSION,
        };
        for (i, r) in results.iter().enumerate() {
            let name = format!(
                "{:03}_{}_seed{}.json",
                i,
                r.spec.operator.acronym().replace(['[', ']'], ""),
                r.spec.seed
            );
            // Serialize straight from the borrowed result — the columnar
            // trace is encoded column by column, never cloned.
            let record = Value::Object(vec![
                ("spec".to_string(), r.spec.to_value()),
                ("trace".to_string(), r.trace.to_value()),
            ]);
            let json = serde_json::to_string(&record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            std::fs::write(self.sessions_dir().join(&name), json)?;
            manifest.total_records += r.trace.len() as u64;
            manifest.sessions.push(name);
        }
        let json = serde_json::to_string_pretty(&manifest)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        std::fs::write(self.manifest_path(), json)?;
        let reg = obs::registry();
        reg.counter("dataset.exports").inc();
        reg.counter("dataset.exported_records").add(manifest.total_records);
        Ok(manifest)
    }

    /// Read the manifest.
    pub fn manifest(&self) -> io::Result<DatasetManifest> {
        let json = std::fs::read_to_string(self.manifest_path())?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Load one session by its manifest name.
    pub fn load_session(&self, name: &str) -> io::Result<SessionRecord> {
        let json = std::fs::read_to_string(self.sessions_dir().join(name))?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Load every session in manifest order.
    pub fn load_all(&self) -> io::Result<Vec<SessionRecord>> {
        self.manifest()?.sessions.iter().map(|n| self.load_session(n)).collect()
    }
}

/// Stream a KPI trace as CSV into a writer, one columnar chunk at a time:
/// rows are formatted into a buffer that is flushed every
/// [`CHUNK_RECORDS`] records, so exporting a multi-minute trace never
/// holds more than one chunk's worth of text in memory.
pub fn write_csv<W: io::Write>(trace: &KpiTrace, writer: &mut W) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut buf = String::with_capacity(CHUNK_RECORDS * 96 + 128);
    buf.push_str(
        "slot,time_s,carrier,direction,scheduled,n_prb,n_re,mcs,modulation,layers,\
         tbs_bits,delivered_bits,is_retx,block_error,cqi,sinr_db,rsrp_dbm,rsrq_db,serving_site\n",
    );
    for (i, r) in trace.iter().enumerate() {
        let _ = writeln!(
            buf,
            "{},{:.6},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{}",
            r.slot,
            r.time_s,
            r.carrier,
            match r.direction {
                ran::kpi::Direction::Dl => "DL",
                ran::kpi::Direction::Ul => "UL",
            },
            r.scheduled,
            r.n_prb,
            r.n_re,
            r.mcs,
            r.modulation,
            r.layers,
            r.tbs_bits,
            r.delivered_bits,
            r.is_retx,
            r.block_error,
            r.cqi,
            r.sinr_db,
            r.rsrp_dbm,
            r.rsrq_db,
            r.serving_site,
        );
        if (i + 1) % CHUNK_RECORDS == 0 {
            writer.write_all(buf.as_bytes())?;
            buf.clear();
        }
    }
    writer.write_all(buf.as_bytes())?;
    writer.flush()
}

/// Render a KPI trace as CSV (one row per slot record) — the
/// spreadsheet-friendly form the paper's artifact repository ships next
/// to its raw captures. Convenience wrapper over [`write_csv`].
pub fn trace_to_csv(trace: &KpiTrace) -> String {
    let mut out = Vec::with_capacity(trace.len() * 96 + 128);
    write_csv(trace, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("CSV rows are ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use operators::Operator;
    use ran::kpi::Direction;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("midband5g-dataset-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_traces_exactly() {
        let results: Vec<SessionResult> = (0..2)
            .map(|i| {
                SessionResult::run(SessionSpec::stationary(Operator::VodafoneGermany, i, 1.0, 60 + i as u64))
            })
            .collect();
        let ds = Dataset::at(tmpdir("roundtrip"));
        let manifest = ds.export("test campaign", &results).unwrap();
        assert_eq!(manifest.sessions.len(), 2);
        assert_eq!(manifest.version, DATASET_VERSION);

        let loaded = ds.load_all().unwrap();
        assert_eq!(loaded.len(), 2);
        for (orig, back) in results.iter().zip(&loaded) {
            assert_eq!(orig.spec.seed, back.spec.seed);
            assert_eq!(orig.trace.len(), back.trace.len());
            // Figures recompute identically from the export.
            assert_eq!(
                orig.trace.mean_throughput_mbps(Direction::Dl),
                back.trace.mean_throughput_mbps(Direction::Dl)
            );
            assert_eq!(orig.trace.layer_shares(), back.trace.layer_shares());
        }
        std::fs::remove_dir_all(ds.root()).unwrap();
    }

    #[test]
    fn missing_manifest_is_a_clean_error() {
        let ds = Dataset::at(tmpdir("missing"));
        assert!(ds.manifest().is_err());
        assert!(ds.load_session("nope.json").is_err());
    }

    #[test]
    fn csv_export_shape() {
        let r = SessionResult::run(SessionSpec::stationary(Operator::VodafoneGermany, 0, 0.2, 4));
        let csv = trace_to_csv(&r.trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), r.trace.len() + 1, "header + one row per record");
        assert!(lines[0].starts_with("slot,time_s,carrier,direction"));
        let cols = lines[0].split(',').count();
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
        }
        // Directions render as DL/UL.
        assert!(lines[1..].iter().all(|l| l.contains(",DL,") || l.contains(",UL,")));
    }

    #[test]
    fn record_counts_accumulate() {
        let results = vec![SessionResult::run(SessionSpec::stationary(
            Operator::AttUs,
            0,
            0.5,
            3,
        ))];
        let ds = Dataset::at(tmpdir("counts"));
        let manifest = ds.export("one", &results).unwrap();
        assert_eq!(manifest.total_records, results[0].trace.len() as u64);
        std::fs::remove_dir_all(ds.root()).unwrap();
    }

    #[test]
    fn v1_fixture_still_loads() {
        // A committed dataset exported before the columnar refactor:
        // row-object traces, version 1 manifest.
        let ds = Dataset::at(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/v1_dataset"));
        let manifest = ds.manifest().unwrap();
        assert_eq!(manifest.version, 1);
        let record = ds.load_session(&manifest.sessions[0]).unwrap();
        assert_eq!(record.trace.len(), 3);
        let first = record.trace.get(0).unwrap();
        assert_eq!(first.slot, 0);
        assert_eq!(first.modulation, ran::kpi::Modulation::Qam256);
        assert!(first.scheduled);
        assert_eq!(record.trace.iter().filter(|r| r.direction == Direction::Ul).count(), 1);
        // load_all follows the manifest the same way.
        assert_eq!(ds.load_all().unwrap().len(), manifest.sessions.len());
    }
}
