//! Per-operator user-plane latency experiments (paper §4.3, Fig. 11).
//!
//! Binds each operator's TDD frame structure to the probe model of
//! `ran::latency` and reports the BLER = 0 / BLER > 0 split.

use analysis::stats::BoxplotStats;
use operators::Operator;
use radio_channel::rng::SeedTree;
use ran::latency::{mean_total_ms, run_probes, LatencyProbeConfig, LatencySample};
use serde::{Deserialize, Serialize};

/// The Fig. 11 result for one operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyResult {
    /// The operator measured.
    pub operator: String,
    /// TDD pattern string driving the alignment delays.
    pub pattern: String,
    /// Mean user-plane delay with no retransmissions, ms.
    pub bler_zero_ms: f64,
    /// Mean user-plane delay with ≥ 1 retransmission, ms.
    pub bler_positive_ms: f64,
    /// Distribution of the BLER = 0 case.
    pub bler_zero_stats: BoxplotStats,
    /// Distribution of the BLER > 0 case.
    pub bler_positive_stats: BoxplotStats,
}

/// Why a latency experiment produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatencyError {
    /// Zero probes requested — there is no distribution to summarise.
    NoProbes {
        /// The operator the experiment was asked to measure.
        operator: String,
    },
}

impl std::fmt::Display for LatencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyError::NoProbes { operator } => {
                write!(f, "latency experiment for {operator} requested zero probes")
            }
        }
    }
}

impl std::error::Error for LatencyError {}

/// Run the latency experiment for one operator. FDD-primary operators use
/// the no-alignment FDD pseudo-pattern (their latency is processing-bound).
///
/// Errors with [`LatencyError::NoProbes`] when `probes == 0` — the
/// boxplot summaries are undefined over an empty sample set (previously a
/// bare `expect` panic deep in a campaign).
pub fn measure_latency(
    operator: Operator,
    probes: usize,
    seed: u64,
) -> Result<LatencyResult, LatencyError> {
    if probes == 0 {
        return Err(LatencyError::NoProbes { operator: operator.acronym().to_string() });
    }
    let profile = operator.profile();
    let pattern = profile
        .tdd_pattern()
        .cloned()
        .unwrap_or_else(nr_phy::tdd::TddPattern::fdd_downlink);
    let cfg = LatencyProbeConfig { slot_ms: profile.carriers[0].cell.slot_s() * 1e3, ..Default::default() };
    let seeds = SeedTree::new(seed).child(operator.acronym());
    let clean = run_probes(&pattern, &cfg, probes, Some(false), &seeds.child("bler0"));
    // "BLER > 0" in the paper's Fig. 11 is a lossy *episode*, not a forced
    // retransmission on every probe: draw per-leg failures at an elevated
    // block-error rate, so the mean rises by (roughly) the failure
    // probability times one HARQ exchange.
    let lossy_cfg = LatencyProbeConfig { p_block_error: 0.15, ..cfg };
    let retx = run_probes(&pattern, &lossy_cfg, probes, None, &seeds.child("bler1"));
    let totals = |s: &[LatencySample]| -> Vec<f64> { s.iter().map(|x| x.total_ms()).collect() };
    // Infallible from here: `probes > 0` was checked above and
    // `run_probes` returns one finite sample per probe, so the
    // five-number summaries always have input.
    let summarise = |s: &[LatencySample]| {
        BoxplotStats::from_samples(&totals(s))
            .expect("probes > 0 checked above and every sample is finite")
    };
    Ok(LatencyResult {
        operator: operator.acronym().to_string(),
        pattern: pattern.pattern_string(),
        bler_zero_ms: mean_total_ms(&clean),
        bler_positive_ms: mean_total_ms(&retx),
        bler_zero_stats: summarise(&clean),
        bler_positive_stats: summarise(&retx),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_orderings() {
        // Fig. 11: V_Ge (DDDSU) best, V_It (DDDDDDDSUU, UL-free S) worst;
        // BLER > 0 always costs more.
        let vge = measure_latency(Operator::VodafoneGermany, 4000, 1).unwrap();
        let vit = measure_latency(Operator::VodafoneItaly, 4000, 1).unwrap();
        let tge = measure_latency(Operator::TelekomGermany, 4000, 1).unwrap();
        let ofr = measure_latency(Operator::OrangeFrance, 4000, 1).unwrap();
        assert!(vit.bler_zero_ms > vge.bler_zero_ms, "{} vs {}", vit.bler_zero_ms, vge.bler_zero_ms);
        assert!(vit.bler_zero_ms > ofr.bler_zero_ms * 0.9);
        assert!(ofr.bler_zero_ms > tge.bler_zero_ms);
        for r in [&vge, &vit, &tge, &ofr] {
            assert!(
                r.bler_positive_ms > r.bler_zero_ms,
                "{}: {} !> {}",
                r.operator,
                r.bler_positive_ms,
                r.bler_zero_ms
            );
        }
        // Absolute scale: best case sits in the low milliseconds.
        assert!(vge.bler_zero_ms > 1.0 && vge.bler_zero_ms < 3.5, "{}", vge.bler_zero_ms);
    }

    #[test]
    fn channel_bandwidth_has_no_bearing() {
        // §4.3: latency is pattern-driven. V_Ge (80 MHz) and T_Ge (90 MHz)
        // differ in latency only through their special-slot splits.
        let vge = measure_latency(Operator::VodafoneGermany, 3000, 2).unwrap();
        let tge = measure_latency(Operator::TelekomGermany, 3000, 2).unwrap();
        assert_eq!(vge.pattern, "DDDSU");
        assert_eq!(tge.pattern, "DDDSU");
        assert!((vge.bler_zero_ms - tge.bler_zero_ms).abs() < 1.0);
    }

    #[test]
    fn zero_probes_is_a_typed_error() {
        let err = measure_latency(Operator::VodafoneGermany, 0, 1).unwrap_err();
        assert_eq!(err, LatencyError::NoProbes { operator: "V_Ge".to_string() });
        assert!(err.to_string().contains("zero probes"));
    }
}
